//! Property tests for negation normal form (§3.1) and path semantics
//! (Proposition 3.1).

mod common;

use proptest::prelude::*;
use std::collections::BTreeSet;

use common::{focus_candidates, graph_strategy, path_strategy, shape_strategy};
use shape_fragments::rdf::Graph;
use shape_fragments::shacl::rpq::CompiledPath;
use shape_fragments::shacl::validator::Context;
use shape_fragments::shacl::{Nnf, Schema};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// NNF conversion preserves conformance on every node.
    #[test]
    fn nnf_preserves_semantics(
        g in graph_strategy(12),
        shape in shape_strategy(),
    ) {
        let schema = Schema::empty();
        let mut ctx = Context::new(&schema, &g);
        let nnf = Nnf::from_shape(&shape);
        let neg = Nnf::from_negated_shape(&shape);
        for v in g.node_ids() {
            let direct = ctx.conforms(v, &shape);
            prop_assert_eq!(direct, ctx.conforms_nnf(v, &nnf),
                "NNF disagrees for {} at {}", &shape, g.term(v));
            prop_assert_eq!(!direct, ctx.conforms_nnf(v, &neg),
                "negated NNF disagrees for {} at {}", &shape, g.term(v));
            // Nnf::negated is semantic negation.
            prop_assert_eq!(!direct, ctx.conforms_nnf(v, &nnf.negated()));
        }
    }

    /// NNF round trip: converting the NNF's shape form re-normalizes to the
    /// same NNF.
    #[test]
    fn nnf_round_trip(shape in shape_strategy()) {
        let nnf = Nnf::from_shape(&shape);
        prop_assert_eq!(Nnf::from_shape(&nnf.to_shape()), nnf);
    }

    /// Proposition 3.1: for `F = graph(paths(E, G, a, b))`,
    /// `(a, b) ∈ ⟦E⟧^G ⇔ (a, b) ∈ ⟦E⟧^F`.
    #[test]
    fn proposition_3_1(
        g in graph_strategy(10),
        path in path_strategy(),
    ) {
        let compiled = CompiledPath::new(&path, &g);
        for a in g.node_ids() {
            for b in compiled.eval_from(&g, a) {
                let traced = compiled.trace(&g, a, &BTreeSet::from([b]));
                let f = Graph::from_triples(
                    traced.iter().map(|&(s, p, o)| g.triple_of(s, p, o)),
                );
                let mut f2 = f.clone();
                let a_f = f2.intern(g.term(a));
                let b_f = f2.intern(g.term(b));
                let cf = CompiledPath::new(&path, &f2);
                prop_assert!(
                    cf.connects(&f2, a_f, b_f),
                    "({}, {}) not connected via {} in traced subgraph",
                    g.term(a), g.term(b), path
                );
            }
        }
    }

    /// Path evaluation is monotone: adding triples never removes pairs.
    #[test]
    fn path_eval_monotone(
        g in graph_strategy(10),
        path in path_strategy(),
    ) {
        // Remove an arbitrary half of the triples.
        let triples: Vec<_> = g.iter().collect();
        let sub = Graph::from_triples(triples.iter().step_by(2).cloned());
        let c_sub = CompiledPath::new(&path, &sub);
        let c_full = CompiledPath::new(&path, &g);
        for a in sub.node_ids() {
            let from_sub: BTreeSet<_> = c_sub
                .eval_from(&sub, a)
                .into_iter()
                .map(|x| sub.term(x).clone())
                .collect();
            let a_full = g.id_of(sub.term(a)).expect("sub nodes exist in g");
            let from_full: BTreeSet<_> = c_full
                .eval_from(&g, a_full)
                .into_iter()
                .map(|x| g.term(x).clone())
                .collect();
            prop_assert!(
                from_sub.is_subset(&from_full),
                "monotonicity violated for {}", path
            );
        }
    }

    /// Traced subgraphs only contain graph triples, and tracing the full
    /// endpoint set equals the union of per-endpoint traces.
    #[test]
    fn trace_is_union_of_singletons(
        g in graph_strategy(8),
        path in path_strategy(),
    ) {
        let compiled = CompiledPath::new(&path, &g);
        for a in g.node_ids().into_iter().take(3) {
            let endpoints = compiled.eval_from(&g, a);
            let batched = compiled.trace(&g, a, &endpoints);
            let mut unioned = BTreeSet::new();
            for &b in &endpoints {
                unioned.extend(compiled.trace(&g, a, &BTreeSet::from([b])));
            }
            prop_assert_eq!(&batched, &unioned, "batched trace differs for {}", path);
            for &(s, p, o) in &batched {
                prop_assert!(g.contains_ids(s, p, o));
            }
        }
    }

    /// Conformance of any node is decidable coherently for shapes vs their
    /// double negation.
    #[test]
    fn double_negation(
        g in graph_strategy(10),
        shape in shape_strategy(),
    ) {
        let schema = Schema::empty();
        let mut ctx = Context::new(&schema, &g);
        let double = shape.clone().not().not();
        for v in focus_candidates(&g) {
            prop_assert_eq!(
                ctx.conforms_term(&v, &shape),
                ctx.conforms_term(&v, &double)
            );
        }
    }
}
