//! Round-trip property test for the SHACL syntax pair: writing a formal
//! schema as a shapes graph (the inverse of Appendix A) and translating it
//! back must preserve conformance semantics on arbitrary graphs.

mod common;

use proptest::prelude::*;

use common::{graph_strategy, node_term, pred, shape_strategy};
use shape_fragments::rdf::turtle;
use shape_fragments::shacl::parser::{parse_shapes_turtle, schema_from_shapes_graph};
use shape_fragments::shacl::validator::Context;
use shape_fragments::shacl::{
    schema_to_shapes_graph, schema_to_turtle, PathExpr, Schema, Shape, ShapeDef,
};

/// Standard target forms (the ones the writer can express).
fn target_strategy() -> impl Strategy<Value = Shape> {
    prop_oneof![
        Just(Shape::False),
        (0u8..6).prop_map(|i| Shape::HasValue(node_term(i))),
        (0u8..3).prop_map(|p| Shape::geq(1, PathExpr::Prop(pred(p)), Shape::True)),
        (0u8..3).prop_map(|p| Shape::geq(1, PathExpr::Prop(pred(p)).inverse(), Shape::True)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// write → parse preserves shape and target semantics node-by-node.
    #[test]
    fn schema_round_trip_preserves_semantics(
        shape in shape_strategy(),
        target in target_strategy(),
        g in graph_strategy(12),
    ) {
        let name = node_term(0);
        let schema = Schema::new([ShapeDef::new(name.clone(), shape, target)]).unwrap();
        let written = schema_to_shapes_graph(&schema);
        let reparsed = schema_from_shapes_graph(&written)
            .map_err(|e| TestCaseError::fail(format!("reparse failed: {e}")))?;
        let def1 = schema.get(&name).unwrap();
        let def2 = reparsed
            .get(&name)
            .ok_or_else(|| TestCaseError::fail("definition lost"))?;
        let mut ctx1 = Context::new(&schema, &g);
        let mut ctx2 = Context::new(&reparsed, &g);
        let probe1 = Shape::HasShape(name.clone());
        for v in g.node_ids() {
            prop_assert_eq!(
                ctx1.conforms(v, &probe1),
                ctx2.conforms(v, &probe1),
                "shape semantics changed at {} for {}",
                g.term(v),
                &def1.shape
            );
            prop_assert_eq!(
                ctx1.conforms(v, &def1.target),
                ctx2.conforms(v, &def2.target),
                "target semantics changed at {}",
                g.term(v)
            );
        }
    }

    /// The Turtle text of a written schema parses back through the full
    /// text pipeline.
    #[test]
    fn schema_turtle_round_trip(shape in shape_strategy()) {
        let schema = Schema::new([ShapeDef::new(
            node_term(0),
            shape,
            Shape::geq(1, PathExpr::Prop(pred(0)), Shape::True),
        )])
        .unwrap();
        let text = schema_to_turtle(&schema);
        // Text → graph → schema.
        let graph = turtle::parse(&text)
            .map_err(|e| TestCaseError::fail(format!("turtle reparse failed: {e}\n{text}")))?;
        prop_assert!(schema_from_shapes_graph(&graph).is_ok());
        // And the one-step helper agrees.
        prop_assert!(parse_shapes_turtle(&text).is_ok());
    }
}
