//! Deterministic fault-injection harness for the resource-governance layer
//! (DESIGN.md §9).
//!
//! Every failure mode the engine promises to survive is injected on
//! purpose here: truncated and byte-mutated documents, corrupted corpus
//! lines, adversarially deep shape trees, exhausted step budgets, expired
//! deadlines, and cross-thread cancellation. In every case the public API
//! must return a structured [`EngineError`] (or a parse error that converts
//! into one) — never panic, never hang. All randomness is seeded, so a
//! failure reproduces exactly.

use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use shape_fragments::core::{fragment_governed, neighborhood_governed, schema_fragment_governed};
use shape_fragments::govern::{Budget, BudgetKind, CancelToken, EngineError, ExecCtx};
use shape_fragments::rdf::{ntriples, turtle};
use shape_fragments::shacl::parser::parse_shapes_turtle;
use shape_fragments::shacl::validator::{validate_batch_governed, validate_governed, Context};
use shape_fragments::shacl::{Nnf, PathExpr, Schema, Shape, ShapeDef};
use shape_fragments::sparql::{eval_select_governed, parse_select, EvalConfig};
use shapefrag_rdf::{Graph, Iri, Term, Triple};
use shapefrag_workloads::shapes57::benchmark_shapes;
use shapefrag_workloads::tyrolean::{generate, TyroleanConfig};

const VALID_TURTLE: &str = r#"
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix ex: <http://e/> .
ex:S a sh:NodeShape ; sh:targetClass ex:T ;
  sh:property [ sh:path ex:p ; sh:minCount 1 ; sh:pattern "^a+$" ] .
ex:a ex:p "aaa" ; a ex:T .
"#;

const VALID_NTRIPLES: &str = "<http://e/a> <http://e/p> <http://e/b> .\n\
<http://e/b> <http://e/p> \"lit\"@en .\n\
<http://e/c> <http://e/q> \"3\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n";

const VALID_SPARQL: &str = "PREFIX ex: <http://e/>\nSELECT DISTINCT ?s WHERE { \
    { ?s ex:p/ex:q* ?o . FILTER (?o != ex:x) } UNION { ?s !(ex:p|ex:q) ?o } }";

fn e(n: &str) -> Term {
    Term::iri(format!("http://e/{n}"))
}

fn p(n: &str) -> Iri {
    Iri::new(format!("http://e/{n}"))
}

/// A small cyclic graph: star paths over it generate unbounded RPQ work
/// unless the visited-set/budget machinery intervenes.
fn cyclic_graph() -> Graph {
    Graph::from_triples([
        Triple::new(e("n0"), p("p"), e("n1")),
        Triple::new(e("n1"), p("p"), e("n2")),
        Triple::new(e("n2"), p("p"), e("n0")),
    ])
}

/// `ForAll(p*, Geq(1, p, True))` — every node reachable over `p*` has a
/// `p`-successor. Cheap per node, but touches the whole cycle.
fn star_walk_shape() -> Shape {
    Shape::for_all(
        PathExpr::prop(p("p")).star(),
        Shape::geq(1, PathExpr::prop(p("p")), Shape::True),
    )
}

// ---------------------------------------------------------------------------
// Malformed input: truncations and byte mutations
// ---------------------------------------------------------------------------

/// Every prefix of every valid document parses or errors — never panics.
#[test]
fn truncations_never_panic() {
    for (doc, which) in [
        (VALID_TURTLE, "turtle"),
        (VALID_NTRIPLES, "ntriples"),
        (VALID_SPARQL, "sparql"),
    ] {
        for (cut, _) in doc.char_indices() {
            let truncated = &doc[..cut];
            match which {
                "turtle" => {
                    let _ = turtle::parse(truncated);
                    let _ = turtle::parse_lossy(truncated);
                    let _ = parse_shapes_turtle(truncated);
                }
                "ntriples" => {
                    let _ = ntriples::parse(truncated);
                    let _ = ntriples::parse_lossy(truncated);
                }
                _ => {
                    let _ = parse_select(truncated);
                }
            }
        }
    }
}

/// Seeded byte-level mutations (delete / insert / overwrite) of valid
/// documents must yield `Ok` or a structured error from every parser, and
/// a mutated query that still parses must evaluate under a step cap
/// without panicking or hanging.
#[test]
fn byte_mutations_never_panic() {
    let mut rng = StdRng::seed_from_u64(0xFA17);
    let small =
        turtle::parse("@prefix ex: <http://e/> . ex:a ex:p ex:b . ex:b ex:q ex:c .").unwrap();
    for round in 0..600 {
        let doc = match round % 3 {
            0 => VALID_TURTLE,
            1 => VALID_NTRIPLES,
            _ => VALID_SPARQL,
        };
        let mut bytes = doc.as_bytes().to_vec();
        for _ in 0..rng.gen_range(1..4usize) {
            let pos = rng.gen_range(0..bytes.len());
            match rng.gen_range(0..3u8) {
                0 => {
                    bytes.remove(pos);
                }
                1 => bytes.insert(pos, rng.gen_range(0..256u16) as u8),
                _ => bytes[pos] = rng.gen_range(0..256u16) as u8,
            }
        }
        let mangled = String::from_utf8_lossy(&bytes).into_owned();
        match round % 3 {
            0 => {
                let _ = turtle::parse(&mangled);
                let _ = turtle::parse_lossy(&mangled);
                let _ = parse_shapes_turtle(&mangled);
            }
            1 => {
                let _ = ntriples::parse(&mangled);
                let _ = ntriples::parse_lossy(&mangled);
            }
            _ => {
                if let Ok(query) = parse_select(&mangled) {
                    let exec = ExecCtx::with_budget(Budget::unlimited().steps(10_000));
                    let _ = eval_select_governed(&small, &query, &EvalConfig::indexed(), &exec);
                }
            }
        }
    }
}

/// Parse errors carry a position and convert into the unified taxonomy.
#[test]
fn parse_errors_convert_to_engine_errors() {
    let err = turtle::parse("@prefix ex: <http://e/> .\nex:a ex:p <unterminated").unwrap_err();
    let engine: EngineError = err.into();
    match engine {
        EngineError::Malformed { line, .. } => assert_eq!(line, 2),
        other => panic!("expected Malformed, got {other:?}"),
    }
    let err = parse_select("SELECT ?s WHERE { ?s ex:p ?o }").unwrap_err();
    assert!(matches!(
        EngineError::from(err),
        EngineError::Malformed { .. }
    ));
}

// ---------------------------------------------------------------------------
// Lossy ingestion: corrupted corpus recovery
// ---------------------------------------------------------------------------

/// With 1% of corpus lines corrupted, lossy loading recovers ≥ 99% of the
/// valid triples and reports one positioned diagnostic per damaged region.
#[test]
fn lossy_load_recovers_corrupted_corpus() {
    const LINES: usize = 2_000;
    let mut rng = StdRng::seed_from_u64(0xC0 + 1);
    let lines: Vec<String> = (0..LINES)
        .map(|i| format!("<http://e/s{i}> <http://e/p{}> <http://e/o{i}> .", i % 7))
        .collect();
    let corrupt_every = 100; // 1% of lines
    let mut corrupted = 0usize;
    let doc: String = lines
        .iter()
        .enumerate()
        .map(|(i, line)| {
            if i % corrupt_every == 17 % corrupt_every {
                corrupted += 1;
                let mut bytes = line.as_bytes().to_vec();
                let cut = rng.gen_range(1..bytes.len());
                match rng.gen_range(0..3u8) {
                    0 => bytes.truncate(cut),
                    1 => bytes[cut] = b'\0',
                    _ => bytes.insert(cut, b'<'),
                }
                String::from_utf8_lossy(&bytes).into_owned() + "\n"
            } else {
                line.clone() + "\n"
            }
        })
        .collect();

    let load = ntriples::parse_lossy(&doc);
    let intact = LINES - corrupted;
    assert!(
        load.graph.len() * 100 >= intact * 99,
        "recovered only {} of {} intact triples",
        load.graph.len(),
        intact
    );
    assert!(!load.is_clean());
    assert!(load.statements_skipped <= corrupted + 2);
    assert_eq!(load.diagnostics.len(), load.statements_skipped);
    for d in &load.diagnostics {
        assert!(d.line >= 1, "diagnostic without a position: {d}");
    }
}

// ---------------------------------------------------------------------------
// Deep shapes: no stack overflow, structured DepthLimit
// ---------------------------------------------------------------------------

/// 100 000-deep shape trees survive construction, cloning, NNF (positive
/// and negated), schema registration, and drop — all iterative paths.
#[test]
fn hundred_thousand_deep_shapes_do_not_overflow() {
    const DEPTH: usize = 100_000;
    let mut shape = Shape::True;
    for _ in 0..DEPTH {
        shape = Shape::geq(1, PathExpr::prop(p("p")), shape);
    }
    let cloned = shape.clone();
    assert_eq!(cloned.size(), shape.size());
    let nnf = Nnf::from_shape(&shape);
    let negated = nnf.negated();
    drop(negated.to_shape());
    let schema = Schema::new(vec![ShapeDef::new(
        e("Deep"),
        shape,
        Shape::has_value(e("n0")),
    )])
    .expect("deep nonrecursive schema");
    drop(cloned);
    drop(schema);
}

/// Running a 100 000-deep shape under a depth guard is a structured
/// `DepthLimit` error, not a crash.
#[test]
fn deep_shape_validation_hits_depth_limit() {
    const DEPTH: usize = 100_000;
    let mut shape = Shape::True;
    for _ in 0..DEPTH {
        shape = Shape::geq(1, PathExpr::prop(p("p")), shape);
    }
    let schema = Schema::new(vec![ShapeDef::new(
        e("Deep"),
        shape,
        Shape::has_value(e("n0")),
    )])
    .unwrap();
    let graph = cyclic_graph();
    let exec = ExecCtx::with_budget(Budget::unlimited().max_depth(64));
    match validate_governed(&schema, &graph, exec) {
        Err(EngineError::DepthLimit { limit }) => assert_eq!(limit, 64),
        other => panic!("expected DepthLimit, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Budgets, deadlines, cancellation across the public surface
// ---------------------------------------------------------------------------

#[test]
fn step_budget_faults_are_structured_across_the_stack() {
    let graph = cyclic_graph();
    let shapes = vec![star_walk_shape()];
    let schema = Schema::empty();
    let tiny = || ExecCtx::with_budget(Budget::unlimited().steps(3));

    match fragment_governed(&schema, &graph, &shapes, tiny()) {
        Err(EngineError::BudgetExceeded {
            kind: BudgetKind::Steps,
            limit,
        }) => assert_eq!(limit, 3),
        other => panic!("fragment_governed: expected step fault, got {other:?}"),
    }

    let named = Schema::new(vec![ShapeDef::new(
        e("Walk"),
        star_walk_shape(),
        Shape::geq(1, PathExpr::prop(p("p")), Shape::True),
    )])
    .unwrap();
    assert!(matches!(
        validate_governed(&named, &graph, tiny()),
        Err(EngineError::BudgetExceeded { .. })
    ));
    assert!(matches!(
        validate_batch_governed(&named, &graph, tiny()),
        Err(EngineError::BudgetExceeded { .. })
    ));
    assert!(matches!(
        schema_fragment_governed(&named, &graph, tiny()),
        Err(EngineError::BudgetExceeded { .. })
    ));

    let mut ctx = Context::new(&schema, &graph).with_exec(tiny());
    let v = graph.id_of(&e("n0")).unwrap();
    assert!(matches!(
        neighborhood_governed(&mut ctx, v, &star_walk_shape()),
        Err(EngineError::BudgetExceeded { .. })
    ));
}

#[test]
fn expired_deadline_is_a_structured_error() {
    let graph = generate(&TyroleanConfig::new(200, 0xDEAD));
    let schema = Schema::new(benchmark_shapes()).unwrap();
    let exec = ExecCtx::with_budget(Budget::unlimited().deadline(Duration::ZERO));
    match validate_batch_governed(&schema, &graph, exec) {
        Err(EngineError::DeadlineExceeded { .. }) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
}

/// Cross-thread cancellation: a worker validating in a loop observes a
/// cancellation issued from the test thread within 50ms.
#[test]
fn cancellation_is_observed_within_50ms() {
    let graph = generate(&TyroleanConfig::new(600, 0xCA));
    let schema = Schema::new(benchmark_shapes()).unwrap();
    let token = CancelToken::new();
    let worker_token = token.clone();
    let (tx, rx) = mpsc::channel();

    let worker = thread::spawn(move || loop {
        let exec = ExecCtx::with_budget(Budget::unlimited()).with_cancel(&worker_token);
        match validate_batch_governed(&schema, &graph, exec) {
            Ok(_) => {
                // Keep looping; tell the test thread we are mid-workload.
                let _ = tx.send(());
            }
            Err(EngineError::Cancelled) => return Instant::now(),
            Err(other) => panic!("unexpected fault under cancellation: {other:?}"),
        }
    });

    // Wait until at least one full validation pass has completed, so the
    // cancel lands while the worker is deep inside the kernel.
    rx.recv().expect("worker never finished a warmup pass");
    let cancelled_at = Instant::now();
    token.cancel();
    let observed_at = worker.join().expect("worker panicked");
    let latency = observed_at.duration_since(cancelled_at);
    assert!(
        latency < Duration::from_millis(50),
        "cancellation took {latency:?} to be observed"
    );
}

// ---------------------------------------------------------------------------
// Governance over the frozen (CSR) backend
// ---------------------------------------------------------------------------

/// The governed kernels keep honoring step budgets when running over a
/// [`FrozenGraph`] snapshot: every public entry point surfaces the same
/// structured fault it does on the mutable backend.
#[test]
fn frozen_backend_honors_step_budgets() {
    let frozen = cyclic_graph().freeze();
    let shapes = vec![star_walk_shape()];
    let schema = Schema::empty();
    let tiny = || ExecCtx::with_budget(Budget::unlimited().steps(3));

    match fragment_governed(&schema, &frozen, &shapes, tiny()) {
        Err(EngineError::BudgetExceeded {
            kind: BudgetKind::Steps,
            limit,
        }) => assert_eq!(limit, 3),
        other => panic!("fragment_governed/frozen: expected step fault, got {other:?}"),
    }

    let named = Schema::new(vec![ShapeDef::new(
        e("Walk"),
        star_walk_shape(),
        Shape::geq(1, PathExpr::prop(p("p")), Shape::True),
    )])
    .unwrap();
    assert!(matches!(
        validate_governed(&named, &frozen, tiny()),
        Err(EngineError::BudgetExceeded { .. })
    ));
    assert!(matches!(
        validate_batch_governed(&named, &frozen, tiny()),
        Err(EngineError::BudgetExceeded { .. })
    ));
    assert!(matches!(
        schema_fragment_governed(&named, &frozen, tiny()),
        Err(EngineError::BudgetExceeded { .. })
    ));

    let mut ctx = Context::new(&schema, &frozen).with_exec(tiny());
    let v = frozen.id_of(&e("n0")).unwrap();
    assert!(matches!(
        neighborhood_governed(&mut ctx, v, &star_walk_shape()),
        Err(EngineError::BudgetExceeded { .. })
    ));
}

/// Deadlines still trip over the frozen backend.
#[test]
fn frozen_backend_honors_deadlines() {
    let frozen = generate(&TyroleanConfig::new(200, 0xDEAD)).freeze();
    let schema = Schema::new(benchmark_shapes()).unwrap();
    let exec = ExecCtx::with_budget(Budget::unlimited().deadline(Duration::ZERO));
    match validate_batch_governed(&schema, &frozen, exec) {
        Err(EngineError::DeadlineExceeded { .. }) => {}
        other => panic!("expected DeadlineExceeded over frozen, got {other:?}"),
    }
}

/// Cross-thread cancellation is observed promptly inside the frozen-backend
/// kernels too.
#[test]
fn frozen_backend_observes_cancellation() {
    let frozen = generate(&TyroleanConfig::new(600, 0xCB)).freeze();
    let schema = Schema::new(benchmark_shapes()).unwrap();
    let token = CancelToken::new();
    let worker_token = token.clone();
    let (tx, rx) = mpsc::channel();

    let worker = thread::spawn(move || loop {
        let exec = ExecCtx::with_budget(Budget::unlimited()).with_cancel(&worker_token);
        match validate_batch_governed(&schema, &frozen, exec) {
            Ok(_) => {
                let _ = tx.send(());
            }
            Err(EngineError::Cancelled) => return Instant::now(),
            Err(other) => panic!("unexpected fault under cancellation: {other:?}"),
        }
    });

    rx.recv().expect("worker never finished a warmup pass");
    let cancelled_at = Instant::now();
    token.cancel();
    let observed_at = worker.join().expect("worker panicked");
    let latency = observed_at.duration_since(cancelled_at);
    assert!(
        latency < Duration::from_millis(50),
        "cancellation over frozen took {latency:?} to be observed"
    );
}

/// An unbounded governed run over the frozen backend reproduces the
/// ungoverned mutable-backend results exactly.
#[test]
fn frozen_governed_agrees_with_mutable_ungoverned() {
    use shape_fragments::core::schema_fragment;
    use shape_fragments::shacl::validator::validate_batch;

    let graph = generate(&TyroleanConfig::new(150, 0xA7));
    let frozen = graph.freeze();
    let schema = Schema::new(benchmark_shapes()).unwrap();

    let plain = validate_batch(&schema, &graph);
    let governed = validate_batch_governed(&schema, &frozen, ExecCtx::unbounded())
        .expect("unbounded context cannot fault");
    assert_eq!(plain, governed);

    let plain_frag = schema_fragment(&schema, &graph);
    let governed_frag = schema_fragment_governed(&schema, &frozen, ExecCtx::unbounded())
        .expect("unbounded context cannot fault");
    assert_eq!(plain_frag, governed_frag);
}

// ---------------------------------------------------------------------------
// Governance through the work-stealing parallel engine (DESIGN.md §12)
// ---------------------------------------------------------------------------

/// Exhausted step budgets inside parallel workers surface as one
/// structured `BudgetExceeded` — first fault in planning order wins, no
/// partial report leaks out.
#[test]
fn parallel_engine_surfaces_budget_exhaustion() {
    use shape_fragments::core::validate_batch_par_governed;

    let frozen = generate(&TyroleanConfig::new(400, 0xBE)).freeze();
    let schema = Schema::new(benchmark_shapes()).unwrap();
    for threads in [1, 2, 4, 8] {
        match validate_batch_par_governed(
            &schema,
            &frozen,
            threads,
            Budget::unlimited().steps(16),
            None,
        ) {
            Err(EngineError::BudgetExceeded {
                kind: BudgetKind::Steps,
                ..
            }) => {}
            other => panic!("threads={threads}: expected step fault, got {other:?}"),
        }
    }
}

/// A cancellation issued from another thread while the parallel engine is
/// mid-validation is observed promptly by every worker and surfaced as
/// one `Cancelled` error.
#[test]
fn parallel_engine_observes_cross_thread_cancellation() {
    use shape_fragments::core::validate_batch_par_governed;

    let frozen = generate(&TyroleanConfig::new(600, 0xCC)).freeze();
    let schema = Schema::new(benchmark_shapes()).unwrap();
    let token = CancelToken::new();
    let worker_token = token.clone();
    let (tx, rx) = mpsc::channel();

    let worker = thread::spawn(move || loop {
        match validate_batch_par_governed(
            &schema,
            &frozen,
            4,
            Budget::unlimited(),
            Some(&worker_token),
        ) {
            Ok(_) => {
                let _ = tx.send(());
            }
            Err(EngineError::Cancelled) => return Instant::now(),
            Err(other) => panic!("unexpected fault under cancellation: {other:?}"),
        }
    });

    rx.recv().expect("worker never finished a warmup pass");
    let cancelled_at = Instant::now();
    token.cancel();
    let observed_at = worker.join().expect("worker panicked");
    let latency = observed_at.duration_since(cancelled_at);
    assert!(
        latency < Duration::from_millis(250),
        "parallel cancellation took {latency:?} to be observed"
    );
}

/// Unconstrained governed parallel runs reproduce the sequential batch
/// report at every thread count.
#[test]
fn parallel_engine_unbounded_agrees_with_sequential() {
    use shape_fragments::core::validate_batch_par_governed;
    use shape_fragments::shacl::validator::validate_batch;

    let frozen = generate(&TyroleanConfig::new(150, 0xA8)).freeze();
    let schema = Schema::new(benchmark_shapes()).unwrap();
    let sequential = validate_batch(&schema, &frozen);
    for threads in [1, 2, 4, 8] {
        let report =
            validate_batch_par_governed(&schema, &frozen, threads, Budget::unlimited(), None)
                .expect("unlimited budget cannot fault");
        assert_eq!(sequential, report, "threads = {threads}");
    }
}

/// An unbounded context reproduces the ungoverned results exactly, across
/// validation and fragment extraction.
#[test]
fn governed_and_ungoverned_agree_when_unbounded() {
    use shape_fragments::core::schema_fragment;
    use shape_fragments::shacl::validator::validate_batch;

    let graph = generate(&TyroleanConfig::new(150, 0xA6));
    let schema = Schema::new(benchmark_shapes()).unwrap();

    let plain = validate_batch(&schema, &graph);
    let governed = validate_batch_governed(&schema, &graph, ExecCtx::unbounded())
        .expect("unbounded context cannot fault");
    assert_eq!(plain, governed);

    let plain_frag = schema_fragment(&schema, &graph);
    let governed_frag = schema_fragment_governed(&schema, &graph, ExecCtx::unbounded())
        .expect("unbounded context cannot fault");
    assert_eq!(plain_frag, governed_frag);
}
