//! Property tests for shape fragments (§4): the Conformance Theorem (4.1),
//! Corollary 4.2, and structural properties of `Frag(G, S)`.

mod common;

use proptest::prelude::*;

use common::{graph_strategy, monotone_shape_strategy, node_term, pred, shape_strategy};
use shape_fragments::core::{
    fragment, fragment_par, schema_fragment, validate_extract_fragment, validate_with_provenance,
};
use shape_fragments::rdf::Term;
use shape_fragments::shacl::validator::{validate, Context};
use shape_fragments::shacl::{PathExpr, Schema, Shape, ShapeDef};

/// Monotone target shapes: the real-SHACL target forms of §4.
fn target_strategy() -> impl Strategy<Value = Shape> {
    prop_oneof![
        // Node target.
        (0u8..6).prop_map(|i| Shape::HasValue(node_term(i))),
        // Subjects-of.
        (0u8..3).prop_map(|p| Shape::geq(1, PathExpr::Prop(pred(p)), Shape::True)),
        // Objects-of.
        (0u8..3).prop_map(|p| Shape::geq(1, PathExpr::Prop(pred(p)).inverse(), Shape::True)),
        // Class-style target (p0 as type, p1 as subclass).
        (0u8..6).prop_map(|c| Shape::geq(
            1,
            PathExpr::Prop(pred(0)).then(PathExpr::Prop(pred(1)).star()),
            Shape::HasValue(node_term(c)),
        )),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Theorem 4.1: if `G` conforms to a schema with monotone targets,
    /// then `Frag(G, H)` conforms to it as well.
    #[test]
    fn conformance_theorem(
        g in graph_strategy(14),
        shape in shape_strategy(),
        target in target_strategy(),
    ) {
        let schema = Schema::new([ShapeDef::new(
            Term::iri(format!("{}S", common::NS)),
            shape,
            target,
        )]).expect("nonrecursive");
        if !validate(&schema, &g).conforms() {
            return Ok(()); // premise not met
        }
        let frag = schema_fragment(&schema, &g);
        prop_assert!(frag.is_subgraph_of(&g));
        prop_assert!(
            validate(&schema, &frag).conforms(),
            "fragment violates schema; fragment:\n{frag:?}"
        );
    }

    /// Corollary 4.2: every node conforming to a request shape in `G`
    /// still conforms in `Frag(G, S)`.
    #[test]
    fn corollary_4_2(
        g in graph_strategy(12),
        shapes in prop::collection::vec(shape_strategy(), 1..3),
    ) {
        let schema = Schema::empty();
        let frag = fragment(&schema, &g, &shapes);
        prop_assert!(frag.is_subgraph_of(&g));
        let mut ctx = Context::new(&schema, &g);
        for shape in &shapes {
            for v in g.nodes() {
                if !ctx.conforms_term(v, shape) {
                    continue;
                }
                let mut frag2 = frag.clone();
                frag2.intern(v);
                let mut fctx = Context::new(&schema, &frag2);
                prop_assert!(
                    fctx.conforms_term(v, shape),
                    "{v} lost conformance to {shape} in the fragment"
                );
            }
        }
    }

    /// The fragment is the union of the individual shapes' fragments.
    #[test]
    fn fragment_is_union_of_shape_fragments(
        g in graph_strategy(12),
        s1 in shape_strategy(),
        s2 in shape_strategy(),
    ) {
        let schema = Schema::empty();
        let both = fragment(&schema, &g, &[s1.clone(), s2.clone()]);
        let mut union = fragment(&schema, &g, &[s1]);
        union.extend(&fragment(&schema, &g, &[s2]));
        prop_assert_eq!(both, union);
    }

    /// Parallel fragment extraction agrees with the sequential one.
    #[test]
    fn parallel_agrees(
        g in graph_strategy(16),
        shapes in prop::collection::vec(shape_strategy(), 1..3),
    ) {
        let schema = Schema::empty();
        prop_assert_eq!(
            fragment(&schema, &g, &shapes),
            fragment_par(&schema, &g, &shapes, 3)
        );
    }

    /// The instrumented validator (single pass, §5.2) produces exactly the
    /// plain validation report and, on conforming graphs, exactly
    /// `Frag(G, H)` — for random schemas over real target forms.
    #[test]
    fn instrumented_validator_agrees(
        g in graph_strategy(14),
        shape in shape_strategy(),
        target in target_strategy(),
    ) {
        let schema = Schema::new([ShapeDef::new(
            Term::iri(format!("{}S", common::NS)),
            shape,
            target,
        )]).expect("nonrecursive");
        let plain = validate(&schema, &g);
        let (fast_report, fast_fragment) = validate_extract_fragment(&schema, &g);
        prop_assert_eq!(&plain, &fast_report);
        let with_prov = validate_with_provenance(&schema, &g);
        prop_assert_eq!(&plain, &with_prov.report);
        prop_assert_eq!(fast_fragment.to_graph(&g), with_prov.fragment.clone());
        if plain.conforms() {
            prop_assert_eq!(with_prov.fragment, schema_fragment(&schema, &g));
        }
    }

    /// Fragments are idempotent for monotone request shapes:
    /// `Frag(Frag(G, S), S) = Frag(G, S)` when every shape is monotone
    /// (conformance and neighborhoods are then preserved in the fragment).
    #[test]
    fn fragment_idempotent_for_monotone_shapes(
        g in graph_strategy(12),
        shape in monotone_shape_strategy(),
    ) {
        prop_assert!(shape.is_monotone_syntactically());
        let schema = Schema::empty();
        let once = fragment(&schema, &g, std::slice::from_ref(&shape));
        let twice = fragment(&schema, &once, std::slice::from_ref(&shape));
        prop_assert_eq!(once, twice);
    }
}
