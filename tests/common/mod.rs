#![allow(dead_code)] // shared across several test binaries, not all use every helper
//! Shared proptest strategies for the integration test suite: random RDF
//! graphs, path expressions, and shapes covering every construct of the
//! paper's grammar (§2).

use proptest::prelude::*;

use shape_fragments::rdf::{Graph, Iri, Literal, Term, Triple};
use shape_fragments::shacl::node_test::{NodeKind, NodeTest};
use shape_fragments::shacl::shape::PathOrId;
use shape_fragments::shacl::{PathExpr, Shape};

pub const NS: &str = "http://t.example.org/";

pub fn iri(n: &str) -> Iri {
    Iri::new(format!("{NS}{n}"))
}

pub fn node_term(i: u8) -> Term {
    Term::iri(format!("{NS}n{i}"))
}

pub fn pred(i: u8) -> Iri {
    iri(&format!("p{i}"))
}

/// A term that can appear in object position: nodes, a few literals (some
/// language-tagged so `uniqueLang` is exercised), a blank node.
pub fn object_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        5 => (0u8..6).prop_map(node_term),
        1 => (0i64..4).prop_map(|i| Term::Literal(Literal::integer(i))),
        1 => (0u8..3).prop_map(|i| {
            let langs = ["en", "de", "fr"];
            Term::Literal(Literal::lang_string(format!("w{i}"), langs[(i % 3) as usize]))
        }),
        1 => Just(Term::blank("b0")),
    ]
}

/// Random graphs over a small universe: ≤ `max_triples` triples with
/// subjects n0..n5 ∪ {_:b0}, predicates p0..p2, mixed objects.
pub fn graph_strategy(max_triples: usize) -> impl Strategy<Value = Graph> {
    prop::collection::vec(
        (
            prop_oneof![4 => (0u8..6).prop_map(node_term), 1 => Just(Term::blank("b0"))],
            0u8..3,
            object_term(),
        ),
        0..max_triples,
    )
    .prop_map(|triples| {
        Graph::from_triples(
            triples
                .into_iter()
                .map(|(s, p, o)| Triple::new(s, pred(p), o)),
        )
    })
}

/// Random path expressions of bounded depth over p0..p2, including the
/// Remark 6.3 negated-property-set extension.
pub fn path_strategy() -> impl Strategy<Value = PathExpr> {
    let leaf = prop_oneof![
        6 => (0u8..3).prop_map(|i| PathExpr::Prop(pred(i))),
        1 => prop::collection::btree_set((0u8..3).prop_map(pred), 0..2)
            .prop_map(PathExpr::NegProp),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| e.inverse()),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.then(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.clone().prop_map(|e| e.star()),
            inner.prop_map(|e| e.opt()),
        ]
    })
}

fn node_test_strategy() -> impl Strategy<Value = NodeTest> {
    prop_oneof![
        Just(NodeTest::Kind(NodeKind::Iri)),
        Just(NodeTest::Kind(NodeKind::Literal)),
        Just(NodeTest::Kind(NodeKind::BlankNodeOrIri)),
        (0i64..4).prop_map(|i| NodeTest::MinInclusive(Literal::integer(i))),
        (0i64..4).prop_map(|i| NodeTest::MaxExclusive(Literal::integer(i))),
        (1u32..30).prop_map(NodeTest::MinLength),
        Just(NodeTest::Language("en".into())),
    ]
}

/// Random shapes covering the full grammar: atoms (hasValue, test, eq,
/// disj, closed, lessThan, lessThanEq, uniqueLang), boolean operators, and
/// the three quantifiers. Depth-bounded so evaluation stays fast.
pub fn shape_strategy() -> impl Strategy<Value = Shape> {
    let path_or_id = prop_oneof![
        1 => Just(PathOrId::Id),
        3 => path_strategy().prop_map(PathOrId::Path),
    ];
    let atom = prop_oneof![
        Just(Shape::True),
        Just(Shape::False),
        (0u8..6).prop_map(|i| Shape::HasValue(node_term(i))),
        node_test_strategy().prop_map(Shape::Test),
        (path_or_id.clone(), 0u8..3).prop_map(|(f, p)| Shape::Eq(f, pred(p))),
        (path_or_id, 0u8..3).prop_map(|(f, p)| Shape::Disj(f, pred(p))),
        prop::collection::btree_set((0u8..3).prop_map(pred), 0..3).prop_map(Shape::Closed),
        (path_strategy(), 0u8..3).prop_map(|(e, p)| Shape::LessThan(e, pred(p))),
        (path_strategy(), 0u8..3).prop_map(|(e, p)| Shape::LessThanEq(e, pred(p))),
        (path_strategy(), 0u8..3).prop_map(|(e, p)| Shape::MoreThan(e, pred(p))),
        (path_strategy(), 0u8..3).prop_map(|(e, p)| Shape::MoreThanEq(e, pred(p))),
        path_strategy().prop_map(Shape::UniqueLang),
    ];
    atom.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|s| s.not()),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Shape::And),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Shape::Or),
            (0u32..3, path_strategy(), inner.clone()).prop_map(|(n, e, s)| Shape::geq(n, e, s)),
            (0u32..3, path_strategy(), inner.clone()).prop_map(|(n, e, s)| Shape::leq(n, e, s)),
            (path_strategy(), inner).prop_map(|(e, s)| Shape::for_all(e, s)),
        ]
    })
}

/// All nodes of a graph as terms (the candidate focus nodes).
pub fn focus_candidates(g: &Graph) -> Vec<Term> {
    let mut nodes: Vec<Term> = g.nodes().into_iter().cloned().collect();
    nodes.push(node_term(0)); // possibly absent from the graph
    nodes
}

/// Syntactically monotone shapes (the class closed under triple addition):
/// ⊤, ⊥, `hasValue`, `test`, `≥n E.φ` with monotone φ, conjunction and
/// disjunction.
pub fn monotone_shape_strategy() -> impl Strategy<Value = Shape> {
    let atom = prop_oneof![
        Just(Shape::True),
        (0u8..6).prop_map(|i| Shape::HasValue(node_term(i))),
        Just(Shape::Test(NodeTest::Kind(NodeKind::Iri))),
    ];
    atom.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(Shape::And),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Shape::Or),
            (0u32..3, path_strategy(), inner).prop_map(|(n, e, s)| Shape::geq(n, e, s)),
        ]
    })
}
