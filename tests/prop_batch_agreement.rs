//! Agreement between the set-at-a-time (batch) evaluation kernel and the
//! per-node reference implementations:
//!
//! - `validate_batch` produces exactly the same [`ValidationReport`] as
//!   `validate` (same violations, in the same order),
//! - `validate_extract_fragment` (batch route) matches
//!   `validate_extract_fragment_per_node` on both the report and the
//!   extracted neighborhood triple set,
//! - `Context::conforms_all` agrees pointwise with `Context::conforms`,
//! - `fragment_ids` (batch) equals `fragment_ids_per_node`.
//!
//! Schemas are generated with *forward* `hasShape` references so several
//! definitions share sub-shapes — the case the conformance memo dedupes.

mod common;

use proptest::prelude::*;

use common::{graph_strategy, shape_strategy};
use shape_fragments::core::{
    fragment_ids, fragment_ids_per_node, validate_extract_fragment,
    validate_extract_fragment_per_node,
};
use shape_fragments::rdf::{Graph, Term, TermId};
use shape_fragments::shacl::validator::{validate, validate_batch, Context};
use shape_fragments::shacl::{PathExpr, Schema, Shape, ShapeDef};

fn shape_name(i: usize) -> Term {
    Term::iri(format!("{}S{i}", common::NS))
}

/// Target shapes in the real-SHACL forms of §4 (plus ⊤ = "all nodes").
fn target_strategy() -> impl Strategy<Value = Shape> {
    prop_oneof![
        (0u8..6).prop_map(|i| Shape::HasValue(common::node_term(i))),
        (0u8..3).prop_map(|p| Shape::geq(1, PathExpr::Prop(common::pred(p)), Shape::True)),
        (0u8..3).prop_map(|p| Shape::geq(
            1,
            PathExpr::Prop(common::pred(p)).inverse(),
            Shape::True
        )),
        Just(Shape::True),
    ]
}

/// Random nonrecursive schemas of 1–4 definitions. Earlier definitions may
/// reference later ones via `hasShape` (forward references only, so the
/// schema is nonrecursive by construction); several definitions referencing
/// the same sub-shape is exactly the case the conformance memo shares.
fn schema_strategy() -> impl Strategy<Value = Schema> {
    (
        prop::collection::vec((shape_strategy(), target_strategy()), 1..5),
        prop::collection::vec(any::<bool>(), 8),
    )
        .prop_map(|(parts, links)| {
            let n = parts.len();
            let defs: Vec<ShapeDef> = parts
                .into_iter()
                .enumerate()
                .map(|(i, (mut shape, target))| {
                    if i + 1 < n && links[(2 * i) % links.len()] {
                        shape = shape.and(Shape::HasShape(shape_name(i + 1)));
                    }
                    if i + 1 < n && links[(2 * i + 1) % links.len()] {
                        shape = shape.or(Shape::geq(
                            1,
                            PathExpr::Prop(common::pred(0)),
                            Shape::HasShape(shape_name(n - 1)),
                        ));
                    }
                    ShapeDef::new(shape_name(i), shape, target)
                })
                .collect();
            Schema::new(defs).expect("forward references only — nonrecursive")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `validate_batch` = `validate`, including violation order.
    #[test]
    fn validate_batch_agrees_with_validate(
        g in graph_strategy(14),
        schema in schema_strategy(),
    ) {
        let per_node = validate(&schema, &g);
        let batch = validate_batch(&schema, &g);
        prop_assert_eq!(per_node, batch);
    }

    /// The batch instrumented validator produces the same report and the
    /// same neighborhood triple set as the per-node reference.
    #[test]
    fn batch_fragment_extraction_agrees_with_per_node(
        g in graph_strategy(14),
        schema in schema_strategy(),
    ) {
        let (batch_report, batch_frag) = validate_extract_fragment(&schema, &g);
        let (ref_report, ref_frag) = validate_extract_fragment_per_node(&schema, &g);
        prop_assert_eq!(batch_report, ref_report);
        prop_assert_eq!(batch_frag.to_graph(&g), ref_frag.to_graph(&g));
    }

    /// `conforms_all` decides every node exactly as per-node `conforms`.
    #[test]
    fn conforms_all_agrees_pointwise(
        g in graph_strategy(12),
        shape in shape_strategy(),
    ) {
        let schema = Schema::empty();
        let mut ctx = Context::new(&schema, &g);
        let nodes: Vec<TermId> = g.node_ids().into_iter().collect();
        let batch = ctx.conforms_all(&nodes, &shape);
        for (&v, ok) in nodes.iter().zip(batch) {
            prop_assert_eq!(
                ctx.conforms(v, &shape),
                ok,
                "disagreement at {} for {}",
                g.term(v),
                shape
            );
        }
    }

    /// Batch fragment computation collects exactly the per-node triples.
    #[test]
    fn fragment_ids_batch_agrees_with_per_node(
        g in graph_strategy(12),
        shapes in prop::collection::vec(shape_strategy(), 1..3),
    ) {
        let schema = Schema::empty();
        let batch = fragment_ids(&schema, &g, &shapes);
        let per_node = fragment_ids_per_node(&schema, &g, &shapes);
        let to_graph = |ids: &shape_fragments::core::IdTriples| -> Graph {
            ids.iter().map(|&(s, p, o)| g.triple_of(s, p, o)).collect()
        };
        prop_assert_eq!(to_graph(&batch), to_graph(&per_node));
    }
}
