//! Differential property tests for the SPARQL translation (§5.1):
//! Lemma 5.1, Proposition 5.3, and Corollary 5.5 checked against the
//! native implementations on random inputs, for both evaluator
//! configurations.

mod common;

use proptest::prelude::*;
use std::collections::BTreeSet;

use common::{graph_strategy, path_strategy, shape_strategy};
use shape_fragments::core::fragment;
use shape_fragments::core::neighborhood::neighborhood_term;
use shape_fragments::core::to_sparql::{
    conformance_query, fragment_via_sparql, neighborhoods_via_sparql, path_query,
};
use shape_fragments::rdf::Term;
use shape_fragments::shacl::rpq::CompiledPath;
use shape_fragments::shacl::validator::Context;
use shape_fragments::shacl::Schema;
use shape_fragments::sparql::eval::{bindings_to_graph, eval_select, EvalConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Lemma 5.1 (1): the `(?t, ?h)` projection of `Q_E` equals `⟦E⟧^G`
    /// restricted to `N(G)`.
    #[test]
    fn path_query_reachability(
        g in graph_strategy(10),
        path in path_strategy(),
    ) {
        let q = path_query(&path);
        let rows = eval_select(&g, &q, &EvalConfig::indexed()).unwrap();
        let via_query: BTreeSet<(Term, Term)> = rows
            .iter()
            .filter_map(|b| Some((b.get("t")?.clone(), b.get("h")?.clone())))
            .collect();
        let compiled = CompiledPath::new(&path, &g);
        let mut native: BTreeSet<(Term, Term)> = BTreeSet::new();
        for s in g.node_ids() {
            for o in compiled.eval_from(&g, s) {
                native.insert((g.term(s).clone(), g.term(o).clone()));
            }
        }
        prop_assert_eq!(via_query, native, "⟦{}⟧ mismatch", path);
    }

    /// Lemma 5.1 (2): for every `(a, b)`, the `(?s, ?p, ?o)` rows of `Q_E`
    /// with `?t = a, ?h = b` equal `graph(paths(E, G, a, b))`.
    #[test]
    fn path_query_traces(
        g in graph_strategy(8),
        path in path_strategy(),
    ) {
        let q = path_query(&path);
        let rows = eval_select(&g, &q, &EvalConfig::indexed()).unwrap();
        let compiled = CompiledPath::new(&path, &g);
        // Group rows by (t, h).
        let mut grouped: std::collections::BTreeMap<(Term, Term), Vec<_>> = Default::default();
        for b in &rows {
            if let (Some(t), Some(h)) = (b.get("t"), b.get("h")) {
                grouped.entry((t.clone(), h.clone())).or_default().push(b.clone());
            }
        }
        for ((t, h), bindings) in grouped {
            let via_query = bindings_to_graph(&bindings, "s", "p", "o");
            let (Some(a), Some(b)) = (g.id_of(&t), g.id_of(&h)) else { continue };
            let traced = compiled.trace(&g, a, &BTreeSet::from([b]));
            let native = shape_fragments::core::neighborhood::materialize(
                &g,
                &traced.into_iter().collect(),
            );
            prop_assert_eq!(
                via_query, native,
                "trace mismatch for {} from {} to {}", path, t, h
            );
        }
    }

    /// `CQ_φ` returns exactly the conforming nodes of `N(G)`.
    #[test]
    fn conformance_query_agrees(
        g in graph_strategy(10),
        shape in shape_strategy(),
    ) {
        let schema = Schema::empty();
        let q = conformance_query(&schema, &shape);
        let rows = eval_select(&g, &q, &EvalConfig::indexed()).unwrap();
        let via_query: BTreeSet<Term> = rows
            .into_iter()
            .filter_map(|mut b| b.remove("v"))
            .collect();
        let mut ctx = Context::new(&schema, &g);
        let native: BTreeSet<Term> = g
            .node_ids()
            .into_iter()
            .filter(|&v| ctx.conforms(v, &shape))
            .map(|v| g.term(v).clone())
            .collect();
        prop_assert_eq!(via_query, native, "CQ mismatch for {}", shape);
    }

    /// Proposition 5.3: `Q_φ` computes the neighborhoods.
    #[test]
    fn neighborhood_query_agrees(
        g in graph_strategy(9),
        shape in shape_strategy(),
    ) {
        let schema = Schema::empty();
        let via_sparql = neighborhoods_via_sparql(&schema, &g, &shape, &EvalConfig::indexed())
            .unwrap();
        let mut ctx = Context::new(&schema, &g);
        for (node, nbh) in &via_sparql {
            prop_assert_eq!(
                nbh,
                &neighborhood_term(&mut ctx, node, &shape),
                "Q_φ mismatch at {} for {}", node, shape
            );
        }
        // Completeness: non-empty native neighborhoods all appear.
        for v in g.nodes() {
            let native = neighborhood_term(&mut ctx, v, &shape);
            if native.is_empty() {
                continue;
            }
            let found = via_sparql.iter().find(|(n, _)| n == v);
            prop_assert!(
                found.is_some_and(|(_, nbh)| nbh == &native),
                "Q_φ missing neighborhood at {} for {}", v, shape
            );
        }
    }

    /// Corollary 5.5: the fragment query agrees with the native fragment,
    /// on both evaluator configurations.
    #[test]
    fn fragment_query_agrees(
        g in graph_strategy(9),
        shapes in prop::collection::vec(shape_strategy(), 1..3),
    ) {
        let schema = Schema::empty();
        let native = fragment(&schema, &g, &shapes);
        for config in [EvalConfig::indexed(), EvalConfig::naive()] {
            let via_sparql = fragment_via_sparql(&schema, &g, &shapes, &config).unwrap();
            prop_assert_eq!(&via_sparql, &native, "Q_S mismatch ({:?})", config);
        }
    }
}
