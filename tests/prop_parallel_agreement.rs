//! Agreement between the cost-routed work-stealing parallel engines
//! (DESIGN.md §12) and the single-threaded frozen batch drivers.
//!
//! On random graphs and random nonrecursive schemas, the parallel engines
//! at 1, 2, 4 and 8 worker threads must agree **exactly** with the
//! sequential drivers:
//!
//! - `validate_batch_par` reproduces `validate_batch`'s report bit for
//!   bit — same `checked` count and the same violations in the same
//!   (definition-major, target-minor) order;
//! - `validate_extract_fragment_par` reproduces both the report and the
//!   extracted fragment of `validate_extract_fragment`;
//! - `fragment_ids_par` reproduces `fragment_ids`'s id-triple set, and
//!   the materialized parallel fragment answers the generated SPARQL
//!   fragment query with the same bindings as the sequential one.

mod common;

use proptest::prelude::*;

use common::{graph_strategy, shape_strategy};
use shape_fragments::core::to_sparql::fragment_query;
use shape_fragments::core::{
    fragment_ids, fragment_ids_par, fragment_par, validate_batch_par, validate_extract_fragment,
    validate_extract_fragment_par,
};
use shape_fragments::rdf::Term;
use shape_fragments::shacl::validator::validate_batch;
use shape_fragments::shacl::{PathExpr, Schema, Shape, ShapeDef};
use shape_fragments::sparql::eval;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn shape_name(i: usize) -> Term {
    Term::iri(format!("{}S{i}", common::NS))
}

/// Target shapes in the real-SHACL forms of §4 (plus ⊤ = "all nodes").
fn target_strategy() -> impl Strategy<Value = Shape> {
    prop_oneof![
        (0u8..6).prop_map(|i| Shape::HasValue(common::node_term(i))),
        (0u8..3).prop_map(|p| Shape::geq(1, PathExpr::Prop(common::pred(p)), Shape::True)),
        Just(Shape::True),
    ]
}

/// Random nonrecursive schemas of 1–4 definitions with forward `hasShape`
/// references (the memo-sharing case the striped memo must get right
/// across workers).
fn schema_strategy() -> impl Strategy<Value = Schema> {
    (
        prop::collection::vec((shape_strategy(), target_strategy()), 1..5),
        prop::collection::vec(any::<bool>(), 8),
    )
        .prop_map(|(parts, links)| {
            let n = parts.len();
            let defs: Vec<ShapeDef> = parts
                .into_iter()
                .enumerate()
                .map(|(i, (mut shape, target))| {
                    if i + 1 < n && links[(2 * i) % links.len()] {
                        shape = shape.and(Shape::HasShape(shape_name(i + 1)));
                    }
                    ShapeDef::new(shape_name(i), shape, target)
                })
                .collect();
            Schema::new(defs).expect("forward references only — nonrecursive")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Parallel validation reproduces the sequential batch report bit for
    /// bit at every thread count.
    #[test]
    fn parallel_validation_agrees(g in graph_strategy(14), schema in schema_strategy()) {
        let f = g.freeze();
        let sequential = validate_batch(&schema, &f);
        for threads in THREADS {
            let parallel = validate_batch_par(&schema, &f, threads);
            prop_assert_eq!(&sequential, &parallel, "threads = {}", threads);
        }
    }

    /// Parallel instrumented extraction reproduces both the report and
    /// the fragment of the sequential driver.
    #[test]
    fn parallel_extraction_agrees(g in graph_strategy(14), schema in schema_strategy()) {
        let f = g.freeze();
        let (seq_report, seq_frag) = validate_extract_fragment(&schema, &f);
        let seq_frag = seq_frag.to_graph(&f);
        for threads in THREADS {
            let (report, frag) = validate_extract_fragment_par(&schema, &f, threads);
            prop_assert_eq!(&seq_report, &report, "threads = {}", threads);
            prop_assert_eq!(&seq_frag, &frag.to_graph(&f), "threads = {}", threads);
        }
    }

    /// Parallel request-shape fragments reproduce the sequential id-triple
    /// set exactly.
    #[test]
    fn parallel_fragment_ids_agree(g in graph_strategy(14), schema in schema_strategy()) {
        let f = g.freeze();
        let shapes = schema.request_shapes();
        let sequential = fragment_ids(&schema, &f, &shapes);
        for threads in THREADS {
            let parallel = fragment_ids_par(&schema, &f, &shapes, threads);
            prop_assert_eq!(&sequential, &parallel, "threads = {}", threads);
        }
    }

    /// The materialized parallel fragment is SPARQL-indistinguishable from
    /// the sequential one: the generated fragment query returns the same
    /// bindings over both.
    #[test]
    fn parallel_fragment_sparql_agrees(g in graph_strategy(12), schema in schema_strategy()) {
        let f = g.freeze();
        let shapes = schema.request_shapes();
        let query = fragment_query(&schema, &shapes);
        let seq_frag = fragment_par(&schema, &f, &shapes, 1);
        for threads in [2, 8] {
            let par_frag = fragment_par(&schema, &f, &shapes, threads);
            prop_assert_eq!(&seq_frag, &par_frag, "threads = {}", threads);
            prop_assert_eq!(
                eval(&seq_frag, &query),
                eval(&par_frag, &query),
                "threads = {}", threads
            );
        }
    }
}
