//! Agreement between the incremental engine and from-scratch validation:
//! after any random edit script, [`IncrementalValidator`]'s maintained
//! report must be identical to [`validate_batch`] run fresh over the
//! post-edit graph — both over the `FrozenGraph + DeltaGraph` overlay it
//! owns and over a mutable [`Graph`] that replays the same edits (the two
//! backends intern new terms in the same order, so reports are comparable
//! verbatim).
//!
//! Covered per property:
//!
//! - pure additions, pure removals, mixed add/remove scripts (including
//!   add-then-remove of the same triple), and all-no-op scripts;
//! - sequential `apply` vs parallel `apply_par`;
//! - governed runs under a tiny step budget: a fault rolls back the
//!   overlay and the report, and leaves the memo *fully* cleared — never
//!   half-invalidated (every surviving entry would otherwise be allowed
//!   to contradict a from-scratch run);
//! - `compact()` mid-sequence preserves the report and subsequent edits.

mod common;

use std::sync::Arc;

use proptest::prelude::*;

use common::{graph_strategy, object_term, pred, shape_strategy};
use shape_fragments::core::{EditOp, EditScript, IncrementalValidator};
use shape_fragments::govern::{Budget, EngineError};
use shape_fragments::rdf::{Graph, Iri, Term, Triple};
use shape_fragments::shacl::validator::validate_batch;
use shape_fragments::shacl::{PathExpr, Schema, Shape, ShapeDef};

fn shape_name(i: usize) -> Term {
    Term::iri(format!("{}S{i}", common::NS))
}

/// Target shapes in the real-SHACL forms of §4 (plus ⊤ = "all nodes").
fn target_strategy() -> impl Strategy<Value = Shape> {
    prop_oneof![
        (0u8..6).prop_map(|i| Shape::HasValue(common::node_term(i))),
        (0u8..3).prop_map(|p| Shape::geq(1, PathExpr::Prop(common::pred(p)), Shape::True)),
        Just(Shape::True),
    ]
}

/// Random nonrecursive schemas of 1–4 definitions with forward `hasShape`
/// references (the memo-sharing case, and the case where impact must
/// propagate through the reference graph).
fn schema_strategy() -> impl Strategy<Value = Schema> {
    (
        prop::collection::vec((shape_strategy(), target_strategy()), 1..5),
        prop::collection::vec(any::<bool>(), 8),
    )
        .prop_map(|(parts, links)| {
            let n = parts.len();
            let defs: Vec<ShapeDef> = parts
                .into_iter()
                .enumerate()
                .map(|(i, (mut shape, target))| {
                    if i + 1 < n && links[(2 * i) % links.len()] {
                        shape = shape.and(Shape::HasShape(shape_name(i + 1)));
                    }
                    ShapeDef::new(shape_name(i), shape, target)
                })
                .collect();
            Schema::new(defs).expect("forward references only — nonrecursive")
        })
}

/// One random edit over the same small universe the graphs draw from, so
/// scripts hit existing triples (removals, re-adds) as often as new ones.
fn edit_strategy() -> impl Strategy<Value = EditOp> {
    (
        any::<bool>(),
        prop_oneof![4 => (0u8..6).prop_map(common::node_term), 1 => Just(Term::blank("b0"))],
        0u8..3,
        object_term(),
    )
        .prop_map(|(add, s, p, o)| {
            let triple = Triple::new(s, pred(p), o);
            if add {
                EditOp::Add(triple)
            } else {
                EditOp::Remove(triple)
            }
        })
}

fn script_strategy(max_ops: usize) -> impl Strategy<Value = EditScript> {
    prop::collection::vec(edit_strategy(), 0..max_ops).prop_map(EditScript::new)
}

/// Replays a script on a mutable [`Graph`] the way the overlay does:
/// last-write-wins per triple, idempotent adds and removes.
fn replay(graph: &mut Graph, script: &EditScript) {
    for op in &script.ops {
        match op {
            EditOp::Add(t) => {
                graph.insert(t.clone());
            }
            EditOp::Remove(t) => {
                graph.remove(t);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// After each of a chain of random scripts, the maintained report
    /// equals a from-scratch `validate_batch` over the overlay AND over a
    /// mutable graph replaying the same edits.
    #[test]
    fn incremental_matches_scratch_on_random_scripts(
        schema in schema_strategy(),
        g in graph_strategy(14),
        scripts in prop::collection::vec(script_strategy(8), 1..4),
    ) {
        let schema = Arc::new(schema);
        let mut mutable = g.clone();
        let mut inc = IncrementalValidator::new(Arc::clone(&schema), Arc::new(g.freeze()));
        prop_assert_eq!(inc.report(), validate_batch(&schema, &mutable));

        for script in &scripts {
            let report = inc.apply(script);
            replay(&mut mutable, script);
            // Same interning order on both backends → reports compare
            // verbatim (term ids and violation order included).
            prop_assert_eq!(&report, &validate_batch(&schema, inc.graph()));
            prop_assert_eq!(&report, &validate_batch(&schema, &mutable));
            prop_assert_eq!(&report, &inc.report());
        }
    }

    /// A script that only re-asserts present triples and retracts absent
    /// ones changes nothing: same report object, overlay still empty.
    #[test]
    fn noop_scripts_leave_everything_untouched(
        schema in schema_strategy(),
        g in graph_strategy(12),
        extra in prop::collection::vec(edit_strategy(), 0..6),
    ) {
        let schema = Arc::new(schema);
        let present: Vec<Triple> = g.iter().collect();
        let mut ops: Vec<EditOp> = present.iter().cloned().map(EditOp::Add).collect();
        for op in extra {
            // Keep only ops that are no-ops against `g`.
            match &op {
                EditOp::Add(t) if g.contains(t) => ops.push(op),
                EditOp::Remove(t) if !g.contains(t) => ops.push(op),
                _ => {}
            }
        }
        let mut inc = IncrementalValidator::new(Arc::clone(&schema), Arc::new(g.freeze()));
        let before = inc.report();
        let memo_before = inc.memo().len();
        let report = inc.apply(&EditScript::new(ops));
        prop_assert_eq!(report, before);
        prop_assert_eq!(inc.graph().delta_len(), 0);
        // A no-op batch stages nothing, so the memo is not even re-bound.
        prop_assert_eq!(inc.memo().len(), memo_before);
    }

    /// `apply_par` produces the identical report to sequential `apply`
    /// (and to from-scratch) for every thread count we run.
    #[test]
    fn parallel_apply_matches_sequential(
        schema in schema_strategy(),
        g in graph_strategy(14),
        script in script_strategy(10),
        threads in 2usize..5,
    ) {
        let schema = Arc::new(schema);
        let frozen = Arc::new(g.freeze());
        let mut seq = IncrementalValidator::new(Arc::clone(&schema), Arc::clone(&frozen));
        let mut par =
            IncrementalValidator::with_threads(Arc::clone(&schema), frozen, threads);
        let a = seq.apply(&script);
        let b = par.apply_par(&script, threads);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &validate_batch(&schema, par.graph()));
    }

    /// Governed incremental application is atomic: a budget fault rolls
    /// the overlay and report back to their pre-batch values and leaves
    /// the memo fully cleared; success matches the ungoverned run. Either
    /// way the validator stays usable and correct afterwards.
    #[test]
    fn governed_fault_is_atomic_and_memo_never_half_poisoned(
        schema in schema_strategy(),
        g in graph_strategy(12),
        script in script_strategy(8),
        steps in 0u64..40,
        threads in 1usize..4,
    ) {
        let schema = Arc::new(schema);
        let mut inc = IncrementalValidator::new(Arc::clone(&schema), Arc::new(g.freeze()));
        let before = inc.report();
        let added_before = inc.graph().added_len();
        let removed_before = inc.graph().removed_len();

        let budget = Budget::unlimited().steps(steps);
        match inc.apply_par_governed(&script, threads, budget, None) {
            Ok(report) => {
                prop_assert_eq!(&report, &validate_batch(&schema, inc.graph()));
            }
            Err(err) => {
                prop_assert!(matches!(err, EngineError::BudgetExceeded { .. }));
                // Rolled back: overlay and report as before the batch.
                prop_assert_eq!(inc.graph().added_len(), added_before);
                prop_assert_eq!(inc.graph().removed_len(), removed_before);
                prop_assert_eq!(&inc.report(), &before);
                // Never half-poisoned: after a fault the memo is empty.
                prop_assert_eq!(inc.memo().len(), 0);
            }
        }

        // The validator must remain correct after either outcome.
        let after = inc.apply(&script);
        prop_assert_eq!(&after, &validate_batch(&schema, inc.graph()));
    }

    /// Compacting between scripts is invisible: the report is preserved
    /// across `compact()` and later edits still agree with from-scratch.
    #[test]
    fn compact_is_transparent_mid_sequence(
        schema in schema_strategy(),
        g in graph_strategy(12),
        first in script_strategy(8),
        second in script_strategy(8),
    ) {
        let schema = Arc::new(schema);
        let mut inc = IncrementalValidator::new(Arc::clone(&schema), Arc::new(g.freeze()));
        let report = inc.apply(&first);
        inc.compact();
        prop_assert_eq!(inc.graph().delta_len(), 0);
        prop_assert_eq!(&report, &inc.report());
        prop_assert_eq!(&report, &validate_batch(&schema, inc.graph()));

        let report = inc.apply(&second);
        prop_assert_eq!(&report, &validate_batch(&schema, inc.graph()));
    }
}

/// Regression for containment-closure cache coherence: conformance bits
/// can be *derived* across subsumption edges (`Narrow ⊑ Wide` lets a
/// `Narrow` bit answer a `Wide` check), so invalidating only the
/// impact-routed definition's stripe would let stale copies survive in a
/// related definition's row. An edit that impact-routes to `Wide` alone
/// must also drop `Narrow`'s stripe — and must leave the unrelated
/// definition's stripe standing.
#[test]
fn stripe_invalidation_covers_containment_closure() {
    let iri = |n: &str| Iri::new(format!("{}{n}", common::NS));
    let term = |n: &str| Term::iri(format!("{}{n}", common::NS));
    let t = |s: &str, p: &str, o: &str| Triple::new(term(s), iri(p), term(o));

    let person = || {
        Shape::geq(
            1,
            PathExpr::prop(iri("type")),
            Shape::has_value(term("Person")),
        )
    };
    let name_or_alt = PathExpr::Alt(
        Box::new(PathExpr::prop(iri("name"))),
        Box::new(PathExpr::prop(iri("alt"))),
    );
    // Narrow ⊑ Wide (≥2 name ⊑ ≥1 name|alt); Other shares no containment
    // edge with either. Names sort Narrow < Other < Wide, so dense shape
    // ids follow that order.
    let schema = Arc::new(
        Schema::new([
            ShapeDef::new(
                term("Narrow"),
                Shape::geq(2, PathExpr::prop(iri("name")), Shape::True),
                person(),
            ),
            ShapeDef::new(
                term("Other"),
                Shape::geq(1, PathExpr::prop(iri("other")), Shape::True),
                person(),
            ),
            ShapeDef::new(
                term("Wide"),
                Shape::geq(1, name_or_alt, Shape::True),
                person(),
            ),
        ])
        .unwrap(),
    );
    let narrow = schema.name_id(&term("Narrow")).unwrap();
    let other = schema.name_id(&term("Other")).unwrap();
    let wide = schema.name_id(&term("Wide")).unwrap();

    let mut g = Graph::new();
    for triple in [
        t("alice", "type", "Person"),
        t("alice", "name", "n1"),
        t("alice", "name", "n2"),
        t("bob", "type", "Person"),
        t("bob", "name", "n1"),
        t("carol", "type", "Person"),
        t("carol", "other", "o1"),
    ] {
        g.insert(triple);
    }

    let mut inc = IncrementalValidator::new(Arc::clone(&schema), Arc::new(g.freeze()));
    let index = inc.memo().containment().expect("index attached at seed");
    assert_eq!(index.related_closure(wide), vec![narrow, wide]);
    assert_eq!(index.related_closure(other), vec![other]);
    let (hits, misses) = inc.memo().containment_counters();
    assert!(hits + misses > 0, "seeding never consulted the index");

    let alice = inc.graph().id_of(&term("alice")).unwrap();
    assert_eq!(inc.memo().lookup(narrow, alice), Some(true));
    assert_eq!(inc.memo().lookup(wide, alice), Some(true));
    assert_eq!(inc.memo().lookup(other, alice), Some(false));

    // `alt` is readable by Wide only: Narrow and Other route Untouched,
    // so neither gets re-checked and nothing refills their stripes.
    let report = inc.apply(&EditScript::new([EditOp::Add(t("alice", "alt", "x"))]));
    assert_eq!(report, validate_batch(&schema, inc.graph()));
    assert_eq!(report, inc.report());

    // Wide was re-evaluated at alice; Narrow's bit fell with it through
    // the containment closure; Other's survived untouched.
    assert_eq!(inc.memo().lookup(wide, alice), Some(true));
    assert_eq!(
        inc.memo().lookup(narrow, alice),
        None,
        "containment-related stripe must be dropped with the impacted one"
    );
    assert_eq!(inc.memo().lookup(other, alice), Some(false));

    // The validator stays exact afterwards, including for edits that
    // re-impact the dropped definition.
    let report = inc.apply(&EditScript::new([EditOp::Remove(t("alice", "name", "n2"))]));
    assert_eq!(report, validate_batch(&schema, inc.graph()));
    assert_eq!(inc.memo().lookup(narrow, alice), Some(false));
}
