//! Agreement between the incremental engine and from-scratch validation:
//! after any random edit script, [`IncrementalValidator`]'s maintained
//! report must be identical to [`validate_batch`] run fresh over the
//! post-edit graph — both over the `FrozenGraph + DeltaGraph` overlay it
//! owns and over a mutable [`Graph`] that replays the same edits (the two
//! backends intern new terms in the same order, so reports are comparable
//! verbatim).
//!
//! Covered per property:
//!
//! - pure additions, pure removals, mixed add/remove scripts (including
//!   add-then-remove of the same triple), and all-no-op scripts;
//! - sequential `apply` vs parallel `apply_par`;
//! - governed runs under a tiny step budget: a fault rolls back the
//!   overlay and the report, and leaves the memo *fully* cleared — never
//!   half-invalidated (every surviving entry would otherwise be allowed
//!   to contradict a from-scratch run);
//! - `compact()` mid-sequence preserves the report and subsequent edits.

mod common;

use std::sync::Arc;

use proptest::prelude::*;

use common::{graph_strategy, object_term, pred, shape_strategy};
use shape_fragments::core::{EditOp, EditScript, IncrementalValidator};
use shape_fragments::govern::{Budget, EngineError};
use shape_fragments::rdf::{Graph, Term, Triple};
use shape_fragments::shacl::validator::validate_batch;
use shape_fragments::shacl::{PathExpr, Schema, Shape, ShapeDef};

fn shape_name(i: usize) -> Term {
    Term::iri(format!("{}S{i}", common::NS))
}

/// Target shapes in the real-SHACL forms of §4 (plus ⊤ = "all nodes").
fn target_strategy() -> impl Strategy<Value = Shape> {
    prop_oneof![
        (0u8..6).prop_map(|i| Shape::HasValue(common::node_term(i))),
        (0u8..3).prop_map(|p| Shape::geq(1, PathExpr::Prop(common::pred(p)), Shape::True)),
        Just(Shape::True),
    ]
}

/// Random nonrecursive schemas of 1–4 definitions with forward `hasShape`
/// references (the memo-sharing case, and the case where impact must
/// propagate through the reference graph).
fn schema_strategy() -> impl Strategy<Value = Schema> {
    (
        prop::collection::vec((shape_strategy(), target_strategy()), 1..5),
        prop::collection::vec(any::<bool>(), 8),
    )
        .prop_map(|(parts, links)| {
            let n = parts.len();
            let defs: Vec<ShapeDef> = parts
                .into_iter()
                .enumerate()
                .map(|(i, (mut shape, target))| {
                    if i + 1 < n && links[(2 * i) % links.len()] {
                        shape = shape.and(Shape::HasShape(shape_name(i + 1)));
                    }
                    ShapeDef::new(shape_name(i), shape, target)
                })
                .collect();
            Schema::new(defs).expect("forward references only — nonrecursive")
        })
}

/// One random edit over the same small universe the graphs draw from, so
/// scripts hit existing triples (removals, re-adds) as often as new ones.
fn edit_strategy() -> impl Strategy<Value = EditOp> {
    (
        any::<bool>(),
        prop_oneof![4 => (0u8..6).prop_map(common::node_term), 1 => Just(Term::blank("b0"))],
        0u8..3,
        object_term(),
    )
        .prop_map(|(add, s, p, o)| {
            let triple = Triple::new(s, pred(p), o);
            if add {
                EditOp::Add(triple)
            } else {
                EditOp::Remove(triple)
            }
        })
}

fn script_strategy(max_ops: usize) -> impl Strategy<Value = EditScript> {
    prop::collection::vec(edit_strategy(), 0..max_ops).prop_map(EditScript::new)
}

/// Replays a script on a mutable [`Graph`] the way the overlay does:
/// last-write-wins per triple, idempotent adds and removes.
fn replay(graph: &mut Graph, script: &EditScript) {
    for op in &script.ops {
        match op {
            EditOp::Add(t) => {
                graph.insert(t.clone());
            }
            EditOp::Remove(t) => {
                graph.remove(t);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// After each of a chain of random scripts, the maintained report
    /// equals a from-scratch `validate_batch` over the overlay AND over a
    /// mutable graph replaying the same edits.
    #[test]
    fn incremental_matches_scratch_on_random_scripts(
        schema in schema_strategy(),
        g in graph_strategy(14),
        scripts in prop::collection::vec(script_strategy(8), 1..4),
    ) {
        let schema = Arc::new(schema);
        let mut mutable = g.clone();
        let mut inc = IncrementalValidator::new(Arc::clone(&schema), Arc::new(g.freeze()));
        prop_assert_eq!(inc.report(), validate_batch(&schema, &mutable));

        for script in &scripts {
            let report = inc.apply(script);
            replay(&mut mutable, script);
            // Same interning order on both backends → reports compare
            // verbatim (term ids and violation order included).
            prop_assert_eq!(&report, &validate_batch(&schema, inc.graph()));
            prop_assert_eq!(&report, &validate_batch(&schema, &mutable));
            prop_assert_eq!(&report, &inc.report());
        }
    }

    /// A script that only re-asserts present triples and retracts absent
    /// ones changes nothing: same report object, overlay still empty.
    #[test]
    fn noop_scripts_leave_everything_untouched(
        schema in schema_strategy(),
        g in graph_strategy(12),
        extra in prop::collection::vec(edit_strategy(), 0..6),
    ) {
        let schema = Arc::new(schema);
        let present: Vec<Triple> = g.iter().collect();
        let mut ops: Vec<EditOp> = present.iter().cloned().map(EditOp::Add).collect();
        for op in extra {
            // Keep only ops that are no-ops against `g`.
            match &op {
                EditOp::Add(t) if g.contains(t) => ops.push(op),
                EditOp::Remove(t) if !g.contains(t) => ops.push(op),
                _ => {}
            }
        }
        let mut inc = IncrementalValidator::new(Arc::clone(&schema), Arc::new(g.freeze()));
        let before = inc.report();
        let memo_before = inc.memo().len();
        let report = inc.apply(&EditScript::new(ops));
        prop_assert_eq!(report, before);
        prop_assert_eq!(inc.graph().delta_len(), 0);
        // A no-op batch stages nothing, so the memo is not even re-bound.
        prop_assert_eq!(inc.memo().len(), memo_before);
    }

    /// `apply_par` produces the identical report to sequential `apply`
    /// (and to from-scratch) for every thread count we run.
    #[test]
    fn parallel_apply_matches_sequential(
        schema in schema_strategy(),
        g in graph_strategy(14),
        script in script_strategy(10),
        threads in 2usize..5,
    ) {
        let schema = Arc::new(schema);
        let frozen = Arc::new(g.freeze());
        let mut seq = IncrementalValidator::new(Arc::clone(&schema), Arc::clone(&frozen));
        let mut par =
            IncrementalValidator::with_threads(Arc::clone(&schema), frozen, threads);
        let a = seq.apply(&script);
        let b = par.apply_par(&script, threads);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &validate_batch(&schema, par.graph()));
    }

    /// Governed incremental application is atomic: a budget fault rolls
    /// the overlay and report back to their pre-batch values and leaves
    /// the memo fully cleared; success matches the ungoverned run. Either
    /// way the validator stays usable and correct afterwards.
    #[test]
    fn governed_fault_is_atomic_and_memo_never_half_poisoned(
        schema in schema_strategy(),
        g in graph_strategy(12),
        script in script_strategy(8),
        steps in 0u64..40,
        threads in 1usize..4,
    ) {
        let schema = Arc::new(schema);
        let mut inc = IncrementalValidator::new(Arc::clone(&schema), Arc::new(g.freeze()));
        let before = inc.report();
        let added_before = inc.graph().added_len();
        let removed_before = inc.graph().removed_len();

        let budget = Budget::unlimited().steps(steps);
        match inc.apply_par_governed(&script, threads, budget, None) {
            Ok(report) => {
                prop_assert_eq!(&report, &validate_batch(&schema, inc.graph()));
            }
            Err(err) => {
                prop_assert!(matches!(err, EngineError::BudgetExceeded { .. }));
                // Rolled back: overlay and report as before the batch.
                prop_assert_eq!(inc.graph().added_len(), added_before);
                prop_assert_eq!(inc.graph().removed_len(), removed_before);
                prop_assert_eq!(&inc.report(), &before);
                // Never half-poisoned: after a fault the memo is empty.
                prop_assert_eq!(inc.memo().len(), 0);
            }
        }

        // The validator must remain correct after either outcome.
        let after = inc.apply(&script);
        prop_assert_eq!(&after, &validate_batch(&schema, inc.graph()));
    }

    /// Compacting between scripts is invisible: the report is preserved
    /// across `compact()` and later edits still agree with from-scratch.
    #[test]
    fn compact_is_transparent_mid_sequence(
        schema in schema_strategy(),
        g in graph_strategy(12),
        first in script_strategy(8),
        second in script_strategy(8),
    ) {
        let schema = Arc::new(schema);
        let mut inc = IncrementalValidator::new(Arc::clone(&schema), Arc::new(g.freeze()));
        let report = inc.apply(&first);
        inc.compact();
        prop_assert_eq!(inc.graph().delta_len(), 0);
        prop_assert_eq!(&report, &inc.report());
        prop_assert_eq!(&report, &validate_batch(&schema, inc.graph()));

        let report = inc.apply(&second);
        prop_assert_eq!(&report, &validate_batch(&schema, inc.graph()));
    }
}
