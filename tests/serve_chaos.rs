//! Chaos harness for `shapefrag serve`: fires malformed, truncated,
//! oversized, and slow-loris requests, deadline/budget storms, and
//! mid-request reloads at a live in-process server, then checks the
//! overload contract from DESIGN.md §13:
//!
//! 1. every observed status is one of the mapped codes
//!    (200/400/429/499/503/504 — never a raw panic or an unmapped 5xx),
//! 2. the concurrency gate drains back to zero once the storm stops
//!    (no leaked permits), and
//! 3. post-chaos requests answer *correctly* against the latest
//!    snapshot (reloads swapped atomically; no torn state).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use shape_fragments::serve::client::{self, Conn};
use shape_fragments::serve::{ServeConfig, Server, SnapshotSource};

const SHAPES: &str = r#"
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix ex: <http://example.org/> .
ex:PaperShape a sh:NodeShape ;
  sh:targetClass ex:Paper ;
  sh:property [ sh:path ex:author ; sh:minCount 1 ] .
"#;

/// Initial snapshot: one violating node.
const DATA_V1: &str = r#"
@prefix ex: <http://example.org/> .
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
ex:good rdf:type ex:Paper ; ex:author ex:ann .
ex:bad rdf:type ex:Paper .
"#;

/// Reload target: fully conforming.
const DATA_V2: &str = r#"
@prefix ex: <http://example.org/> .
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
ex:good rdf:type ex:Paper ; ex:author ex:ann .
ex:bad rdf:type ex:Paper ; ex:author ex:bob .
"#;

/// A config tuned for chaos: tiny cap and queue so shedding is easy to
/// provoke, short socket deadlines so abusive connections are reaped
/// quickly, and a small body cap so the oversize path is cheap to hit.
fn chaos_config() -> ServeConfig {
    ServeConfig {
        max_inflight: 2,
        queue_depth: 2,
        queue_wait: Duration::from_millis(25),
        max_head_bytes: 2 * 1024,
        max_body_bytes: 4 * 1024,
        read_timeout: Duration::from_millis(50),
        head_deadline: Duration::from_millis(400),
        body_deadline: Duration::from_millis(400),
        ..ServeConfig::default()
    }
}

fn boot(cfg: ServeConfig) -> Server {
    Server::start(
        cfg,
        SnapshotSource::Inline {
            shapes: SHAPES.to_string(),
            data: DATA_V1.to_string(),
        },
    )
    .expect("server boots")
}

/// Codes the server is allowed to emit, ever (DESIGN.md §13 table).
fn is_mapped(status: u16) -> bool {
    matches!(status, 200 | 400 | 429 | 499 | 503 | 504)
}

/// Pulls `"epoch":N` out of a JSON body without a JSON parser.
fn epoch_of(body: &str) -> Option<u64> {
    let tail = body.split("\"epoch\":").nth(1)?;
    let digits: String = tail.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

// ---------------------------------------------------------------------
// Individual abuse vectors
// ---------------------------------------------------------------------

#[test]
fn malformed_request_line_gets_400_and_close() {
    let server = boot(chaos_config());
    let mut conn = Conn::connect(server.addr, Duration::from_secs(5)).unwrap();
    conn.write_raw(b"NONSENSE\r\n\r\n").unwrap();
    let resp = conn.read_response().expect("a 400 before close");
    assert_eq!(resp.status, 400);
    // The connection is closed after a malformed request; the next read
    // must not produce another response.
    assert!(conn.read_response().is_err(), "conn must be closed");
    // The server itself is unharmed.
    let health = client::request(server.addr, "GET", "/healthz", &[], b"").unwrap();
    assert_eq!(health.status, 200);
}

#[test]
fn oversized_head_and_body_get_400() {
    let server = boot(chaos_config());

    // Head larger than max_head_bytes (2 KiB here).
    let mut conn = Conn::connect(server.addr, Duration::from_secs(5)).unwrap();
    let huge = format!(
        "GET /healthz HTTP/1.1\r\nx-pad: {}\r\n\r\n",
        "y".repeat(4 * 1024)
    );
    conn.write_raw(huge.as_bytes()).unwrap();
    let resp = conn.read_response().expect("a 400 for an oversized head");
    assert_eq!(resp.status, 400);

    // Declared body larger than max_body_bytes (4 KiB here). The server
    // must reject on the declared length without reading it all.
    let mut conn = Conn::connect(server.addr, Duration::from_secs(5)).unwrap();
    conn.write_raw(b"POST /validate HTTP/1.1\r\ncontent-length: 1000000\r\n\r\n")
        .unwrap();
    let resp = conn.read_response().expect("a 400 for an oversized body");
    assert_eq!(resp.status, 400);

    let health = client::request(server.addr, "GET", "/healthz", &[], b"").unwrap();
    assert_eq!(health.status, 200);
}

#[test]
fn truncated_request_is_dropped_silently() {
    let server = boot(chaos_config());
    // Write half a request head and hang up.
    let mut conn = Conn::connect(server.addr, Duration::from_secs(5)).unwrap();
    conn.write_raw(b"POST /validate HTTP/1.1\r\ncontent-le")
        .unwrap();
    drop(conn);
    // Write a complete head and half the promised body, then hang up.
    let mut conn = Conn::connect(server.addr, Duration::from_secs(5)).unwrap();
    conn.write_raw(b"POST /validate HTTP/1.1\r\ncontent-length: 100\r\n\r\nhalf")
        .unwrap();
    drop(conn);
    // Neither may wedge the server or leak a permit.
    let deadline = Instant::now() + Duration::from_secs(3);
    while server.state().gate.inflight() > 0 {
        assert!(Instant::now() < deadline, "gate did not drain");
        thread::sleep(Duration::from_millis(10));
    }
    let v = client::request(server.addr, "POST", "/validate", &[], b"").unwrap();
    assert_eq!(v.status, 200);
}

#[test]
fn slow_loris_connections_are_reaped() {
    let server = boot(chaos_config());
    let addr = server.addr;

    // Four connections dribbling one byte at a time, far slower than the
    // 400ms head deadline allows.
    let reaped: Vec<bool> = thread::scope(|scope| {
        (0..4)
            .map(|_| {
                scope.spawn(move || {
                    let mut conn = Conn::connect(addr, Duration::from_secs(5)).unwrap();
                    for _ in 0..20 {
                        if conn.write_raw(b"G").is_err() {
                            return true; // server already hung up
                        }
                        thread::sleep(Duration::from_millis(100));
                    }
                    // If writes kept succeeding into a dead socket (possible
                    // before the OS notices), the read must fail.
                    conn.read_response().is_err()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    assert!(
        reaped.iter().all(|&r| r),
        "slow-loris connections were not reaped: {reaped:?}"
    );

    // The loris never held an execution permit, and the server answers.
    assert_eq!(server.state().gate.inflight(), 0);
    let v = client::request(addr, "POST", "/validate", &[], b"").unwrap();
    assert_eq!(v.status, 200);
}

#[test]
fn budget_and_deadline_headers_fault_cleanly_under_repetition() {
    let server = boot(chaos_config());
    for _ in 0..10 {
        let r = client::request(
            server.addr,
            "POST",
            "/validate",
            &[("x-budget-steps", "1")],
            b"",
        )
        .unwrap();
        assert_eq!(r.status, 429);
        assert_eq!(r.header("retry-after"), Some("1"));

        let r = client::request(
            server.addr,
            "POST",
            "/validate",
            &[("x-deadline-ms", "0")],
            b"",
        )
        .unwrap();
        assert_eq!(r.status, 504);
    }
    assert_eq!(server.state().gate.inflight(), 0);
}

// ---------------------------------------------------------------------
// The combined storm
// ---------------------------------------------------------------------

/// Everything at once: normal traffic, deadline storms, budget storms,
/// malformed frames, oversize bodies, truncated writes — while the main
/// thread reloads the snapshot concurrently. Asserts the three contract
/// points (mapped codes only, gate drains to zero, post-chaos answers
/// are correct against the newest snapshot).
#[test]
fn chaos_storm_holds_the_overload_contract() {
    let server = boot(chaos_config());
    let addr = server.addr;
    let stop = Arc::new(AtomicBool::new(false));
    let unmapped = Arc::new(Mutex::new(Vec::<u16>::new()));
    let completed = Arc::new(AtomicU64::new(0));

    let storm = Duration::from_millis(900);
    let workers = 8;

    thread::scope(|scope| {
        for w in 0..workers {
            let stop = Arc::clone(&stop);
            let unmapped = Arc::clone(&unmapped);
            let completed = Arc::clone(&completed);
            scope.spawn(move || {
                let mut seq = w;
                while !stop.load(Ordering::Relaxed) {
                    seq += 1;
                    let got: Option<u16> = match seq % 6 {
                        // Plain validation of the resident snapshot.
                        0 => client::request(addr, "POST", "/validate", &[], b"")
                            .ok()
                            .map(|r| r.status),
                        // Deadline storm: an already-expired engine deadline.
                        1 => client::request(
                            addr,
                            "POST",
                            "/validate",
                            &[("x-deadline-ms", "0")],
                            b"",
                        )
                        .ok()
                        .map(|r| r.status),
                        // Budget storm.
                        2 => client::request(
                            addr,
                            "POST",
                            "/validate",
                            &[("x-budget-steps", "1")],
                            b"",
                        )
                        .ok()
                        .map(|r| r.status),
                        // Malformed frame.
                        3 => Conn::connect(addr, Duration::from_secs(5))
                            .ok()
                            .and_then(|mut c| {
                                c.write_raw(b"%%%garbage%%%\r\n\r\n").ok()?;
                                c.read_response().ok()
                            })
                            .map(|r| r.status),
                        // Oversize body by declared length.
                        4 => Conn::connect(addr, Duration::from_secs(5))
                            .ok()
                            .and_then(|mut c| {
                                c.write_raw(
                                    b"POST /validate HTTP/1.1\r\ncontent-length: 999999\r\n\r\n",
                                )
                                .ok()?;
                                c.read_response().ok()
                            })
                            .map(|r| r.status),
                        // Truncated request: half a head, then hang up.
                        _ => {
                            if let Ok(mut c) = Conn::connect(addr, Duration::from_secs(5)) {
                                let _ = c.write_raw(b"POST /validate HTTP/1.1\r\nx-tr");
                            }
                            None
                        }
                    };
                    if let Some(status) = got {
                        completed.fetch_add(1, Ordering::Relaxed);
                        if !is_mapped(status) {
                            unmapped.lock().unwrap().push(status);
                        }
                    }
                }
            });
        }

        // Main thread: reload the snapshot mid-request, repeatedly, while
        // the storm runs. Alternate between the two datasets.
        let reload_deadline = Instant::now() + storm;
        let mut flips = 0u64;
        while Instant::now() < reload_deadline {
            let body = if flips.is_multiple_of(2) {
                DATA_V2
            } else {
                DATA_V1
            };
            let r = client::request(addr, "POST", "/reload", &[], body.as_bytes())
                .expect("reload answers");
            // Reloads themselves may be shed under load (they run through
            // the same gate), but may not fail any other way.
            assert!(
                r.status == 200 || r.status == 503,
                "reload returned {}",
                r.status
            );
            if r.status == 200 {
                flips += 1;
            }
            thread::sleep(Duration::from_millis(20));
        }
        assert!(flips > 0, "not a single reload landed during the storm");
        stop.store(true, Ordering::Relaxed);
    });

    // (1) Only mapped codes, and the storm actually exercised the server.
    let unmapped = unmapped.lock().unwrap();
    assert!(unmapped.is_empty(), "unmapped status codes: {unmapped:?}");
    assert!(
        completed.load(Ordering::Relaxed) > 50,
        "storm barely ran ({} responses)",
        completed.load(Ordering::Relaxed)
    );

    // (2) The gate drains to zero once the abuse stops.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.state().gate.inflight() > 0 || server.state().gate.waiting() > 0 {
        assert!(
            Instant::now() < deadline,
            "gate failed to drain: inflight={} waiting={}",
            server.state().gate.inflight(),
            server.state().gate.waiting()
        );
        thread::sleep(Duration::from_millis(10));
    }

    // (3) Post-chaos: land one final reload to a known state and check
    // the answer is correct *and* computed against that newest epoch.
    let r = client::request(addr, "POST", "/reload", &[], DATA_V2.as_bytes()).unwrap();
    assert_eq!(r.status, 200);
    let final_epoch = epoch_of(&r.text()).expect("reload reports its epoch");

    let v = client::request(addr, "POST", "/validate", &[], b"").unwrap();
    assert_eq!(v.status, 200);
    let body = v.text();
    assert_eq!(
        epoch_of(&body),
        Some(final_epoch),
        "validation ran against a stale snapshot: {body}"
    );
    assert!(
        body.contains("\"conforms\":true"),
        "wrong verdict for the final snapshot: {body}"
    );

    // Clean shutdown with nothing left in flight.
    let remaining = server.shutdown(Duration::from_secs(2));
    assert_eq!(remaining, 0, "requests still in flight after drain");
}

/// Containment reuse at the service boundary: a fragment request for a
/// definition that duplicates another's `(shape, target)` is answered
/// byte-for-byte from the cache, `/validate` skips the duplicated
/// definition's evaluation, and the three new `/stats` counters move —
/// all without changing any report or fragment bytes.
#[test]
fn fragment_cache_and_validate_reuse_across_equivalent_shapes() {
    let shapes = r#"
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix ex: <http://example.org/> .
ex:AuthorShape a sh:NodeShape ;
  sh:targetClass ex:Paper ;
  sh:property [ sh:path ex:author ; sh:minCount 1 ] .
ex:AuthorShapeDup a sh:NodeShape ;
  sh:targetClass ex:Paper ;
  sh:property [ sh:path ex:author ; sh:minCount 1 ] .
"#;
    let server = Server::start(
        ServeConfig::default(),
        SnapshotSource::Inline {
            shapes: shapes.to_string(),
            data: DATA_V1.to_string(),
        },
    )
    .expect("server boots");
    let addr = server.addr;

    // First single-shape fragment computes and caches under the
    // representative; the duplicate is then served from the same bytes.
    let a = client::request(
        addr,
        "POST",
        "/fragment",
        &[],
        b"<http://example.org/AuthorShape>",
    )
    .unwrap();
    assert_eq!(a.status, 200);
    assert_eq!(a.header("x-fragment-cache"), Some("miss"));
    let b = client::request(
        addr,
        "POST",
        "/fragment",
        &[],
        b"<http://example.org/AuthorShapeDup>",
    )
    .unwrap();
    assert_eq!(b.status, 200);
    assert_eq!(b.header("x-fragment-cache"), Some("hit"));
    assert_eq!(a.body, b.body, "cached fragment bytes must be identical");

    // /validate runs the containment driver: the duplicate definition is
    // settled from derived bits, and the report is the usual one.
    let v = client::request(addr, "POST", "/validate", &[], b"").unwrap();
    assert_eq!(v.status, 200);
    let body = v.text();
    assert!(
        body.contains("\"conforms\":false"),
        "report changed: {body}"
    );
    assert!(
        body.contains("AuthorShapeDup"),
        "duplicate def must still report its violations: {body}"
    );

    let stats = client::request(addr, "GET", "/stats", &[], b"")
        .unwrap()
        .text();
    let field = |name: &str| -> u64 {
        stats
            .split(&format!("\"{name}\":"))
            .nth(1)
            .and_then(|t| t.split(|c: char| !c.is_ascii_digit()).next()?.parse().ok())
            .unwrap_or_else(|| panic!("missing {name} in {stats}"))
    };
    assert!(field("containment_hits") >= 1, "no hits counted: {stats}");
    assert!(
        field("containment_misses") >= 1,
        "no misses counted: {stats}"
    );
    // The duplicated node shape is skipped, and so is one of the two
    // synthesized (equivalent) property-shape definitions.
    assert!(
        field("shapes_skipped") >= 1,
        "duplicate def not skipped: {stats}"
    );

    // An epoch move invalidates the cache: same request misses again.
    let r = client::request(addr, "POST", "/reload", &[], DATA_V2.as_bytes()).unwrap();
    assert_eq!(r.status, 200);
    let c = client::request(
        addr,
        "POST",
        "/fragment",
        &[],
        b"<http://example.org/AuthorShape>",
    )
    .unwrap();
    assert_eq!(c.status, 200);
    assert_eq!(c.header("x-fragment-cache"), Some("miss"));

    let remaining = server.shutdown(Duration::from_secs(2));
    assert_eq!(remaining, 0);
}
