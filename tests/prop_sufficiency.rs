//! Property tests for the **Sufficiency Theorem** (Theorem 3.4):
//!
//! > If `G, v ⊨ φ` then `G', v ⊨ φ` for any RDF graph `G'` with
//! > `B(v, G, φ) ⊆ G' ⊆ G`.
//!
//! Random graphs × random shapes (full grammar, all quantifiers, negation,
//! equality/disjointness, closedness, lessThan, uniqueLang) are checked at
//! the neighborhood itself and at randomly grown intermediate subgraphs.

mod common;

use proptest::prelude::*;

use common::{focus_candidates, graph_strategy, shape_strategy};
use shape_fragments::core::neighborhood::{
    conforms_and_collect, neighborhood_nnf_ids, neighborhood_term,
};
use shape_fragments::rdf::{Graph, Term, Triple};
use shape_fragments::shacl::validator::Context;
use shape_fragments::shacl::Nnf;
use shape_fragments::shacl::{PathExpr, Schema, Shape, ShapeDef};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The core Sufficiency statement evaluated at `G' = B(v, G, φ)` and at
    /// a random `G'` between the neighborhood and the full graph.
    #[test]
    fn sufficiency(
        g in graph_strategy(14),
        shape in shape_strategy(),
        extra_bits in prop::collection::vec(any::<bool>(), 14),
    ) {
        let schema = Schema::empty();
        let mut ctx = Context::new(&schema, &g);
        for v in focus_candidates(&g) {
            if !ctx.conforms_term(&v, &shape) {
                continue;
            }
            let b = neighborhood_term(&mut ctx, &v, &shape);
            prop_assert!(b.is_subgraph_of(&g), "neighborhood must be a subgraph");

            // G' = B itself.
            check_still_conforms(&b, &v, &shape)?;

            // G' = B plus a random subset of the remaining triples.
            let mut grown = b.clone();
            let rest: Vec<Triple> = g.iter().filter(|t| !b.contains(t)).collect();
            for (i, t) in rest.into_iter().enumerate() {
                if *extra_bits.get(i % extra_bits.len().max(1)).unwrap_or(&false) {
                    grown.insert(t);
                }
            }
            check_still_conforms(&grown, &v, &shape)?;
        }
    }

    /// Why-not provenance (Remark 3.7): if `v ⊭ φ` then `v ⊨ ¬φ`, and
    /// Sufficiency applies to `B(v, G, ¬φ)`.
    #[test]
    fn why_not_sufficiency(
        g in graph_strategy(12),
        shape in shape_strategy(),
    ) {
        let schema = Schema::empty();
        let mut ctx = Context::new(&schema, &g);
        let negated = shape.clone().not();
        for v in focus_candidates(&g) {
            if ctx.conforms_term(&v, &shape) {
                continue;
            }
            prop_assert!(ctx.conforms_term(&v, &negated), "¬φ must hold when φ fails");
            let b = neighborhood_term(&mut ctx, &v, &negated);
            prop_assert!(b.is_subgraph_of(&g));
            check_still_conforms(&b, &v, &negated)?;
        }
    }

    /// Neighborhoods stay within the focus node's connected component
    /// (Remark 3.8).
    #[test]
    fn neighborhood_within_connected_component(
        g in graph_strategy(12),
        shape in shape_strategy(),
    ) {
        let schema = Schema::empty();
        let mut ctx = Context::new(&schema, &g);
        for v in focus_candidates(&g) {
            if g.id_of(&v).is_none() {
                continue;
            }
            let b = neighborhood_term(&mut ctx, &v, &shape);
            if b.is_empty() {
                continue;
            }
            let component = connected_component(&g, &v);
            for t in b.iter() {
                prop_assert!(
                    component.contains(&t.subject) && component.contains(&t.object),
                    "triple {t} outside the component of {v}"
                );
            }
        }
    }

    /// Sufficiency also holds for shapes that dereference named schema
    /// definitions (Table 2 rules 1–2), including under negation.
    #[test]
    fn sufficiency_with_schema_references(
        g in graph_strategy(12),
        definition in shape_strategy(),
        negate in any::<bool>(),
        quantify in any::<bool>(),
    ) {
        let name = Term::iri(format!("{}Def", common::NS));
        let schema = Schema::new([ShapeDef::new(
            name.clone(),
            definition,
            Shape::False,
        )]).expect("nonrecursive");
        let mut probe = Shape::HasShape(name);
        if negate {
            probe = probe.not();
        }
        if quantify {
            probe = Shape::geq(1, PathExpr::Prop(common::pred(0)), probe);
        }
        let mut ctx = Context::new(&schema, &g);
        for v in focus_candidates(&g) {
            if !ctx.conforms_term(&v, &probe) {
                continue;
            }
            let b = neighborhood_term(&mut ctx, &v, &probe);
            prop_assert!(b.is_subgraph_of(&g));
            let mut b2 = b.clone();
            b2.intern(&v);
            let mut bctx = Context::new(&schema, &b2);
            prop_assert!(
                bctx.conforms_term(&v, &probe),
                "Sufficiency via hasShape violated for {} / {}",
                v,
                &probe
            );
        }
    }

    /// The single-pass instrumented traversal (§5.2) agrees with the
    /// two-pass definition (Table 1 + Table 2) on verdict and evidence.
    #[test]
    fn single_pass_instrumentation_agrees(
        g in graph_strategy(12),
        shape in shape_strategy(),
    ) {
        let schema = Schema::empty();
        let mut ctx = Context::new(&schema, &g);
        let nnf = Nnf::from_shape(&shape);
        let mut journal = Vec::new();
        for v in g.node_ids() {
            journal.clear();
            let single = conforms_and_collect(&mut ctx, v, &nnf, &mut journal);
            prop_assert_eq!(single, ctx.conforms_nnf(v, &nnf), "verdict for {}", &shape);
            let got: std::collections::BTreeSet<_> = journal.iter().copied().collect();
            let expected: std::collections::BTreeSet<_> =
                neighborhood_nnf_ids(&mut ctx, v, &nnf).into_iter().collect();
            prop_assert_eq!(got, expected, "evidence for {}", &shape);
        }
    }

    /// Determinism: the neighborhood is a function of (v, G, φ).
    #[test]
    fn neighborhood_deterministic(
        g in graph_strategy(10),
        shape in shape_strategy(),
    ) {
        let schema = Schema::empty();
        for v in focus_candidates(&g) {
            let mut ctx1 = Context::new(&schema, &g);
            let mut ctx2 = Context::new(&schema, &g);
            prop_assert_eq!(
                neighborhood_term(&mut ctx1, &v, &shape),
                neighborhood_term(&mut ctx2, &v, &shape)
            );
        }
    }
}

fn check_still_conforms(
    sub: &Graph,
    v: &shape_fragments::rdf::Term,
    shape: &shape_fragments::shacl::Shape,
) -> Result<(), TestCaseError> {
    let schema = Schema::empty();
    let mut ctx = Context::new(&schema, sub);
    prop_assert!(
        ctx.conforms_term(v, shape),
        "Sufficiency violated for {v} / {shape} in subgraph:\n{sub:?}"
    );
    Ok(())
}

/// Undirected connected component of `v` in `g` (as terms).
fn connected_component(
    g: &Graph,
    v: &shape_fragments::rdf::Term,
) -> std::collections::HashSet<shape_fragments::rdf::Term> {
    let mut seen = std::collections::HashSet::new();
    let mut stack = vec![v.clone()];
    while let Some(node) = stack.pop() {
        if !seen.insert(node.clone()) {
            continue;
        }
        for t in g.triples_matching(Some(&node), None, None) {
            stack.push(t.object);
        }
        for t in g.triples_matching(None, None, Some(&node)) {
            stack.push(t.subject);
        }
    }
    seen
}
