//! Focused edge cases across the stack: empty graphs, absent properties,
//! self-loops, duplicate-free set semantics, count boundaries, and blank
//! nodes in every position the data model allows.

use shape_fragments::core::{explain, fragment, neighborhood_term};
use shape_fragments::rdf::{Graph, Iri, Literal, Term, Triple};
use shape_fragments::shacl::shape::PathOrId;
use shape_fragments::shacl::validator::{validate, Context};
use shape_fragments::shacl::{PathExpr, Schema, Shape, ShapeDef};

fn iri(n: &str) -> Iri {
    Iri::new(format!("http://e/{n}"))
}

fn term(n: &str) -> Term {
    Term::iri(format!("http://e/{n}"))
}

fn t(s: &str, p: &str, o: &str) -> Triple {
    Triple::new(term(s), iri(p), term(o))
}

fn p(n: &str) -> PathExpr {
    PathExpr::Prop(iri(n))
}

fn conforms(g: &Graph, node: &str, shape: &Shape) -> bool {
    let schema = Schema::empty();
    let mut ctx = Context::new(&schema, g);
    ctx.conforms_term(&term(node), shape)
}

#[test]
fn empty_graph_semantics() {
    let g = Graph::new();
    // Vacuous universals and ≤-shapes hold; existentials fail.
    assert!(conforms(&g, "ghost", &Shape::for_all(p("p"), Shape::False)));
    assert!(conforms(&g, "ghost", &Shape::leq(0, p("p"), Shape::True)));
    assert!(!conforms(&g, "ghost", &Shape::geq(1, p("p"), Shape::True)));
    // eq between two absent properties holds (∅ = ∅); disj holds too.
    assert!(conforms(
        &g,
        "ghost",
        &Shape::Eq(PathOrId::Path(p("a")), iri("b"))
    ));
    assert!(conforms(
        &g,
        "ghost",
        &Shape::Disj(PathOrId::Path(p("a")), iri("b"))
    ));
    // closed(∅) holds on a node without triples.
    assert!(conforms(&g, "ghost", &Shape::Closed(Default::default())));
    // Validation of any schema over the empty graph conforms (no targets).
    let schema = Schema::new([ShapeDef::new(
        term("S"),
        Shape::False,
        Shape::geq(1, p("p"), Shape::True),
    )])
    .unwrap();
    assert!(validate(&schema, &g).conforms());
    // And every fragment is empty.
    assert!(fragment(&Schema::empty(), &g, &[Shape::True]).is_empty());
}

#[test]
fn eq_id_requires_exactly_the_self_loop() {
    // No p-edges at all: ⟦p⟧(v) = ∅ ≠ {v}.
    let g = Graph::from_triples([t("v", "q", "x")]);
    assert!(!conforms(&g, "v", &Shape::Eq(PathOrId::Id, iri("p"))));
    // Self-loop plus another edge: {v, w} ≠ {v}.
    let g = Graph::from_triples([t("v", "p", "v"), t("v", "p", "w")]);
    assert!(!conforms(&g, "v", &Shape::Eq(PathOrId::Id, iri("p"))));
    // Exactly the self-loop.
    let g = Graph::from_triples([t("v", "p", "v")]);
    assert!(conforms(&g, "v", &Shape::Eq(PathOrId::Id, iri("p"))));
}

#[test]
fn count_boundaries() {
    let mut g = Graph::new();
    for i in 0..5 {
        g.insert(t("v", "p", &format!("o{i}")));
    }
    for (n, geq_ok, leq_ok) in [
        (0u32, true, false),
        (4, true, false),
        (5, true, true),
        (6, false, true),
    ] {
        assert_eq!(
            conforms(&g, "v", &Shape::geq(n, p("p"), Shape::True)),
            geq_ok,
            "≥{n}"
        );
        assert_eq!(
            conforms(&g, "v", &Shape::leq(n, p("p"), Shape::True)),
            leq_ok,
            "≤{n}"
        );
    }
}

#[test]
fn path_endpoints_are_sets_not_bags() {
    // Two parallel routes to the same endpoint count once for ≥2.
    let g = Graph::from_triples([
        t("v", "a", "m1"),
        t("v", "a", "m2"),
        t("m1", "b", "end"),
        t("m2", "b", "end"),
    ]);
    let two_step = p("a").then(p("b"));
    assert!(conforms(
        &g,
        "v",
        &Shape::geq(1, two_step.clone(), Shape::True)
    ));
    assert!(!conforms(&g, "v", &Shape::geq(2, two_step, Shape::True)));
}

#[test]
fn blank_nodes_everywhere() {
    let b1 = Term::blank("x");
    let b2 = Term::blank("y");
    let g = Graph::from_triples([
        Triple::new(b1.clone(), iri("p"), b2.clone()),
        Triple::new(b2.clone(), iri("q"), Term::Literal(Literal::integer(3))),
    ]);
    let schema = Schema::empty();
    let mut ctx = Context::new(&schema, &g);
    let shape = Shape::geq(1, p("p"), Shape::geq(1, p("q"), Shape::True));
    assert!(ctx.conforms_term(&b1, &shape));
    let nbh = neighborhood_term(&mut ctx, &b1, &shape);
    assert_eq!(nbh.len(), 2);
    // Blank-node shape names work too.
    let blank_schema =
        Schema::new([ShapeDef::new(Term::blank("shapeName"), shape, Shape::False)]).unwrap();
    let mut bctx = Context::new(&blank_schema, &g);
    assert!(bctx.conforms_term(&b1, &Shape::HasShape(Term::blank("shapeName"))));
}

#[test]
fn literal_focus_nodes() {
    // Literals can be focus nodes (e.g. endpoints of quantifier recursion).
    let five = Term::Literal(Literal::integer(5));
    let g = Graph::from_triples([Triple::new(term("v"), iri("p"), five.clone())]);
    let schema = Schema::empty();
    let mut ctx = Context::new(&schema, &g);
    // The literal conforms to value tests…
    assert!(ctx.conforms_term(
        &five,
        &Shape::Test(shape_fragments::shacl::node_test::NodeTest::MinInclusive(
            Literal::integer(5)
        )),
    ));
    // …has no outgoing edges, so closed(∅) holds and ≥1 anything fails.
    assert!(ctx.conforms_term(&five, &Shape::Closed(Default::default())));
    assert!(!ctx.conforms_term(&five, &Shape::geq(1, p("q"), Shape::True)));
}

#[test]
fn why_not_on_conjunction_pinpoints_failing_conjunct() {
    let g = Graph::from_triples([t("v", "a", "x"), t("v", "b", "y"), t("v", "b", "z")]);
    // v satisfies ≥1 a.⊤ but violates ≤1 b.⊤.
    let shape = Shape::geq(1, p("a"), Shape::True).and(Shape::leq(1, p("b"), Shape::True));
    let e = explain(&Schema::empty(), &g, &term("v"), &shape);
    assert!(!e.conforms());
    // ¬(φ₁ ∧ φ₂) = ¬φ₁ ∨ ¬φ₂; only the second disjunct holds, so the
    // evidence is the two b-edges — the a-edge is irrelevant.
    assert_eq!(
        e.subgraph(),
        &Graph::from_triples([t("v", "b", "y"), t("v", "b", "z")])
    );
}

#[test]
fn deeply_nested_shape_terminates() {
    // A 12-level nesting of quantifiers over a chain graph.
    let mut g = Graph::new();
    for i in 0..14 {
        g.insert(t(&format!("n{i}"), "next", &format!("n{}", i + 1)));
    }
    let mut shape = Shape::True;
    for _ in 0..12 {
        shape = Shape::geq(1, p("next"), shape);
    }
    assert!(conforms(&g, "n0", &shape));
    assert!(!conforms(&g, "n5", &shape)); // chain too short from n5
                                          // The neighborhood traces the whole used chain.
    let schema = Schema::empty();
    let mut ctx = Context::new(&schema, &g);
    let nbh = neighborhood_term(&mut ctx, &term("n0"), &shape);
    assert_eq!(nbh.len(), 12);
}

#[test]
fn star_path_shape_over_cycle() {
    let g = Graph::from_triples([t("a", "p", "b"), t("b", "p", "a")]);
    // Everything reachable via p* from a is {a, b}.
    let shape = Shape::leq(2, p("p").star(), Shape::True);
    assert!(conforms(&g, "a", &shape));
    let tight = Shape::leq(1, p("p").star(), Shape::True);
    assert!(!conforms(&g, "a", &tight));
    // Neighborhood of ∀p*.⊤ traces both cycle edges.
    let schema = Schema::empty();
    let mut ctx = Context::new(&schema, &g);
    let nbh = neighborhood_term(
        &mut ctx,
        &term("a"),
        &Shape::for_all(p("p").star(), Shape::True),
    );
    assert_eq!(nbh, g);
}

#[test]
fn schema_shadowing_is_rejected_but_lookup_is_safe() {
    // Two shapes may reference a common third; lookups of undefined names
    // stay ⊤ even deep in recursion.
    let schema = Schema::new([
        ShapeDef::new(
            term("A"),
            Shape::geq(1, p("x"), Shape::HasShape(term("Common"))),
            Shape::False,
        ),
        ShapeDef::new(
            term("B"),
            Shape::for_all(p("x"), Shape::HasShape(term("Common"))),
            Shape::False,
        ),
    ])
    .unwrap();
    let g = Graph::from_triples([t("v", "x", "w")]);
    let mut ctx = Context::new(&schema, &g);
    // Common is undefined → ⊤ → both shapes reduce to plain quantifiers.
    assert!(ctx.conforms_term(&term("v"), &Shape::HasShape(term("A"))));
    assert!(ctx.conforms_term(&term("v"), &Shape::HasShape(term("B"))));
}
