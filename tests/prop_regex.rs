//! Property tests for the built-in regex engine behind `sh:pattern`.

use proptest::prelude::*;

use shape_fragments::shacl::regex::Pattern;

fn escape_regex(s: &str) -> String {
    let mut out = String::new();
    for c in s.chars() {
        if "\\^$.|?*+()[]{}".contains(c) {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Compiling arbitrary pattern text never panics (it may error), and a
    /// successfully compiled pattern never panics while matching.
    #[test]
    fn compile_and_match_total(
        pattern in "[ -~]{0,16}",
        input in "[ -~]{0,24}",
    ) {
        if let Ok(p) = Pattern::compile(&pattern, "") {
            let _ = p.is_match(&input);
        }
    }

    /// An escaped literal pattern behaves like substring search.
    #[test]
    fn escaped_literal_is_substring_search(
        needle in "[a-zA-Z0-9 ]{1,8}",
        haystack in "[a-zA-Z0-9 ]{0,24}",
    ) {
        let p = Pattern::compile(&escape_regex(&needle), "").unwrap();
        prop_assert_eq!(p.is_match(&haystack), haystack.contains(&needle));
    }

    /// Fully anchored escaped literals behave like equality.
    #[test]
    fn anchored_literal_is_equality(
        a in "[a-z]{0,8}",
        b in "[a-z]{0,8}",
    ) {
        let p = Pattern::compile(&format!("^{}$", escape_regex(&a)), "").unwrap();
        prop_assert_eq!(p.is_match(&b), a == b);
    }

    /// `^[c]+$` matches exactly the nonempty strings over the class.
    #[test]
    fn class_plus_semantics(input in "[a-c]{0,10}", other in "[d-z]{1,5}") {
        let p = Pattern::compile("^[a-c]+$", "").unwrap();
        prop_assert_eq!(p.is_match(&input), !input.is_empty());
        let extended = format!("{input}{other}");
        prop_assert!(!p.is_match(&extended));
    }

    /// Case-insensitive matching equals matching the lowercased input.
    #[test]
    fn case_insensitive_consistency(
        needle in "[a-z]{1,6}",
        input in "[a-zA-Z]{0,16}",
    ) {
        let ci = Pattern::compile(&needle, "i").unwrap();
        let cs = Pattern::compile(&needle, "").unwrap();
        prop_assert_eq!(ci.is_match(&input), cs.is_match(&input.to_lowercase()));
    }

    /// Bounded repetition agrees with unrolled alternatives.
    #[test]
    fn bounded_repetition(n in 0usize..6) {
        let p = Pattern::compile("^a{2,4}$", "").unwrap();
        let input = "a".repeat(n);
        prop_assert_eq!(p.is_match(&input), (2..=4).contains(&n));
    }
}
