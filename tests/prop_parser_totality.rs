//! Totality fuzzing: every parser in the workspace must return a proper
//! error (never panic) on arbitrary input, including inputs that start out
//! as valid documents and get mangled.

mod common;

use proptest::prelude::*;

use shape_fragments::govern::{Budget, ExecCtx};
use shape_fragments::rdf::{ntriples, turtle};
use shape_fragments::shacl::parser::parse_shapes_turtle;
use shape_fragments::shacl::regex::Pattern;
use shape_fragments::sparql::parser::parse_select;
use shape_fragments::sparql::{eval_select_governed, EvalConfig};

const VALID_TURTLE: &str = r#"
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix ex: <http://e/> .
ex:S a sh:NodeShape ; sh:targetClass ex:T ;
  sh:property [ sh:path ex:p ; sh:minCount 1 ; sh:pattern "^a+$" ] ;
  sh:or ( ex:A ex:B ) .
"#;

const VALID_SPARQL: &str = "PREFIX ex: <http://e/>\nSELECT DISTINCT ?s WHERE { \
    { ?s ex:p/ex:q* ?o . FILTER (?o != ex:x && strlen(str(?o)) > 2) } \
    UNION { ?s !(ex:p|ex:q) ?o } OPTIONAL { ?o ex:r ?z } }";

const VALID_NTRIPLES: &str = "<http://e/a> <http://e/p> <http://e/b> .\n\
<http://e/b> <http://e/p> \"lit\"@en .\n\
<http://e/c> <http://e/q> \"3\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n";

/// Deletes, duplicates, or replaces one character.
fn mangle(text: &str, pos: usize, mode: u8, replacement: char) -> String {
    let chars: Vec<char> = text.chars().collect();
    if chars.is_empty() {
        return String::new();
    }
    let pos = pos % chars.len();
    let mut out = chars.clone();
    match mode % 3 {
        0 => {
            out.remove(pos);
        }
        1 => out.insert(pos, replacement),
        _ => out[pos] = replacement,
    }
    out.into_iter().collect()
}

/// Byte-level mangling: deletes, inserts, or overwrites a raw byte, then
/// re-interprets the buffer lossily as UTF-8. This reaches byte sequences
/// the char-based [`mangle`] never produces (split multibyte sequences,
/// interior NULs, stray continuation bytes).
fn mangle_bytes(text: &str, pos: usize, mode: u8, byte: u8) -> String {
    let mut bytes = text.as_bytes().to_vec();
    if bytes.is_empty() {
        return String::new();
    }
    let pos = pos % bytes.len();
    match mode % 3 {
        0 => {
            bytes.remove(pos);
        }
        1 => bytes.insert(pos, byte),
        _ => bytes[pos] = byte,
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn turtle_parser_total(input in "[ -~\\n]{0,120}") {
        let _ = turtle::parse(&input);
    }

    #[test]
    fn ntriples_parser_total(input in "[ -~\\n]{0,120}") {
        let _ = ntriples::parse(&input);
    }

    #[test]
    fn sparql_parser_total(input in "[ -~\\n]{0,120}") {
        let _ = parse_select(&input);
    }

    #[test]
    fn shapes_graph_parser_total(input in "[ -~\\n]{0,120}") {
        let _ = parse_shapes_turtle(&input);
    }

    #[test]
    fn regex_compiler_total(input in "[ -~]{0,40}") {
        let _ = Pattern::compile(&input, "i");
    }

    /// Mutations of a valid shapes document never panic the full pipeline.
    #[test]
    fn mangled_shapes_graph_total(pos in 0usize..400, mode in 0u8..3, c in any::<char>()) {
        let mangled = mangle(VALID_TURTLE, pos, mode, c);
        let _ = parse_shapes_turtle(&mangled);
    }

    /// Mutations of a valid query never panic the SPARQL parser, and when
    /// they still parse, evaluation on a small graph never panics either.
    /// Evaluation runs under a per-case step cap so that a mutation which
    /// happens to produce an expensive query terminates with a structured
    /// error instead of hanging the fuzz run.
    #[test]
    fn mangled_sparql_total(pos in 0usize..200, mode in 0u8..3, c in any::<char>()) {
        let mangled = mangle(VALID_SPARQL, pos, mode, c);
        if let Ok(query) = parse_select(&mangled) {
            let g = turtle::parse("@prefix ex: <http://e/> . ex:a ex:p ex:b . ex:b ex:q ex:c .")
                .unwrap();
            let exec = ExecCtx::with_budget(Budget::unlimited().steps(50_000));
            let _ = eval_select_governed(&g, &query, &EvalConfig::indexed(), &exec);
        }
    }

    /// Byte-level mutations of a valid Turtle document never panic the
    /// strict parser, and the lossy loader stays total on the same inputs.
    #[test]
    fn byte_mangled_turtle_total(pos in 0usize..400, mode in 0u8..3, b in any::<u8>()) {
        let mangled = mangle_bytes(VALID_TURTLE, pos, mode, b);
        let _ = turtle::parse(&mangled);
        let _ = turtle::parse_lossy(&mangled);
        let _ = parse_shapes_turtle(&mangled);
    }

    /// Byte-level mutations of valid N-Triples never panic, and for every
    /// mutation the lossy loader recovers at least the untouched lines
    /// (three lines, at most one damaged → at least two triples).
    #[test]
    fn byte_mangled_ntriples_total(pos in 0usize..200, mode in 0u8..3, b in any::<u8>()) {
        let mangled = mangle_bytes(VALID_NTRIPLES, pos, mode, b);
        let _ = ntriples::parse(&mangled);
        let load = ntriples::parse_lossy(&mangled);
        prop_assert_eq!(load.diagnostics.len(), load.statements_skipped);
        // One mutated byte damages at most two adjacent lines (a deleted
        // newline merges two statements), so of the three triples at least
        // one always survives.
        prop_assert!(!load.graph.is_empty());
    }

    /// Byte-level mutations of a valid query: parse is total, and surviving
    /// queries evaluate under a step cap without panicking.
    #[test]
    fn byte_mangled_sparql_total(pos in 0usize..200, mode in 0u8..3, b in any::<u8>()) {
        let mangled = mangle_bytes(VALID_SPARQL, pos, mode, b);
        if let Ok(query) = parse_select(&mangled) {
            let g = turtle::parse("@prefix ex: <http://e/> . ex:a ex:p ex:b . ex:b ex:q ex:c .")
                .unwrap();
            let exec = ExecCtx::with_budget(Budget::unlimited().steps(50_000));
            let _ = eval_select_governed(&g, &query, &EvalConfig::indexed(), &exec);
        }
    }

    /// The lossy loaders are total on arbitrary input and never report a
    /// diagnostic without a skipped statement (and vice versa).
    #[test]
    fn lossy_loaders_total(input in "[ -~\\n]{0,120}") {
        let t = turtle::parse_lossy(&input);
        prop_assert_eq!(t.diagnostics.len(), t.statements_skipped);
        let n = ntriples::parse_lossy(&input);
        prop_assert_eq!(n.diagnostics.len(), n.statements_skipped);
    }
}
