//! Totality fuzzing: every parser in the workspace must return a proper
//! error (never panic) on arbitrary input, including inputs that start out
//! as valid documents and get mangled.

mod common;

use proptest::prelude::*;

use shape_fragments::rdf::{ntriples, turtle};
use shape_fragments::shacl::parser::parse_shapes_turtle;
use shape_fragments::shacl::regex::Pattern;
use shape_fragments::sparql::parser::parse_select;

const VALID_TURTLE: &str = r#"
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix ex: <http://e/> .
ex:S a sh:NodeShape ; sh:targetClass ex:T ;
  sh:property [ sh:path ex:p ; sh:minCount 1 ; sh:pattern "^a+$" ] ;
  sh:or ( ex:A ex:B ) .
"#;

const VALID_SPARQL: &str = "PREFIX ex: <http://e/>\nSELECT DISTINCT ?s WHERE { \
    { ?s ex:p/ex:q* ?o . FILTER (?o != ex:x && strlen(str(?o)) > 2) } \
    UNION { ?s !(ex:p|ex:q) ?o } OPTIONAL { ?o ex:r ?z } }";

/// Deletes, duplicates, or replaces one character.
fn mangle(text: &str, pos: usize, mode: u8, replacement: char) -> String {
    let chars: Vec<char> = text.chars().collect();
    if chars.is_empty() {
        return String::new();
    }
    let pos = pos % chars.len();
    let mut out = chars.clone();
    match mode % 3 {
        0 => {
            out.remove(pos);
        }
        1 => out.insert(pos, replacement),
        _ => out[pos] = replacement,
    }
    out.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn turtle_parser_total(input in "[ -~\\n]{0,120}") {
        let _ = turtle::parse(&input);
    }

    #[test]
    fn ntriples_parser_total(input in "[ -~\\n]{0,120}") {
        let _ = ntriples::parse(&input);
    }

    #[test]
    fn sparql_parser_total(input in "[ -~\\n]{0,120}") {
        let _ = parse_select(&input);
    }

    #[test]
    fn shapes_graph_parser_total(input in "[ -~\\n]{0,120}") {
        let _ = parse_shapes_turtle(&input);
    }

    #[test]
    fn regex_compiler_total(input in "[ -~]{0,40}") {
        let _ = Pattern::compile(&input, "i");
    }

    /// Mutations of a valid shapes document never panic the full pipeline.
    #[test]
    fn mangled_shapes_graph_total(pos in 0usize..400, mode in 0u8..3, c in any::<char>()) {
        let mangled = mangle(VALID_TURTLE, pos, mode, c);
        let _ = parse_shapes_turtle(&mangled);
    }

    /// Mutations of a valid query never panic the SPARQL parser, and when
    /// they still parse, evaluation on a small graph never panics either.
    #[test]
    fn mangled_sparql_total(pos in 0usize..200, mode in 0u8..3, c in any::<char>()) {
        let mangled = mangle(VALID_SPARQL, pos, mode, c);
        if let Ok(query) = parse_select(&mangled) {
            let g = turtle::parse("@prefix ex: <http://e/> . ex:a ex:p ex:b . ex:b ex:q ex:c .")
                .unwrap();
            let _ = shape_fragments::sparql::eval(&g, &query);
        }
    }
}
