//! Soundness of the syntactic containment checker and of subsumption-keyed
//! memo reuse.
//!
//! The checker is deliberately incomplete (it may answer "don't know" on
//! contained pairs) but must never be unsound: whenever it claims
//! `subsumes(φ, ψ)`, every φ-conformant node must be ψ-conformant on every
//! graph — checked here over random shapes, random reference-carrying
//! schemas, and both graph backends (mutable [`Graph`] and the frozen CSR
//! snapshot). Independently, validation with an attached containment index
//! (derived memo bits, covered-definition skipping) must be bit-identical
//! to plain batch validation — the index may only save work, never change
//! an answer.

mod common;

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use common::{graph_strategy, shape_strategy};
use shape_fragments::analyze::{subsumes, ContainmentMatrix};
use shape_fragments::rdf::Term;
use shape_fragments::shacl::validator::{
    validate_batch, validate_batch_containment, ConformanceMemo, Context,
};
use shape_fragments::shacl::{Nnf, PathExpr, Schema, Shape, ShapeDef};

fn shape_name(i: usize) -> Term {
    Term::iri(format!("{}S{i}", common::NS))
}

/// Target shapes in the real-SHACL forms of §4 (plus ⊤ = "all nodes").
fn target_strategy() -> impl Strategy<Value = Shape> {
    prop_oneof![
        (0u8..6).prop_map(|i| Shape::HasValue(common::node_term(i))),
        (0u8..3).prop_map(|p| Shape::geq(1, PathExpr::Prop(common::pred(p)), Shape::True)),
        Just(Shape::True),
    ]
}

/// Random nonrecursive schemas of 1–4 definitions with forward `hasShape`
/// references, so coinductive name-pair rules and reference unfolding are
/// exercised too.
fn schema_strategy() -> impl Strategy<Value = Schema> {
    (
        prop::collection::vec((shape_strategy(), target_strategy()), 1..5),
        prop::collection::vec(any::<bool>(), 8),
    )
        .prop_map(|(parts, links)| {
            let n = parts.len();
            let defs: Vec<ShapeDef> = parts
                .into_iter()
                .enumerate()
                .map(|(i, (mut shape, target))| {
                    if i + 1 < n && links[(2 * i) % links.len()] {
                        shape = shape.and(Shape::HasShape(shape_name(i + 1)));
                    }
                    ShapeDef::new(shape_name(i), shape, target)
                })
                .collect();
            Schema::new(defs).expect("forward references only — nonrecursive")
        })
}

/// Per-definition conformance of every node in the graph, keyed by
/// definition name, computed through the named (`hasShape`) path so it is
/// exactly what the memo stores.
fn conformance_by_name<G: shape_fragments::rdf::access::GraphAccess>(
    schema: &Schema,
    graph: &G,
) -> (usize, BTreeMap<Term, Vec<bool>>) {
    let mut ctx = Context::with_memo(schema, graph, Arc::new(ConformanceMemo::new()));
    let nodes: Vec<_> = ctx.target_nodes(&Shape::True).into_iter().collect();
    let mut by_name = BTreeMap::new();
    for def in schema.iter() {
        let bits = ctx.conforms_all(&nodes, &Shape::HasShape(def.name.clone()));
        by_name.insert(def.name.clone(), bits);
    }
    (nodes.len(), by_name)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Pairwise soundness on bare shapes: if the checker derives φ ⊑ ψ,
    /// then on every node of every graph, φ-conformance implies
    /// ψ-conformance — on both backends.
    #[test]
    fn subsumption_implies_conformance_implication(
        g in graph_strategy(14),
        phi in shape_strategy(),
        psi in shape_strategy(),
    ) {
        let nphi = Nnf::from_shape(&phi);
        let npsi = Nnf::from_shape(&psi);
        if !subsumes(&[], &nphi, &npsi) {
            return Ok(()); // "don't know" claims nothing
        }
        let defs = vec![
            ShapeDef::new(shape_name(0), phi, Shape::True),
            ShapeDef::new(shape_name(1), psi, Shape::True),
        ];
        let schema = Schema::new(defs).expect("two independent defs");
        let f = g.freeze();
        for backend in [
            conformance_by_name(&schema, &g),
            conformance_by_name(&schema, &f),
        ] {
            let (n, by_name) = backend;
            let a = &by_name[&shape_name(0)];
            let b = &by_name[&shape_name(1)];
            for i in 0..n {
                prop_assert!(
                    !a[i] || b[i],
                    "claimed φ ⊑ ψ but node {i} conforms to φ and not ψ"
                );
            }
        }
    }

    /// Schema-level soundness: every edge of the containment matrix (over
    /// definitions with `hasShape` references) is a true conformance
    /// implication on every node, on both backends.
    #[test]
    fn matrix_edges_are_sound(
        g in graph_strategy(14),
        schema in schema_strategy(),
    ) {
        let matrix = ContainmentMatrix::of_schema(&schema);
        if matrix.edges.is_empty() {
            return Ok(());
        }
        let f = g.freeze();
        for backend in [
            conformance_by_name(&schema, &g),
            conformance_by_name(&schema, &f),
        ] {
            let (n, by_name) = backend;
            for &(a, b) in &matrix.edges {
                let sub = &by_name[&matrix.names[a as usize]];
                let sup = &by_name[&matrix.names[b as usize]];
                for i in 0..n {
                    prop_assert!(
                        !sub[i] || sup[i],
                        "matrix edge {} ⊑ {} refuted on node {i}",
                        matrix.names[a as usize],
                        matrix.names[b as usize],
                    );
                }
            }
        }
    }

    /// Subsumption-keyed reuse never changes an answer: batch validation
    /// with an attached containment index is bit-identical to the plain
    /// driver — same violations, same order, same checked count — on both
    /// backends.
    #[test]
    fn cached_reports_are_bit_identical(
        g in graph_strategy(14),
        schema in schema_strategy(),
    ) {
        let index = Arc::new(ContainmentMatrix::of_schema(&schema).to_index(&schema));
        let f = g.freeze();

        let plain = validate_batch(&schema, &g);
        let memo = Arc::new(ConformanceMemo::new());
        memo.attach_containment(Arc::clone(&index));
        let (assisted, _skipped) = validate_batch_containment(&schema, &g, memo);
        prop_assert_eq!(plain, assisted);

        let plain = validate_batch(&schema, &f);
        let memo = Arc::new(ConformanceMemo::new());
        memo.attach_containment(Arc::clone(&index));
        let (assisted, _skipped) = validate_batch_containment(&schema, &f, memo);
        prop_assert_eq!(plain, assisted);
    }
}
