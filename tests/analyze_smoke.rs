//! Analyze-smoke: the static analyzer must pass the repository's own
//! workload schemas with no deny-level finding (run by CI as a lint over
//! the shapes the benchmark suite validates), and the `shapefrag analyze`
//! subcommand must expose the same verdict through its exit code.

use std::process::Command;

use shape_fragments::analyze::{analyze_defs, has_deny};
use shape_fragments::workloads::shapes57::benchmark_shapes;

#[test]
fn benchmark_shapes_have_no_deny_findings() {
    let defs = benchmark_shapes();
    let diags = analyze_defs(&defs, None);
    assert!(
        !has_deny(&diags),
        "deny-level findings in the benchmark schema: {diags:?}"
    );
}

#[test]
fn analyze_subcommand_smoke() {
    let dir = std::env::temp_dir().join(format!("shapefrag-analyze-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let clean = dir.join("clean.ttl");
    std::fs::write(
        &clean,
        "@prefix sh: <http://www.w3.org/ns/shacl#> .\n\
         @prefix ex: <http://example.org/> .\n\
         ex:S a sh:NodeShape ; sh:targetClass ex:T ;\n\
         \x20 sh:property [ sh:path ex:p ; sh:minCount 1 ] .\n",
    )
    .expect("write fixture");
    let bad = dir.join("bad.ttl");
    std::fs::write(
        &bad,
        "@prefix sh: <http://www.w3.org/ns/shacl#> .\n\
         @prefix ex: <http://example.org/> .\n\
         ex:S a sh:NodeShape ; sh:targetClass ex:T ;\n\
         \x20 sh:property [ sh:path ex:p ; sh:minCount 2 ; sh:maxCount 1 ] .\n",
    )
    .expect("write fixture");

    let ok = Command::new(env!("CARGO_BIN_EXE_shapefrag"))
        .args(["analyze", clean.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(ok.status.code(), Some(0), "clean schema → exit 0");

    let deny = Command::new(env!("CARGO_BIN_EXE_shapefrag"))
        .args(["analyze", bad.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(deny.status.code(), Some(3), "deny findings → exit 3");
    let stdout = String::from_utf8_lossy(&deny.stdout);
    assert!(stdout.contains("SF-E002"), "{stdout}");

    let json = Command::new(env!("CARGO_BIN_EXE_shapefrag"))
        .args(["analyze", bad.to_str().unwrap(), "--json"])
        .output()
        .expect("binary runs");
    assert_eq!(json.status.code(), Some(3));
    let stdout = String::from_utf8_lossy(&json.stdout);
    assert!(stdout.contains("\"diagnostics\""), "{stdout}");
    assert!(stdout.contains("\"denials\""), "{stdout}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// `analyze --containment` over the full 57-shape benchmark suite: the
/// matrix build must stay fast enough for a CI smoke (the binary runs
/// under CI's hard timeout), exit clean, and the containment section must
/// be present in both text and JSON output.
#[test]
fn analyze_containment_on_benchmark_suite() {
    use shape_fragments::shacl::{schema_to_turtle, Schema};

    let dir = std::env::temp_dir().join(format!(
        "shapefrag-containment-smoke-{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let shapes = dir.join("shapes57.ttl");
    let schema = Schema::new(benchmark_shapes()).expect("benchmark suite is well-formed");
    std::fs::write(&shapes, schema_to_turtle(&schema)).expect("write suite");

    let text = Command::new(env!("CARGO_BIN_EXE_shapefrag"))
        .args(["analyze", shapes.to_str().unwrap(), "--containment"])
        .output()
        .expect("binary runs");
    assert_eq!(text.status.code(), Some(0), "suite is deny-free");
    let stdout = String::from_utf8_lossy(&text.stdout);
    assert!(stdout.contains("containment"), "{stdout}");

    let json = Command::new(env!("CARGO_BIN_EXE_shapefrag"))
        .args([
            "analyze",
            shapes.to_str().unwrap(),
            "--containment",
            "--json",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(json.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&json.stdout);
    assert!(stdout.contains("\"containment\""), "{stdout}");
    assert!(stdout.contains("\"fingerprint\""), "{stdout}");

    let _ = std::fs::remove_dir_all(&dir);
}
