//! End-to-end replays of the paper's running examples, driving the full
//! stack: Turtle parsing → Appendix A translation → validation →
//! neighborhoods → shape fragments → SPARQL translation.

use shape_fragments::core::to_sparql::fragment_via_sparql;
use shape_fragments::core::{explain, fragment, schema_fragment, validate_with_provenance};
use shape_fragments::rdf::{turtle, Graph, Iri, Term, Triple};
use shape_fragments::shacl::parser::parse_shapes_turtle;
use shape_fragments::shacl::validator::{validate, Context};
use shape_fragments::shacl::{PathExpr, Schema, Shape};
use shape_fragments::sparql::eval::EvalConfig;

const PREFIXES: &str = r#"
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix ex: <http://e/> .
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
"#;

fn ex(n: &str) -> Term {
    Term::iri(format!("http://e/{n}"))
}

fn exi(n: &str) -> Iri {
    Iri::new(format!("http://e/{n}"))
}

fn t(s: &str, p: &str, o: &str) -> Triple {
    Triple::new(ex(s), exi(p), ex(o))
}

/// Example 1.1–1.3: the WorkshopShape in real SHACL syntax, with the Paper
/// class target; validation, neighborhoods and the schema fragment.
#[test]
fn workshop_shape_end_to_end() {
    let schema = parse_shapes_turtle(&format!(
        "{PREFIXES}
ex:WorkshopShape a sh:NodeShape ;
  sh:targetClass ex:Paper ;
  sh:property [
    sh:path ex:author ;
    sh:qualifiedMinCount 1 ;
    sh:qualifiedValueShape [ sh:class ex:Student ] ] .
"
    ))
    .unwrap();

    let data = turtle::parse(&format!(
        "{PREFIXES}
ex:p1 rdf:type ex:Paper ; ex:author ex:alice , ex:bob .
ex:alice rdf:type ex:Student .
ex:bob rdf:type ex:Professor .
ex:venue rdf:type ex:Conference ; ex:hosts ex:p1 .
"
    ))
    .unwrap();

    // The graph validates: p1 has a student author.
    assert!(validate(&schema, &data).conforms());

    // Example 1.2: the neighborhood of p1 for the shape consists of the
    // (p1, author, alice) triple and alice's Student typing.
    let def = schema.iter().next().unwrap();
    let mut ctx = Context::new(&schema, &data);
    let v = data.id_of(&ex("p1")).unwrap();
    assert!(ctx.conforms(v, &def.shape));
    let b = shape_fragments::core::neighborhood(&mut ctx, v, &def.shape);
    assert!(b.contains(&t("p1", "author", "alice")));
    assert!(b
        .iter()
        .any(|tr| tr.subject == ex("alice") && tr.object == ex("Student")));
    assert!(!b.contains(&t("p1", "author", "bob")));

    // Example 1.3: the schema fragment contains the target triples plus the
    // neighborhoods, and (Theorem 4.1) still validates.
    let frag = schema_fragment(&schema, &data);
    assert!(frag
        .iter()
        .any(|tr| tr.subject == ex("p1") && tr.object == ex("Paper")));
    assert!(frag.contains(&t("p1", "author", "alice")));
    assert!(!frag.iter().any(|tr| tr.subject == ex("venue")));
    assert!(validate(&schema, &frag).conforms());

    // Instrumented validation produces the same fragment in one pass.
    let instrumented = validate_with_provenance(&schema, &data);
    assert!(instrumented.report.conforms());
    assert_eq!(instrumented.fragment, frag);

    // And the SPARQL route (Corollary 5.5) agrees.
    let request = schema.request_shapes();
    let via_sparql = fragment_via_sparql(&schema, &data, &request, &EvalConfig::indexed()).unwrap();
    assert_eq!(via_sparql, frag);
}

/// Example 2.2 / 3.3: the "happy at work" shape in real SHACL syntax.
#[test]
fn happy_at_work_end_to_end() {
    let schema = parse_shapes_turtle(&format!(
        "{PREFIXES}
ex:HappyAtWork a sh:NodeShape ;
  sh:targetSubjectsOf ex:friend ;
  sh:not [ sh:path ex:friend ; sh:disjoint ex:colleague ] .
"
    ))
    .unwrap();
    let data = turtle::parse(&format!(
        "{PREFIXES}
ex:v ex:friend ex:x , ex:y ; ex:colleague ex:x .
ex:w ex:friend ex:z ; ex:colleague ex:q .
"
    ))
    .unwrap();
    let report = validate(&schema, &data);
    assert_eq!(report.violations.len(), 1);
    assert_eq!(report.violations[0].focus, ex("w"));

    // The neighborhood of the conforming node pairs each common friend and
    // colleague (Example 3.3).
    let def = schema.iter().next().unwrap();
    let mut ctx = Context::new(&schema, &data);
    let v = data.id_of(&ex("v")).unwrap();
    let b = shape_fragments::core::neighborhood(&mut ctx, v, &def.shape);
    assert_eq!(
        b,
        Graph::from_triples([t("v", "friend", "x"), t("v", "colleague", "x")])
    );
}

/// Example 3.5 in full: two shape definitions over the paper graph,
/// including the negation-normal-form conversion of φ₂.
#[test]
fn example_3_5_schema() {
    let g = Graph::from_triples([
        t("p1", "type", "paper"),
        t("p1", "auth", "Anne"),
        t("p1", "auth", "Bob"),
        t("Anne", "type", "prof"),
        t("Bob", "type", "student"),
    ]);
    let tau = Shape::geq(
        1,
        PathExpr::prop(exi("type")),
        Shape::has_value(ex("paper")),
    );
    let phi1 = Shape::geq(1, PathExpr::prop(exi("auth")), Shape::True);
    // φ₂ written with negation, exercising the NNF path:
    // ≤1 auth.¬≥1 type.hasValue(student).
    let phi2 = Shape::leq(
        1,
        PathExpr::prop(exi("auth")),
        Shape::geq(
            1,
            PathExpr::prop(exi("type")),
            Shape::has_value(ex("student")),
        )
        .not(),
    );
    let schema = Schema::empty();
    let mut ctx = Context::new(&schema, &g);
    let p1 = g.id_of(&ex("p1")).unwrap();

    let b1 = shape_fragments::core::neighborhood(&mut ctx, p1, &phi1.clone().and(tau.clone()));
    assert_eq!(
        b1,
        Graph::from_triples([
            t("p1", "type", "paper"),
            t("p1", "auth", "Anne"),
            t("p1", "auth", "Bob"),
        ])
    );

    let b2 = shape_fragments::core::neighborhood(&mut ctx, p1, &phi2.clone().and(tau));
    assert_eq!(
        b2,
        Graph::from_triples([
            t("p1", "type", "paper"),
            t("p1", "auth", "Bob"),
            t("Bob", "type", "student"),
        ])
    );

    // "We are free to add (Anne, type, prof) without breaking Sufficiency."
    let mut relaxed = b2.clone();
    relaxed.insert(t("Anne", "type", "prof"));
    let mut rctx = Context::new(&schema, &relaxed);
    let p1r = relaxed.id_of(&ex("p1")).unwrap();
    assert!(rctx.conforms(p1r, &phi2));

    // "Omitting (Bob, type, student) would break Sufficiency": with a
    // truncated neighborhood B' = B \ {(Bob, type, student)}, the
    // intermediate graph G' = G \ {(Bob, type, student)} satisfies
    // B' ⊆ G' ⊆ G but p1 no longer conforms to φ₂ there (both Anne and
    // Bob then count as non-student authors).
    let mut broken = g.clone();
    broken.remove(&t("Bob", "type", "student"));
    let mut bctx = Context::new(&schema, &broken);
    let p1b = broken.id_of(&ex("p1")).unwrap();
    assert!(!bctx.conforms(p1b, &phi2));
}

/// Example 4.3: the converse of Corollary 4.2 fails for non-monotone
/// shapes.
#[test]
fn example_4_3_converse_fails() {
    let g = Graph::from_triples([t("a", "p", "b")]);
    let shape = Shape::leq(0, PathExpr::prop(exi("p")), Shape::True);
    let schema = Schema::empty();
    let frag = fragment(&schema, &g, std::slice::from_ref(&shape));
    assert!(frag.is_empty());
    let mut ctx = Context::new(&schema, &g);
    assert!(!ctx.conforms_term(&ex("a"), &shape));
    let mut fctx = Context::new(&schema, &frag);
    assert!(fctx.conforms_term(&ex("a"), &shape));
}

/// Example 5.6: the "all my friends like ping-pong" fragment via SPARQL.
#[test]
fn example_5_6_fragment_via_sparql() {
    let g = Graph::from_triples([
        t("me", "friend", "f1"),
        t("f1", "likes", "pingpong"),
        t("you", "friend", "f2"),
        t("f2", "likes", "chess"),
    ]);
    let shape = Shape::for_all(
        PathExpr::prop(exi("friend")),
        Shape::geq(
            1,
            PathExpr::prop(exi("likes")),
            Shape::has_value(ex("pingpong")),
        ),
    );
    let schema = Schema::empty();
    let native = fragment(&schema, &g, std::slice::from_ref(&shape));
    let via_sparql = fragment_via_sparql(
        &schema,
        &g,
        std::slice::from_ref(&shape),
        &EvalConfig::indexed(),
    )
    .unwrap();
    assert_eq!(native, via_sparql);
    assert!(native.contains(&t("me", "friend", "f1")));
    assert!(native.contains(&t("f1", "likes", "pingpong")));
    assert!(!native.contains(&t("you", "friend", "f2")));
}

/// Remark 3.7 via the public provenance API: why and why-not.
#[test]
fn why_and_why_not() {
    let g = Graph::from_triples([t("v", "p", "c"), t("v", "p", "d")]);
    let schema = Schema::empty();
    let all_c = Shape::for_all(PathExpr::prop(exi("p")), Shape::has_value(ex("c")));

    let e = explain(&schema, &g, &ex("v"), &all_c);
    assert!(!e.conforms());
    assert_eq!(e.subgraph(), &Graph::from_triples([t("v", "p", "d")]));

    let some_c = Shape::geq(1, PathExpr::prop(exi("p")), Shape::has_value(ex("c")));
    let e = explain(&schema, &g, &ex("v"), &some_c);
    assert!(e.conforms());
    assert_eq!(e.subgraph(), &Graph::from_triples([t("v", "p", "c")]));
}

/// The Vardi query of §5.3.2 on a miniature co-authorship graph: the
/// fragment contains exactly the authorship triples on connecting paths.
#[test]
fn vardi_miniature() {
    // papers: q1 (vardi, ann), q2 (ann, bob), q3 (zoe) — zoe is at
    // distance ∞, bob at distance 2.
    let g = Graph::from_triples([
        t("q1", "a", "vardi"),
        t("q1", "a", "ann"),
        t("q2", "a", "ann"),
        t("q2", "a", "bob"),
        t("q3", "a", "zoe"),
    ]);
    let hop = PathExpr::prop(exi("a"))
        .inverse()
        .then(PathExpr::prop(exi("a")));
    let shape = Shape::geq(1, hop.repeat(3), Shape::has_value(ex("vardi")));
    let schema = Schema::empty();
    let mut ctx = Context::new(&schema, &g);
    for node in ["vardi", "ann", "bob"] {
        assert!(
            ctx.conforms_term(&ex(node), &shape),
            "{node} within distance 3"
        );
    }
    assert!(!ctx.conforms_term(&ex("zoe"), &shape));
    let frag = fragment(&schema, &g, &[shape]);
    assert_eq!(frag.len(), 4, "all connecting authorship triples, not q3's");
    assert!(!frag.contains(&t("q3", "a", "zoe")));
}

/// The shapes graph of the README quickstart parses and behaves.
#[test]
fn nested_real_shacl_features() {
    let schema = parse_shapes_turtle(&format!(
        "{PREFIXES}
ex:PersonShape a sh:NodeShape ;
  sh:targetClass ex:Person ;
  sh:property [ sh:path ex:email ; sh:minCount 1 ;
                sh:pattern \"^[\\\\w.]+@[\\\\w.]+$\" ] ;
  sh:property [ sh:path ( ex:worksFor ex:name ) ; sh:minCount 1 ] ;
  sh:property [ sh:path [ sh:inversePath ex:manages ] ; sh:maxCount 1 ] .
"
    ))
    .unwrap();
    let ok = turtle::parse(&format!(
        "{PREFIXES}
ex:ann rdf:type ex:Person ; ex:email \"ann@corp.example\" ; ex:worksFor ex:acme .
ex:acme ex:name \"Acme\" .
ex:boss ex:manages ex:ann .
"
    ))
    .unwrap();
    assert!(validate(&schema, &ok).conforms());
    let bad = turtle::parse(&format!(
        "{PREFIXES}
ex:bob rdf:type ex:Person ; ex:email \"not an email\" ; ex:worksFor ex:acme .
ex:acme ex:name \"Acme\" .
"
    ))
    .unwrap();
    assert!(!validate(&schema, &bad).conforms());
}
