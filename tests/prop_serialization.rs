//! Round-trip property tests for the RDF serializers: any graph the data
//! model can represent must survive N-Triples and Turtle serialization,
//! including literals with awkward lexical forms.

mod common;

use proptest::prelude::*;

use shape_fragments::rdf::{ntriples, turtle, Graph, Iri, Literal, Term, Triple};

/// Terms with adversarial literal content (quotes, escapes, newlines,
/// unicode, language tags, datatypes).
fn literal_strategy() -> impl Strategy<Value = Literal> {
    prop_oneof![
        // Arbitrary text, including escapes and newlines.
        "[ -~\\n\\t\"\\\\]{0,24}".prop_map(Literal::string),
        // Unicode text.
        proptest::string::string_regex("[a-zA-Zéüλ中🦀 ]{0,12}")
            .unwrap()
            .prop_map(Literal::string),
        // Language-tagged.
        ("[a-z]{2}(-[A-Z]{2})?", "[ -~]{0,10}")
            .prop_map(|(lang, s)| { Literal::lang_string(s.replace(['\\', '"'], ""), &lang) }),
        any::<i64>().prop_map(Literal::integer),
        any::<bool>().prop_map(Literal::boolean),
        // Custom datatype.
        "[a-z]{1,8}".prop_map(|s| Literal::typed(s, Iri::new("http://dt.example.org/t"))),
    ]
}

fn term_strategy() -> impl Strategy<Value = Term> {
    prop_oneof![
        3 => "[a-z]{1,6}".prop_map(|s| Term::iri(format!("http://e/{s}"))),
        1 => "[A-Za-z][A-Za-z0-9]{0,5}".prop_map(Term::blank),
        2 => literal_strategy().prop_map(Term::Literal),
    ]
}

fn any_graph() -> impl Strategy<Value = Graph> {
    prop::collection::vec(
        (
            prop_oneof![
                3 => "[a-z]{1,6}".prop_map(|s| Term::iri(format!("http://e/{s}"))),
                1 => "[A-Za-z][A-Za-z0-9]{0,5}".prop_map(Term::blank),
            ],
            "[a-z]{1,6}".prop_map(|s| Iri::new(format!("http://e/p/{s}"))),
            term_strategy(),
        ),
        0..25,
    )
    .prop_map(|triples| {
        Graph::from_triples(triples.into_iter().map(|(s, p, o)| Triple::new(s, p, o)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// N-Triples round trip is the identity on graphs.
    #[test]
    fn ntriples_round_trip(g in any_graph()) {
        let text = ntriples::serialize(&g);
        let parsed = ntriples::parse(&text)
            .map_err(|e| TestCaseError::fail(format!("reparse failed: {e}\n{text}")))?;
        prop_assert_eq!(parsed, g);
    }

    /// Turtle round trip (without prefixes) is the identity on graphs.
    #[test]
    fn turtle_round_trip(g in any_graph()) {
        let text = turtle::serialize(&g, &[]);
        let parsed = turtle::parse(&text)
            .map_err(|e| TestCaseError::fail(format!("reparse failed: {e}\n{text}")))?;
        prop_assert_eq!(parsed, g);
    }

    /// Turtle round trip with a prefix map also preserves the graph.
    #[test]
    fn turtle_round_trip_with_prefixes(g in any_graph()) {
        let text = turtle::serialize(&g, &[("e", "http://e/"), ("p", "http://e/p/")]);
        let parsed = turtle::parse(&text)
            .map_err(|e| TestCaseError::fail(format!("reparse failed: {e}\n{text}")))?;
        prop_assert_eq!(parsed, g);
    }

    /// Serialization is deterministic.
    #[test]
    fn serialization_deterministic(g in any_graph()) {
        prop_assert_eq!(ntriples::serialize(&g), ntriples::serialize(&g));
        prop_assert_eq!(turtle::serialize(&g, &[]), turtle::serialize(&g, &[]));
    }
}
