//! A data-driven SHACL-core conformance suite in the style of the W3C
//! data-shapes test suite: each case is (shapes Turtle, data Turtle,
//! expected violating focus nodes), run through the full pipeline —
//! Turtle parsing → Appendix A translation → validation — plus a
//! provenance cross-check: every conforming target's neighborhood must be
//! sufficient in isolation.

use shape_fragments::core::neighborhood_term;
use shape_fragments::rdf::{turtle, Term};
use shape_fragments::shacl::parser::parse_shapes_turtle;
use shape_fragments::shacl::validator::{validate, Context};
use shape_fragments::shacl::Shape;

const PREFIXES: &str = r#"
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix ex: <http://e/> .
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
"#;

struct Case {
    name: &'static str,
    shapes: &'static str,
    data: &'static str,
    /// Local names (under `http://e/`) of expected violating focus nodes.
    violations: &'static [&'static str],
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "minCount",
            shapes: "ex:S a sh:NodeShape ; sh:targetClass ex:T ;
                     sh:property [ sh:path ex:p ; sh:minCount 2 ] .",
            data: "ex:a rdf:type ex:T ; ex:p ex:x , ex:y .
                   ex:b rdf:type ex:T ; ex:p ex:x .
                   ex:c rdf:type ex:T .",
            violations: &["b", "c"],
        },
        Case {
            name: "maxCount-zero",
            shapes: "ex:S a sh:NodeShape ; sh:targetClass ex:T ;
                     sh:property [ sh:path ex:deprecated ; sh:maxCount 0 ] .",
            data: "ex:a rdf:type ex:T .
                   ex:b rdf:type ex:T ; ex:deprecated ex:x .",
            violations: &["b"],
        },
        Case {
            name: "class-with-subclass",
            shapes: "ex:S a sh:NodeShape ; sh:targetSubjectsOf ex:knows ;
                     sh:property [ sh:path ex:knows ; sh:class ex:Agent ] .",
            data: "ex:Person rdfs:subClassOf ex:Agent .
                   ex:a ex:knows ex:p1 . ex:p1 rdf:type ex:Person .
                   ex:b ex:knows ex:r1 . ex:r1 rdf:type ex:Robot .",
            violations: &["b"],
        },
        Case {
            name: "datatype",
            shapes: "ex:S a sh:NodeShape ; sh:targetSubjectsOf ex:age ;
                     sh:property [ sh:path ex:age ; sh:datatype xsd:integer ] .",
            data: "ex:a ex:age 30 .
                   ex:b ex:age \"thirty\" .
                   ex:c ex:age \"30\"^^xsd:decimal .",
            violations: &["b", "c"],
        },
        Case {
            name: "nodeKind-literal",
            shapes: "ex:S a sh:NodeShape ; sh:targetSubjectsOf ex:label ;
                     sh:property [ sh:path ex:label ; sh:nodeKind sh:Literal ] .",
            data: "ex:a ex:label \"fine\" .
                   ex:b ex:label ex:notALiteral .",
            violations: &["b"],
        },
        Case {
            name: "min-max-range",
            shapes: "ex:S a sh:NodeShape ; sh:targetSubjectsOf ex:score ;
                     sh:property [ sh:path ex:score ; sh:minInclusive 0 ; sh:maxInclusive 100 ] .",
            data: "ex:a ex:score 0 . ex:b ex:score 100 . ex:c ex:score 101 . ex:d ex:score -1 .",
            violations: &["c", "d"],
        },
        Case {
            name: "pattern-with-flags",
            shapes: "ex:S a sh:NodeShape ; sh:targetSubjectsOf ex:code ;
                     sh:property [ sh:path ex:code ; sh:pattern \"^ab+c$\" ; sh:flags \"i\" ] .",
            data: "ex:a ex:code \"ABBC\" . ex:b ex:code \"ac\" .",
            violations: &["b"],
        },
        Case {
            name: "minLength-on-iri",
            shapes: "ex:S a sh:NodeShape ; sh:targetSubjectsOf ex:link ;
                     sh:property [ sh:path ex:link ; sh:minLength 9 ] .",
            data: "ex:a ex:link <http://e/xx> . ex:b ex:link \"short\" .",
            violations: &["b"],
        },
        Case {
            name: "languageIn",
            shapes: "ex:S a sh:NodeShape ; sh:targetSubjectsOf ex:title ;
                     sh:property [ sh:path ex:title ; sh:languageIn ( \"en\" \"de\" ) ] .",
            data: "ex:a ex:title \"ok\"@en-GB .
                   ex:b ex:title \"non\"@fr .
                   ex:c ex:title \"untagged\" .",
            violations: &["b", "c"],
        },
        Case {
            name: "uniqueLang",
            shapes: "ex:S a sh:NodeShape ; sh:targetSubjectsOf ex:title ;
                     sh:property [ sh:path ex:title ; sh:uniqueLang true ] .",
            data: "ex:a ex:title \"one\"@en , \"zwei\"@de .
                   ex:b ex:title \"one\"@en , \"two\"@en .",
            violations: &["b"],
        },
        Case {
            name: "equals",
            shapes: "ex:S a sh:NodeShape ; sh:targetSubjectsOf ex:given ;
                     sh:property [ sh:path ex:given ; sh:equals ex:preferred ] .",
            data: "ex:a ex:given ex:x ; ex:preferred ex:x .
                   ex:b ex:given ex:x ; ex:preferred ex:y .",
            violations: &["b"],
        },
        Case {
            name: "disjoint",
            shapes: "ex:S a sh:NodeShape ; sh:targetSubjectsOf ex:parent ;
                     sh:property [ sh:path ex:parent ; sh:disjoint ex:child ] .",
            data: "ex:a ex:parent ex:x ; ex:child ex:y .
                   ex:b ex:parent ex:x ; ex:child ex:x .",
            violations: &["b"],
        },
        Case {
            name: "lessThanOrEquals",
            shapes: "ex:S a sh:NodeShape ; sh:targetSubjectsOf ex:min ;
                     sh:property [ sh:path ex:min ; sh:lessThanOrEquals ex:max ] .",
            data: "ex:a ex:min 3 ; ex:max 3 .
                   ex:b ex:min 4 ; ex:max 3 .",
            violations: &["b"],
        },
        Case {
            name: "hasValue-existential",
            shapes: "ex:S a sh:NodeShape ; sh:targetClass ex:T ;
                     sh:property [ sh:path ex:tag ; sh:hasValue ex:required ] .",
            data: "ex:a rdf:type ex:T ; ex:tag ex:required , ex:other .
                   ex:b rdf:type ex:T ; ex:tag ex:other .",
            violations: &["b"],
        },
        Case {
            name: "in-enumeration",
            shapes: "ex:S a sh:NodeShape ; sh:targetSubjectsOf ex:status ;
                     sh:property [ sh:path ex:status ; sh:in ( ex:on ex:off ) ] .",
            data: "ex:a ex:status ex:on .
                   ex:b ex:status ex:broken .",
            violations: &["b"],
        },
        Case {
            name: "not",
            shapes: "ex:Deprecated a sh:NodeShape ;
                       sh:property [ sh:path ex:deprecated ; sh:minCount 1 ] .
                     ex:S a sh:NodeShape ; sh:targetClass ex:T ; sh:not ex:Deprecated .",
            data: "ex:a rdf:type ex:T .
                   ex:b rdf:type ex:T ; ex:deprecated true .",
            violations: &["b"],
        },
        Case {
            name: "and",
            shapes: "ex:HasP a sh:NodeShape ; sh:property [ sh:path ex:p ; sh:minCount 1 ] .
                     ex:HasQ a sh:NodeShape ; sh:property [ sh:path ex:q ; sh:minCount 1 ] .
                     ex:S a sh:NodeShape ; sh:targetClass ex:T ; sh:and ( ex:HasP ex:HasQ ) .",
            data: "ex:a rdf:type ex:T ; ex:p ex:x ; ex:q ex:y .
                   ex:b rdf:type ex:T ; ex:p ex:x .",
            violations: &["b"],
        },
        Case {
            name: "closed-with-ignored",
            shapes: "ex:S a sh:NodeShape ; sh:targetClass ex:T ;
                     sh:closed true ; sh:ignoredProperties ( rdf:type ) ;
                     sh:property [ sh:path ex:allowed ] .",
            data: "ex:a rdf:type ex:T ; ex:allowed ex:x .
                   ex:b rdf:type ex:T ; ex:allowed ex:x ; ex:extra ex:y .",
            violations: &["b"],
        },
        Case {
            name: "inverse-path",
            shapes: "ex:S a sh:NodeShape ; sh:targetClass ex:T ;
                     sh:property [ sh:path [ sh:inversePath ex:memberOf ] ; sh:minCount 1 ] .",
            data: "ex:a rdf:type ex:T . ex:m ex:memberOf ex:a .
                   ex:b rdf:type ex:T .",
            violations: &["b"],
        },
        Case {
            name: "sequence-path",
            shapes: "ex:S a sh:NodeShape ; sh:targetClass ex:T ;
                     sh:property [ sh:path ( ex:address ex:city ) ; sh:minCount 1 ] .",
            data: "ex:a rdf:type ex:T ; ex:address ex:ad1 . ex:ad1 ex:city ex:rome .
                   ex:b rdf:type ex:T ; ex:address ex:ad2 .",
            violations: &["b"],
        },
        Case {
            name: "zeroOrMore-path",
            shapes: "ex:S a sh:NodeShape ; sh:targetClass ex:T ;
                     sh:property [ sh:path [ sh:zeroOrMorePath ex:next ] ; sh:maxCount 3 ] .",
            data:
                "ex:a rdf:type ex:T ; ex:next ex:n1 . ex:n1 ex:next ex:n2 .
                   ex:b rdf:type ex:T ; ex:next ex:m1 . ex:m1 ex:next ex:m2 . ex:m2 ex:next ex:m3 .",
            violations: &["b"],
        },
        Case {
            name: "targetNode-and-targetObjectsOf",
            shapes: "ex:S1 a sh:NodeShape ; sh:targetNode ex:a ;
                       sh:property [ sh:path ex:p ; sh:minCount 1 ] .
                     ex:S2 a sh:NodeShape ; sh:targetObjectsOf ex:refersTo ;
                       sh:property [ sh:path ex:q ; sh:minCount 1 ] .",
            data: "ex:a ex:other ex:x .
                   ex:y ex:refersTo ex:z .",
            violations: &["a", "z"],
        },
        Case {
            name: "qualified-min-count",
            shapes: "ex:S a sh:NodeShape ; sh:targetClass ex:T ;
                     sh:property [ sh:path ex:member ; sh:qualifiedMinCount 2 ;
                                   sh:qualifiedValueShape [ sh:class ex:Adult ] ] .",
            data: "ex:a rdf:type ex:T ; ex:member ex:p1 , ex:p2 , ex:p3 .
                   ex:p1 rdf:type ex:Adult . ex:p2 rdf:type ex:Adult .
                   ex:b rdf:type ex:T ; ex:member ex:p1 , ex:q1 .
                   ex:q1 rdf:type ex:Child .",
            violations: &["b"],
        },
        Case {
            name: "nested-node-shape",
            shapes: "ex:CityShape a sh:NodeShape ;
                       sh:property [ sh:path ex:name ; sh:minCount 1 ] .
                     ex:S a sh:NodeShape ; sh:targetClass ex:T ;
                       sh:property [ sh:path ex:city ; sh:node ex:CityShape ] .",
            data: "ex:a rdf:type ex:T ; ex:city ex:rome . ex:rome ex:name \"Roma\" .
                   ex:b rdf:type ex:T ; ex:city ex:nowhere .",
            violations: &["b"],
        },
    ]
}

#[test]
fn shacl_core_suite() {
    for case in cases() {
        let schema = parse_shapes_turtle(&format!("{PREFIXES}\n{}", case.shapes))
            .unwrap_or_else(|e| panic!("[{}] shapes do not parse: {e}", case.name));
        let data = turtle::parse(&format!("{PREFIXES}\n{}", case.data))
            .unwrap_or_else(|e| panic!("[{}] data does not parse: {e}", case.name));
        let report = validate(&schema, &data);
        let mut got: Vec<String> = report
            .violations
            .iter()
            .map(|v| {
                v.focus
                    .to_string()
                    .trim_start_matches("<http://e/")
                    .trim_end_matches('>')
                    .to_string()
            })
            .collect();
        got.sort();
        got.dedup();
        let mut want: Vec<String> = case.violations.iter().map(|s| s.to_string()).collect();
        want.sort();
        assert_eq!(got, want, "[{}] unexpected violation set", case.name);
    }
}

/// For every case and every *conforming* target node, the extracted
/// neighborhood alone must satisfy the shape (Sufficiency at `G' = B`).
#[test]
fn suite_neighborhoods_are_sufficient() {
    for case in cases() {
        let schema =
            parse_shapes_turtle(&format!("{PREFIXES}\n{}", case.shapes)).expect("shapes parse");
        let data = turtle::parse(&format!("{PREFIXES}\n{}", case.data)).expect("data parses");
        let mut ctx = Context::new(&schema, &data);
        for def in schema.iter() {
            let targets: Vec<Term> = ctx
                .target_nodes(&def.target)
                .into_iter()
                .map(|id| data.term(id).clone())
                .collect();
            for node in targets {
                let shape = Shape::HasShape(def.name.clone());
                if !ctx.conforms_term(&node, &shape) {
                    continue;
                }
                let b = neighborhood_term(&mut ctx, &node, &shape);
                let mut b2 = b.clone();
                b2.intern(&node);
                let mut bctx = Context::new(&schema, &b2);
                assert!(
                    bctx.conforms_term(&node, &shape),
                    "[{}] neighborhood of {node} for {} is not sufficient:\n{b:?}",
                    case.name,
                    def.name
                );
            }
        }
    }
}
