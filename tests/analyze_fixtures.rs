//! Seeded-defect corpus for the static schema analyzer: one fixture per
//! diagnostic code, each asserting that `analyze_defs` reports exactly the
//! expected code (and, where the defect comes from Turtle text, that the
//! span points at the offending constraint's line).

use shape_fragments::analyze::{
    analyze_defs, codes, containment_diagnostics, has_deny, ContainmentMatrix, Diagnostic, Severity,
};
use shape_fragments::rdf::Term;
use shape_fragments::shacl::node_test::NodeTest;
use shape_fragments::shacl::parser::parse_shape_defs_turtle;
use shape_fragments::shacl::{PathExpr, Shape, ShapeDef};

const PRELUDE: &str = "@prefix sh: <http://www.w3.org/ns/shacl#> .\n\
                       @prefix ex: <http://example.org/> .\n";

fn analyze_ttl(body: &str) -> Vec<Diagnostic> {
    let text = format!("{PRELUDE}{body}");
    let (defs, spans) = parse_shape_defs_turtle(&text).expect("fixture parses");
    analyze_defs(&defs, Some(&spans))
}

fn find<'d>(diags: &'d [Diagnostic], code: &str) -> &'d Diagnostic {
    diags
        .iter()
        .find(|d| d.code == code)
        .unwrap_or_else(|| panic!("expected {code}, got: {diags:?}"))
}

/// `minCount 2 ∧ maxCount 1` on one path: the cardinality conflict
/// (E002, deny) plus the unsatisfiable-definition consequence (E001).
/// The PRELUDE is two lines, so `sh:maxCount` sits on source line 6.
#[test]
fn cardinality_conflict_is_e002_and_e001() {
    let diags = analyze_ttl(
        "ex:S a sh:NodeShape ;\n\
         \x20 sh:targetClass ex:T ;\n\
         \x20 sh:property [ sh:path ex:p ; sh:minCount 2 ;\n\
         \x20   sh:maxCount 1 ] .\n",
    );
    assert!(has_deny(&diags));
    let e2 = find(&diags, codes::CARDINALITY_CONFLICT);
    assert_eq!(e2.severity, Severity::Deny);
    assert_eq!(e2.span.expect("span").line, 6, "{e2}");
    find(&diags, codes::UNSATISFIABLE_DEF);
}

/// Two different `sh:hasValue` constants on one focus node (E003).
#[test]
fn has_value_conflict_is_e003() {
    let diags = analyze_ttl(
        "ex:S a sh:NodeShape ;\n\
         \x20 sh:targetClass ex:T ;\n\
         \x20 sh:hasValue ex:a , ex:b .\n",
    );
    let d = find(&diags, codes::HAS_VALUE_CONFLICT);
    assert_eq!(d.severity, Severity::Deny);
    assert_eq!(d.span.expect("span").line, 5, "{d}");
    find(&diags, codes::UNSATISFIABLE_DEF);
}

/// `minLength 5 ∧ maxLength 2`: no string satisfies both (E004).
#[test]
fn test_conflict_is_e004() {
    let diags = analyze_ttl(
        "ex:S a sh:NodeShape ;\n\
         \x20 sh:targetClass ex:T ;\n\
         \x20 sh:minLength 5 ;\n\
         \x20 sh:maxLength 2 .\n",
    );
    let d = find(&diags, codes::TEST_CONFLICT);
    assert_eq!(d.severity, Severity::Deny);
    assert_eq!(d.span.expect("span").line, 5, "{d}");
}

/// `sh:closed` forbidding the first step of a required path (E005). The
/// Turtle translation folds declared property paths into the allowed set,
/// so this defect is seeded through the shape API instead.
#[test]
fn closed_conflict_is_e005() {
    let name = Term::iri("http://example.org/S");
    let shape = Shape::Closed(std::iter::empty().collect()).and(Shape::geq(
        1,
        PathExpr::prop(shape_fragments::rdf::Iri::new("http://example.org/q")),
        Shape::True,
    ));
    let target = Shape::HasValue(Term::iri("http://example.org/t"));
    let defs = vec![ShapeDef::new(name, shape, target)];
    let diags = analyze_defs(&defs, None);
    let d = find(&diags, codes::CLOSED_CONFLICT);
    assert_eq!(d.severity, Severity::Deny);
    find(&diags, codes::UNSATISFIABLE_DEF);
}

/// `maxCount 0` over a nullable path: the identity pair always counts, so
/// the constraint can never hold (E006).
#[test]
fn leq_zero_nullable_is_e006() {
    let diags = analyze_ttl(
        "ex:S a sh:NodeShape ;\n\
         \x20 sh:targetClass ex:T ;\n\
         \x20 sh:property [ sh:path [ sh:zeroOrOnePath ex:p ] ;\n\
         \x20   sh:maxCount 0 ] .\n",
    );
    let d = find(&diags, codes::LEQ_ZERO_NULLABLE);
    assert_eq!(d.severity, Severity::Deny);
    assert_eq!(d.span.expect("span").line, 6, "{d}");
    find(&diags, codes::UNSATISFIABLE_DEF);
}

/// A `hasShape` cycle without negation (E020): rejected by the validation
/// engine, but the analyzer names the cycle instead of refusing to load.
#[test]
fn positive_reference_cycle_is_e020() {
    let diags = analyze_ttl(
        "ex:A a sh:NodeShape ; sh:targetClass ex:T ; sh:node ex:B .\n\
         ex:B a sh:NodeShape ; sh:node ex:A .\n",
    );
    let d = find(&diags, codes::RECURSIVE_SCHEMA);
    assert_eq!(d.severity, Severity::Deny);
    assert!(
        d.message.contains("ex") || d.message.contains("cycle"),
        "{d}"
    );
}

/// A reference cycle through `sh:not` (E021): unstratifiable even for
/// engines that admit recursion, reported instead of E020.
#[test]
fn negation_cycle_is_e021() {
    let diags = analyze_ttl(
        "ex:A a sh:NodeShape ; sh:targetClass ex:T ; sh:not ex:B .\n\
         ex:B a sh:NodeShape ; sh:node ex:A .\n",
    );
    let d = find(&diags, codes::NEGATION_CYCLE);
    assert_eq!(d.severity, Severity::Deny);
    assert!(!diags.iter().any(|d| d.code == codes::RECURSIVE_SCHEMA));
}

/// `minCount 0` is always satisfied (W001, warn-level).
#[test]
fn trivial_min_count_is_w001() {
    let diags = analyze_ttl(
        "ex:S a sh:NodeShape ;\n\
         \x20 sh:targetClass ex:T ;\n\
         \x20 sh:property [ sh:path ex:p ;\n\
         \x20   sh:minCount 0 ] .\n",
    );
    assert!(!has_deny(&diags));
    let d = find(&diags, codes::TRIVIAL_CONSTRAINT);
    assert_eq!(d.severity, Severity::Warn);
    assert_eq!(d.span.expect("span").line, 6, "{d}");
}

/// A targeted definition whose whole shape simplifies to ⊤ (W006): its
/// targets can never fail validation.
#[test]
fn always_true_targeted_def_is_w006() {
    let diags = analyze_ttl(
        "ex:S a sh:NodeShape ;\n\
         \x20 sh:targetClass ex:T ;\n\
         \x20 sh:property [ sh:path ex:p ; sh:minCount 0 ] .\n",
    );
    assert!(!has_deny(&diags));
    find(&diags, codes::ALWAYS_TRUE_DEF);
}

/// A redundant path operator `(E?)?` (W010).
#[test]
fn redundant_path_operator_is_w010() {
    let diags = analyze_ttl(
        "ex:S a sh:NodeShape ;\n\
         \x20 sh:targetClass ex:T ;\n\
         \x20 sh:property [\n\
         \x20   sh:path [ sh:zeroOrOnePath [ sh:zeroOrOnePath ex:p ] ] ;\n\
         \x20   sh:minCount 1 ] .\n",
    );
    assert!(!has_deny(&diags));
    let d = find(&diags, codes::REDUNDANT_PATH_OP);
    assert_eq!(d.severity, Severity::Warn);
}

/// A `sh:pattern` that provably matches no string (W012).
#[test]
fn dead_pattern_is_w012() {
    let diags = analyze_ttl(
        "ex:S a sh:NodeShape ;\n\
         \x20 sh:targetClass ex:T ;\n\
         \x20 sh:pattern \"a$b\" .\n",
    );
    let d = find(&diags, codes::DEAD_PATTERN);
    assert_eq!(d.severity, Severity::Warn);
    assert_eq!(d.span.expect("span").line, 5, "{d}");
}

/// An untargeted definition nothing references (W022): the validator will
/// never check it.
#[test]
fn unreachable_definition_is_w022() {
    let diags = analyze_ttl(
        "ex:S a sh:NodeShape ; sh:targetClass ex:T ; sh:minLength 1 .\n\
         ex:Helper a sh:NodeShape ; sh:minLength 2 .\n",
    );
    assert!(!has_deny(&diags));
    let d = find(&diags, codes::UNREACHABLE_DEF);
    assert_eq!(d.severity, Severity::Warn);
    assert_eq!(
        d.shape.as_ref().map(|t| t.to_string()),
        Some("<http://example.org/Helper>".to_string()),
        "{d}"
    );
}

/// A reference to a shape that has no definition (W023): the engine
/// defaults it to ⊤, which is rarely what the author meant. The Turtle
/// parser materializes a definition for every reachable shape node, so
/// this defect is seeded through the shape API.
#[test]
fn undefined_reference_is_w023() {
    let name = Term::iri("http://example.org/S");
    let shape = Shape::HasShape(Term::iri("http://example.org/Ghost"))
        .and(Shape::Test(NodeTest::MinLength(1)));
    let target = Shape::HasValue(Term::iri("http://example.org/t"));
    let defs = vec![ShapeDef::new(name, shape, target)];
    let diags = analyze_defs(&defs, None);
    assert!(!has_deny(&diags));
    let d = find(&diags, codes::UNDEFINED_REF);
    assert_eq!(d.severity, Severity::Warn);
    assert!(d.message.contains("Ghost"), "{d}");
}

/// Two definitions with syntactically different but provably equivalent
/// shape expressions (W030): conformance answers are shared, one is
/// redundant. Reported once per pair, attributed to the later name.
#[test]
fn equivalent_shapes_is_w030() {
    let p = PathExpr::prop(shape_fragments::rdf::Iri::new("http://example.org/p"));
    let target = Shape::HasValue(Term::iri("http://example.org/t"));
    let defs = vec![
        ShapeDef::new(
            Term::iri("http://example.org/A"),
            Shape::geq(1, p.clone(), Shape::True),
            target.clone(),
        ),
        ShapeDef::new(
            Term::iri("http://example.org/B"),
            // And-wrapping with ⊤ is syntactic noise; the checker sees
            // through it, so A ≡ B.
            Shape::geq(1, p, Shape::True).and(Shape::True),
            target,
        ),
    ];
    let diags = containment_diagnostics(&ContainmentMatrix::of_defs(&defs));
    let d = find(&diags, codes::EQUIVALENT_SHAPES);
    assert_eq!(d.severity, Severity::Warn);
    assert_eq!(
        diags
            .iter()
            .filter(|d| d.code == codes::EQUIVALENT_SHAPES)
            .count(),
        1,
        "one finding per equivalent pair: {diags:?}"
    );
    assert!(!diags.iter().any(|d| d.code == codes::SUBSUMED_SHAPE));
}

/// A definition properly subsumed by a weaker sibling (W031): `minCount 2`
/// implies `minCount 1` on the same path, so wherever the targets overlap
/// the checks do too.
#[test]
fn subsumed_shape_is_w031() {
    let p = PathExpr::prop(shape_fragments::rdf::Iri::new("http://example.org/p"));
    let target = Shape::HasValue(Term::iri("http://example.org/t"));
    let defs = vec![
        ShapeDef::new(
            Term::iri("http://example.org/Narrow"),
            Shape::geq(2, p.clone(), Shape::True),
            target.clone(),
        ),
        ShapeDef::new(
            Term::iri("http://example.org/Wide"),
            Shape::geq(1, p, Shape::True),
            target,
        ),
    ];
    let diags = containment_diagnostics(&ContainmentMatrix::of_defs(&defs));
    let d = find(&diags, codes::SUBSUMED_SHAPE);
    assert_eq!(d.severity, Severity::Warn);
    assert!(d.message.contains("Narrow"), "{d}");
    assert!(!diags.iter().any(|d| d.code == codes::EQUIVALENT_SHAPES));
}

/// Repo invariant: every diagnostic code is registered exactly once in the
/// `codes` module (codes are permanent API and never reused), and every
/// registered code has at least one fixture in this file exercising it.
#[test]
fn every_diagnostic_code_registered_once_with_fixture() {
    let root = env!("CARGO_MANIFEST_DIR");
    let registry = std::fs::read_to_string(format!("{root}/crates/analyze/src/diagnostic.rs"))
        .expect("diagnostic registry source readable");
    let mut consts: Vec<(String, String)> = Vec::new();
    for line in registry.lines() {
        let Some(rest) = line.trim().strip_prefix("pub const ") else {
            continue;
        };
        let Some((name, value)) = rest.split_once(':') else {
            continue;
        };
        let Some(code) = value.split('"').nth(1) else {
            continue;
        };
        consts.push((name.trim().to_string(), code.to_string()));
    }
    assert!(
        consts.len() >= 16,
        "registry scrape looks broken: {consts:?}"
    );
    let mut by_code = std::collections::BTreeMap::new();
    for (name, code) in &consts {
        assert!(
            code.len() == 7 && (code.starts_with("SF-E") || code.starts_with("SF-W")),
            "malformed code {code} ({name})"
        );
        if let Some(prev) = by_code.insert(code.clone(), name.clone()) {
            panic!("code {code} registered twice: {prev} and {name}");
        }
    }
    let fixtures = std::fs::read_to_string(format!("{root}/tests/analyze_fixtures.rs"))
        .expect("fixture source readable");
    for (name, code) in &consts {
        assert!(
            fixtures.contains(&format!("codes::{name}")),
            "{code} ({name}) has no fixture in tests/analyze_fixtures.rs"
        );
    }
}

/// A clean schema produces no findings at all.
#[test]
fn clean_schema_has_no_findings() {
    let diags = analyze_ttl(
        "ex:S a sh:NodeShape ;\n\
         \x20 sh:targetClass ex:T ;\n\
         \x20 sh:property [ sh:path ex:p ; sh:minCount 1 ; sh:maxCount 3 ] .\n",
    );
    assert!(diags.is_empty(), "{diags:?}");
}
