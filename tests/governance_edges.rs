//! Edge-case tests for the governance primitives that the server leans
//! on: [`Budget::split`] as the contract between a parent request and its
//! parallel workers, and [`ConformanceMemo`]'s lock stripes under worker
//! panics. The memo is shared across validation workers; a panicking
//! worker must neither wedge the other threads nor hide the facts it
//! already published (the compat `parking_lot` lock deliberately has no
//! poisoning, matching the real crate's semantics).

use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use parking_lot::RwLock;
use shape_fragments::govern::{Budget, BudgetKind, EngineError, ExecCtx};
use shape_fragments::rdf::TermId;
use shape_fragments::shacl::ConformanceMemo;

// ---------------------------------------------------------------------
// Budget::split across real threads
// ---------------------------------------------------------------------

/// Each worker gets an equal share and faults at *its* share, reporting
/// the split limit — the parent pool can never overspend.
#[test]
fn split_budget_partitions_steps_across_workers() {
    let parent = Budget::unlimited().steps(30);
    let share = parent.split(3);
    let faults: Vec<EngineError> = thread::scope(|scope| {
        (0..3)
            .map(|_| {
                // `Budget` is `Copy`: each worker takes its own share.
                scope.spawn(move || {
                    let ctx = ExecCtx::with_budget(share);
                    loop {
                        if let Err(e) = ctx.tick(1) {
                            return e;
                        }
                    }
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    for fault in faults {
        assert_eq!(
            fault,
            EngineError::BudgetExceeded {
                kind: BudgetKind::Steps,
                limit: 10
            }
        );
    }
}

/// Splitting below one step per worker still hands every worker a live
/// (floored) budget instead of a zero one.
#[test]
fn split_budget_floors_at_one_step_per_worker() {
    let share = Budget::unlimited().steps(2).split(64);
    assert_eq!(share.steps, Some(1));
    let ctx = ExecCtx::with_budget(share);
    ctx.tick(1).expect("the floored share allows one step");
    assert!(ctx.tick(1).is_err(), "second step must fault");
}

// ---------------------------------------------------------------------
// ConformanceMemo stripe poisoning
// ---------------------------------------------------------------------

/// Keys spread over many stripes (the memo has 64; shape index varies the
/// hash enough to hit a good fraction of them).
fn spread_keys() -> Vec<(u32, TermId)> {
    (0..256u32)
        .map(|i| (i, TermId(i.wrapping_mul(31))))
        .collect()
}

/// A worker that panics *after* publishing facts must leave them visible:
/// conformance facts are pure, so a fact published by a thread that later
/// died is exactly as valid as any other.
#[test]
fn memo_facts_survive_worker_panic() {
    let memo = Arc::new(ConformanceMemo::new());
    let keys = spread_keys();

    let writer = {
        let memo = Arc::clone(&memo);
        let keys = keys.clone();
        thread::spawn(move || {
            for &(shape, node) in &keys {
                memo.insert(shape, node, shape % 2 == 0);
            }
            panic!("worker dies after publishing");
        })
    };
    assert!(writer.join().is_err(), "worker must have panicked");

    // Every fact the dead worker published is still readable…
    for &(shape, node) in &keys {
        assert_eq!(
            memo.lookup(shape, node),
            Some(shape % 2 == 0),
            "fact ({shape}, {node:?}) lost after worker panic"
        );
    }
    assert_eq!(memo.len(), keys.len());

    // …and every stripe is still writable from a fresh thread (no
    // deadlock, no poison error surfacing as a panic).
    let memo2 = Arc::clone(&memo);
    let keys2 = keys.clone();
    let second = thread::spawn(move || {
        for &(shape, node) in &keys2 {
            memo2.insert(shape, node, true);
        }
    });
    second.join().expect("post-panic writes must succeed");
    for &(shape, node) in &keys {
        assert_eq!(memo.lookup(shape, node), Some(true));
    }
}

/// The sharper case: a thread panics while *holding* a stripe's write
/// guard (mid-insert, as far as the lock is concerned). The compat
/// `parking_lot` lock ignores poisoning, so readers and writers on other
/// threads proceed and see whatever was written before the panic.
#[test]
fn stripe_write_lock_poisoning_is_invisible_to_other_threads() {
    type Stripe = RwLock<Vec<(u32, bool)>>;
    let stripe: Arc<Stripe> = Arc::new(RwLock::new(Vec::new()));

    let poisoner = {
        let stripe = Arc::clone(&stripe);
        thread::spawn(move || {
            let mut guard = stripe.write();
            guard.push((7, true));
            panic!("die while holding the write guard");
        })
    };
    assert!(poisoner.join().is_err());

    // A reader on another thread must not block or panic, and must see
    // the pre-panic write. Run it through a channel with a timeout so a
    // regression (deadlock or propagated poison) fails fast instead of
    // hanging the suite.
    let (tx, rx) = mpsc::channel();
    let reader = {
        let stripe = Arc::clone(&stripe);
        thread::spawn(move || {
            let seen = stripe.read().clone();
            let _ = tx.send(seen);
        })
    };
    let seen = rx
        .recv_timeout(Duration::from_secs(5))
        .expect("reader wedged on a poisoned stripe");
    reader.join().expect("reader panicked on a poisoned stripe");
    assert_eq!(seen, vec![(7, true)]);

    // And the stripe stays writable.
    stripe.write().push((8, false));
    assert_eq!(stripe.read().len(), 2);
}
