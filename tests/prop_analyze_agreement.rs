//! Agreement between a schema and its analyzer-simplified form: the
//! rewrites of [`shape_fragments::analyze::simplify`] are semantics
//! preserving. At [`SimplifyLevel::Validation`] the validation report must
//! be identical; at [`SimplifyLevel::Fragment`] the extracted provenance
//! (neighborhoods, shape fragments) must be identical as well. Both are
//! checked over both graph backends (mutable [`Graph`] and the frozen CSR
//! snapshot), on random schemas covering the full shape grammar.

mod common;

use proptest::prelude::*;

use common::{graph_strategy, shape_strategy};
use shape_fragments::analyze::{simplify, SimplifyLevel};
use shape_fragments::core::{
    schema_fragment, validate_extract_fragment, validate_extract_fragment_simplified,
};
use shape_fragments::rdf::Term;
use shape_fragments::shacl::validator::{validate, validate_batch};
use shape_fragments::shacl::{PathExpr, Schema, Shape, ShapeDef};

fn shape_name(i: usize) -> Term {
    Term::iri(format!("{}S{i}", common::NS))
}

/// Target shapes in the real-SHACL forms of §4 (plus ⊤ = "all nodes").
fn target_strategy() -> impl Strategy<Value = Shape> {
    prop_oneof![
        (0u8..6).prop_map(|i| Shape::HasValue(common::node_term(i))),
        (0u8..3).prop_map(|p| Shape::geq(1, PathExpr::Prop(common::pred(p)), Shape::True)),
        Just(Shape::True),
    ]
}

/// Random nonrecursive schemas of 1–4 definitions with forward `hasShape`
/// references, so the reference-status pass is exercised too.
fn schema_strategy() -> impl Strategy<Value = Schema> {
    (
        prop::collection::vec((shape_strategy(), target_strategy()), 1..5),
        prop::collection::vec(any::<bool>(), 8),
    )
        .prop_map(|(parts, links)| {
            let n = parts.len();
            let defs: Vec<ShapeDef> = parts
                .into_iter()
                .enumerate()
                .map(|(i, (mut shape, target))| {
                    if i + 1 < n && links[(2 * i) % links.len()] {
                        shape = shape.and(Shape::HasShape(shape_name(i + 1)));
                    }
                    ShapeDef::new(shape_name(i), shape, target)
                })
                .collect();
            Schema::new(defs).expect("forward references only — nonrecursive")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Validation-level simplification preserves the validation report —
    /// same checked count, same violations — over both backends and both
    /// validator drivers.
    #[test]
    fn validation_level_preserves_reports(
        g in graph_strategy(14),
        schema in schema_strategy(),
    ) {
        let (simplified, _diags) = simplify(&schema, SimplifyLevel::Validation);
        let f = g.freeze();
        prop_assert_eq!(validate(&schema, &g), validate(&simplified, &g));
        prop_assert_eq!(validate(&schema, &f), validate(&simplified, &f));
        prop_assert_eq!(validate_batch(&schema, &g), validate_batch(&simplified, &g));
        prop_assert_eq!(validate_batch(&schema, &f), validate_batch(&simplified, &f));
    }

    /// Fragment-level simplification additionally preserves provenance:
    /// the schema fragment and the instrumented validate-and-extract
    /// result are identical on the simplified schema, over both backends.
    #[test]
    fn fragment_level_preserves_fragments(
        g in graph_strategy(14),
        schema in schema_strategy(),
    ) {
        let (simplified, _diags) = simplify(&schema, SimplifyLevel::Fragment);
        let f = g.freeze();
        prop_assert_eq!(validate(&schema, &g), validate(&simplified, &g));
        prop_assert_eq!(
            schema_fragment(&schema, &g),
            schema_fragment(&simplified, &g)
        );
        prop_assert_eq!(
            schema_fragment(&schema, &f),
            schema_fragment(&simplified, &f)
        );
        let (report, frag) = validate_extract_fragment(&schema, &g);
        let (report_s, frag_s) = validate_extract_fragment(&simplified, &g);
        prop_assert_eq!(report, report_s);
        prop_assert_eq!(frag.to_graph(&g), frag_s.to_graph(&g));
        let (report_f, frag_f) = validate_extract_fragment(&simplified, &f);
        let (report_o, frag_o) = validate_extract_fragment(&schema, &f);
        prop_assert_eq!(report_o, report_f);
        prop_assert_eq!(frag_o.to_graph(&f), frag_f.to_graph(&f));
    }

    /// The packaged driver (`validate_extract_fragment_simplified`)
    /// produces exactly the report and fragment of the unsimplified
    /// instrumented driver.
    #[test]
    fn simplified_driver_agrees(
        g in graph_strategy(14),
        schema in schema_strategy(),
    ) {
        let (report, frag) = validate_extract_fragment(&schema, &g);
        let (report_s, frag_s, _diags) = validate_extract_fragment_simplified(&schema, &g);
        prop_assert_eq!(report, report_s);
        prop_assert_eq!(frag.to_graph(&g), frag_s.to_graph(&g));
    }

    /// Simplification is idempotent on the schema: a second pass finds
    /// nothing left to rewrite.
    #[test]
    fn simplify_is_idempotent(schema in schema_strategy()) {
        let (once, _) = simplify(&schema, SimplifyLevel::Fragment);
        let (twice, _) = simplify(&once, SimplifyLevel::Fragment);
        let once_defs: Vec<_> = once.iter().collect();
        let twice_defs: Vec<_> = twice.iter().collect();
        prop_assert_eq!(once_defs, twice_defs);
    }
}
