//! End-to-end integration over the benchmark workload: the 57-shape suite
//! against a sampled tourism graph, exercised through every major pipeline
//! at once — validation, instrumented extraction, native fragments, and
//! the SHACL write→parse round trip.

use shape_fragments::core::{schema_fragment, validate_extract_fragment};
use shape_fragments::shacl::validator::validate;
use shape_fragments::shacl::{schema_to_turtle, Schema};
use shape_fragments::workloads::shapes57::{benchmark_schema, benchmark_shapes};
use shape_fragments::workloads::tyrolean::{generate, sample_induced, TyroleanConfig};

fn sample() -> shape_fragments::rdf::Graph {
    let full = generate(&TyroleanConfig::new(600, 0xE2E));
    sample_induced(&full, 200, 1)
}

#[test]
fn instrumented_fragment_matches_definitional_fragment() {
    let graph = sample();
    let schema = benchmark_schema();
    let (report, fragment) = validate_extract_fragment(&schema, &graph);
    let fragment = fragment.to_graph(&graph);
    assert!(report.checked > 100, "targets were selected");
    assert!(fragment.is_subgraph_of(&graph));

    // The definitional Frag(G, H) ranges over all nodes with φ∧τ request
    // shapes; the instrumented pass must agree on conforming targets. On a
    // graph with violations the two coincide because non-conforming nodes
    // contribute ∅ either way.
    let definitional = schema_fragment(&schema, &graph);
    assert_eq!(fragment, definitional);
}

#[test]
fn suite_round_trips_through_shacl_turtle() {
    let graph = sample();
    let schema = benchmark_schema();
    let text = schema_to_turtle(&schema);
    assert!(text.len() > 2_000, "a real shapes document");
    let reparsed: Schema = shape_fragments::shacl::parser::parse_shapes_turtle(&text)
        .expect("57-shape suite reparses from Turtle");

    // The reparsed schema introduces auxiliary property-shape definitions,
    // but the original names must all survive…
    for def in benchmark_shapes() {
        assert!(
            reparsed.get(&def.name).is_some(),
            "{} lost in round trip",
            def.name
        );
    }
    // …and produce the identical validation report.
    let before = validate(&schema, &graph);
    let after = validate(&reparsed, &graph);
    assert_eq!(before.conforms(), after.conforms());
    let mut v1: Vec<_> = before
        .violations
        .iter()
        .map(|v| (&v.shape, &v.focus))
        .collect();
    let mut v2: Vec<_> = after
        .violations
        .iter()
        .map(|v| (&v.shape, &v.focus))
        .collect();
    v1.sort();
    v2.sort();
    assert_eq!(v1, v2, "violation sets differ after round trip");
}

#[test]
fn fragment_validates_after_extraction() {
    // Theorem 4.1 at workload scale: restrict to the conforming subset of
    // the schema (drop definitions with any violating target) and check
    // the fragment of that sub-schema still validates.
    let graph = sample();
    let schema = benchmark_schema();
    let report = validate(&schema, &graph);
    let violating: std::collections::HashSet<_> =
        report.violations.iter().map(|v| v.shape.clone()).collect();
    let clean = Schema::new(
        benchmark_shapes()
            .into_iter()
            .filter(|d| !violating.contains(&d.name)),
    )
    .expect("sub-schema is valid");
    assert!(clean.len() > 20, "most shapes validate cleanly");
    assert!(validate(&clean, &graph).conforms());
    let frag = schema_fragment(&clean, &graph);
    assert!(
        validate(&clean, &frag).conforms(),
        "Frag(G, H) violates H at workload scale"
    );
}
