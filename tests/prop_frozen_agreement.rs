//! Agreement between the two [`GraphAccess`] backends: the mutable
//! [`Graph`] (hash/tree indexes) and the immutable [`FrozenGraph`] CSR
//! snapshot built by [`Graph::freeze`].
//!
//! Two layers are exercised on random graphs:
//!
//! - **Accessor agreement** — every trait accessor (`contains_ids`,
//!   `objects_ids`, `subjects_ids`, `out_edges_ids`, `in_edges_ids`,
//!   `edges_with_predicate_ids`, `predicates_out_ids`, `iter_ids`,
//!   `node_ids`, `term`, `id_of`) returns identical results, in the same
//!   order, for the same ids. Freezing is id-stable, so ids are comparable
//!   across backends directly.
//! - **Kernel agreement** — validation reports, path evaluation and
//!   tracing, fragment extraction, and SPARQL query results are identical
//!   whichever backend the generic kernels run over.

mod common;

use proptest::prelude::*;

use common::{graph_strategy, path_strategy, shape_strategy};
use shape_fragments::core::to_sparql::fragment_query;
use shape_fragments::core::{schema_fragment, validate_extract_fragment};
use shape_fragments::rdf::{Graph, GraphAccess, Term, TermId};
use shape_fragments::shacl::validator::{validate, validate_batch, Context};
use shape_fragments::shacl::{PathExpr, Schema, Shape, ShapeDef};
use shape_fragments::sparql::eval;

fn shape_name(i: usize) -> Term {
    Term::iri(format!("{}S{i}", common::NS))
}

/// Target shapes in the real-SHACL forms of §4 (plus ⊤ = "all nodes").
fn target_strategy() -> impl Strategy<Value = Shape> {
    prop_oneof![
        (0u8..6).prop_map(|i| Shape::HasValue(common::node_term(i))),
        (0u8..3).prop_map(|p| Shape::geq(1, PathExpr::Prop(common::pred(p)), Shape::True)),
        Just(Shape::True),
    ]
}

/// Random nonrecursive schemas of 1–4 definitions with forward `hasShape`
/// references (the memo-sharing case).
fn schema_strategy() -> impl Strategy<Value = Schema> {
    (
        prop::collection::vec((shape_strategy(), target_strategy()), 1..5),
        prop::collection::vec(any::<bool>(), 8),
    )
        .prop_map(|(parts, links)| {
            let n = parts.len();
            let defs: Vec<ShapeDef> = parts
                .into_iter()
                .enumerate()
                .map(|(i, (mut shape, target))| {
                    if i + 1 < n && links[(2 * i) % links.len()] {
                        shape = shape.and(Shape::HasShape(shape_name(i + 1)));
                    }
                    ShapeDef::new(shape_name(i), shape, target)
                })
                .collect();
            Schema::new(defs).expect("forward references only — nonrecursive")
        })
}

/// All interned ids of a graph (nodes *and* predicates), so accessors are
/// also probed with ids in "wrong" positions (e.g. a predicate id as a
/// subject), where both backends must agree on emptiness.
fn all_ids(g: &Graph) -> Vec<TermId> {
    let mut ids: std::collections::BTreeSet<TermId> = g.node_ids();
    for (s, p, o) in g.iter_ids() {
        ids.extend([s, p, o]);
    }
    ids.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Every per-id accessor agrees, element for element, in order.
    #[test]
    fn accessors_agree(g in graph_strategy(20)) {
        let f = g.freeze();
        prop_assert_eq!(g.len(), f.len());
        prop_assert_eq!(g.is_empty(), f.is_empty());
        prop_assert_eq!(
            g.iter_ids().collect::<Vec<_>>(),
            f.iter_ids().collect::<Vec<_>>()
        );
        prop_assert_eq!(GraphAccess::node_ids(&g), f.node_ids());
        let ids = all_ids(&g);
        for &a in &ids {
            prop_assert_eq!(g.term(a), f.term(a));
            prop_assert_eq!(f.id_of(g.term(a)), Some(a));
            prop_assert_eq!(
                g.out_edges_ids(a).collect::<Vec<_>>(),
                f.out_edges_ids(a).collect::<Vec<_>>()
            );
            prop_assert_eq!(
                g.in_edges_ids(a).collect::<Vec<_>>(),
                f.in_edges_ids(a).collect::<Vec<_>>()
            );
            prop_assert_eq!(
                g.edges_with_predicate_ids(a).collect::<Vec<_>>(),
                f.edges_with_predicate_ids(a).collect::<Vec<_>>()
            );
            prop_assert_eq!(
                g.predicates_out_ids(a).collect::<Vec<_>>(),
                f.predicates_out_ids(a).collect::<Vec<_>>()
            );
            for &b in &ids {
                prop_assert_eq!(
                    g.objects_ids(a, b).collect::<Vec<_>>(),
                    f.objects_ids(a, b).collect::<Vec<_>>()
                );
                prop_assert_eq!(
                    g.subjects_ids(a, b).collect::<Vec<_>>(),
                    f.subjects_ids(a, b).collect::<Vec<_>>()
                );
                for &c in &ids {
                    prop_assert_eq!(g.contains_ids(a, b, c), f.contains_ids(a, b, c));
                }
            }
        }
    }

    /// Path evaluation and tracing are backend-independent.
    #[test]
    fn eval_and_trace_agree(g in graph_strategy(16), path in path_strategy()) {
        let f = g.freeze();
        let schema = Schema::empty();
        let mut ctx_g = Context::new(&schema, &g);
        let mut ctx_f = Context::new(&schema, &f);
        for v in g.node_ids() {
            let endpoints = ctx_g.eval_path(&path, v);
            prop_assert_eq!(&endpoints, &ctx_f.eval_path(&path, v));
            prop_assert_eq!(
                ctx_g.trace_path(&path, v, &endpoints),
                ctx_f.trace_path(&path, v, &endpoints)
            );
        }
    }

    /// `validate` and `validate_batch` produce identical reports over
    /// either backend.
    #[test]
    fn validation_agrees(g in graph_strategy(14), schema in schema_strategy()) {
        let f = g.freeze();
        prop_assert_eq!(validate(&schema, &g), validate(&schema, &f));
        prop_assert_eq!(validate_batch(&schema, &g), validate_batch(&schema, &f));
    }

    /// Fragment extraction (both the plain union and the instrumented
    /// validate-and-extract driver) is backend-independent.
    #[test]
    fn fragments_agree(g in graph_strategy(14), schema in schema_strategy()) {
        let f = g.freeze();
        prop_assert_eq!(schema_fragment(&schema, &g), schema_fragment(&schema, &f));
        let (report_g, frag_g) = validate_extract_fragment(&schema, &g);
        let (report_f, frag_f) = validate_extract_fragment(&schema, &f);
        prop_assert_eq!(report_g, report_f);
        prop_assert_eq!(frag_g.to_graph(&g), frag_f.to_graph(&f));
    }

    /// The generated SPARQL fragment query returns the same bindings over
    /// either backend.
    #[test]
    fn sparql_agrees(g in graph_strategy(12), schema in schema_strategy()) {
        let f = g.freeze();
        let shapes = schema.request_shapes();
        let query = fragment_query(&schema, &shapes);
        prop_assert_eq!(eval(&g, &query), eval(&f, &query));
    }
}
