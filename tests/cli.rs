//! End-to-end tests for the `shapefrag` command-line interface, driving the
//! compiled binary against files on disk.

use std::path::PathBuf;
use std::process::{Command, Output};

fn write_file(dir: &std::path::Path, name: &str, content: &str) -> PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, content).expect("write fixture");
    path
}

fn shapefrag(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_shapefrag"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn fixtures() -> (tempdir::TempDir, PathBuf, PathBuf) {
    let dir = tempdir::TempDir::new();
    let shapes = write_file(
        dir.path(),
        "shapes.ttl",
        r#"
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix ex: <http://example.org/> .
ex:PaperShape a sh:NodeShape ;
  sh:targetClass ex:Paper ;
  sh:property [ sh:path ex:author ; sh:minCount 1 ] .
"#,
    );
    let data = write_file(
        dir.path(),
        "data.ttl",
        r#"
@prefix ex: <http://example.org/> .
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
ex:good rdf:type ex:Paper ; ex:author ex:ann .
ex:bad rdf:type ex:Paper .
ex:noise ex:p ex:q .
"#,
    );
    (dir, shapes, data)
}

/// Minimal self-cleaning temp dir (no external crates).
mod tempdir {
    use std::path::{Path, PathBuf};

    pub struct TempDir(PathBuf);

    impl TempDir {
        pub fn new() -> TempDir {
            let path = std::env::temp_dir().join(format!(
                "shapefrag-cli-test-{}-{:?}",
                std::process::id(),
                std::thread::current().id(),
            ));
            std::fs::create_dir_all(&path).expect("create temp dir");
            TempDir(path)
        }

        pub fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}

#[test]
fn validate_reports_violations_and_exit_code() {
    let (_dir, shapes, data) = fixtures();
    let out = shapefrag(&["validate", shapes.to_str().unwrap(), data.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "violations → exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("http://example.org/bad"), "{stdout}");
    assert!(!stdout.contains("http://example.org/good"));
}

#[test]
fn validate_emits_turtle_report() {
    let (_dir, shapes, data) = fixtures();
    let out = shapefrag(&[
        "validate",
        shapes.to_str().unwrap(),
        data.to_str().unwrap(),
        "--report-ttl",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("sh:ValidationReport"), "{stdout}");
    assert!(stdout.contains("sh:focusNode"), "{stdout}");
    // The emitted Turtle parses back.
    shape_fragments::rdf::turtle::parse(&stdout).expect("report parses");
}

#[test]
fn fragment_writes_ntriples_subset() {
    let (dir, shapes, data) = fixtures();
    let out_path = dir.path().join("frag.nt");
    let out = shapefrag(&[
        "fragment",
        shapes.to_str().unwrap(),
        data.to_str().unwrap(),
        "-o",
        out_path.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let text = std::fs::read_to_string(&out_path).expect("fragment file");
    let frag = shape_fragments::rdf::ntriples::parse(&text).expect("fragment parses");
    // good's type + author triples; nothing about noise.
    assert_eq!(frag.len(), 2);
    assert!(text.contains("http://example.org/author"));
    assert!(!text.contains("noise"));
}

#[test]
fn explain_prints_evidence() {
    let (_dir, shapes, data) = fixtures();
    let out = shapefrag(&[
        "explain",
        shapes.to_str().unwrap(),
        data.to_str().unwrap(),
        "http://example.org/good",
        "http://example.org/PaperShape",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("conforms to"), "{stdout}");
    assert!(
        stdout.contains("ex") || stdout.contains("author"),
        "{stdout}"
    );
}

#[test]
fn translate_emits_parseable_sparql() {
    let (_dir, shapes, _) = fixtures();
    let out = shapefrag(&["translate", shapes.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    shape_fragments::sparql::parser::parse_select(&stdout).expect("generated query parses");
}

#[test]
fn analyze_reports_findings_with_exit_codes() {
    let (dir, shapes, _data) = fixtures();
    // A clean schema: exit 0.
    let out = shapefrag(&["analyze", shapes.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "clean schema → exit 0");
    // A contradictory schema: the findings print and the exit code is 3,
    // distinct from the engine-error code 2.
    let bad = write_file(
        dir.path(),
        "bad.ttl",
        r#"
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix ex: <http://example.org/> .
ex:PaperShape a sh:NodeShape ;
  sh:targetClass ex:Paper ;
  sh:property [ sh:path ex:author ; sh:minCount 2 ; sh:maxCount 1 ] .
"#,
    );
    let out = shapefrag(&["analyze", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(3), "deny findings → exit 3");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("SF-E002"), "{stdout}");
    assert!(stdout.contains("deny"), "{stdout}");
    // JSON output carries the same findings.
    let out = shapefrag(&["analyze", bad.to_str().unwrap(), "--json"]);
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"SF-E002\""));
}

#[test]
fn analyze_containment_prints_matrix_and_findings() {
    let dir = tempdir::TempDir::new();
    let shapes = write_file(
        dir.path(),
        "shapes.ttl",
        r#"
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix ex: <http://example.org/> .
ex:OneAuthor a sh:NodeShape ;
  sh:targetClass ex:Paper ;
  sh:property [ sh:path ex:author ; sh:minCount 1 ] .
ex:TwoAuthors a sh:NodeShape ;
  sh:targetClass ex:Paper ;
  sh:property [ sh:path ex:author ; sh:minCount 2 ] .
"#,
    );
    // Text mode: subsumption findings plus the rendered matrix.
    let out = shapefrag(&["analyze", shapes.to_str().unwrap(), "--containment"]);
    assert_eq!(out.status.code(), Some(0), "warnings never gate analyze");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("SF-W031"), "{stdout}");
    assert!(
        stdout.contains("ex:TwoAuthors") || stdout.contains("TwoAuthors> \u{2291}"),
        "matrix line for the ≥2 ⊑ ≥1 edge missing: {stdout}"
    );
    assert!(stdout.contains("proper containment(s)"), "{stdout}");
    // JSON mode: diagnostics and matrix under stable keys.
    let out = shapefrag(&[
        "analyze",
        shapes.to_str().unwrap(),
        "--containment",
        "--json",
    ]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"diagnostics\""), "{stdout}");
    assert!(stdout.contains("\"containment\""), "{stdout}");
    assert!(stdout.contains("\"SF-W031\""), "{stdout}");
    assert!(stdout.contains("\"fingerprint\""), "{stdout}");
    // An unknown flag is still a usage error.
    let out = shapefrag(&["analyze", shapes.to_str().unwrap(), "--bogus"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn deny_findings_gate_validation() {
    let (dir, _shapes, data) = fixtures();
    let bad = write_file(
        dir.path(),
        "bad.ttl",
        r#"
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix ex: <http://example.org/> .
ex:PaperShape a sh:NodeShape ;
  sh:targetClass ex:Paper ;
  sh:property [ sh:path ex:author ; sh:minCount 2 ; sh:maxCount 1 ] .
"#,
    );
    let out = shapefrag(&["validate", bad.to_str().unwrap(), data.to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(3),
        "contradictory shapes graph is rejected before validation"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("SF-E002"), "{stderr}");
}

#[test]
fn help_documents_exit_codes() {
    let out = shapefrag(&["--help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("analyze"), "{stdout}");
    assert!(stdout.contains("exit codes"), "{stdout}");
    assert!(stdout.contains('3'), "{stdout}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = shapefrag(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn missing_file_is_reported() {
    let out = shapefrag(&[
        "validate",
        "/nonexistent/shapes.ttl",
        "/nonexistent/data.ttl",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn governed_validate_honors_budget_and_exit_code() {
    let (_dir, shapes, data) = fixtures();
    // A generous budget changes nothing: same verdicts, same exit code.
    let out = shapefrag(&[
        "validate",
        shapes.to_str().unwrap(),
        data.to_str().unwrap(),
        "--budget-steps",
        "1000000",
        "--deadline-ms",
        "60000",
    ]);
    assert_eq!(out.status.code(), Some(1), "violations still → exit 1");
    assert!(String::from_utf8_lossy(&out.stdout).contains("http://example.org/bad"));

    // One step cannot validate anything → resource-fault exit 4.
    let out = shapefrag(&[
        "validate",
        shapes.to_str().unwrap(),
        data.to_str().unwrap(),
        "--budget-steps",
        "1",
    ]);
    assert_eq!(out.status.code(), Some(4), "budget trip → exit 4");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("resource fault"), "{stderr}");
    assert!(stderr.contains("budget"), "{stderr}");
}

#[test]
fn governed_fragment_honors_deadline_and_exit_code() {
    let (_dir, shapes, data) = fixtures();
    // A generous governor extracts the same fragment.
    let out = shapefrag(&[
        "fragment",
        shapes.to_str().unwrap(),
        data.to_str().unwrap(),
        "--deadline-ms",
        "60000",
    ]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("http://example.org/author"));

    // An already-expired deadline faults with exit 4.
    let out = shapefrag(&[
        "fragment",
        shapes.to_str().unwrap(),
        data.to_str().unwrap(),
        "--deadline-ms",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(4), "deadline trip → exit 4");
    assert!(String::from_utf8_lossy(&out.stderr).contains("deadline"));
}

#[test]
fn bad_governance_flag_values_are_usage_errors() {
    let (_dir, shapes, data) = fixtures();
    let out = shapefrag(&[
        "validate",
        shapes.to_str().unwrap(),
        data.to_str().unwrap(),
        "--deadline-ms",
        "soon",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--deadline-ms"));
}
