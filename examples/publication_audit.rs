//! Publication-audit scenario: validate a bibliographic graph against a
//! multi-shape schema and use why/why-not provenance to report audit
//! findings with evidence.
//!
//! ```bash
//! cargo run --example publication_audit
//! ```

use shape_fragments::core::explain;
use shape_fragments::rdf::turtle;
use shape_fragments::shacl::parser::parse_shapes_turtle;
use shape_fragments::shacl::validator::validate;
use shape_fragments::shacl::Shape;

const SHAPES: &str = r#"
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix ex: <http://pub.example.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .

ex:PaperShape a sh:NodeShape ;
  sh:targetClass ex:Paper ;
  sh:property [ sh:path ex:author ; sh:minCount 1 ] ;
  sh:property [ sh:path ex:title ; sh:minCount 1 ; sh:maxCount 1 ] ;
  sh:property [ sh:path ex:year ; sh:datatype xsd:integer ;
                sh:minInclusive 1900 ; sh:maxInclusive 2030 ] ;
  sh:property [ sh:path ex:submitted ; sh:lessThan ex:accepted ] .

ex:AuthorShape a sh:NodeShape ;
  sh:targetObjectsOf ex:author ;
  sh:property [ sh:path ex:name ; sh:minCount 1 ; sh:uniqueLang true ] ;
  sh:property [ sh:path ex:orcid ;
                sh:pattern "^\\d{4}-\\d{4}-\\d{4}-\\d{3}[\\dX]$" ] .
"#;

const DATA: &str = r#"
@prefix ex: <http://pub.example.org/> .
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .

ex:p1 rdf:type ex:Paper ;
  ex:title "Data Provenance for SHACL" ;
  ex:author ex:delva , ex:jakubowski , ex:dimou , ex:vandenbussche ;
  ex:year 2023 ;
  ex:submitted "2022-10-01"^^xsd:date ;
  ex:accepted "2022-12-15"^^xsd:date .

ex:delva ex:name "Thomas Delva" ; ex:orcid "0000-0002-1825-0097" .
ex:jakubowski ex:name "Maxime Jakubowski" ; ex:orcid "0000-0002-7420-1337" .
ex:dimou ex:name "Anastasia Dimou" ; ex:orcid "0000-0003-2138-7972" .
ex:vandenbussche ex:name "Jan Van den Bussche" ; ex:orcid "0000-0003-0072-3252" .

# A messy record: no author, two titles, bogus year, inverted dates.
ex:p2 rdf:type ex:Paper ;
  ex:title "Mystery Paper" , "Mystery Paper v2" ;
  ex:year 3023 ;
  ex:submitted "2023-06-01"^^xsd:date ;
  ex:accepted "2023-01-01"^^xsd:date .

# An author with a malformed ORCID and a duplicated language tag.
ex:p3 rdf:type ex:Paper ; ex:title "Fine Paper" ; ex:author ex:sloppy ;
  ex:year 2020 .
ex:sloppy ex:name "Sloppy Author"@en , "Sloppy B. Author"@en ;
  ex:orcid "not-an-orcid" .
"#;

fn main() {
    let schema = parse_shapes_turtle(SHAPES).expect("shapes parse");
    let data = turtle::parse(DATA).expect("data parses");

    let report = validate(&schema, &data);
    println!(
        "audit: {} findings over {} checks\n",
        report.violations.len(),
        report.checked
    );

    for violation in &report.violations {
        println!("✗ {violation}");
        // Why-not provenance: the neighborhood of the negated shape is the
        // evidence for the violation (Remark 3.7).
        let e = explain(
            &schema,
            &data,
            &violation.focus,
            &Shape::HasShape(violation.shape.clone()),
        );
        assert!(!e.conforms());
        if e.subgraph().is_empty() {
            println!("  evidence: required data is missing entirely");
        } else {
            println!("  evidence:");
            for t in e.subgraph().iter() {
                println!("    {t}");
            }
        }
        println!();
    }

    for node in ["p1", "delva"] {
        let term = shape_fragments::rdf::Term::iri(format!("http://pub.example.org/{node}"));
        println!("✓ {term} passes its checks");
    }
}
