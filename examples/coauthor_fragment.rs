//! Subgraph retrieval with shape fragments: the paper's Vardi experiment in
//! miniature (§5.3.2). Generates a synthetic co-authorship network, then
//! retrieves — as one shape fragment — every author within co-author
//! distance 3 of the hub *plus all authorship triples on the connecting
//! paths*, and serializes the fragment as N-Triples.
//!
//! ```bash
//! cargo run --release --example coauthor_fragment
//! ```

use shape_fragments::core::fragment;
use shape_fragments::rdf::ntriples;
use shape_fragments::shacl::validator::Context;
use shape_fragments::shacl::Schema;
use shape_fragments::workloads::dblp::{
    authored_by, hub_author, vardi_shape, Bibliography, DblpConfig,
};

fn main() {
    let config = DblpConfig {
        first_year: 2016,
        last_year: 2021,
        papers_per_year: 400,
        new_authors_per_year: 150,
        seed: 42,
        ..DblpConfig::default()
    };
    let bib = Bibliography::generate(&config);
    let graph = bib.full_graph();
    println!(
        "co-authorship network: {} papers, {} authors, {} triples",
        bib.papers.len(),
        bib.author_count,
        graph.len()
    );

    let shape = vardi_shape(3);
    println!("\nrequest shape: {shape}\n");

    let schema = Schema::empty();
    let frag = fragment(&schema, &graph, std::slice::from_ref(&shape));

    // Count conforming authors (distance ≤ 3 from the hub).
    let mut ctx = Context::new(&schema, &graph);
    let within: usize = graph
        .node_ids()
        .into_iter()
        .filter(|&v| {
            matches!(graph.term(v), shape_fragments::rdf::Term::Iri(i)
                if i.as_str().contains("/author/"))
                && ctx.conforms(v, &shape)
        })
        .count();
    let authorships = graph
        .triples_matching(None, Some(&authored_by()), None)
        .len();

    println!(
        "{} authors within co-author distance 3 of {} ({:.1}% of all authors)",
        within,
        hub_author(),
        within as f64 / bib.author_count as f64 * 100.0
    );
    println!(
        "fragment: {} of {} authorship triples ({:.1}%)",
        frag.len(),
        authorships,
        frag.len() as f64 / authorships as f64 * 100.0
    );

    let out = ntriples::serialize(&frag);
    let path = std::env::temp_dir().join("vardi_fragment.nt");
    std::fs::write(&path, &out).expect("write fragment");
    println!(
        "\nfragment written to {} ({} bytes)",
        path.display(),
        out.len()
    );

    // The fragment round-trips through the serializer.
    let reloaded = ntriples::parse(&out).expect("fragment reparses");
    assert_eq!(reloaded, frag);
    println!("round trip through N-Triples: ok");
}
