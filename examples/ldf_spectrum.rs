//! The Linked Data Fragments spectrum (paper §6.1, §7 and Figure 4):
//! shape fragments sit between Triple Pattern Fragments and full SPARQL as
//! a subgraph-retrieval interface. This example requests the same
//! information need — "products with an English caption, their reviews and
//! reviewers" — at three points of the spectrum and compares the number of
//! requests and transferred triples.
//!
//! ```bash
//! cargo run --release --example ldf_spectrum
//! ```

use shape_fragments::core::fragment;
use shape_fragments::rdf::Term;
use shape_fragments::shacl::node_test::NodeTest;
use shape_fragments::shacl::{PathExpr, Schema, Shape};
use shape_fragments::workloads::ecommerce::{ec, generate, EcommerceConfig};
use shape_fragments::workloads::tpf::{TpfPos, TpfQuery};

fn main() {
    let graph = generate(&EcommerceConfig {
        products: 200,
        users: 120,
        seed: 7,
    });
    println!("dataset: {} triples\n", graph.len());

    // --- Point 1: full download (the trivial LDF endpoint). -------------
    println!(
        "full download:            1 request, {} triples transferred",
        graph.len()
    );

    // --- Point 2: Triple Pattern Fragments. -----------------------------
    // The client decomposes the need into one TPF request per pattern and
    // joins locally; it must over-fetch every pattern's full extension.
    let patterns = [
        (
            "?p caption ?c",
            TpfQuery::new(
                TpfPos::Var(0),
                TpfPos::Const(Term::Iri(ec("caption"))),
                TpfPos::Var(1),
            ),
        ),
        (
            "?p hasReview ?r",
            TpfQuery::new(
                TpfPos::Var(0),
                TpfPos::Const(Term::Iri(ec("hasReview"))),
                TpfPos::Var(1),
            ),
        ),
        (
            "?r reviewer ?u",
            TpfQuery::new(
                TpfPos::Var(0),
                TpfPos::Const(Term::Iri(ec("reviewer"))),
                TpfPos::Var(1),
            ),
        ),
    ];
    let mut tpf_total = 0;
    for (label, query) in &patterns {
        let result = query.eval(&graph);
        println!("TPF {label:18} 1 request, {} triples", result.len());
        tpf_total += result.len();
    }
    println!(
        "TPF total:                {} requests, {} triples transferred (client joins + filters locally)",
        patterns.len(),
        tpf_total
    );

    // --- Point 3: a single shape fragment. ------------------------------
    // One request carries the whole need, including the language filter the
    // TPF client would have to apply itself; the server returns only the
    // connected evidence.
    let shape = Shape::geq(
        1,
        PathExpr::Prop(ec("caption")),
        Shape::Test(NodeTest::Language("en".into())),
    )
    .and(Shape::geq(
        1,
        PathExpr::Prop(ec("hasReview")),
        Shape::geq(1, PathExpr::Prop(ec("reviewer")), Shape::True),
    ));
    let frag = fragment(&Schema::empty(), &graph, std::slice::from_ref(&shape));
    println!(
        "shape fragment:           1 request, {} triples transferred",
        frag.len()
    );
    println!("\nrequest shape:\n  {shape}");

    assert!(frag.len() < tpf_total);
    assert!(tpf_total < graph.len());
    println!(
        "\nspectrum (triples): fragment {} < TPF {} < full {}  — Figure 4's ordering",
        frag.len(),
        tpf_total,
        graph.len()
    );
}
