//! The shape-to-SPARQL translation of §5.1, end to end: build a shape,
//! print the generated `Q_φ` / fragment query in concrete SPARQL syntax,
//! run it with the bundled SPARQL engine, and check it against the native
//! neighborhood computation.
//!
//! ```bash
//! cargo run --example sparql_translation
//! ```

use shape_fragments::core::fragment;
use shape_fragments::core::to_sparql::{
    conformance_query, fragment_query, fragment_via_sparql, neighborhood_query,
};
use shape_fragments::rdf::{Graph, Iri, Term, Triple};
use shape_fragments::shacl::{PathExpr, Schema, Shape};
use shape_fragments::sparql::eval::EvalConfig;
use shape_fragments::sparql::parser::parse_select;

fn ex(n: &str) -> Term {
    Term::iri(format!("http://example.org/{n}"))
}

fn exi(n: &str) -> Iri {
    Iri::new(format!("http://example.org/{n}"))
}

fn main() {
    // Example 5.6: ∀friend.≥1 likes.hasValue(pingpong).
    let shape = Shape::for_all(
        PathExpr::prop(exi("friend")),
        Shape::geq(
            1,
            PathExpr::prop(exi("likes")),
            Shape::has_value(ex("pingpong")),
        ),
    );
    let schema = Schema::empty();

    println!("request shape:\n  {shape}\n");

    let cq = conformance_query(&schema, &shape);
    println!(
        "conformance query CQ_φ ({} chars):\n{cq}\n",
        cq.to_string().len()
    );

    let nq = neighborhood_query(&schema, &shape);
    println!(
        "neighborhood query Q_φ: {} chars (printed below)\n",
        nq.to_string().len()
    );
    println!("{nq}\n");

    let frag_q = fragment_query(&schema, std::slice::from_ref(&shape));
    let printed = frag_q.to_string();
    println!("fragment query Q_S: {} chars", printed.len());

    // The generated concrete syntax reparses with the bundled parser.
    parse_select(&printed).expect("generated query reparses");
    println!("generated SPARQL reparses: ok\n");

    // Run both routes on a small graph.
    let t = |s: &str, p: &str, o: &str| Triple::new(ex(s), exi(p), ex(o));
    let g = Graph::from_triples([
        t("me", "friend", "f1"),
        t("f1", "likes", "pingpong"),
        t("me", "friend", "f2"),
        t("f2", "likes", "pingpong"),
        t("f2", "likes", "chess"),
        t("you", "friend", "f3"),
        t("f3", "likes", "chess"),
    ]);
    let native = fragment(&schema, &g, std::slice::from_ref(&shape));
    let via_sparql = fragment_via_sparql(
        &schema,
        &g,
        std::slice::from_ref(&shape),
        &EvalConfig::indexed(),
    )
    .expect("no resource cap");
    assert_eq!(native, via_sparql);

    println!(
        "fragment ({} of {} triples), identical on both routes:",
        native.len(),
        g.len()
    );
    for triple in native.iter() {
        println!("  {triple}");
    }
}
