//! Quickstart: parse a SHACL shapes graph and a data graph from Turtle,
//! validate, and extract provenance.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use shape_fragments::core::{explain, schema_fragment, validate_with_provenance};
use shape_fragments::rdf::turtle;
use shape_fragments::shacl::parser::parse_shapes_turtle;
use shape_fragments::shacl::Shape;

const SHAPES: &str = r#"
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix ex: <http://example.org/> .

# Every paper needs at least one author who is a student (the paper's
# running "WorkshopShape" example).
ex:WorkshopShape a sh:NodeShape ;
  sh:targetClass ex:Paper ;
  sh:property [
    sh:path ex:author ;
    sh:qualifiedMinCount 1 ;
    sh:qualifiedValueShape [ sh:class ex:Student ] ] .
"#;

const DATA: &str = r#"
@prefix ex: <http://example.org/> .
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .

ex:goodPaper rdf:type ex:Paper ;
  ex:author ex:alice , ex:bob .
ex:alice rdf:type ex:Student .
ex:bob rdf:type ex:Professor .

ex:badPaper rdf:type ex:Paper ;
  ex:author ex:bob .

ex:unrelated ex:likes ex:pingpong .
"#;

fn main() {
    let schema = parse_shapes_turtle(SHAPES).expect("shapes graph parses");
    let data = turtle::parse(DATA).expect("data graph parses");
    println!("data graph: {} triples\n", data.len());

    // 1. Validate with provenance: one pass produces the report, a
    //    neighborhood per conforming target node, and the schema fragment.
    let outcome = validate_with_provenance(&schema, &data);
    println!("validation: {}", outcome.report);
    for ((shape, node), neighborhood) in &outcome.neighborhoods {
        println!("\nwhy does {node} conform to {shape}?");
        for t in neighborhood.iter() {
            println!("  {t}");
        }
    }

    // 2. Why-not provenance for the violating paper.
    let bad = shape_fragments::rdf::Term::iri("http://example.org/badPaper");
    let def = schema.iter().next().expect("one shape definition");
    let explanation = explain(&schema, &data, &bad, &Shape::HasShape(def.name.clone()));
    println!("\nwhy does {bad} NOT conform? evidence (its authors are not students):");
    for t in explanation.subgraph().iter() {
        println!("  {t}");
    }

    // 3. The shape fragment: the subgraph relevant to the schema.
    let fragment = schema_fragment(&schema, &data);
    println!(
        "\nschema fragment ({} of {} triples):",
        fragment.len(),
        data.len()
    );
    for t in fragment.iter() {
        println!("  {t}");
    }
}
