//! `shapefrag` — command-line interface to the shape-fragments stack.
//!
//! ```text
//! shapefrag validate  <shapes.ttl> <data.(ttl|nt)> [--report-ttl] [--threads N] [--deadline-ms N] [--budget-steps N]
//! shapefrag analyze   <shapes.ttl> [--json] [--containment]
//! shapefrag fragment  <shapes.ttl> <data.(ttl|nt)> [-o out.nt] [--threads N] [--deadline-ms N] [--budget-steps N]
//! shapefrag explain   <shapes.ttl> <data.(ttl|nt)> <focus-node-iri> [<shape-name-iri>]
//! shapefrag translate <shapes.ttl> [<shape-name-iri>]
//! shapefrag update    <shapes.ttl> <data.(ttl|nt)> <edits.txt> [--threads N] [--deadline-ms N] [--budget-steps N]
//! shapefrag serve     <shapes.ttl> <data.(ttl|nt)> [--addr HOST:PORT] [--max-inflight N] ...
//! ```
//!
//! - `validate` prints a validation report (optionally as a standard
//!   `sh:ValidationReport` Turtle document).
//! - `analyze` runs the static schema analyzer and prints its findings
//!   (text lines or JSON with `--json`), without needing a data graph.
//!   `--containment` additionally computes the shape-containment matrix:
//!   equivalence/subsumption findings (SF-W030/SF-W031) join the
//!   diagnostic stream and the matrix itself is printed (text, or under
//!   a `"containment"` key with `--json`).
//! - `fragment` computes the schema's shape fragment `Frag(G, H)` and
//!   writes it as N-Triples (stdout or `-o`).
//! - `explain` prints why/why-not provenance for one focus node.
//! - `translate` prints the generated SPARQL fragment query (§5.1).
//! - `update` applies a signed N-Triples edit script (`+`/`-` line
//!   prefixes) to a delta overlay over the frozen data graph and prints
//!   the incrementally-maintained report (DESIGN.md §14).
//! - `serve` runs the long-lived HTTP server (see DESIGN.md §13).
//!
//! Exit codes: `0` success (for `validate`/`explain`: the data conforms;
//! for `analyze`: no deny-level finding), `1` validation violations, `2`
//! usage or engine error (unreadable file, parse error, unknown shape),
//! `3` the shapes graph was rejected by static analysis (deny-level
//! diagnostics; every command that loads a schema applies this gate),
//! `4` a resource fault — the `--deadline-ms` / `--budget-steps` governor
//! tripped before the run finished.

use std::process::ExitCode;
use std::time::Duration;

use shape_fragments::analyze::{
    analyze_defs, analyze_schema, containment_diagnostics, has_deny, to_json, ContainmentMatrix,
    Diagnostic,
};
use shape_fragments::core::{
    explain, fragment_par, schema_fragment, schema_fragment_governed, to_sparql,
    validate_batch_par, validate_batch_par_governed, EditScript, IncrementalValidator,
};
use shape_fragments::govern::{Budget, EngineError, ExecCtx};
use shape_fragments::rdf::{ntriples, turtle, Graph, Term};
use shape_fragments::serve::{ServeConfig, Server, SnapshotSource};
use shape_fragments::shacl::parser::{parse_shape_defs_turtle, parse_shapes_turtle_with_spans};
use shape_fragments::shacl::validator::validate;
use shape_fragments::shacl::{Schema, Shape};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(CliError::Message(message)) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
        Err(CliError::Deny(diags)) => {
            for d in &diags {
                eprintln!("{d}");
            }
            eprintln!("error: shapes graph rejected by static analysis (run `shapefrag analyze` for details)");
            ExitCode::from(3)
        }
    }
}

/// Failures the driver maps to distinct exit codes: usage/engine errors
/// exit 2, deny-level analyzer findings exit 3.
enum CliError {
    Message(String),
    Deny(Vec<Diagnostic>),
}

impl From<String> for CliError {
    fn from(message: String) -> CliError {
        CliError::Message(message)
    }
}

fn usage() -> String {
    "usage:\n  shapefrag validate  <shapes.ttl> <data.(ttl|nt)> [--report-ttl] [--threads N] [--deadline-ms N] [--budget-steps N]\n  \
     shapefrag analyze   <shapes.ttl> [--json] [--containment]\n  \
     shapefrag fragment  <shapes.ttl> <data.(ttl|nt)> [-o out.nt] [--threads N] [--deadline-ms N] [--budget-steps N]\n  \
     shapefrag explain   <shapes.ttl> <data.(ttl|nt)> <focus-node-iri> [<shape-name-iri>]\n  \
     shapefrag translate <shapes.ttl> [<shape-name-iri>]\n  \
     shapefrag update    <shapes.ttl> <data.(ttl|nt)> <edits.txt> [--threads N] [--deadline-ms N] [--budget-steps N]\n  \
     shapefrag serve     <shapes.ttl> <data.(ttl|nt)> [--addr HOST:PORT] [--max-inflight N]\n                      \
     [--queue-depth N] [--queue-wait-ms N] [--max-body-bytes N] [--max-deadline-ms N]\n\
     exit codes:\n  \
     0  success (validate/explain: conforms; analyze: no deny findings)\n  \
     1  validation violations\n  \
     2  usage or engine error\n  \
     3  shapes graph rejected by static analysis (deny diagnostics)\n  \
     4  resource fault (--deadline-ms / --budget-steps governor tripped)"
        .to_string()
}

fn run(args: &[String]) -> Result<ExitCode, CliError> {
    let Some(command) = args.first() else {
        return Err(usage().into());
    };
    match command.as_str() {
        "validate" => cmd_validate(&args[1..]),
        "analyze" => cmd_analyze(&args[1..]),
        "fragment" => cmd_fragment(&args[1..]),
        "explain" => cmd_explain(&args[1..]),
        "translate" => cmd_translate(&args[1..]),
        "update" => cmd_update(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command '{other}'\n{}", usage()).into()),
    }
}

/// Parses a shapes graph and gates it through the static analyzer: deny
/// findings abort with exit 3, warnings go to stderr and validation
/// proceeds.
fn load_schema(path: &str) -> Result<Schema, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let (schema, spans) =
        parse_shapes_turtle_with_spans(&text).map_err(|e| format!("{path}: {e}"))?;
    let diags = analyze_schema(&schema, Some(&spans));
    if has_deny(&diags) {
        return Err(CliError::Deny(diags));
    }
    for d in &diags {
        eprintln!("{path}: {d}");
    }
    Ok(schema)
}

/// Extracts a `--threads N` option from an argument list, returning the
/// worker count (default 1) and the remaining arguments.
fn take_threads(args: &[String]) -> Result<(usize, Vec<String>), String> {
    let mut threads = 1usize;
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--threads" {
            let value = it.next().ok_or("--threads requires a count")?;
            threads = value
                .parse()
                .map_err(|_| format!("invalid --threads value '{value}'"))?;
            if threads == 0 {
                return Err("--threads must be at least 1".to_string());
            }
        } else {
            rest.push(arg.clone());
        }
    }
    Ok((threads, rest))
}

/// Extracts `--deadline-ms N` and `--budget-steps N` from an argument
/// list, returning the resulting [`Budget`] (if any flag was given) and
/// the remaining arguments.
fn take_budget(args: &[String]) -> Result<(Option<Budget>, Vec<String>), String> {
    let mut budget: Option<Budget> = None;
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let parse_u64 = |flag: &str, value: Option<&String>| -> Result<u64, String> {
            let value = value.ok_or(format!("{flag} requires a number"))?;
            value
                .parse::<u64>()
                .map_err(|_| format!("invalid {flag} value '{value}'"))
        };
        match arg.as_str() {
            "--deadline-ms" => {
                let ms = parse_u64("--deadline-ms", it.next())?;
                budget = Some(
                    budget
                        .unwrap_or_else(Budget::unlimited)
                        .deadline(Duration::from_millis(ms)),
                );
            }
            "--budget-steps" => {
                let steps = parse_u64("--budget-steps", it.next())?;
                budget = Some(budget.unwrap_or_else(Budget::unlimited).steps(steps));
            }
            _ => rest.push(arg.clone()),
        }
    }
    Ok((budget, rest))
}

/// Reports a governor trip and exits with the resource-fault code (4).
fn resource_fault_exit(e: &EngineError) -> ExitCode {
    eprintln!("error: resource fault: {e}");
    ExitCode::from(4)
}

fn load_data(path: &str) -> Result<Graph, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if path.ends_with(".nt") || path.ends_with(".ntriples") {
        ntriples::parse(&text).map_err(|e| format!("{path}: {e}"))
    } else {
        turtle::parse(&text).map_err(|e| format!("{path}: {e}"))
    }
}

fn cmd_analyze(args: &[String]) -> Result<ExitCode, CliError> {
    let [shapes_path, rest @ ..] = args else {
        return Err(usage().into());
    };
    if !rest.iter().all(|a| a == "--json" || a == "--containment") {
        return Err(usage().into());
    }
    let as_json = rest.iter().any(|a| a == "--json");
    let with_containment = rest.iter().any(|a| a == "--containment");
    let text = std::fs::read_to_string(shapes_path)
        .map_err(|e| format!("cannot read {shapes_path}: {e}"))?;
    // The defs entry point tolerates reference cycles, which the analyzer
    // itself reports (SF-E020/E021) instead of failing to load.
    let (defs, spans) =
        parse_shape_defs_turtle(&text).map_err(|e| format!("{shapes_path}: {e}"))?;
    let mut diags = analyze_defs(&defs, Some(&spans));
    // --containment folds the subsumption matrix's SF-W030/W031 findings
    // into the regular diagnostic stream and prints the matrix itself.
    let matrix = with_containment.then(|| ContainmentMatrix::of_defs(&defs));
    if let Some(m) = &matrix {
        diags.extend(containment_diagnostics(m));
    }
    if as_json {
        match &matrix {
            Some(m) => print!(
                "{{\"diagnostics\":{},\"containment\":{}}}",
                to_json(&diags),
                m.to_json()
            ),
            None => print!("{}", to_json(&diags)),
        }
    } else {
        for d in &diags {
            println!("{d}");
        }
        if let Some(m) = &matrix {
            print!("{}", m.render_text());
        }
        println!(
            "{} shape definition(s) analyzed: {} finding(s)",
            defs.len(),
            diags.len()
        );
    }
    Ok(if has_deny(&diags) {
        ExitCode::from(3)
    } else {
        ExitCode::SUCCESS
    })
}

fn cmd_validate(args: &[String]) -> Result<ExitCode, CliError> {
    let (threads, args) = take_threads(args)?;
    let (budget, args) = take_budget(&args)?;
    let [shapes_path, data_path, rest @ ..] = args.as_slice() else {
        return Err(usage().into());
    };
    let as_ttl = rest.iter().any(|a| a == "--report-ttl");
    let schema = load_schema(shapes_path)?;
    let data = load_data(data_path)?;
    // Validation is read-only: run it over the CSR snapshot. With more
    // than one worker, the cost-routed work-stealing engine produces the
    // identical report.
    let frozen = data.freeze();
    let report = match budget {
        // The governor routes through the governed engines; a trip exits
        // with the resource-fault code instead of a partial report.
        Some(budget) => {
            match validate_batch_par_governed(&schema, &frozen, threads, budget, None) {
                Ok(report) => report,
                Err(e) => return Ok(resource_fault_exit(&e)),
            }
        }
        None if threads > 1 => validate_batch_par(&schema, &frozen, threads),
        None => validate(&schema, &frozen),
    };
    if as_ttl {
        let graph = report.to_graph();
        print!(
            "{}",
            turtle::serialize(&graph, &[("sh", shape_fragments::rdf::vocab::SH_NS)])
        );
    } else {
        println!("{report}");
    }
    Ok(if report.conforms() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_fragment(args: &[String]) -> Result<ExitCode, CliError> {
    let (threads, args) = take_threads(args)?;
    let (budget, args) = take_budget(&args)?;
    let [shapes_path, data_path, rest @ ..] = args.as_slice() else {
        return Err(usage().into());
    };
    let schema = load_schema(shapes_path)?;
    let data = load_data(data_path)?;
    // Extraction reads the graph many times over: freeze once up front.
    let frozen = data.freeze();
    let fragment = match budget {
        // Governed extraction runs the sequential governed collector
        // (extraction has no governed parallel driver yet); a trip exits
        // with the resource-fault code instead of a truncated fragment.
        Some(budget) => {
            match schema_fragment_governed(&schema, &frozen, ExecCtx::with_budget(budget)) {
                Ok(fragment) => fragment,
                Err(e) => return Ok(resource_fault_exit(&e)),
            }
        }
        None if threads > 1 => fragment_par(&schema, &frozen, &schema.request_shapes(), threads),
        None => schema_fragment(&schema, &frozen),
    };
    eprintln!(
        "fragment: {} of {} triples ({} shape definitions)",
        fragment.len(),
        data.len(),
        schema.len()
    );
    let text = ntriples::serialize(&fragment);
    match rest {
        [] => {
            print!("{text}");
        }
        [flag, out_path] if flag == "-o" => {
            std::fs::write(out_path, &text).map_err(|e| format!("cannot write {out_path}: {e}"))?;
            eprintln!("written to {out_path}");
        }
        _ => return Err(usage().into()),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_explain(args: &[String]) -> Result<ExitCode, CliError> {
    let [shapes_path, data_path, node_iri, rest @ ..] = args else {
        return Err(usage().into());
    };
    let schema = load_schema(shapes_path)?;
    let data = load_data(data_path)?;
    let node = Term::iri(node_iri.trim_start_matches('<').trim_end_matches('>'));
    let defs: Vec<_> = match rest {
        [] => schema.iter().collect(),
        [name] => {
            let name = Term::iri(name.trim_start_matches('<').trim_end_matches('>'));
            let def = schema
                .get(&name)
                .ok_or_else(|| format!("no shape named {name} in the schema"))?;
            vec![def]
        }
        _ => return Err(usage().into()),
    };
    let mut all_conform = true;
    for def in defs {
        let e = explain(&schema, &data, &node, &Shape::HasShape(def.name.clone()));
        let verdict = if e.conforms() {
            "conforms to"
        } else {
            all_conform = false;
            "VIOLATES"
        };
        println!("{node} {verdict} {}", def.name);
        if e.subgraph().is_empty() {
            println!("  (no witnessing triples)");
        } else {
            for t in e.subgraph().iter() {
                println!("  {t}");
            }
        }
    }
    Ok(if all_conform {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// `shapefrag update` — seeds an incremental validator over the frozen
/// data graph, applies the edit script through the delta overlay, and
/// prints the incrementally-maintained report (identical to re-validating
/// the edited graph from scratch, but only impact-routed pairs re-run).
fn cmd_update(args: &[String]) -> Result<ExitCode, CliError> {
    let (threads, args) = take_threads(args)?;
    let (budget, args) = take_budget(&args)?;
    let [shapes_path, data_path, edits_path] = args.as_slice() else {
        return Err(usage().into());
    };
    let schema = std::sync::Arc::new(load_schema(shapes_path)?);
    let data = load_data(data_path)?;
    let edits_text = std::fs::read_to_string(edits_path)
        .map_err(|e| format!("cannot read {edits_path}: {e}"))?;
    let script = EditScript::parse(&edits_text).map_err(|e| format!("{edits_path}: {e}"))?;
    let mut inc =
        IncrementalValidator::with_threads(schema, std::sync::Arc::new(data.freeze()), threads);
    let report = match budget {
        Some(budget) => match inc.apply_par_governed(&script, threads, budget, None) {
            Ok(report) => report,
            Err(e) => return Ok(resource_fault_exit(&e)),
        },
        None => inc.apply_par(&script, threads),
    };
    let graph = inc.graph();
    eprintln!(
        "update: {} edit(s) applied, graph {} triples (+{} / -{} in overlay)",
        script.len(),
        graph.len(),
        graph.added_len(),
        graph.removed_len()
    );
    println!("{report}");
    Ok(if report.conforms() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_serve(args: &[String]) -> Result<ExitCode, CliError> {
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:7878".to_string(),
        ..ServeConfig::default()
    };
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut next_u64 = |flag: &str| -> Result<u64, String> {
            let value = it.next().ok_or(format!("{flag} requires a number"))?;
            value
                .parse::<u64>()
                .map_err(|_| format!("invalid {flag} value '{value}'"))
        };
        match arg.as_str() {
            "--addr" => {
                cfg.addr = it
                    .next()
                    .ok_or_else(|| "--addr requires HOST:PORT".to_string())?
                    .clone();
            }
            "--max-inflight" => cfg.max_inflight = next_u64("--max-inflight")?.max(1) as usize,
            "--queue-depth" => cfg.queue_depth = next_u64("--queue-depth")? as usize,
            "--queue-wait-ms" => {
                cfg.queue_wait = Duration::from_millis(next_u64("--queue-wait-ms")?)
            }
            "--max-body-bytes" => cfg.max_body_bytes = next_u64("--max-body-bytes")? as usize,
            "--max-deadline-ms" => {
                cfg.max_request_deadline = Duration::from_millis(next_u64("--max-deadline-ms")?)
            }
            _ => positional.push(arg.clone()),
        }
    }
    let [shapes_path, data_path] = positional.as_slice() else {
        return Err(usage().into());
    };
    // Load the schema through the CLI gate first so deny-level findings
    // exit 3 exactly like every other schema-loading command; the server
    // then re-reads the same files for its first epoch.
    load_schema(shapes_path)?;
    let server = Server::start(
        cfg,
        SnapshotSource::Files {
            shapes: shapes_path.into(),
            data: data_path.into(),
        },
    )
    .map_err(CliError::Message)?;
    let snapshot = server.state().snapshots.load();
    eprintln!(
        "shapefrag serve: listening on http://{} (epoch {}, {} triples, {} shapes; \
         cap {} inflight / {} queued)",
        server.addr,
        snapshot.epoch,
        snapshot.triples,
        snapshot.schema.len(),
        server.state().cfg.max_inflight,
        server.state().cfg.queue_depth,
    );
    drop(snapshot);
    // Serve until the process is killed.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn cmd_translate(args: &[String]) -> Result<ExitCode, CliError> {
    let [shapes_path, rest @ ..] = args else {
        return Err(usage().into());
    };
    let schema = load_schema(shapes_path)?;
    let shapes: Vec<Shape> = match rest {
        [] => schema.request_shapes(),
        [name] => {
            let name = Term::iri(name.trim_start_matches('<').trim_end_matches('>'));
            let def = schema
                .get(&name)
                .ok_or_else(|| format!("no shape named {name} in the schema"))?;
            vec![def.shape.clone().and(def.target.clone())]
        }
        _ => return Err(usage().into()),
    };
    let query = to_sparql::fragment_query(&schema, &shapes);
    println!("{query}");
    Ok(ExitCode::SUCCESS)
}
