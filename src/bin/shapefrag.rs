//! `shapefrag` — command-line interface to the shape-fragments stack.
//!
//! ```text
//! shapefrag validate  <shapes.ttl> <data.(ttl|nt)> [--report-ttl]
//! shapefrag analyze   <shapes.ttl> [--json]
//! shapefrag fragment  <shapes.ttl> <data.(ttl|nt)> [-o out.nt]
//! shapefrag explain   <shapes.ttl> <data.(ttl|nt)> <focus-node-iri> [<shape-name-iri>]
//! shapefrag translate <shapes.ttl> [<shape-name-iri>]
//! ```
//!
//! - `validate` prints a validation report (optionally as a standard
//!   `sh:ValidationReport` Turtle document).
//! - `analyze` runs the static schema analyzer and prints its findings
//!   (text lines or JSON with `--json`), without needing a data graph.
//! - `fragment` computes the schema's shape fragment `Frag(G, H)` and
//!   writes it as N-Triples (stdout or `-o`).
//! - `explain` prints why/why-not provenance for one focus node.
//! - `translate` prints the generated SPARQL fragment query (§5.1).
//!
//! Exit codes: `0` success (for `validate`/`explain`: the data conforms;
//! for `analyze`: no deny-level finding), `1` validation violations, `2`
//! usage or engine error (unreadable file, parse error, unknown shape),
//! `3` the shapes graph was rejected by static analysis (deny-level
//! diagnostics; every command that loads a schema applies this gate).

use std::process::ExitCode;

use shape_fragments::analyze::{analyze_defs, analyze_schema, has_deny, to_json, Diagnostic};
use shape_fragments::core::{
    explain, fragment_par, schema_fragment, to_sparql, validate_batch_par,
};
use shape_fragments::rdf::{ntriples, turtle, Graph, Term};
use shape_fragments::shacl::parser::{parse_shape_defs_turtle, parse_shapes_turtle_with_spans};
use shape_fragments::shacl::validator::validate;
use shape_fragments::shacl::{Schema, Shape};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(CliError::Message(message)) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
        Err(CliError::Deny(diags)) => {
            for d in &diags {
                eprintln!("{d}");
            }
            eprintln!("error: shapes graph rejected by static analysis (run `shapefrag analyze` for details)");
            ExitCode::from(3)
        }
    }
}

/// Failures the driver maps to distinct exit codes: usage/engine errors
/// exit 2, deny-level analyzer findings exit 3.
enum CliError {
    Message(String),
    Deny(Vec<Diagnostic>),
}

impl From<String> for CliError {
    fn from(message: String) -> CliError {
        CliError::Message(message)
    }
}

fn usage() -> String {
    "usage:\n  shapefrag validate  <shapes.ttl> <data.(ttl|nt)> [--report-ttl] [--threads N]\n  \
     shapefrag analyze   <shapes.ttl> [--json]\n  \
     shapefrag fragment  <shapes.ttl> <data.(ttl|nt)> [-o out.nt] [--threads N]\n  \
     shapefrag explain   <shapes.ttl> <data.(ttl|nt)> <focus-node-iri> [<shape-name-iri>]\n  \
     shapefrag translate <shapes.ttl> [<shape-name-iri>]\n\
     exit codes:\n  \
     0  success (validate/explain: conforms; analyze: no deny findings)\n  \
     1  validation violations\n  \
     2  usage or engine error\n  \
     3  shapes graph rejected by static analysis (deny diagnostics)"
        .to_string()
}

fn run(args: &[String]) -> Result<ExitCode, CliError> {
    let Some(command) = args.first() else {
        return Err(usage().into());
    };
    match command.as_str() {
        "validate" => cmd_validate(&args[1..]),
        "analyze" => cmd_analyze(&args[1..]),
        "fragment" => cmd_fragment(&args[1..]),
        "explain" => cmd_explain(&args[1..]),
        "translate" => cmd_translate(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command '{other}'\n{}", usage()).into()),
    }
}

/// Parses a shapes graph and gates it through the static analyzer: deny
/// findings abort with exit 3, warnings go to stderr and validation
/// proceeds.
fn load_schema(path: &str) -> Result<Schema, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let (schema, spans) =
        parse_shapes_turtle_with_spans(&text).map_err(|e| format!("{path}: {e}"))?;
    let diags = analyze_schema(&schema, Some(&spans));
    if has_deny(&diags) {
        return Err(CliError::Deny(diags));
    }
    for d in &diags {
        eprintln!("{path}: {d}");
    }
    Ok(schema)
}

/// Extracts a `--threads N` option from an argument list, returning the
/// worker count (default 1) and the remaining arguments.
fn take_threads(args: &[String]) -> Result<(usize, Vec<String>), String> {
    let mut threads = 1usize;
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--threads" {
            let value = it.next().ok_or("--threads requires a count")?;
            threads = value
                .parse()
                .map_err(|_| format!("invalid --threads value '{value}'"))?;
            if threads == 0 {
                return Err("--threads must be at least 1".to_string());
            }
        } else {
            rest.push(arg.clone());
        }
    }
    Ok((threads, rest))
}

fn load_data(path: &str) -> Result<Graph, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if path.ends_with(".nt") || path.ends_with(".ntriples") {
        ntriples::parse(&text).map_err(|e| format!("{path}: {e}"))
    } else {
        turtle::parse(&text).map_err(|e| format!("{path}: {e}"))
    }
}

fn cmd_analyze(args: &[String]) -> Result<ExitCode, CliError> {
    let [shapes_path, rest @ ..] = args else {
        return Err(usage().into());
    };
    if !rest.iter().all(|a| a == "--json") {
        return Err(usage().into());
    }
    let as_json = !rest.is_empty();
    let text = std::fs::read_to_string(shapes_path)
        .map_err(|e| format!("cannot read {shapes_path}: {e}"))?;
    // The defs entry point tolerates reference cycles, which the analyzer
    // itself reports (SF-E020/E021) instead of failing to load.
    let (defs, spans) =
        parse_shape_defs_turtle(&text).map_err(|e| format!("{shapes_path}: {e}"))?;
    let diags = analyze_defs(&defs, Some(&spans));
    if as_json {
        print!("{}", to_json(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
        println!(
            "{} shape definition(s) analyzed: {} finding(s)",
            defs.len(),
            diags.len()
        );
    }
    Ok(if has_deny(&diags) {
        ExitCode::from(3)
    } else {
        ExitCode::SUCCESS
    })
}

fn cmd_validate(args: &[String]) -> Result<ExitCode, CliError> {
    let (threads, args) = take_threads(args)?;
    let [shapes_path, data_path, rest @ ..] = args.as_slice() else {
        return Err(usage().into());
    };
    let as_ttl = rest.iter().any(|a| a == "--report-ttl");
    let schema = load_schema(shapes_path)?;
    let data = load_data(data_path)?;
    // Validation is read-only: run it over the CSR snapshot. With more
    // than one worker, the cost-routed work-stealing engine produces the
    // identical report.
    let frozen = data.freeze();
    let report = if threads > 1 {
        validate_batch_par(&schema, &frozen, threads)
    } else {
        validate(&schema, &frozen)
    };
    if as_ttl {
        let graph = report.to_graph();
        print!(
            "{}",
            turtle::serialize(&graph, &[("sh", shape_fragments::rdf::vocab::SH_NS)])
        );
    } else {
        println!("{report}");
    }
    Ok(if report.conforms() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_fragment(args: &[String]) -> Result<ExitCode, CliError> {
    let (threads, args) = take_threads(args)?;
    let [shapes_path, data_path, rest @ ..] = args.as_slice() else {
        return Err(usage().into());
    };
    let schema = load_schema(shapes_path)?;
    let data = load_data(data_path)?;
    // Extraction reads the graph many times over: freeze once up front.
    let frozen = data.freeze();
    let fragment = if threads > 1 {
        fragment_par(&schema, &frozen, &schema.request_shapes(), threads)
    } else {
        schema_fragment(&schema, &frozen)
    };
    eprintln!(
        "fragment: {} of {} triples ({} shape definitions)",
        fragment.len(),
        data.len(),
        schema.len()
    );
    let text = ntriples::serialize(&fragment);
    match rest {
        [] => {
            print!("{text}");
        }
        [flag, out_path] if flag == "-o" => {
            std::fs::write(out_path, &text).map_err(|e| format!("cannot write {out_path}: {e}"))?;
            eprintln!("written to {out_path}");
        }
        _ => return Err(usage().into()),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_explain(args: &[String]) -> Result<ExitCode, CliError> {
    let [shapes_path, data_path, node_iri, rest @ ..] = args else {
        return Err(usage().into());
    };
    let schema = load_schema(shapes_path)?;
    let data = load_data(data_path)?;
    let node = Term::iri(node_iri.trim_start_matches('<').trim_end_matches('>'));
    let defs: Vec<_> = match rest {
        [] => schema.iter().collect(),
        [name] => {
            let name = Term::iri(name.trim_start_matches('<').trim_end_matches('>'));
            let def = schema
                .get(&name)
                .ok_or_else(|| format!("no shape named {name} in the schema"))?;
            vec![def]
        }
        _ => return Err(usage().into()),
    };
    let mut all_conform = true;
    for def in defs {
        let e = explain(&schema, &data, &node, &Shape::HasShape(def.name.clone()));
        let verdict = if e.conforms() {
            "conforms to"
        } else {
            all_conform = false;
            "VIOLATES"
        };
        println!("{node} {verdict} {}", def.name);
        if e.subgraph().is_empty() {
            println!("  (no witnessing triples)");
        } else {
            for t in e.subgraph().iter() {
                println!("  {t}");
            }
        }
    }
    Ok(if all_conform {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_translate(args: &[String]) -> Result<ExitCode, CliError> {
    let [shapes_path, rest @ ..] = args else {
        return Err(usage().into());
    };
    let schema = load_schema(shapes_path)?;
    let shapes: Vec<Shape> = match rest {
        [] => schema.request_shapes(),
        [name] => {
            let name = Term::iri(name.trim_start_matches('<').trim_end_matches('>'));
            let def = schema
                .get(&name)
                .ok_or_else(|| format!("no shape named {name} in the schema"))?;
            vec![def.shape.clone().and(def.target.clone())]
        }
        _ => return Err(usage().into()),
    };
    let query = to_sparql::fragment_query(&schema, &shapes);
    println!("{query}");
    Ok(ExitCode::SUCCESS)
}
