//! `shapefrag` — command-line interface to the shape-fragments stack.
//!
//! ```text
//! shapefrag validate  <shapes.ttl> <data.(ttl|nt)> [--report-ttl]
//! shapefrag fragment  <shapes.ttl> <data.(ttl|nt)> [-o out.nt]
//! shapefrag explain   <shapes.ttl> <data.(ttl|nt)> <focus-node-iri> [<shape-name-iri>]
//! shapefrag translate <shapes.ttl> [<shape-name-iri>]
//! ```
//!
//! - `validate` prints a validation report (optionally as a standard
//!   `sh:ValidationReport` Turtle document).
//! - `fragment` computes the schema's shape fragment `Frag(G, H)` and
//!   writes it as N-Triples (stdout or `-o`).
//! - `explain` prints why/why-not provenance for one focus node.
//! - `translate` prints the generated SPARQL fragment query (§5.1).

use std::process::ExitCode;

use shape_fragments::core::{explain, schema_fragment, to_sparql};
use shape_fragments::rdf::{ntriples, turtle, Graph, Term};
use shape_fragments::shacl::parser::parse_shapes_turtle;
use shape_fragments::shacl::validator::validate;
use shape_fragments::shacl::{Schema, Shape};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}

fn usage() -> String {
    "usage:\n  shapefrag validate  <shapes.ttl> <data.(ttl|nt)> [--report-ttl]\n  \
     shapefrag fragment  <shapes.ttl> <data.(ttl|nt)> [-o out.nt]\n  \
     shapefrag explain   <shapes.ttl> <data.(ttl|nt)> <focus-node-iri> [<shape-name-iri>]\n  \
     shapefrag translate <shapes.ttl> [<shape-name-iri>]"
        .to_string()
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(command) = args.first() else {
        return Err(usage());
    };
    match command.as_str() {
        "validate" => cmd_validate(&args[1..]),
        "fragment" => cmd_fragment(&args[1..]),
        "explain" => cmd_explain(&args[1..]),
        "translate" => cmd_translate(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command '{other}'\n{}", usage())),
    }
}

fn load_schema(path: &str) -> Result<Schema, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_shapes_turtle(&text).map_err(|e| format!("{path}: {e}"))
}

fn load_data(path: &str) -> Result<Graph, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if path.ends_with(".nt") || path.ends_with(".ntriples") {
        ntriples::parse(&text).map_err(|e| format!("{path}: {e}"))
    } else {
        turtle::parse(&text).map_err(|e| format!("{path}: {e}"))
    }
}

fn cmd_validate(args: &[String]) -> Result<ExitCode, String> {
    let [shapes_path, data_path, rest @ ..] = args else {
        return Err(usage());
    };
    let as_ttl = rest.iter().any(|a| a == "--report-ttl");
    let schema = load_schema(shapes_path)?;
    let data = load_data(data_path)?;
    // Validation is read-only: run it over the CSR snapshot.
    let report = validate(&schema, &data.freeze());
    if as_ttl {
        let graph = report.to_graph();
        print!(
            "{}",
            turtle::serialize(&graph, &[("sh", shape_fragments::rdf::vocab::SH_NS)])
        );
    } else {
        println!("{report}");
    }
    Ok(if report.conforms() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_fragment(args: &[String]) -> Result<ExitCode, String> {
    let [shapes_path, data_path, rest @ ..] = args else {
        return Err(usage());
    };
    let schema = load_schema(shapes_path)?;
    let data = load_data(data_path)?;
    // Extraction reads the graph many times over: freeze once up front.
    let fragment = schema_fragment(&schema, &data.freeze());
    eprintln!(
        "fragment: {} of {} triples ({} shape definitions)",
        fragment.len(),
        data.len(),
        schema.len()
    );
    let text = ntriples::serialize(&fragment);
    match rest {
        [] => {
            print!("{text}");
        }
        [flag, out_path] if flag == "-o" => {
            std::fs::write(out_path, &text).map_err(|e| format!("cannot write {out_path}: {e}"))?;
            eprintln!("written to {out_path}");
        }
        _ => return Err(usage()),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_explain(args: &[String]) -> Result<ExitCode, String> {
    let [shapes_path, data_path, node_iri, rest @ ..] = args else {
        return Err(usage());
    };
    let schema = load_schema(shapes_path)?;
    let data = load_data(data_path)?;
    let node = Term::iri(node_iri.trim_start_matches('<').trim_end_matches('>'));
    let defs: Vec<_> = match rest {
        [] => schema.iter().collect(),
        [name] => {
            let name = Term::iri(name.trim_start_matches('<').trim_end_matches('>'));
            let def = schema
                .get(&name)
                .ok_or_else(|| format!("no shape named {name} in the schema"))?;
            vec![def]
        }
        _ => return Err(usage()),
    };
    let mut all_conform = true;
    for def in defs {
        let e = explain(&schema, &data, &node, &Shape::HasShape(def.name.clone()));
        let verdict = if e.conforms() {
            "conforms to"
        } else {
            all_conform = false;
            "VIOLATES"
        };
        println!("{node} {verdict} {}", def.name);
        if e.subgraph().is_empty() {
            println!("  (no witnessing triples)");
        } else {
            for t in e.subgraph().iter() {
                println!("  {t}");
            }
        }
    }
    Ok(if all_conform {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_translate(args: &[String]) -> Result<ExitCode, String> {
    let [shapes_path, rest @ ..] = args else {
        return Err(usage());
    };
    let schema = load_schema(shapes_path)?;
    let shapes: Vec<Shape> = match rest {
        [] => schema.request_shapes(),
        [name] => {
            let name = Term::iri(name.trim_start_matches('<').trim_end_matches('>'));
            let def = schema
                .get(&name)
                .ok_or_else(|| format!("no shape named {name} in the schema"))?;
            vec![def.shape.clone().and(def.target.clone())]
        }
        _ => return Err(usage()),
    };
    let query = to_sparql::fragment_query(&schema, &shapes);
    println!("{query}");
    Ok(ExitCode::SUCCESS)
}
