//! Facade crate re-exporting the full shape-fragments stack.
#![forbid(unsafe_code)]
pub use shapefrag_analyze as analyze;
pub use shapefrag_core as core;
pub use shapefrag_govern as govern;
pub use shapefrag_rdf as rdf;
pub use shapefrag_serve as serve;
pub use shapefrag_shacl as shacl;
pub use shapefrag_sparql as sparql;
pub use shapefrag_workloads as workloads;
