//! Minimal offline stand-in for [`parking_lot`], backed by `std::sync`.
//!
//! Exposes the subset of the API this workspace uses: [`RwLock`] and
//! [`Mutex`] with panic-free (non-poisoning) `lock`/`read`/`write`. Lock
//! poisoning is translated into propagating the inner data anyway, which
//! matches `parking_lot` semantics (it has no poisoning at all).
#![forbid(unsafe_code)]

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A reader-writer lock with the `parking_lot` API shape.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new unlocked `RwLock`.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard (never errors; poison is ignored).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write guard (never errors; poison is ignored).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A mutual-exclusion lock with the `parking_lot` API shape.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new unlocked `Mutex`.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock (never errors; poison is ignored).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn rwlock_shared_across_threads() {
        let lock = RwLock::new(0usize);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        *lock.write() += 1;
                    }
                });
            }
        });
        assert_eq!(*lock.read(), 400);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }
}
