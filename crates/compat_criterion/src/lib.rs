//! Minimal offline stand-in for [`criterion`].
//!
//! Provides the benchmark-definition API this workspace's benches use
//! (`criterion_group!` / `criterion_main!`, `Criterion`, benchmark groups,
//! `BenchmarkId`, `Throughput`, `Bencher::iter`, `black_box`) with a
//! simple wall-clock sampler: after a short warm-up to estimate iteration
//! cost, it takes `sample_size` timed batches within `measurement_time`
//! and reports the median per-iteration time. No HTML reports, no
//! statistical regression analysis.
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver and configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Accepted for CLI compatibility; filtering is not implemented.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.clone(),
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let config = self.clone();
        run_benchmark(&name.into(), &config, f);
        self
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Criterion,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; throughput rates are not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_benchmark(&full, &self.config, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_benchmark(&full, &self.config, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Anything usable as a benchmark id (a `BenchmarkId` or plain string).
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Input-size annotation (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Passed to benchmark closures; `iter` times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_one<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, config: &Criterion, mut f: F) {
    // Warm up and estimate per-iteration cost, growing the batch until the
    // warm-up budget is spent.
    let mut iters: u64 = 1;
    let mut per_iter;
    let warm_up_start = Instant::now();
    loop {
        let elapsed = time_one(&mut f, iters);
        per_iter = elapsed.checked_div(iters as u32).unwrap_or(Duration::ZERO);
        if warm_up_start.elapsed() >= config.warm_up_time {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    if per_iter.is_zero() {
        per_iter = Duration::from_nanos(1);
    }

    // Size each sample so the full run fits the measurement budget.
    let budget_per_sample = config.measurement_time / config.sample_size as u32;
    let iters_per_sample = (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1))
        .clamp(1, u64::MAX as u128) as u64;

    let mut samples: Vec<Duration> = (0..config.sample_size)
        .map(|_| {
            let elapsed = time_one(&mut f, iters_per_sample);
            elapsed
                .checked_div(iters_per_sample as u32)
                .unwrap_or(Duration::ZERO)
        })
        .collect();
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!(
        "{name:<56} time: [{} {} {}]",
        format_duration(min),
        format_duration(median),
        format_duration(max),
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Defines a benchmark group function; both the `name/config/targets` form
/// and the positional form are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Defines `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_without_panicking() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("smoke");
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, n| b.iter(|| n * 2));
        group.finish();
        c.bench_function("top-level", |b| b.iter(|| 1 + 1));
    }
}
