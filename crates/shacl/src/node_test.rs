//! Node tests: the paper's abstract set Ω of tests on individual nodes.
//!
//! A node test is evaluated on a single node without looking at the graph
//! (which is why neighborhoods of `test(t)` shapes are empty, §3.1). The
//! concrete tests here correspond to SHACL's value-type, value-range and
//! string-based constraint components (Appendix A.1.3/A.1.5).

use std::cmp::Ordering;
use std::fmt;

use shapefrag_rdf::{Iri, Literal, Term};

use crate::regex::Pattern;

/// SHACL node kinds (`sh:nodeKind`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeKind {
    Iri,
    BlankNode,
    Literal,
    BlankNodeOrIri,
    BlankNodeOrLiteral,
    IriOrLiteral,
}

impl NodeKind {
    /// True iff `node` is of this kind.
    pub fn matches(&self, node: &Term) -> bool {
        match self {
            NodeKind::Iri => node.is_iri(),
            NodeKind::BlankNode => node.is_blank(),
            NodeKind::Literal => node.is_literal(),
            NodeKind::BlankNodeOrIri => node.is_blank() || node.is_iri(),
            NodeKind::BlankNodeOrLiteral => node.is_blank() || node.is_literal(),
            NodeKind::IriOrLiteral => node.is_iri() || node.is_literal(),
        }
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A node test `t ∈ Ω`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeTest {
    /// `sh:nodeKind`.
    Kind(NodeKind),
    /// `sh:datatype` — literal with exactly this datatype IRI. Language
    /// tagged strings have datatype `rdf:langString`.
    Datatype(Iri),
    /// `sh:minExclusive` — node is a literal strictly greater than the
    /// bound under the value order.
    MinExclusive(Literal),
    /// `sh:minInclusive`.
    MinInclusive(Literal),
    /// `sh:maxExclusive`.
    MaxExclusive(Literal),
    /// `sh:maxInclusive`.
    MaxInclusive(Literal),
    /// `sh:minLength` — length of the string representation (IRI string or
    /// literal lexical form; blank nodes never match).
    MinLength(u32),
    /// `sh:maxLength`.
    MaxLength(u32),
    /// `sh:pattern` — string representation matches the regular expression.
    Pattern(Pattern),
    /// One element of `sh:languageIn` — literal has a language tag matching
    /// this basic language range (exact or prefix, e.g. `en` matches
    /// `en-GB`).
    Language(String),
}

impl NodeTest {
    /// Compiles a `sh:pattern` test.
    pub fn pattern(source: &str, flags: &str) -> Result<NodeTest, crate::regex::RegexError> {
        Ok(NodeTest::Pattern(Pattern::compile(source, flags)?))
    }

    /// Evaluates the test on a node: the paper's "a satisfies t".
    pub fn satisfied_by(&self, node: &Term) -> bool {
        match self {
            NodeTest::Kind(kind) => kind.matches(node),
            NodeTest::Datatype(dt) => match node {
                Term::Literal(lit) => lit.datatype() == dt,
                _ => false,
            },
            NodeTest::MinExclusive(bound) => {
                compare_to_bound(node, bound) == Some(Ordering::Greater)
            }
            NodeTest::MinInclusive(bound) => {
                compare_to_bound(node, bound).is_some_and(|o| o != Ordering::Less)
            }
            NodeTest::MaxExclusive(bound) => compare_to_bound(node, bound) == Some(Ordering::Less),
            NodeTest::MaxInclusive(bound) => {
                compare_to_bound(node, bound).is_some_and(|o| o != Ordering::Greater)
            }
            NodeTest::MinLength(n) => {
                string_repr(node).is_some_and(|s| s.chars().count() as u32 >= *n)
            }
            NodeTest::MaxLength(n) => {
                string_repr(node).is_some_and(|s| s.chars().count() as u32 <= *n)
            }
            NodeTest::Pattern(p) => string_repr(node).is_some_and(|s| p.is_match(s)),
            NodeTest::Language(range) => match node {
                Term::Literal(lit) => lit.language().is_some_and(|tag| lang_matches(tag, range)),
                _ => false,
            },
        }
    }
}

impl fmt::Display for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTest::Kind(k) => write!(f, "nodeKind={k:?}"),
            NodeTest::Datatype(dt) => write!(f, "datatype={dt}"),
            NodeTest::MinExclusive(b) => write!(f, "minExclusive={b}"),
            NodeTest::MinInclusive(b) => write!(f, "minInclusive={b}"),
            NodeTest::MaxExclusive(b) => write!(f, "maxExclusive={b}"),
            NodeTest::MaxInclusive(b) => write!(f, "maxInclusive={b}"),
            NodeTest::MinLength(n) => write!(f, "minLength={n}"),
            NodeTest::MaxLength(n) => write!(f, "maxLength={n}"),
            NodeTest::Pattern(p) => write!(f, "pattern={p:?}"),
            NodeTest::Language(l) => write!(f, "lang={l}"),
        }
    }
}

/// Compares a node to a literal bound; `None` if the node is not a literal
/// or the values are incomparable.
fn compare_to_bound(node: &Term, bound: &Literal) -> Option<Ordering> {
    match node {
        Term::Literal(lit) => lit.value().partial_cmp_value(&bound.value()),
        _ => None,
    }
}

/// The string representation used by length/pattern tests: the IRI string
/// or a literal's lexical form. Blank nodes have none.
fn string_repr(node: &Term) -> Option<&str> {
    match node {
        Term::Iri(iri) => Some(iri.as_str()),
        Term::Literal(lit) => Some(lit.lexical()),
        Term::Blank(_) => None,
    }
}

/// Basic language-range matching (RFC 4647 §2.1 basic filtering): the range
/// equals the tag or is a prefix of it followed by `-`. Both sides are
/// already lower-cased.
fn lang_matches(tag: &str, range: &str) -> bool {
    let range = range.to_ascii_lowercase();
    tag == range
        || (tag.len() > range.len()
            && tag.starts_with(&range)
            && tag.as_bytes()[range.len()] == b'-')
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapefrag_rdf::vocab::xsd;

    #[test]
    fn node_kinds() {
        let iri = Term::iri("http://e/a");
        let blank = Term::blank("b");
        let lit = Term::Literal(Literal::string("x"));
        assert!(NodeTest::Kind(NodeKind::Iri).satisfied_by(&iri));
        assert!(!NodeTest::Kind(NodeKind::Iri).satisfied_by(&lit));
        assert!(NodeTest::Kind(NodeKind::BlankNodeOrIri).satisfied_by(&blank));
        assert!(NodeTest::Kind(NodeKind::BlankNodeOrIri).satisfied_by(&iri));
        assert!(!NodeTest::Kind(NodeKind::BlankNodeOrIri).satisfied_by(&lit));
        assert!(NodeTest::Kind(NodeKind::IriOrLiteral).satisfied_by(&lit));
        assert!(NodeTest::Kind(NodeKind::BlankNodeOrLiteral).satisfied_by(&lit));
    }

    #[test]
    fn datatype_test() {
        let int = Term::Literal(Literal::integer(5));
        assert!(NodeTest::Datatype(xsd::integer()).satisfied_by(&int));
        assert!(!NodeTest::Datatype(xsd::string()).satisfied_by(&int));
        assert!(!NodeTest::Datatype(xsd::integer()).satisfied_by(&Term::iri("http://e/a")));
        let lang = Term::Literal(Literal::lang_string("x", "en"));
        assert!(NodeTest::Datatype(shapefrag_rdf::vocab::rdf::lang_string()).satisfied_by(&lang));
    }

    #[test]
    fn value_ranges() {
        let five = Term::Literal(Literal::integer(5));
        assert!(NodeTest::MinExclusive(Literal::integer(4)).satisfied_by(&five));
        assert!(!NodeTest::MinExclusive(Literal::integer(5)).satisfied_by(&five));
        assert!(NodeTest::MinInclusive(Literal::integer(5)).satisfied_by(&five));
        assert!(NodeTest::MaxExclusive(Literal::integer(6)).satisfied_by(&five));
        assert!(!NodeTest::MaxExclusive(Literal::integer(5)).satisfied_by(&five));
        assert!(NodeTest::MaxInclusive(Literal::integer(5)).satisfied_by(&five));
        // Incomparable values fail.
        let s = Term::Literal(Literal::string("5"));
        assert!(!NodeTest::MinInclusive(Literal::integer(1)).satisfied_by(&s));
        assert!(!NodeTest::MinInclusive(Literal::integer(1)).satisfied_by(&Term::iri("http://e/a")));
    }

    #[test]
    fn lengths_apply_to_iris_and_literals() {
        assert!(NodeTest::MinLength(3).satisfied_by(&Term::Literal(Literal::string("abc"))));
        assert!(!NodeTest::MinLength(4).satisfied_by(&Term::Literal(Literal::string("abc"))));
        assert!(NodeTest::MaxLength(20).satisfied_by(&Term::iri("http://e/a")));
        assert!(!NodeTest::MaxLength(2).satisfied_by(&Term::iri("http://e/a")));
        assert!(!NodeTest::MinLength(0).satisfied_by(&Term::blank("b")));
    }

    #[test]
    fn pattern_test() {
        let t = NodeTest::pattern("^\\d+$", "").unwrap();
        assert!(t.satisfied_by(&Term::Literal(Literal::string("123"))));
        assert!(!t.satisfied_by(&Term::Literal(Literal::string("12a"))));
        let t = NodeTest::pattern("^https://", "").unwrap();
        assert!(t.satisfied_by(&Term::iri("https://e/a")));
    }

    #[test]
    fn language_ranges() {
        let en_gb = Term::Literal(Literal::lang_string("colour", "en-GB"));
        assert!(NodeTest::Language("en".into()).satisfied_by(&en_gb));
        assert!(NodeTest::Language("en-gb".into()).satisfied_by(&en_gb));
        assert!(!NodeTest::Language("en-us".into()).satisfied_by(&en_gb));
        assert!(!NodeTest::Language("e".into()).satisfied_by(&en_gb));
        assert!(!NodeTest::Language("en".into()).satisfied_by(&Term::Literal(Literal::string("x"))));
    }
}
