//! The shape algebra: the paper's formal syntax for SHACL shapes (§2).
//!
//! ```text
//! F := E | id
//! φ := ⊤ | ⊥ | hasShape(s) | test(t) | hasValue(c)
//!    | eq(F, p) | disj(F, p) | closed(P)
//!    | lessThan(E, p) | lessThanEq(E, p) | uniqueLang(E)
//!    | ¬φ | φ ∧ φ | φ ∨ φ
//!    | ≥n E.φ | ≤n E.φ | ∀E.φ
//! ```
//!
//! Conjunction and disjunction are represented n-ary for convenience; the
//! empty conjunction is ⊤ and the empty disjunction is ⊥.

use std::collections::BTreeSet;
use std::fmt;

use shapefrag_rdf::{Iri, Term};

use crate::node_test::NodeTest;
use crate::path::PathExpr;

/// The argument `F` of `eq` and `disj`: either a path expression or the
/// keyword `id` denoting the focus node itself (Remark 2.1 — this reflects
/// SHACL's node-shape vs. property-shape distinction).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PathOrId {
    /// The focus node itself.
    Id,
    /// Nodes reachable by the path expression.
    Path(PathExpr),
}

impl fmt::Display for PathOrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathOrId::Id => write!(f, "id"),
            PathOrId::Path(e) => write!(f, "{e}"),
        }
    }
}

/// A shape φ.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Shape {
    /// ⊤ — satisfied by every node.
    True,
    /// ⊥ — satisfied by no node.
    False,
    /// `hasShape(s)` — reference to a named shape; `s ∈ I ∪ B`.
    HasShape(Term),
    /// `test(t)` — the focus node satisfies node test `t`.
    Test(NodeTest),
    /// `hasValue(c)` — the focus node is exactly the node `c`.
    HasValue(Term),
    /// `eq(F, p)` — `⟦F⟧(a)` equals `⟦p⟧(a)`.
    Eq(PathOrId, Iri),
    /// `disj(F, p)` — `⟦F⟧(a)` and `⟦p⟧(a)` are disjoint.
    Disj(PathOrId, Iri),
    /// `closed(P)` — every triple `(a, p, b)` has `p ∈ P`.
    Closed(BTreeSet<Iri>),
    /// `lessThan(E, p)` — `b < c` for all `b ∈ ⟦E⟧(a)`, `c ∈ ⟦p⟧(a)`.
    LessThan(PathExpr, Iri),
    /// `lessThanEq(E, p)`.
    LessThanEq(PathExpr, Iri),
    /// Extension (Remark 2.3): `moreThan(E, p)` — `b > c` for all
    /// `b ∈ ⟦E⟧(a)`, `c ∈ ⟦p⟧(a)`. Not in the SHACL recommendation, but
    /// the paper notes the treatment extends easily; note it is *not*
    /// equivalent to `¬lessThanEq(E, p)`.
    MoreThan(PathExpr, Iri),
    /// Extension (Remark 2.3): `moreThanEq(E, p)`.
    MoreThanEq(PathExpr, Iri),
    /// `uniqueLang(E)` — no two distinct `E`-values share a language tag.
    UniqueLang(PathExpr),
    /// ¬φ.
    Not(Box<Shape>),
    /// φ₁ ∧ … ∧ φₙ (⊤ when empty).
    And(Vec<Shape>),
    /// φ₁ ∨ … ∨ φₙ (⊥ when empty).
    Or(Vec<Shape>),
    /// ≥n E.φ — at least `n` `E`-reachable nodes conform to φ.
    Geq(u32, PathExpr, Box<Shape>),
    /// ≤n E.φ — at most `n` `E`-reachable nodes conform to φ.
    Leq(u32, PathExpr, Box<Shape>),
    /// ∀E.φ — every `E`-reachable node conforms to φ.
    ForAll(PathExpr, Box<Shape>),
}

impl Shape {
    /// `hasValue(c)`.
    pub fn has_value(c: impl Into<Term>) -> Self {
        Shape::HasValue(c.into())
    }

    /// `hasShape(s)` by IRI name.
    pub fn has_shape(s: impl Into<Iri>) -> Self {
        Shape::HasShape(Term::Iri(s.into()))
    }

    /// ≥n E.φ.
    pub fn geq(n: u32, path: PathExpr, inner: Shape) -> Self {
        Shape::Geq(n, path, Box::new(inner))
    }

    /// ≤n E.φ.
    pub fn leq(n: u32, path: PathExpr, inner: Shape) -> Self {
        Shape::Leq(n, path, Box::new(inner))
    }

    /// ∀E.φ.
    pub fn for_all(path: PathExpr, inner: Shape) -> Self {
        Shape::ForAll(path, Box::new(inner))
    }

    /// ¬φ.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Shape::Not(Box::new(self))
    }

    /// φ ∧ ψ (flattening nested conjunctions).
    pub fn and(self, other: Shape) -> Self {
        match (self, other) {
            (Shape::And(mut a), Shape::And(b)) => {
                a.extend(b);
                Shape::And(a)
            }
            (Shape::And(mut a), b) => {
                a.push(b);
                Shape::And(a)
            }
            (a, Shape::And(mut b)) => {
                b.insert(0, a);
                Shape::And(b)
            }
            (a, b) => Shape::And(vec![a, b]),
        }
    }

    /// φ ∨ ψ (flattening nested disjunctions).
    pub fn or(self, other: Shape) -> Self {
        match (self, other) {
            (Shape::Or(mut a), Shape::Or(b)) => {
                a.extend(b);
                Shape::Or(a)
            }
            (Shape::Or(mut a), b) => {
                a.push(b);
                Shape::Or(a)
            }
            (a, Shape::Or(mut b)) => {
                b.insert(0, a);
                Shape::Or(b)
            }
            (a, b) => Shape::Or(vec![a, b]),
        }
    }

    /// The conjunction of a list of shapes (⊤ when empty, unwrapped when
    /// singleton).
    pub fn conj(mut shapes: Vec<Shape>) -> Self {
        match shapes.len() {
            0 => Shape::True,
            1 => shapes.pop().unwrap(),
            _ => Shape::And(shapes),
        }
    }

    /// The disjunction of a list of shapes (⊥ when empty, unwrapped when
    /// singleton).
    pub fn disj_of(mut shapes: Vec<Shape>) -> Self {
        match shapes.len() {
            0 => Shape::False,
            1 => shapes.pop().unwrap(),
            _ => Shape::Or(shapes),
        }
    }

    /// All shape names referenced via `hasShape` anywhere in this shape.
    pub fn referenced_shapes(&self) -> Vec<&Term> {
        let mut out = Vec::new();
        self.collect_refs(&mut out);
        out
    }

    fn collect_refs<'a>(&'a self, out: &mut Vec<&'a Term>) {
        match self {
            Shape::HasShape(name) => out.push(name),
            Shape::Not(inner) => inner.collect_refs(out),
            Shape::And(items) | Shape::Or(items) => {
                for s in items {
                    s.collect_refs(out);
                }
            }
            Shape::Geq(_, _, inner) | Shape::Leq(_, _, inner) | Shape::ForAll(_, inner) => {
                inner.collect_refs(out)
            }
            _ => {}
        }
    }

    /// True iff the shape is *monotone*: conformance is preserved when
    /// triples are added to the graph (§4). This is a sufficient syntactic
    /// criterion covering all real SHACL target forms: `⊤`, `hasValue`,
    /// `test`, `≥n E.φ` with monotone φ, and conjunctions/disjunctions of
    /// monotone shapes.
    pub fn is_monotone_syntactically(&self) -> bool {
        match self {
            Shape::True | Shape::False | Shape::HasValue(_) | Shape::Test(_) => true,
            Shape::Geq(_, _, inner) => inner.is_monotone_syntactically(),
            Shape::And(items) | Shape::Or(items) => {
                items.iter().all(Shape::is_monotone_syntactically)
            }
            _ => false,
        }
    }

    /// Size of the shape (number of AST nodes), used to bound generated
    /// test inputs and report translation sizes.
    pub fn size(&self) -> usize {
        match self {
            Shape::Not(inner) => 1 + inner.size(),
            Shape::And(items) | Shape::Or(items) => {
                1 + items.iter().map(Shape::size).sum::<usize>()
            }
            Shape::Geq(_, _, inner) | Shape::Leq(_, _, inner) | Shape::ForAll(_, inner) => {
                1 + inner.size()
            }
            _ => 1,
        }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Shape::True => write!(f, "⊤"),
            Shape::False => write!(f, "⊥"),
            Shape::HasShape(s) => write!(f, "hasShape({s})"),
            Shape::Test(t) => write!(f, "test({t})"),
            Shape::HasValue(c) => write!(f, "hasValue({c})"),
            Shape::Eq(e, p) => write!(f, "eq({e}, {p})"),
            Shape::Disj(e, p) => write!(f, "disj({e}, {p})"),
            Shape::Closed(ps) => {
                write!(f, "closed({{")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, "}})")
            }
            Shape::LessThan(e, p) => write!(f, "lessThan({e}, {p})"),
            Shape::LessThanEq(e, p) => write!(f, "lessThanEq({e}, {p})"),
            Shape::MoreThan(e, p) => write!(f, "moreThan({e}, {p})"),
            Shape::MoreThanEq(e, p) => write!(f, "moreThanEq({e}, {p})"),
            Shape::UniqueLang(e) => write!(f, "uniqueLang({e})"),
            Shape::Not(inner) => write!(f, "¬({inner})"),
            Shape::And(items) => {
                write!(f, "(")?;
                for (i, s) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{s}")?;
                }
                write!(f, ")")
            }
            Shape::Or(items) => {
                write!(f, "(")?;
                for (i, s) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{s}")?;
                }
                write!(f, ")")
            }
            Shape::Geq(n, e, inner) => write!(f, "≥{n} {e}.({inner})"),
            Shape::Leq(n, e, inner) => write!(f, "≤{n} {e}.({inner})"),
            Shape::ForAll(e, inner) => write!(f, "∀{e}.({inner})"),
        }
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(name: &str) -> PathExpr {
        PathExpr::prop(format!("http://e/{name}"))
    }

    #[test]
    fn builders_flatten() {
        let s = Shape::True.and(Shape::False).and(Shape::True);
        assert!(matches!(&s, Shape::And(items) if items.len() == 3));
        let s = Shape::True.or(Shape::False).or(Shape::True);
        assert!(matches!(&s, Shape::Or(items) if items.len() == 3));
    }

    #[test]
    fn conj_and_disj_edge_cases() {
        assert_eq!(Shape::conj(vec![]), Shape::True);
        assert_eq!(Shape::disj_of(vec![]), Shape::False);
        assert_eq!(Shape::conj(vec![Shape::False]), Shape::False);
    }

    #[test]
    fn referenced_shapes_found_at_depth() {
        let s = Shape::geq(
            1,
            p("a"),
            Shape::has_shape("http://e/S").and(Shape::has_shape("http://e/T").not()),
        );
        assert_eq!(s.referenced_shapes().len(), 2);
    }

    #[test]
    fn monotone_recognition() {
        assert!(Shape::geq(1, p("a"), Shape::True).is_monotone_syntactically());
        assert!(Shape::has_value(Term::iri("http://e/c")).is_monotone_syntactically());
        // Class target: ≥1 type/subclass*.hasValue(c)
        let class_target = Shape::geq(
            1,
            p("type").then(p("sub").star()),
            Shape::has_value(Term::iri("http://e/C")),
        );
        assert!(class_target.is_monotone_syntactically());
        assert!(!Shape::leq(0, p("a"), Shape::True).is_monotone_syntactically());
        assert!(!Shape::geq(1, p("a"), Shape::True)
            .not()
            .is_monotone_syntactically());
        assert!(!Shape::for_all(p("a"), Shape::True).is_monotone_syntactically());
    }

    #[test]
    fn display_is_readable() {
        let s = Shape::geq(1, p("author"), Shape::has_value(Term::iri("http://e/x")));
        assert_eq!(
            s.to_string(),
            "≥1 <http://e/author>.(hasValue(<http://e/x>))"
        );
    }

    #[test]
    fn size_counts_nodes() {
        let s = Shape::geq(1, p("a"), Shape::True.and(Shape::False));
        assert_eq!(s.size(), 4);
    }
}
