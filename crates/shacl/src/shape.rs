//! The shape algebra: the paper's formal syntax for SHACL shapes (§2).
//!
//! ```text
//! F := E | id
//! φ := ⊤ | ⊥ | hasShape(s) | test(t) | hasValue(c)
//!    | eq(F, p) | disj(F, p) | closed(P)
//!    | lessThan(E, p) | lessThanEq(E, p) | uniqueLang(E)
//!    | ¬φ | φ ∧ φ | φ ∨ φ
//!    | ≥n E.φ | ≤n E.φ | ∀E.φ
//! ```
//!
//! Conjunction and disjunction are represented n-ary for convenience; the
//! empty conjunction is ⊤ and the empty disjunction is ⊥.

use std::collections::BTreeSet;
use std::fmt;
use std::mem;

use shapefrag_rdf::{Iri, Term};

use crate::node_test::NodeTest;
use crate::path::PathExpr;

/// The argument `F` of `eq` and `disj`: either a path expression or the
/// keyword `id` denoting the focus node itself (Remark 2.1 — this reflects
/// SHACL's node-shape vs. property-shape distinction).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PathOrId {
    /// The focus node itself.
    Id,
    /// Nodes reachable by the path expression.
    Path(PathExpr),
}

impl fmt::Display for PathOrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathOrId::Id => write!(f, "id"),
            PathOrId::Path(e) => write!(f, "{e}"),
        }
    }
}

/// A shape φ.
///
/// `Clone` and `Drop` are implemented iteratively (worklist, not
/// recursion) so that pathologically deep shapes — e.g. a 100 000-level
/// `Geq` chain from a hostile schema — never overflow the thread stack.
#[derive(PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Shape {
    /// ⊤ — satisfied by every node.
    True,
    /// ⊥ — satisfied by no node.
    False,
    /// `hasShape(s)` — reference to a named shape; `s ∈ I ∪ B`.
    HasShape(Term),
    /// `test(t)` — the focus node satisfies node test `t`.
    Test(NodeTest),
    /// `hasValue(c)` — the focus node is exactly the node `c`.
    HasValue(Term),
    /// `eq(F, p)` — `⟦F⟧(a)` equals `⟦p⟧(a)`.
    Eq(PathOrId, Iri),
    /// `disj(F, p)` — `⟦F⟧(a)` and `⟦p⟧(a)` are disjoint.
    Disj(PathOrId, Iri),
    /// `closed(P)` — every triple `(a, p, b)` has `p ∈ P`.
    Closed(BTreeSet<Iri>),
    /// `lessThan(E, p)` — `b < c` for all `b ∈ ⟦E⟧(a)`, `c ∈ ⟦p⟧(a)`.
    LessThan(PathExpr, Iri),
    /// `lessThanEq(E, p)`.
    LessThanEq(PathExpr, Iri),
    /// Extension (Remark 2.3): `moreThan(E, p)` — `b > c` for all
    /// `b ∈ ⟦E⟧(a)`, `c ∈ ⟦p⟧(a)`. Not in the SHACL recommendation, but
    /// the paper notes the treatment extends easily; note it is *not*
    /// equivalent to `¬lessThanEq(E, p)`.
    MoreThan(PathExpr, Iri),
    /// Extension (Remark 2.3): `moreThanEq(E, p)`.
    MoreThanEq(PathExpr, Iri),
    /// `uniqueLang(E)` — no two distinct `E`-values share a language tag.
    UniqueLang(PathExpr),
    /// ¬φ.
    Not(Box<Shape>),
    /// φ₁ ∧ … ∧ φₙ (⊤ when empty).
    And(Vec<Shape>),
    /// φ₁ ∨ … ∨ φₙ (⊥ when empty).
    Or(Vec<Shape>),
    /// ≥n E.φ — at least `n` `E`-reachable nodes conform to φ.
    Geq(u32, PathExpr, Box<Shape>),
    /// ≤n E.φ — at most `n` `E`-reachable nodes conform to φ.
    Leq(u32, PathExpr, Box<Shape>),
    /// ∀E.φ — every `E`-reachable node conforms to φ.
    ForAll(PathExpr, Box<Shape>),
}

impl Shape {
    /// `hasValue(c)`.
    pub fn has_value(c: impl Into<Term>) -> Self {
        Shape::HasValue(c.into())
    }

    /// `hasShape(s)` by IRI name.
    pub fn has_shape(s: impl Into<Iri>) -> Self {
        Shape::HasShape(Term::Iri(s.into()))
    }

    /// ≥n E.φ.
    pub fn geq(n: u32, path: PathExpr, inner: Shape) -> Self {
        Shape::Geq(n, path, Box::new(inner))
    }

    /// ≤n E.φ.
    pub fn leq(n: u32, path: PathExpr, inner: Shape) -> Self {
        Shape::Leq(n, path, Box::new(inner))
    }

    /// ∀E.φ.
    pub fn for_all(path: PathExpr, inner: Shape) -> Self {
        Shape::ForAll(path, Box::new(inner))
    }

    /// ¬φ.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Shape::Not(Box::new(self))
    }

    /// Takes the item list out of an `And` (resp. `Or`), leaving an empty
    /// list behind. `Shape` implements `Drop`, so the builders below cannot
    /// destructure `self` by value; this is the move-out idiom instead.
    fn take_nary_items(&mut self, conjunction: bool) -> Option<Vec<Shape>> {
        match self {
            Shape::And(items) if conjunction => Some(mem::take(items)),
            Shape::Or(items) if !conjunction => Some(mem::take(items)),
            _ => None,
        }
    }

    /// φ ∧ ψ (flattening nested conjunctions).
    pub fn and(mut self, mut other: Shape) -> Self {
        match (self.take_nary_items(true), other.take_nary_items(true)) {
            (Some(mut a), Some(b)) => {
                a.extend(b);
                Shape::And(a)
            }
            (Some(mut a), None) => {
                a.push(other);
                Shape::And(a)
            }
            (None, Some(mut b)) => {
                b.insert(0, self);
                Shape::And(b)
            }
            (None, None) => Shape::And(vec![self, other]),
        }
    }

    /// φ ∨ ψ (flattening nested disjunctions).
    pub fn or(mut self, mut other: Shape) -> Self {
        match (self.take_nary_items(false), other.take_nary_items(false)) {
            (Some(mut a), Some(b)) => {
                a.extend(b);
                Shape::Or(a)
            }
            (Some(mut a), None) => {
                a.push(other);
                Shape::Or(a)
            }
            (None, Some(mut b)) => {
                b.insert(0, self);
                Shape::Or(b)
            }
            (None, None) => Shape::Or(vec![self, other]),
        }
    }

    /// The conjunction of a list of shapes (⊤ when empty, unwrapped when
    /// singleton).
    pub fn conj(mut shapes: Vec<Shape>) -> Self {
        match shapes.len() {
            0 => Shape::True,
            1 => shapes.pop().unwrap(),
            _ => Shape::And(shapes),
        }
    }

    /// The disjunction of a list of shapes (⊥ when empty, unwrapped when
    /// singleton).
    pub fn disj_of(mut shapes: Vec<Shape>) -> Self {
        match shapes.len() {
            0 => Shape::False,
            1 => shapes.pop().unwrap(),
            _ => Shape::Or(shapes),
        }
    }

    /// All shape names referenced via `hasShape` anywhere in this shape.
    pub fn referenced_shapes(&self) -> Vec<&Term> {
        let mut out = Vec::new();
        self.collect_refs(&mut out);
        out
    }

    fn collect_refs<'a>(&'a self, out: &mut Vec<&'a Term>) {
        // Explicit worklist: shapes can be arbitrarily (adversarially) deep.
        let mut stack = vec![self];
        while let Some(s) = stack.pop() {
            match s {
                Shape::HasShape(name) => out.push(name),
                Shape::Not(inner) => stack.push(inner),
                Shape::And(items) | Shape::Or(items) => stack.extend(items.iter().rev()),
                Shape::Geq(_, _, inner) | Shape::Leq(_, _, inner) | Shape::ForAll(_, inner) => {
                    stack.push(inner)
                }
                _ => {}
            }
        }
    }

    /// True iff the shape is *monotone*: conformance is preserved when
    /// triples are added to the graph (§4). This is a sufficient syntactic
    /// criterion covering all real SHACL target forms: `⊤`, `hasValue`,
    /// `test`, `≥n E.φ` with monotone φ, and conjunctions/disjunctions of
    /// monotone shapes.
    pub fn is_monotone_syntactically(&self) -> bool {
        let mut stack = vec![self];
        while let Some(s) = stack.pop() {
            match s {
                Shape::True | Shape::False | Shape::HasValue(_) | Shape::Test(_) => {}
                Shape::Geq(_, _, inner) => stack.push(inner),
                Shape::And(items) | Shape::Or(items) => stack.extend(items.iter()),
                _ => return false,
            }
        }
        true
    }

    /// Size of the shape (number of AST nodes), used to bound generated
    /// test inputs and report translation sizes.
    pub fn size(&self) -> usize {
        let mut n = 0usize;
        let mut stack = vec![self];
        while let Some(s) = stack.pop() {
            n += 1;
            match s {
                Shape::Not(inner)
                | Shape::Geq(_, _, inner)
                | Shape::Leq(_, _, inner)
                | Shape::ForAll(_, inner) => stack.push(inner),
                Shape::And(items) | Shape::Or(items) => stack.extend(items.iter()),
                _ => {}
            }
        }
        n
    }

    /// Detaches every direct child of `self` (replacing it with the
    /// zero-child `⊤`) and pushes it onto `out`. Shared by the iterative
    /// [`Drop`] implementation.
    fn detach_children(&mut self, out: &mut Vec<Shape>) {
        match self {
            Shape::Not(inner)
            | Shape::Geq(_, _, inner)
            | Shape::Leq(_, _, inner)
            | Shape::ForAll(_, inner) => out.push(mem::replace(&mut **inner, Shape::True)),
            Shape::And(items) | Shape::Or(items) => out.append(items),
            _ => {}
        }
    }

    /// True for variants with no child shapes (dropping/cloning them cannot
    /// recurse).
    fn is_leaf(&self) -> bool {
        !matches!(
            self,
            Shape::Not(_)
                | Shape::And(_)
                | Shape::Or(_)
                | Shape::Geq(..)
                | Shape::Leq(..)
                | Shape::ForAll(..)
        )
    }

    /// Clones a leaf variant. Callers guarantee [`Shape::is_leaf`].
    fn clone_leaf(&self) -> Shape {
        match self {
            Shape::True => Shape::True,
            Shape::False => Shape::False,
            Shape::HasShape(t) => Shape::HasShape(t.clone()),
            Shape::Test(t) => Shape::Test(t.clone()),
            Shape::HasValue(t) => Shape::HasValue(t.clone()),
            Shape::Eq(e, p) => Shape::Eq(e.clone(), p.clone()),
            Shape::Disj(e, p) => Shape::Disj(e.clone(), p.clone()),
            Shape::Closed(ps) => Shape::Closed(ps.clone()),
            Shape::LessThan(e, p) => Shape::LessThan(e.clone(), p.clone()),
            Shape::LessThanEq(e, p) => Shape::LessThanEq(e.clone(), p.clone()),
            Shape::MoreThan(e, p) => Shape::MoreThan(e.clone(), p.clone()),
            Shape::MoreThanEq(e, p) => Shape::MoreThanEq(e.clone(), p.clone()),
            Shape::UniqueLang(e) => Shape::UniqueLang(e.clone()),
            _ => unreachable!("clone_leaf called on a composite shape"),
        }
    }
}

impl Clone for Shape {
    /// Iterative deep clone: a post-order job stack builds the copy bottom-up
    /// on an explicit value stack, so depth is bounded by heap, not the
    /// thread stack.
    fn clone(&self) -> Self {
        enum Job<'a> {
            Enter(&'a Shape),
            Exit(&'a Shape),
        }
        let mut jobs = vec![Job::Enter(self)];
        let mut built: Vec<Shape> = Vec::new();
        while let Some(job) = jobs.pop() {
            match job {
                Job::Enter(s) => {
                    if s.is_leaf() {
                        built.push(s.clone_leaf());
                    } else {
                        jobs.push(Job::Exit(s));
                        match s {
                            Shape::Not(inner)
                            | Shape::Geq(_, _, inner)
                            | Shape::Leq(_, _, inner)
                            | Shape::ForAll(_, inner) => jobs.push(Job::Enter(inner)),
                            Shape::And(items) | Shape::Or(items) => {
                                for item in items.iter().rev() {
                                    jobs.push(Job::Enter(item));
                                }
                            }
                            _ => unreachable!(),
                        }
                    }
                }
                Job::Exit(s) => {
                    let rebuilt = match s {
                        Shape::Not(_) => Shape::Not(Box::new(built.pop().unwrap())),
                        Shape::Geq(n, e, _) => {
                            Shape::Geq(*n, e.clone(), Box::new(built.pop().unwrap()))
                        }
                        Shape::Leq(n, e, _) => {
                            Shape::Leq(*n, e.clone(), Box::new(built.pop().unwrap()))
                        }
                        Shape::ForAll(e, _) => {
                            Shape::ForAll(e.clone(), Box::new(built.pop().unwrap()))
                        }
                        Shape::And(items) => Shape::And(built.split_off(built.len() - items.len())),
                        Shape::Or(items) => Shape::Or(built.split_off(built.len() - items.len())),
                        _ => unreachable!(),
                    };
                    built.push(rebuilt);
                }
            }
        }
        debug_assert_eq!(built.len(), 1);
        built.pop().unwrap()
    }
}

impl Drop for Shape {
    /// Iterative drop: detach children onto a worklist before each node is
    /// freed, so the compiler-generated recursive glue never sees a deep
    /// tree.
    fn drop(&mut self) {
        if self.is_leaf() {
            return;
        }
        let mut stack: Vec<Shape> = Vec::new();
        self.detach_children(&mut stack);
        while let Some(mut s) = stack.pop() {
            s.detach_children(&mut stack);
            // `s` is now childless and drops without recursion.
        }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Shape::True => write!(f, "⊤"),
            Shape::False => write!(f, "⊥"),
            Shape::HasShape(s) => write!(f, "hasShape({s})"),
            Shape::Test(t) => write!(f, "test({t})"),
            Shape::HasValue(c) => write!(f, "hasValue({c})"),
            Shape::Eq(e, p) => write!(f, "eq({e}, {p})"),
            Shape::Disj(e, p) => write!(f, "disj({e}, {p})"),
            Shape::Closed(ps) => {
                write!(f, "closed({{")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, "}})")
            }
            Shape::LessThan(e, p) => write!(f, "lessThan({e}, {p})"),
            Shape::LessThanEq(e, p) => write!(f, "lessThanEq({e}, {p})"),
            Shape::MoreThan(e, p) => write!(f, "moreThan({e}, {p})"),
            Shape::MoreThanEq(e, p) => write!(f, "moreThanEq({e}, {p})"),
            Shape::UniqueLang(e) => write!(f, "uniqueLang({e})"),
            Shape::Not(inner) => write!(f, "¬({inner})"),
            Shape::And(items) => {
                write!(f, "(")?;
                for (i, s) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{s}")?;
                }
                write!(f, ")")
            }
            Shape::Or(items) => {
                write!(f, "(")?;
                for (i, s) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{s}")?;
                }
                write!(f, ")")
            }
            Shape::Geq(n, e, inner) => write!(f, "≥{n} {e}.({inner})"),
            Shape::Leq(n, e, inner) => write!(f, "≤{n} {e}.({inner})"),
            Shape::ForAll(e, inner) => write!(f, "∀{e}.({inner})"),
        }
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(name: &str) -> PathExpr {
        PathExpr::prop(format!("http://e/{name}"))
    }

    #[test]
    fn builders_flatten() {
        let s = Shape::True.and(Shape::False).and(Shape::True);
        assert!(matches!(&s, Shape::And(items) if items.len() == 3));
        let s = Shape::True.or(Shape::False).or(Shape::True);
        assert!(matches!(&s, Shape::Or(items) if items.len() == 3));
    }

    #[test]
    fn conj_and_disj_edge_cases() {
        assert_eq!(Shape::conj(vec![]), Shape::True);
        assert_eq!(Shape::disj_of(vec![]), Shape::False);
        assert_eq!(Shape::conj(vec![Shape::False]), Shape::False);
    }

    #[test]
    fn referenced_shapes_found_at_depth() {
        let s = Shape::geq(
            1,
            p("a"),
            Shape::has_shape("http://e/S").and(Shape::has_shape("http://e/T").not()),
        );
        assert_eq!(s.referenced_shapes().len(), 2);
    }

    #[test]
    fn monotone_recognition() {
        assert!(Shape::geq(1, p("a"), Shape::True).is_monotone_syntactically());
        assert!(Shape::has_value(Term::iri("http://e/c")).is_monotone_syntactically());
        // Class target: ≥1 type/subclass*.hasValue(c)
        let class_target = Shape::geq(
            1,
            p("type").then(p("sub").star()),
            Shape::has_value(Term::iri("http://e/C")),
        );
        assert!(class_target.is_monotone_syntactically());
        assert!(!Shape::leq(0, p("a"), Shape::True).is_monotone_syntactically());
        assert!(!Shape::geq(1, p("a"), Shape::True)
            .not()
            .is_monotone_syntactically());
        assert!(!Shape::for_all(p("a"), Shape::True).is_monotone_syntactically());
    }

    #[test]
    fn display_is_readable() {
        let s = Shape::geq(1, p("author"), Shape::has_value(Term::iri("http://e/x")));
        assert_eq!(
            s.to_string(),
            "≥1 <http://e/author>.(hasValue(<http://e/x>))"
        );
    }

    #[test]
    fn size_counts_nodes() {
        let s = Shape::geq(1, p("a"), Shape::True.and(Shape::False));
        assert_eq!(s.size(), 4);
    }
}
