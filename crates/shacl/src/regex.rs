//! A small regular-expression engine for `sh:pattern` node tests.
//!
//! Implemented from scratch (no external crates): a recursive-descent parser
//! to an AST and a backtracking matcher with a step budget. Supported
//! syntax, which covers the patterns appearing in SHACL shapes in practice:
//!
//! - literals, `.`, escapes (`\d \D \w \W \s \S \. \\` …)
//! - character classes `[a-z0-9_]`, negated classes `[^…]`, ranges
//! - anchors `^` and `$`
//! - quantifiers `*`, `+`, `?`, `{n}`, `{n,}`, `{n,m}`
//! - alternation `|` and groups `(…)` (non-capturing semantics)
//!
//! Matching follows SHACL/XPath semantics: the pattern matches if it matches
//! *anywhere* in the string, unless anchored. The optional `i` flag
//! (case-insensitive) from `sh:flags` is supported.

use std::fmt;

/// A parse error for a regular expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError(pub String);

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid regular expression: {}", self.0)
    }
}

impl std::error::Error for RegexError {}

/// A compiled pattern. Equality and hashing are by source text and flags,
/// so shapes containing patterns remain comparable.
#[derive(Clone)]
pub struct Pattern {
    source: String,
    case_insensitive: bool,
    ast: Node,
}

impl PartialEq for Pattern {
    fn eq(&self, other: &Self) -> bool {
        self.source == other.source && self.case_insensitive == other.case_insensitive
    }
}

impl Eq for Pattern {}

impl std::hash::Hash for Pattern {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.source.hash(state);
        self.case_insensitive.hash(state);
    }
}

impl PartialOrd for Pattern {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Pattern {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (&self.source, self.case_insensitive).cmp(&(&other.source, other.case_insensitive))
    }
}

impl fmt::Debug for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "/{}/{}",
            self.source,
            if self.case_insensitive { "i" } else { "" }
        )
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.source)
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    /// Alternation of sequences.
    Alt(Vec<Node>),
    /// Sequence of atoms.
    Seq(Vec<Node>),
    /// A repeated node: min, max (None = unbounded).
    Repeat(Box<Node>, u32, Option<u32>),
    Literal(char),
    AnyChar,
    Class {
        negated: bool,
        items: Vec<ClassItem>,
    },
    StartAnchor,
    EndAnchor,
}

#[derive(Debug, Clone, PartialEq)]
enum ClassItem {
    Char(char),
    Range(char, char),
    Digit(bool),
    Word(bool),
    Space(bool),
}

impl Pattern {
    /// Compiles a pattern. `flags` may contain `i` for case-insensitive
    /// matching; other flags are ignored (SHACL also defines `s m x q`,
    /// which do not occur in our workloads).
    pub fn compile(source: &str, flags: &str) -> Result<Pattern, RegexError> {
        let case_insensitive = flags.contains('i');
        let mut parser = RegexParser {
            chars: source.chars().collect(),
            pos: 0,
        };
        let ast = parser.parse_alt()?;
        if parser.pos != parser.chars.len() {
            return Err(RegexError(format!(
                "unexpected '{}' at offset {}",
                parser.chars[parser.pos], parser.pos
            )));
        }
        Ok(Pattern {
            source: source.to_owned(),
            case_insensitive,
            ast,
        })
    }

    /// The source text of the pattern.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The flags string the pattern was compiled with (`"i"` or `""`).
    pub fn flags(&self) -> &str {
        if self.case_insensitive {
            "i"
        } else {
            ""
        }
    }

    /// True iff the pattern provably matches no string at all, making any
    /// `sh:pattern` constraint that uses it unsatisfiable. The parser
    /// already rejects most empty languages (`{3,1}`, inverted ranges) at
    /// compile time; what remains constructible is anchor contradictions —
    /// a `^` that must fire after input was consumed (`ab^c`) or input
    /// that must be consumed after a `$` (`a$b`). The analysis is
    /// conservative: `false` means "not provably dead", not "satisfiable".
    pub fn never_matches(&self) -> bool {
        node_info(&self.ast).never
    }

    /// True iff the pattern matches anywhere in `input`.
    pub fn is_match(&self, input: &str) -> bool {
        let chars: Vec<char> = if self.case_insensitive {
            input.chars().flat_map(|c| c.to_lowercase()).collect()
        } else {
            input.chars().collect()
        };
        let m = Matcher {
            chars: &chars,
            case_insensitive: self.case_insensitive,
            budget: std::cell::Cell::new(200_000),
        };
        for start in 0..=chars.len() {
            let mut matched = false;
            m.match_node(&self.ast, start, start == 0, &mut |_| {
                matched = true;
                true
            });
            if matched {
                return true;
            }
            // Unanchored search only needs starts after a failed prefix; a
            // leading ^ makes other starts useless.
            if starts_with_anchor(&self.ast) {
                break;
            }
        }
        false
    }
}

/// Static summary of one AST node for [`Pattern::never_matches`].
/// The anchor flags describe *mandatory* anchors: every successful match
/// of the node passes one.
struct NodeInfo {
    never: bool,
    /// Minimum characters any successful match consumes.
    min: u32,
    /// Every match requires position 0 (a mandatory `^`).
    anchors_start: bool,
    /// Every match requires end-of-input (a mandatory `$`).
    anchors_end: bool,
}

impl NodeInfo {
    const NEVER: NodeInfo = NodeInfo {
        never: true,
        min: 0,
        anchors_start: false,
        anchors_end: false,
    };
}

fn node_info(node: &Node) -> NodeInfo {
    match node {
        Node::Literal(_) | Node::AnyChar | Node::Class { .. } => NodeInfo {
            never: false,
            min: 1,
            anchors_start: false,
            anchors_end: false,
        },
        Node::StartAnchor => NodeInfo {
            never: false,
            min: 0,
            anchors_start: true,
            anchors_end: false,
        },
        Node::EndAnchor => NodeInfo {
            never: false,
            min: 0,
            anchors_start: false,
            anchors_end: true,
        },
        Node::Seq(items) => {
            // `^` matches only at position 0 and `$` only at end-of-input,
            // so a sequence dies when a mandatory `^` follows mandatory
            // consumption, or mandatory consumption follows a `$`.
            let mut consumed_before: u32 = 0;
            let mut past_end_anchor = false;
            let mut anchors_start = false;
            let mut anchors_end = false;
            for item in items {
                let info = node_info(item);
                if info.never
                    || (info.anchors_start && consumed_before > 0)
                    || (past_end_anchor && info.min > 0)
                {
                    return NodeInfo::NEVER;
                }
                consumed_before = consumed_before.saturating_add(info.min);
                past_end_anchor |= info.anchors_end;
                anchors_start |= info.anchors_start;
                anchors_end |= info.anchors_end;
            }
            NodeInfo {
                never: false,
                min: consumed_before,
                anchors_start,
                anchors_end,
            }
        }
        Node::Alt(branches) => {
            let live: Vec<NodeInfo> = branches
                .iter()
                .map(node_info)
                .filter(|i| !i.never)
                .collect();
            if live.is_empty() {
                return NodeInfo::NEVER;
            }
            NodeInfo {
                never: false,
                min: live.iter().map(|i| i.min).min().unwrap_or(0),
                anchors_start: live.iter().all(|i| i.anchors_start),
                anchors_end: live.iter().all(|i| i.anchors_end),
            }
        }
        Node::Repeat(inner, min, _) => {
            if *min == 0 {
                // Zero repetitions always succeed consuming nothing.
                return NodeInfo {
                    never: false,
                    min: 0,
                    anchors_start: false,
                    anchors_end: false,
                };
            }
            let info = node_info(inner);
            if info.never
                // A second mandatory repetition restarts after consuming
                // input, which an inner `^` (or a preceding `$`) forbids.
                || (*min >= 2 && info.min > 0 && (info.anchors_start || info.anchors_end))
            {
                return NodeInfo::NEVER;
            }
            NodeInfo {
                never: false,
                min: info.min.saturating_mul(*min),
                anchors_start: info.anchors_start,
                anchors_end: info.anchors_end,
            }
        }
    }
}

fn starts_with_anchor(node: &Node) -> bool {
    match node {
        Node::StartAnchor => true,
        Node::Seq(items) => items.first().map(starts_with_anchor).unwrap_or(false),
        Node::Alt(branches) => branches.iter().all(starts_with_anchor),
        _ => false,
    }
}

struct RegexParser {
    chars: Vec<char>,
    pos: usize,
}

impl RegexParser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn parse_alt(&mut self) -> Result<Node, RegexError> {
        let mut branches = vec![self.parse_seq()?];
        while self.peek() == Some('|') {
            self.bump();
            branches.push(self.parse_seq()?);
        }
        if branches.len() == 1 {
            Ok(branches.pop().unwrap())
        } else {
            Ok(Node::Alt(branches))
        }
    }

    fn parse_seq(&mut self) -> Result<Node, RegexError> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.parse_repeat()?);
        }
        Ok(Node::Seq(items))
    }

    fn parse_repeat(&mut self) -> Result<Node, RegexError> {
        let atom = self.parse_atom()?;
        match self.peek() {
            Some('*') => {
                self.bump();
                Ok(Node::Repeat(Box::new(atom), 0, None))
            }
            Some('+') => {
                self.bump();
                Ok(Node::Repeat(Box::new(atom), 1, None))
            }
            Some('?') => {
                self.bump();
                Ok(Node::Repeat(Box::new(atom), 0, Some(1)))
            }
            Some('{') => {
                self.bump();
                let mut min = String::new();
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    min.push(self.bump().unwrap());
                }
                let min: u32 = min.parse().map_err(|_| RegexError("bad {n}".into()))?;
                let max = match self.peek() {
                    Some(',') => {
                        self.bump();
                        let mut max = String::new();
                        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                            max.push(self.bump().unwrap());
                        }
                        if max.is_empty() {
                            None
                        } else {
                            Some(max.parse().map_err(|_| RegexError("bad {n,m}".into()))?)
                        }
                    }
                    _ => Some(min),
                };
                if self.bump() != Some('}') {
                    return Err(RegexError("expected '}'".into()));
                }
                if let Some(max) = max {
                    if max < min {
                        return Err(RegexError("{n,m} with m < n".into()));
                    }
                    if max > 1000 {
                        return Err(RegexError("{n,m} bound too large".into()));
                    }
                }
                Ok(Node::Repeat(Box::new(atom), min, max))
            }
            _ => Ok(atom),
        }
    }

    fn parse_atom(&mut self) -> Result<Node, RegexError> {
        match self.bump() {
            Some('(') => {
                // Non-capturing group marker (?: is tolerated.
                if self.peek() == Some('?') {
                    self.bump();
                    if self.bump() != Some(':') {
                        return Err(RegexError("only (?: groups supported".into()));
                    }
                }
                let inner = self.parse_alt()?;
                if self.bump() != Some(')') {
                    return Err(RegexError("unclosed group".into()));
                }
                Ok(inner)
            }
            Some('[') => self.parse_class(),
            Some('.') => Ok(Node::AnyChar),
            Some('^') => Ok(Node::StartAnchor),
            Some('$') => Ok(Node::EndAnchor),
            Some('\\') => {
                let c = self
                    .bump()
                    .ok_or_else(|| RegexError("dangling '\\'".into()))?;
                Ok(match c {
                    'd' => Node::Class {
                        negated: false,
                        items: vec![ClassItem::Digit(false)],
                    },
                    'D' => Node::Class {
                        negated: false,
                        items: vec![ClassItem::Digit(true)],
                    },
                    'w' => Node::Class {
                        negated: false,
                        items: vec![ClassItem::Word(false)],
                    },
                    'W' => Node::Class {
                        negated: false,
                        items: vec![ClassItem::Word(true)],
                    },
                    's' => Node::Class {
                        negated: false,
                        items: vec![ClassItem::Space(false)],
                    },
                    'S' => Node::Class {
                        negated: false,
                        items: vec![ClassItem::Space(true)],
                    },
                    'n' => Node::Literal('\n'),
                    't' => Node::Literal('\t'),
                    'r' => Node::Literal('\r'),
                    other => Node::Literal(other),
                })
            }
            Some(c @ ('*' | '+' | '?' | '{' | '}' | ')')) => {
                Err(RegexError(format!("misplaced '{c}'")))
            }
            Some(c) => Ok(Node::Literal(c)),
            None => Err(RegexError("unexpected end of pattern".into())),
        }
    }

    fn parse_class(&mut self) -> Result<Node, RegexError> {
        let negated = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut items = Vec::new();
        loop {
            match self.bump() {
                Some(']') if !items.is_empty() || negated => break,
                Some(']') => {
                    // A leading ']' is a literal.
                    items.push(ClassItem::Char(']'));
                }
                Some('\\') => {
                    let c = self
                        .bump()
                        .ok_or_else(|| RegexError("dangling '\\'".into()))?;
                    items.push(match c {
                        'd' => ClassItem::Digit(false),
                        'D' => ClassItem::Digit(true),
                        'w' => ClassItem::Word(false),
                        'W' => ClassItem::Word(true),
                        's' => ClassItem::Space(false),
                        'S' => ClassItem::Space(true),
                        'n' => ClassItem::Char('\n'),
                        't' => ClassItem::Char('\t'),
                        other => ClassItem::Char(other),
                    });
                }
                Some(c) => {
                    if self.peek() == Some('-')
                        && self.chars.get(self.pos + 1).is_some_and(|&n| n != ']')
                    {
                        self.bump(); // '-'
                        let hi = self.bump().ok_or_else(|| RegexError("bad range".into()))?;
                        if hi < c {
                            return Err(RegexError(format!("inverted range {c}-{hi}")));
                        }
                        items.push(ClassItem::Range(c, hi));
                    } else {
                        items.push(ClassItem::Char(c));
                    }
                }
                None => return Err(RegexError("unclosed character class".into())),
            }
        }
        Ok(Node::Class { negated, items })
    }
}

struct Matcher<'a> {
    chars: &'a [char],
    case_insensitive: bool,
    budget: std::cell::Cell<u32>,
}

impl<'a> Matcher<'a> {
    /// Calls `k(end)` for match end positions; `k` returns `true` to stop.
    /// `at_start` tracks whether position 0 is a valid `^` anchor point for
    /// this attempt (it is only when the search started at 0).
    fn match_node(
        &self,
        node: &Node,
        pos: usize,
        at_start: bool,
        k: &mut dyn FnMut(usize) -> bool,
    ) -> bool {
        if self.budget.get() == 0 {
            return true; // Out of budget: abort the search (treat as no match).
        }
        self.budget.set(self.budget.get() - 1);
        match node {
            Node::Literal(c) => {
                let want = if self.case_insensitive {
                    c.to_lowercase().next().unwrap_or(*c)
                } else {
                    *c
                };
                match self.chars.get(pos) {
                    Some(&got) if got == want => k(pos + 1),
                    _ => false,
                }
            }
            Node::AnyChar => match self.chars.get(pos) {
                Some(_) => k(pos + 1),
                None => false,
            },
            Node::Class { negated, items } => match self.chars.get(pos) {
                Some(&c) => {
                    let inside = items.iter().any(|item| class_item_matches(item, c));
                    if inside != *negated {
                        k(pos + 1)
                    } else {
                        false
                    }
                }
                None => false,
            },
            Node::StartAnchor => {
                if pos == 0 && at_start {
                    k(pos)
                } else {
                    false
                }
            }
            Node::EndAnchor => {
                if pos == self.chars.len() {
                    k(pos)
                } else {
                    false
                }
            }
            Node::Seq(items) => self.match_seq(items, pos, at_start, k),
            Node::Alt(branches) => {
                for b in branches {
                    if self.match_node(b, pos, at_start, k) {
                        return true;
                    }
                }
                false
            }
            Node::Repeat(inner, min, max) => {
                self.match_repeat(inner, *min, *max, 0, pos, at_start, k)
            }
        }
    }

    fn match_seq(
        &self,
        items: &[Node],
        pos: usize,
        at_start: bool,
        k: &mut dyn FnMut(usize) -> bool,
    ) -> bool {
        match items.split_first() {
            None => k(pos),
            Some((head, rest)) => self.match_node(head, pos, at_start, &mut |next| {
                self.match_seq(rest, next, at_start, k)
            }),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn match_repeat(
        &self,
        inner: &Node,
        min: u32,
        max: Option<u32>,
        done: u32,
        pos: usize,
        at_start: bool,
        k: &mut dyn FnMut(usize) -> bool,
    ) -> bool {
        // Greedy: try one more repetition first (if allowed), then yield.
        let can_more = max.is_none_or(|m| done < m);
        if can_more {
            let stopped = self.match_node(inner, pos, at_start, &mut |next| {
                if next == pos {
                    // Zero-width repetition: stop looping to avoid divergence.
                    if done + 1 >= min {
                        k(next)
                    } else {
                        false
                    }
                } else {
                    self.match_repeat(inner, min, max, done + 1, next, at_start, k)
                }
            });
            if stopped {
                return true;
            }
        }
        if done >= min {
            return k(pos);
        }
        false
    }
}

fn class_item_matches(item: &ClassItem, c: char) -> bool {
    match item {
        ClassItem::Char(x) => *x == c,
        ClassItem::Range(lo, hi) => (*lo..=*hi).contains(&c),
        ClassItem::Digit(neg) => c.is_ascii_digit() != *neg,
        ClassItem::Word(neg) => (c.is_alphanumeric() || c == '_') != *neg,
        ClassItem::Space(neg) => c.is_whitespace() != *neg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pattern: &str, input: &str) -> bool {
        Pattern::compile(pattern, "").unwrap().is_match(input)
    }

    #[test]
    fn literal_search_anywhere() {
        assert!(m("bc", "abcd"));
        assert!(!m("bd", "abcd"));
    }

    #[test]
    fn anchors() {
        assert!(m("^ab", "abcd"));
        assert!(!m("^bc", "abcd"));
        assert!(m("cd$", "abcd"));
        assert!(!m("bc$", "abcd"));
        assert!(m("^abcd$", "abcd"));
        assert!(!m("^abcd$", "abcde"));
    }

    #[test]
    fn quantifiers() {
        assert!(m("ab*c", "ac"));
        assert!(m("ab*c", "abbbc"));
        assert!(m("ab+c", "abc"));
        assert!(!m("ab+c", "ac"));
        assert!(m("ab?c", "ac"));
        assert!(m("ab?c", "abc"));
        assert!(!m("^ab?c$", "abbc"));
    }

    #[test]
    fn bounded_quantifiers() {
        assert!(m("^a{2,3}$", "aa"));
        assert!(m("^a{2,3}$", "aaa"));
        assert!(!m("^a{2,3}$", "a"));
        assert!(!m("^a{2,3}$", "aaaa"));
        assert!(m("^a{2}$", "aa"));
        assert!(m("^a{2,}$", "aaaaa"));
    }

    #[test]
    fn classes_and_ranges() {
        assert!(m("^[a-c]+$", "abccba"));
        assert!(!m("^[a-c]+$", "abd"));
        assert!(m("^[^0-9]+$", "abc"));
        assert!(!m("^[^0-9]+$", "ab3"));
        assert!(m("^[a\\-z]$", "-"));
    }

    #[test]
    fn escapes() {
        assert!(m("^\\d{4}$", "2023"));
        assert!(!m("^\\d{4}$", "20a3"));
        assert!(m("^\\w+$", "abc_123"));
        assert!(m("^\\s$", " "));
        assert!(m("^a\\.b$", "a.b"));
        assert!(!m("^a\\.b$", "axb"));
        assert!(m("^\\S+$", "xy"));
        assert!(m("^[\\d]+$", "12"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(m("^(ab|cd)+$", "abcdab"));
        assert!(!m("^(ab|cd)+$", "abc"));
        assert!(m("^x(?:y|z)$", "xz"));
    }

    #[test]
    fn dot_matches_any() {
        assert!(m("^a.c$", "abc"));
        assert!(m("^a.c$", "a-c"));
        assert!(!m("^a.c$", "ac"));
    }

    #[test]
    fn case_insensitive_flag() {
        let p = Pattern::compile("^HELLO$", "i").unwrap();
        assert!(p.is_match("hello"));
        assert!(p.is_match("HeLLo"));
        let p = Pattern::compile("^HELLO$", "").unwrap();
        assert!(!p.is_match("hello"));
    }

    #[test]
    fn realistic_shacl_patterns() {
        // Postal code
        assert!(m("^[0-9]{4}\\s?[A-Z]{2}$", "6211 AB"));
        // IRI-ish prefix check
        assert!(m("^https?://", "https://example.org/x"));
        // Email-ish
        assert!(m("^[\\w.]+@[\\w.]+$", "a.b@example.org"));
    }

    #[test]
    fn zero_width_loop_terminates() {
        assert!(m("^(a?)*$", "aaa"));
        assert!(m("(|a)*", "b"));
    }

    #[test]
    fn parse_errors() {
        assert!(Pattern::compile("a(", "").is_err());
        assert!(Pattern::compile("[a-", "").is_err());
        assert!(Pattern::compile("a{3,1}", "").is_err());
        assert!(Pattern::compile("*a", "").is_err());
        assert!(Pattern::compile("[z-a]", "").is_err());
    }

    #[test]
    fn equality_is_by_source() {
        let a = Pattern::compile("abc", "").unwrap();
        let b = Pattern::compile("abc", "").unwrap();
        let c = Pattern::compile("abc", "i").unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn pathological_pattern_gives_up_not_hangs() {
        // Classic exponential backtracking case; budget makes it terminate.
        let p = Pattern::compile("^(a+)+$", "").unwrap();
        let _ = p.is_match(&"a".repeat(40));
        let _ = p.is_match(&format!("{}b", "a".repeat(40)));
    }
}
