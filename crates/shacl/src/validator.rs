//! Conformance checking (Table 1) and schema validation.
//!
//! [`Context`] bundles a schema and a graph with a per-graph compiled-path
//! cache; [`Context::conforms`] decides `H, G, a ⊨ φ`. [`validate`] checks
//! a whole graph against a schema, producing a [`ValidationReport`] in the
//! style of a SHACL engine — this is the "mere validation" baseline of the
//! overhead experiment (§5.3.1).

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use shapefrag_govern::{EngineError, ExecCtx};
use shapefrag_rdf::graph::IntMap;
use shapefrag_rdf::{Graph, GraphAccess, Term, TermId};

use crate::nnf::Nnf;
use crate::path::PathExpr;
use crate::rpq::PathCache;
use crate::schema::Schema;
use crate::shape::{PathOrId, Shape};

/// Number of lock stripes in a [`ConformanceMemo`]. Power of two so the
/// shard index is a cheap high-bit extract of the mixed key hash; 64
/// stripes keep the collision probability of two of ≤16 workers wanting
/// the same stripe low without bloating the struct.
const MEMO_SHARDS: usize = 64;

/// One lock stripe: decided conformance facts keyed by
/// `(shape index, node)`.
type MemoShard = RwLock<HashMap<(u32, TermId), bool>>;

/// A shared table of decided `(shape name, node)` conformance facts.
///
/// Conformance of a node to a *named* shape is a pure function of the graph
/// and schema, so once decided it can be reused by every referencing target
/// — and by every worker thread. The table is split into [`MEMO_SHARDS`]
/// lock stripes keyed by a hash of `(shape, node)`, so concurrent workers
/// contend only when they touch the same stripe at the same instant. A memo
/// is valid for exactly one `(graph, schema)` pair; the first
/// [`Context::with_memo`] binds the memo to a cheap fingerprint of that
/// pair, and a later mismatch panics in debug builds and detaches the memo
/// (running unmemoized, which is always sound) in release builds — stale
/// reuse across snapshots/epochs cannot poison results. The incremental
/// engine moves a memo across graph *versions* deliberately: it drops the
/// impacted entries ([`ConformanceMemo::invalidate`]) and then re-binds to
/// the new fingerprint ([`ConformanceMemo::rebind`]).
pub struct ConformanceMemo {
    shards: Box<[MemoShard]>,
    /// Fingerprint of the `(schema, graph)` pair this memo is bound to;
    /// `None` until the first attachment (or after [`ConformanceMemo::clear`]).
    binding: RwLock<Option<(u64, u64)>>,
    /// Optional subsumption index enabling derived answers: a bit decided
    /// for one shape can settle related shapes without re-evaluation. See
    /// [`ConformanceMemo::attach_containment`].
    containment: RwLock<Option<Arc<ContainmentIndex>>>,
    /// Lookups answered through a containment edge rather than a direct bit.
    containment_hits: AtomicU64,
    /// Lookups where the index was attached but no related bit applied.
    containment_misses: AtomicU64,
}

/// Adjacency form of a schema's proven containment relation, consumed by
/// [`ConformanceMemo`] for subsumption-keyed reuse. Shape ids are the
/// dense [`Schema::name_id`] ids; an edge `(sub, sup)` asserts that every
/// `sub`-conformant node is `sup`-conformant. The index is stamped with
/// [`schema_fingerprint`] of the schema it was computed for, so a memo
/// bound to a different schema refuses it.
///
/// The analyze crate's `ContainmentMatrix` produces these; this type is a
/// plain data holder so the validator does not depend on the analyzer.
#[derive(Debug, Clone, Default)]
pub struct ContainmentIndex {
    /// `supers[s]`: shapes properly containing `s` (a `false` there derives
    /// `false` for `s`).
    supers: Vec<Vec<u32>>,
    /// `subs[s]`: shapes properly contained in `s` (a `true` there derives
    /// `true` for `s`).
    subs: Vec<Vec<u32>>,
    schema_fp: u64,
}

impl ContainmentIndex {
    /// Builds the adjacency lists from proper containment edges
    /// `(sub, sup)` over `shapes` dense ids.
    pub fn from_edges(shapes: usize, edges: &[(u32, u32)], schema_fp: u64) -> ContainmentIndex {
        let mut supers = vec![Vec::new(); shapes];
        let mut subs = vec![Vec::new(); shapes];
        for &(sub, sup) in edges {
            supers[sub as usize].push(sup);
            subs[sup as usize].push(sub);
        }
        ContainmentIndex {
            supers,
            subs,
            schema_fp,
        }
    }

    /// Fingerprint of the schema the edges were proven over.
    pub fn schema_fp(&self) -> u64 {
        self.schema_fp
    }

    /// Shapes properly containing `sid`.
    pub fn supers_of(&self, sid: u32) -> &[u32] {
        self.supers.get(sid as usize).map_or(&[], Vec::as_slice)
    }

    /// Shapes properly contained in `sid`.
    pub fn subs_of(&self, sid: u32) -> &[u32] {
        self.subs.get(sid as usize).map_or(&[], Vec::as_slice)
    }

    /// True iff the index holds no edges at all.
    pub fn is_trivial(&self) -> bool {
        self.supers.iter().all(Vec::is_empty)
    }

    /// Every shape whose memo bits can transitively derive from — or flow
    /// into — bits of `seed`: the union of the forward closure over
    /// `supers` (true bits propagate sub → sup) and the backward closure
    /// over `subs` (false bits propagate sup → sub), including `seed`
    /// itself. This is the set the incremental engine must invalidate
    /// together with an impacted shape.
    pub fn related_closure(&self, seed: u32) -> Vec<u32> {
        let n = self.supers.len();
        let mut out: BTreeSet<u32> = BTreeSet::new();
        out.insert(seed);
        for forward in [true, false] {
            let mut seen = vec![false; n];
            if (seed as usize) < n {
                seen[seed as usize] = true;
            }
            let mut work = vec![seed];
            while let Some(s) = work.pop() {
                let next = if forward {
                    self.supers_of(s)
                } else {
                    self.subs_of(s)
                };
                for &t in next {
                    if !std::mem::replace(&mut seen[t as usize], true) {
                        out.insert(t);
                        work.push(t);
                    }
                }
            }
        }
        out.into_iter().collect()
    }
}

impl Default for ConformanceMemo {
    fn default() -> Self {
        ConformanceMemo::new()
    }
}

impl ConformanceMemo {
    /// Creates an empty memo (for one graph + schema pair).
    pub fn new() -> Self {
        ConformanceMemo {
            shards: (0..MEMO_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            binding: RwLock::new(None),
            containment: RwLock::new(None),
            containment_hits: AtomicU64::new(0),
            containment_misses: AtomicU64::new(0),
        }
    }

    /// Attaches a containment index, enabling subsumption-derived answers.
    /// Refused (returning `false`, leaving the memo without an index) when
    /// the memo is already bound to a schema with a different fingerprint —
    /// a matrix computed for another schema must never derive bits here.
    pub fn attach_containment(&self, index: Arc<ContainmentIndex>) -> bool {
        if let Some((schema_fp, _)) = *self.binding.read() {
            if schema_fp != index.schema_fp {
                return false;
            }
        }
        *self.containment.write() = Some(index);
        true
    }

    /// The attached containment index, if any.
    pub fn containment(&self) -> Option<Arc<ContainmentIndex>> {
        self.containment.read().clone()
    }

    /// `(derived answers, derivation attempts that found nothing)` since
    /// construction. Both stay 0 until an index is attached.
    pub fn containment_counters(&self) -> (u64, u64) {
        (
            self.containment_hits.load(Ordering::Relaxed),
            self.containment_misses.load(Ordering::Relaxed),
        )
    }

    /// Stripe index for a `(shape, node)` key: multiplicative (Fibonacci)
    /// hashing of the packed key, taking the top bits.
    fn shard_index(shape: u32, node: TermId) -> usize {
        let key = ((shape as u64) << 32) | node.0 as u64;
        let mixed = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (mixed >> (64 - MEMO_SHARDS.trailing_zeros())) as usize
    }

    fn shard(&self, shape: u32, node: TermId) -> &RwLock<HashMap<(u32, TermId), bool>> {
        &self.shards[Self::shard_index(shape, node)]
    }

    /// Looks up a decided fact.
    pub fn lookup(&self, shape: u32, node: TermId) -> Option<bool> {
        self.shard(shape, node).read().get(&(shape, node)).copied()
    }

    /// [`ConformanceMemo::lookup`] extended with subsumption derivation:
    /// on a direct miss, a `true` bit of any shape contained in `shape`
    /// proves `true` here, and a `false` bit of any shape containing
    /// `shape` proves `false`. Derived answers are written back as regular
    /// bits (they are genuine conformance facts) and counted in
    /// [`ConformanceMemo::containment_counters`].
    pub fn lookup_or_derive(&self, shape: u32, node: TermId) -> Option<bool> {
        if let Some(v) = self.lookup(shape, node) {
            return Some(v);
        }
        let index = self.containment.read().clone()?;
        let derived = index
            .subs_of(shape)
            .iter()
            .find(|&&sub| self.lookup(sub, node) == Some(true))
            .map(|_| true)
            .or_else(|| {
                index
                    .supers_of(shape)
                    .iter()
                    .find(|&&sup| self.lookup(sup, node) == Some(false))
                    .map(|_| false)
            });
        match derived {
            Some(v) => {
                self.containment_hits.fetch_add(1, Ordering::Relaxed);
                self.insert(shape, node, v);
                Some(v)
            }
            None => {
                self.containment_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Records a decided fact.
    pub fn insert(&self, shape: u32, node: TermId, value: bool) {
        self.shard(shape, node).write().insert((shape, node), value);
    }

    /// Number of decided facts.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True iff nothing has been decided yet.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Binds the memo to a `(schema, graph)` fingerprint on first use;
    /// returns `false` when the memo is already bound to a *different*
    /// pair (the caller must then run unmemoized).
    fn bind_or_check(&self, fingerprint: (u64, u64)) -> bool {
        if let Some(bound) = *self.binding.read() {
            return bound == fingerprint;
        }
        let mut slot = self.binding.write();
        match *slot {
            Some(bound) => bound == fingerprint,
            None => {
                *slot = Some(fingerprint);
                // An index attached before the first binding was taken on
                // trust; now that the schema is known, drop a mismatch.
                let mut idx = self.containment.write();
                if idx.as_ref().is_some_and(|i| i.schema_fp != fingerprint.0) {
                    *idx = None;
                }
                true
            }
        }
    }

    /// Drops the decided facts of `shape` at exactly `nodes`, leaving every
    /// other `(shape, node)` entry in place. This is the incremental
    /// engine's stripe-selective invalidation: after an edit batch, only
    /// impact-routed pairs are dropped and everything else is reused.
    pub fn invalidate(&self, shape: u32, nodes: impl IntoIterator<Item = TermId>) {
        for node in nodes {
            self.shard(shape, node).write().remove(&(shape, node));
        }
    }

    /// Drops every decided fact of `shape` regardless of node. The
    /// incremental engine falls back to this when a shape's impact profile
    /// is a wildcard with unbounded depth (any edit may flip any focus).
    pub fn invalidate_shape(&self, shape: u32) {
        for shard in self.shards.iter() {
            shard.write().retain(|key, _| key.0 != shape);
        }
    }

    /// Re-binds the memo to a new `(schema, graph)` pair. Sound only when
    /// the caller has already invalidated every entry whose truth value may
    /// differ between the old and new graph (and the id space is shared,
    /// as it is along a delta/compaction lineage).
    pub fn rebind<G: GraphAccess>(&self, schema: &Schema, graph: &G) {
        let fingerprint = memo_fingerprint(schema, graph);
        *self.binding.write() = Some(fingerprint);
        // A containment index proven over a different schema must not
        // survive the rebind.
        let mut idx = self.containment.write();
        if idx.as_ref().is_some_and(|i| i.schema_fp != fingerprint.0) {
            *idx = None;
        }
    }

    /// Forgets every decided fact *and* the binding, returning the memo to
    /// its freshly-constructed state. The governed incremental path uses
    /// this on a mid-batch fault: the memo is either untouched or fully
    /// cleared, never half-invalidated.
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.write().clear();
        }
        *self.binding.write() = None;
        *self.containment.write() = None;
        self.containment_hits.store(0, Ordering::Relaxed);
        self.containment_misses.store(0, Ordering::Relaxed);
    }
}

/// Order-sensitive fingerprint of a `(schema, graph)` pair for the memo
/// binding check. Freezing is id-stable, so a graph and its
/// [`FrozenGraph`](shapefrag_rdf::FrozenGraph) snapshot fingerprint alike —
/// sharing a memo across the two backends is sound and stays allowed. The
/// fingerprint is a cheap O(schema + 32 triples) guard against accidental
/// cross-pair reuse, not a cryptographic content hash.
fn memo_fingerprint<G: GraphAccess>(schema: &Schema, graph: &G) -> (u64, u64) {
    use std::hash::{Hash, Hasher};
    let mut hg = std::collections::hash_map::DefaultHasher::new();
    graph.len().hash(&mut hg);
    graph.term_count().hash(&mut hg);
    for triple in graph.iter_ids().take(32) {
        triple.hash(&mut hg);
    }
    (schema_fingerprint(schema), hg.finish())
}

/// The schema half of the memo fingerprint, exposed so a
/// [`ContainmentIndex`] can be stamped with the schema it was proven over
/// (and refused by a memo bound to any other schema).
pub fn schema_fingerprint(schema: &Schema) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hs = std::collections::hash_map::DefaultHasher::new();
    schema.len().hash(&mut hs);
    for def in schema.iter() {
        def.name.hash(&mut hs);
    }
    hs.finish()
}

/// Evaluation context: a schema, a graph, and the path-compilation cache.
///
/// A context optionally carries an [`ExecCtx`] (deadline, step/memory
/// budgets, depth limit, cancellation). The boolean conformance API cannot
/// return `Result`, so resource faults are *sticky*: the first
/// [`EngineError`] is recorded, every subsequent primitive short-circuits
/// (returning `false`/empty to unwind quickly), and governed entry points
/// ([`validate_governed`], [`validate_batch_governed`]) surface the fault as
/// an `Err` instead of a report.
pub struct Context<'a, G: GraphAccess = Graph> {
    pub schema: &'a Schema,
    pub graph: &'a G,
    paths: PathCache,
    /// Shared `hasShape` decisions; `None` disables memoization.
    memo: Option<Arc<ConformanceMemo>>,
    /// Resource governor; unbounded by default.
    exec: ExecCtx,
    /// First resource fault observed (sticky until [`Context::take_fault`]).
    fault: Option<EngineError>,
}

impl<'a, G: GraphAccess> Context<'a, G> {
    /// Creates a context for a schema and graph.
    pub fn new(schema: &'a Schema, graph: &'a G) -> Self {
        Context {
            schema,
            graph,
            paths: PathCache::new(),
            memo: None,
            exec: ExecCtx::unbounded(),
            fault: None,
        }
    }

    /// Creates a context sharing a conformance memo with other contexts
    /// (possibly on other threads). The memo must have been created for
    /// this same `(graph, schema)` pair; the first attachment binds the
    /// memo to the pair's fingerprint. A mismatching later attachment
    /// panics in debug builds; release builds detach the memo and run
    /// unmemoized (correct, just slower), so a stale memo can never leak
    /// conformance facts across snapshots.
    pub fn with_memo(schema: &'a Schema, graph: &'a G, memo: Arc<ConformanceMemo>) -> Self {
        let attached = memo.bind_or_check(memo_fingerprint(schema, graph));
        debug_assert!(
            attached,
            "ConformanceMemo reused across a different (schema, graph) pair; \
             create one memo per pair (see Context::with_memo)"
        );
        Context {
            schema,
            graph,
            paths: PathCache::new(),
            memo: attached.then_some(memo),
            exec: ExecCtx::unbounded(),
            fault: None,
        }
    }

    /// Attaches an execution governor (builder style):
    /// `Context::new(..).with_exec(ExecCtx::with_budget(..))`.
    pub fn with_exec(mut self, exec: ExecCtx) -> Self {
        self.exec = exec;
        self
    }

    /// The execution governor (for reading `steps_used` etc.).
    pub fn exec(&self) -> &ExecCtx {
        &self.exec
    }

    /// Takes the sticky resource fault, if any. After a `Some` return the
    /// context is usable again (but partial memo entries from the faulted
    /// run remain valid: they were decided before the fault).
    pub fn take_fault(&mut self) -> Option<EngineError> {
        self.fault.take()
    }

    /// True iff a resource fault has been recorded and not yet taken.
    pub fn faulted(&self) -> bool {
        self.fault.is_some()
    }

    fn record_fault(&mut self, e: EngineError) {
        if self.fault.is_none() {
            self.fault = Some(e);
        }
    }

    /// Enters one governed recursion level on behalf of an external
    /// recursive worker (the provenance collectors in `shapefrag-core`
    /// recurse on shape structure without passing through
    /// [`Context::conforms`]). Returns `false` — recording the fault — when
    /// the depth limit, budget, deadline, or cancellation trips; pair every
    /// `true` return with [`Context::guard_leave`].
    pub fn guard_enter(&mut self) -> bool {
        if self.fault.is_some() {
            return false;
        }
        if let Err(e) = self.exec.enter() {
            self.record_fault(e);
            return false;
        }
        true
    }

    /// Leaves a recursion level entered via [`Context::guard_enter`].
    pub fn guard_leave(&mut self) {
        self.exec.leave();
    }

    /// `⟦E⟧^G(a)`.
    pub fn eval_path(&mut self, path: &PathExpr, from: TermId) -> BTreeSet<TermId> {
        match self.paths.try_eval(path, self.graph, from, &self.exec) {
            Ok(out) => out,
            Err(e) => {
                self.record_fault(e);
                BTreeSet::new()
            }
        }
    }

    /// `graph(paths(E, G, from, targets))` as id triples.
    pub fn trace_path(
        &mut self,
        path: &PathExpr,
        from: TermId,
        targets: &BTreeSet<TermId>,
    ) -> BTreeSet<(TermId, TermId, TermId)> {
        match self
            .paths
            .try_trace(path, self.graph, from, targets, &self.exec)
        {
            Ok(out) => out,
            Err(e) => {
                self.record_fault(e);
                BTreeSet::new()
            }
        }
    }

    /// `⟦F⟧^G(a)` where `F` is a path expression or `id`.
    pub fn eval_path_or_id(&mut self, f: &PathOrId, from: TermId) -> BTreeSet<TermId> {
        match f {
            PathOrId::Id => BTreeSet::from([from]),
            PathOrId::Path(e) => self.eval_path(e, from),
        }
    }

    /// Decides `H, G, a ⊨ φ` (Table 1).
    ///
    /// Under a governor, each call costs one step and one recursion level;
    /// on a resource fault the answer is `false` and the fault is recorded
    /// (see [`Context::take_fault`]).
    pub fn conforms(&mut self, node: TermId, shape: &Shape) -> bool {
        if self.fault.is_some() {
            return false;
        }
        if let Err(e) = self.exec.enter() {
            self.record_fault(e);
            return false;
        }
        let out = self.conforms_inner(node, shape);
        self.exec.leave();
        out
    }

    fn conforms_inner(&mut self, node: TermId, shape: &Shape) -> bool {
        match shape {
            Shape::True => true,
            Shape::False => false,
            Shape::HasShape(name) => self.conforms_named(node, name),
            Shape::Test(t) => t.satisfied_by(self.graph.term(node)),
            Shape::HasValue(c) => self.graph.term(node) == c,
            Shape::Eq(f, p) => {
                let left = self.eval_path_or_id(f, node);
                let right = self.prop_values(node, p);
                left == right
            }
            Shape::Disj(f, p) => {
                let left = self.eval_path_or_id(f, node);
                let right = self.prop_values(node, p);
                left.is_disjoint(&right)
            }
            Shape::Closed(allowed) => {
                let preds: Vec<TermId> = self.graph.predicates_out_ids(node).collect();
                preds.into_iter().all(
                    |pid| matches!(self.graph.term(pid), Term::Iri(iri) if allowed.contains(iri)),
                )
            }
            Shape::LessThan(e, p) => self.pairwise_cmp(e, p, node, CmpOp::Lt),
            Shape::LessThanEq(e, p) => self.pairwise_cmp(e, p, node, CmpOp::Le),
            Shape::MoreThan(e, p) => self.pairwise_cmp(e, p, node, CmpOp::Gt),
            Shape::MoreThanEq(e, p) => self.pairwise_cmp(e, p, node, CmpOp::Ge),
            Shape::UniqueLang(e) => {
                let values = self.eval_path(e, node);
                let mut tags: Vec<&str> = Vec::new();
                for v in &values {
                    if let Term::Literal(lit) = self.graph.term(*v) {
                        if let Some(tag) = lit.language() {
                            if tags.contains(&tag) {
                                return false;
                            }
                            tags.push(tag);
                        }
                    }
                }
                true
            }
            Shape::Not(inner) => !self.conforms(node, inner),
            Shape::And(items) => items.iter().all(|s| self.conforms(node, s)),
            Shape::Or(items) => items.iter().any(|s| self.conforms(node, s)),
            Shape::Geq(n, e, inner) => {
                let candidates = self.eval_path(e, node);
                let mut count: u32 = 0;
                for b in candidates {
                    if self.conforms(b, inner) {
                        count += 1;
                        if count >= *n {
                            return true;
                        }
                    }
                }
                count >= *n
            }
            Shape::Leq(n, e, inner) => {
                let candidates = self.eval_path(e, node);
                let mut count: u32 = 0;
                for b in candidates {
                    if self.conforms(b, inner) {
                        count += 1;
                        if count > *n {
                            return false;
                        }
                    }
                }
                true
            }
            Shape::ForAll(e, inner) => {
                let candidates = self.eval_path(e, node);
                candidates.into_iter().all(|b| self.conforms(b, inner))
            }
        }
    }

    /// Decides conformance for an NNF shape (used by the provenance engine,
    /// which works on NNF throughout).
    pub fn conforms_nnf(&mut self, node: TermId, shape: &Nnf) -> bool {
        if self.fault.is_some() {
            return false;
        }
        if let Err(e) = self.exec.enter() {
            self.record_fault(e);
            return false;
        }
        let out = self.conforms_nnf_inner(node, shape);
        self.exec.leave();
        out
    }

    fn conforms_nnf_inner(&mut self, node: TermId, shape: &Nnf) -> bool {
        match shape {
            Nnf::True => true,
            Nnf::False => false,
            Nnf::HasShape(name) => self.conforms_named(node, name),
            Nnf::NotHasShape(name) => !self.conforms_named(node, name),
            Nnf::Test(t) => t.satisfied_by(self.graph.term(node)),
            Nnf::NotTest(t) => !t.satisfied_by(self.graph.term(node)),
            Nnf::HasValue(c) => self.graph.term(node) == c,
            Nnf::NotHasValue(c) => self.graph.term(node) != c,
            Nnf::Eq(f, p) => self.conforms(node, &Shape::Eq(f.clone(), p.clone())),
            Nnf::NotEq(f, p) => !self.conforms(node, &Shape::Eq(f.clone(), p.clone())),
            Nnf::Disj(f, p) => self.conforms(node, &Shape::Disj(f.clone(), p.clone())),
            Nnf::NotDisj(f, p) => !self.conforms(node, &Shape::Disj(f.clone(), p.clone())),
            Nnf::Closed(ps) => self.conforms(node, &Shape::Closed(ps.clone())),
            Nnf::NotClosed(ps) => !self.conforms(node, &Shape::Closed(ps.clone())),
            Nnf::LessThan(e, p) => self.pairwise_cmp(e, p, node, CmpOp::Lt),
            Nnf::NotLessThan(e, p) => !self.pairwise_cmp(e, p, node, CmpOp::Lt),
            Nnf::LessThanEq(e, p) => self.pairwise_cmp(e, p, node, CmpOp::Le),
            Nnf::NotLessThanEq(e, p) => !self.pairwise_cmp(e, p, node, CmpOp::Le),
            Nnf::MoreThan(e, p) => self.pairwise_cmp(e, p, node, CmpOp::Gt),
            Nnf::NotMoreThan(e, p) => !self.pairwise_cmp(e, p, node, CmpOp::Gt),
            Nnf::MoreThanEq(e, p) => self.pairwise_cmp(e, p, node, CmpOp::Ge),
            Nnf::NotMoreThanEq(e, p) => !self.pairwise_cmp(e, p, node, CmpOp::Ge),
            Nnf::UniqueLang(e) => self.conforms(node, &Shape::UniqueLang(e.clone())),
            Nnf::NotUniqueLang(e) => !self.conforms(node, &Shape::UniqueLang(e.clone())),
            Nnf::And(items) => items.iter().all(|s| self.conforms_nnf(node, s)),
            Nnf::Or(items) => items.iter().any(|s| self.conforms_nnf(node, s)),
            Nnf::Geq(n, e, inner) => {
                let candidates = self.eval_path(e, node);
                let mut count: u32 = 0;
                for b in candidates {
                    if self.conforms_nnf(b, inner) {
                        count += 1;
                        if count >= *n {
                            return true;
                        }
                    }
                }
                count >= *n
            }
            Nnf::Leq(n, e, inner) => {
                let candidates = self.eval_path(e, node);
                let mut count: u32 = 0;
                for b in candidates {
                    if self.conforms_nnf(b, inner) {
                        count += 1;
                        if count > *n {
                            return false;
                        }
                    }
                }
                true
            }
            Nnf::ForAll(e, inner) => {
                let candidates = self.eval_path(e, node);
                candidates.into_iter().all(|b| self.conforms_nnf(b, inner))
            }
        }
    }

    /// Decides `H, G, a ⊨ hasShape(s)`, consulting the shared memo when one
    /// is attached: each `(shape name, node)` pair is decided at most once
    /// per memo, no matter how many referencing shapes or targets ask.
    pub fn conforms_named(&mut self, node: TermId, name: &Term) -> bool {
        let memo = self.memo.clone();
        if let Some(memo) = memo {
            if let Some(sid) = self.schema.name_id(name) {
                if let Some(decided) = memo.lookup_or_derive(sid, node) {
                    return decided;
                }
                let def = self.schema.def(name);
                let value = self.conforms(node, &def);
                // A faulted run's answers are unwinding placeholders, not
                // decisions; keep them out of the shared memo.
                if self.fault.is_none() {
                    memo.insert(sid, node, value);
                }
                return value;
            }
        }
        let def = self.schema.def(name);
        self.conforms(node, &def)
    }

    /// Set-at-a-time `⟦E⟧^G(sources[i])` through the multi-source kernel.
    pub fn eval_path_many(&mut self, path: &PathExpr, sources: &[TermId]) -> Vec<BTreeSet<TermId>> {
        match self
            .paths
            .try_eval_many(path, self.graph, sources, &self.exec)
        {
            Ok(out) => out,
            Err(e) => {
                self.record_fault(e);
                vec![BTreeSet::new(); sources.len()]
            }
        }
    }

    /// Batched path tracing through the multi-source kernel.
    pub fn trace_path_many(
        &mut self,
        path: &PathExpr,
        requests: &[(TermId, BTreeSet<TermId>)],
    ) -> Vec<BTreeSet<(TermId, TermId, TermId)>> {
        match self
            .paths
            .try_trace_many(path, self.graph, requests, &self.exec)
        {
            Ok(out) => out,
            Err(e) => {
                self.record_fault(e);
                vec![BTreeSet::new(); requests.len()]
            }
        }
    }

    /// Batch driver: decides `H, G, a ⊨ φ` for every node at once,
    /// agreeing pointwise with [`Context::conforms`].
    ///
    /// Boolean structure is evaluated set-wise (narrowing to still-undecided
    /// nodes), quantifier candidate sets come from one multi-source RPQ pass
    /// over all focus nodes, and candidate conformance is decided once per
    /// *distinct* candidate instead of once per (focus, candidate) pair.
    pub fn conforms_all(&mut self, nodes: &[TermId], shape: &Shape) -> Vec<bool> {
        if self.fault.is_some() {
            return vec![false; nodes.len()];
        }
        if let Err(e) = self.exec.enter() {
            self.record_fault(e);
            return vec![false; nodes.len()];
        }
        let out = self.conforms_all_inner(nodes, shape);
        self.exec.leave();
        out
    }

    fn conforms_all_inner(&mut self, nodes: &[TermId], shape: &Shape) -> Vec<bool> {
        match shape {
            Shape::True => vec![true; nodes.len()],
            Shape::False => vec![false; nodes.len()],
            Shape::HasShape(name) => self.conforms_all_named(nodes, name),
            Shape::Not(inner) => {
                let mut out = self.conforms_all(nodes, inner);
                for b in &mut out {
                    *b = !*b;
                }
                out
            }
            Shape::And(items) => {
                let mut out = vec![true; nodes.len()];
                for item in items {
                    let live: Vec<usize> = (0..nodes.len()).filter(|&i| out[i]).collect();
                    if live.is_empty() {
                        break;
                    }
                    let subset: Vec<TermId> = live.iter().map(|&i| nodes[i]).collect();
                    let sub = self.conforms_all(&subset, item);
                    for (k, &i) in live.iter().enumerate() {
                        out[i] = sub[k];
                    }
                }
                out
            }
            Shape::Or(items) => {
                let mut out = vec![false; nodes.len()];
                for item in items {
                    let live: Vec<usize> = (0..nodes.len()).filter(|&i| !out[i]).collect();
                    if live.is_empty() {
                        break;
                    }
                    let subset: Vec<TermId> = live.iter().map(|&i| nodes[i]).collect();
                    let sub = self.conforms_all(&subset, item);
                    for (k, &i) in live.iter().enumerate() {
                        out[i] = sub[k];
                    }
                }
                out
            }
            Shape::Geq(n, e, inner) => {
                let need = *n as usize;
                if matches!(**inner, Shape::True) {
                    self.counted_all(nodes, e, move |count| count >= need)
                } else {
                    self.quantified_all(
                        nodes,
                        e,
                        |ctx, cands| ctx.conforms_all(cands, inner),
                        move |count, _total| count >= need,
                    )
                }
            }
            Shape::Leq(n, e, inner) => {
                let cap = *n as usize;
                if matches!(**inner, Shape::True) {
                    self.counted_all(nodes, e, move |count| count <= cap)
                } else {
                    self.quantified_all(
                        nodes,
                        e,
                        |ctx, cands| ctx.conforms_all(cands, inner),
                        move |count, _total| count <= cap,
                    )
                }
            }
            Shape::ForAll(e, inner) => {
                if matches!(**inner, Shape::True) {
                    // Every candidate conforms to ⊤, so ∀E.⊤ holds trivially.
                    vec![true; nodes.len()]
                } else {
                    self.quantified_all(
                        nodes,
                        e,
                        |ctx, cands| ctx.conforms_all(cands, inner),
                        |count, total| count == total,
                    )
                }
            }
            // Shape-free atoms: no sub-shape to share, decide per node.
            atom => nodes.iter().map(|&a| self.conforms(a, atom)).collect(),
        }
    }

    /// NNF twin of [`Context::conforms_all`], agreeing pointwise with
    /// [`Context::conforms_nnf`].
    pub fn conforms_all_nnf(&mut self, nodes: &[TermId], shape: &Nnf) -> Vec<bool> {
        if self.fault.is_some() {
            return vec![false; nodes.len()];
        }
        if let Err(e) = self.exec.enter() {
            self.record_fault(e);
            return vec![false; nodes.len()];
        }
        let out = self.conforms_all_nnf_inner(nodes, shape);
        self.exec.leave();
        out
    }

    fn conforms_all_nnf_inner(&mut self, nodes: &[TermId], shape: &Nnf) -> Vec<bool> {
        match shape {
            Nnf::True => vec![true; nodes.len()],
            Nnf::False => vec![false; nodes.len()],
            Nnf::HasShape(name) => self.conforms_all_named(nodes, name),
            Nnf::NotHasShape(name) => {
                let mut out = self.conforms_all_named(nodes, name);
                for b in &mut out {
                    *b = !*b;
                }
                out
            }
            Nnf::And(items) => {
                let mut out = vec![true; nodes.len()];
                for item in items {
                    let live: Vec<usize> = (0..nodes.len()).filter(|&i| out[i]).collect();
                    if live.is_empty() {
                        break;
                    }
                    let subset: Vec<TermId> = live.iter().map(|&i| nodes[i]).collect();
                    let sub = self.conforms_all_nnf(&subset, item);
                    for (k, &i) in live.iter().enumerate() {
                        out[i] = sub[k];
                    }
                }
                out
            }
            Nnf::Or(items) => {
                let mut out = vec![false; nodes.len()];
                for item in items {
                    let live: Vec<usize> = (0..nodes.len()).filter(|&i| !out[i]).collect();
                    if live.is_empty() {
                        break;
                    }
                    let subset: Vec<TermId> = live.iter().map(|&i| nodes[i]).collect();
                    let sub = self.conforms_all_nnf(&subset, item);
                    for (k, &i) in live.iter().enumerate() {
                        out[i] = sub[k];
                    }
                }
                out
            }
            Nnf::Geq(n, e, inner) => {
                let need = *n as usize;
                if matches!(**inner, Nnf::True) {
                    self.counted_all(nodes, e, move |count| count >= need)
                } else {
                    self.quantified_all(
                        nodes,
                        e,
                        |ctx, cands| ctx.conforms_all_nnf(cands, inner),
                        move |count, _total| count >= need,
                    )
                }
            }
            Nnf::Leq(n, e, inner) => {
                let cap = *n as usize;
                if matches!(**inner, Nnf::True) {
                    self.counted_all(nodes, e, move |count| count <= cap)
                } else {
                    self.quantified_all(
                        nodes,
                        e,
                        |ctx, cands| ctx.conforms_all_nnf(cands, inner),
                        move |count, _total| count <= cap,
                    )
                }
            }
            Nnf::ForAll(e, inner) => {
                if matches!(**inner, Nnf::True) {
                    vec![true; nodes.len()]
                } else {
                    self.quantified_all(
                        nodes,
                        e,
                        |ctx, cands| ctx.conforms_all_nnf(cands, inner),
                        |count, total| count == total,
                    )
                }
            }
            atom => nodes.iter().map(|&a| self.conforms_nnf(a, atom)).collect(),
        }
    }

    /// Shared quantifier machinery for the batch drivers: one multi-source
    /// RPQ pass yields each focus node's candidate set; the *union* of
    /// candidates is decided in one recursive batch; each focus then counts
    /// its conforming candidates and `decide(count, total)` gives the bit.
    fn quantified_all<F, D>(
        &mut self,
        nodes: &[TermId],
        path: &PathExpr,
        mut conforms_batch: F,
        decide: D,
    ) -> Vec<bool>
    where
        F: FnMut(&mut Self, &[TermId]) -> Vec<bool>,
        D: Fn(usize, usize) -> bool,
    {
        let cand_sets = self.eval_path_many(path, nodes);
        let mut union_vec: Vec<TermId> = cand_sets
            .iter()
            .flat_map(|set| set.iter().copied())
            .collect();
        union_vec.sort_unstable();
        union_vec.dedup();
        let decided = conforms_batch(self, &union_vec);
        let ok: IntMap<TermId, bool> = union_vec.into_iter().zip(decided).collect();
        cand_sets
            .iter()
            .map(|cands| {
                let count = cands.iter().filter(|c| ok[c]).count();
                decide(count, cands.len())
            })
            .collect()
    }

    /// Quantifier fast path for a `⊤` inner shape: every path candidate
    /// conforms, so only the candidate *counts* are needed.
    fn counted_all<D: Fn(usize) -> bool>(
        &mut self,
        nodes: &[TermId],
        path: &PathExpr,
        decide: D,
    ) -> Vec<bool> {
        self.eval_path_many(path, nodes)
            .iter()
            .map(|cands| decide(cands.len()))
            .collect()
    }

    /// Batch form of [`Context::conforms_named`]: memo hits answer
    /// immediately; the distinct undecided nodes are evaluated in one
    /// recursive batch against the definition and recorded.
    fn conforms_all_named(&mut self, nodes: &[TermId], name: &Term) -> Vec<bool> {
        let memo = self.memo.clone();
        let sid = self.schema.name_id(name);
        let (Some(memo), Some(sid)) = (memo, sid) else {
            let def = self.schema.def(name);
            return self.conforms_all(nodes, &def);
        };
        let mut out = vec![false; nodes.len()];
        let mut missing: Vec<usize> = Vec::new();
        let index = memo.containment();
        let mut derived: Vec<(TermId, bool)> = Vec::new();
        {
            // Pin every stripe for read once, then the scan is lock-free
            // per node (readers share stripes; only writers exclude).
            let tables: Vec<_> = memo.shards.iter().map(|s| s.read()).collect();
            let probe = |shape: u32, node: TermId| -> Option<bool> {
                tables[ConformanceMemo::shard_index(shape, node)]
                    .get(&(shape, node))
                    .copied()
            };
            for (i, &node) in nodes.iter().enumerate() {
                if let Some(v) = probe(sid, node) {
                    out[i] = v;
                    continue;
                }
                // Subsumption derivation against the same pinned tables: a
                // true bit of a contained shape, or a false bit of a
                // containing shape, settles this pair without evaluation.
                let from_index = index.as_ref().and_then(|idx| {
                    idx.subs_of(sid)
                        .iter()
                        .find(|&&sub| probe(sub, node) == Some(true))
                        .map(|_| true)
                        .or_else(|| {
                            idx.supers_of(sid)
                                .iter()
                                .find(|&&sup| probe(sup, node) == Some(false))
                                .map(|_| false)
                        })
                });
                match from_index {
                    Some(v) => {
                        out[i] = v;
                        derived.push((node, v));
                        memo.containment_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    None => {
                        if index.is_some() {
                            memo.containment_misses.fetch_add(1, Ordering::Relaxed);
                        }
                        missing.push(i);
                    }
                }
            }
        }
        // Write back derived bits only after the pinned read guards are
        // dropped (insert takes a write lock on the same stripes).
        for &(node, v) in &derived {
            memo.insert(sid, node, v);
        }
        if !missing.is_empty() {
            let mut uniq_vec: Vec<TermId> = missing.iter().map(|&i| nodes[i]).collect();
            uniq_vec.sort_unstable();
            uniq_vec.dedup();
            let def = self.schema.def(name);
            let decided = self.conforms_all(&uniq_vec, &def);
            let map: IntMap<TermId, bool> = uniq_vec
                .iter()
                .copied()
                .zip(decided.iter().copied())
                .collect();
            // Keep unwinding placeholders from a faulted run out of the
            // shared memo. Inserts go stripe by stripe (uncontended CAS in
            // the common case), not under one global lock.
            if self.fault.is_none() {
                for (&node, &v) in map.iter() {
                    memo.insert(sid, node, v);
                }
            }
            for &i in &missing {
                out[i] = map[&nodes[i]];
            }
        }
        out
    }

    /// `⟦p⟧^G(a)` for a plain property.
    fn prop_values(&mut self, node: TermId, p: &shapefrag_rdf::Iri) -> BTreeSet<TermId> {
        match self.graph.id_of_iri(p) {
            Some(pid) => self.graph.objects_ids(node, pid).collect(),
            None => BTreeSet::new(),
        }
    }

    fn pairwise_cmp(
        &mut self,
        e: &PathExpr,
        p: &shapefrag_rdf::Iri,
        node: TermId,
        op: CmpOp,
    ) -> bool {
        let left = self.eval_path(e, node);
        let right = self.prop_values(node, p);
        for b in &left {
            for c in &right {
                let (Term::Literal(lb), Term::Literal(lc)) =
                    (self.graph.term(*b), self.graph.term(*c))
                else {
                    return false; // b and c must be literals
                };
                if !op.holds(lb.value().partial_cmp_value(&lc.value())) {
                    return false;
                }
            }
        }
        true
    }

    /// The target nodes of a target shape: all `a ∈ N(G)` with
    /// `H, G, a ⊨ τ`. Common SHACL target forms take fast paths; arbitrary
    /// shapes fall back to a full node scan.
    pub fn target_nodes(&mut self, target: &Shape) -> BTreeSet<TermId> {
        if let Some(fast) = self.fast_targets(target) {
            return fast;
        }
        let nodes = self.graph.node_ids();
        nodes
            .into_iter()
            .filter(|n| self.conforms(*n, target))
            .collect()
    }

    fn fast_targets(&mut self, target: &Shape) -> Option<BTreeSet<TermId>> {
        match target {
            Shape::False => Some(BTreeSet::new()),
            // Node target.
            Shape::HasValue(c) => Some(self.graph.id_of(c).into_iter().collect()),
            // Union of targets.
            Shape::Or(items) => {
                let mut out = BTreeSet::new();
                for item in items {
                    out.extend(self.fast_targets(item)?);
                }
                Some(out)
            }
            Shape::Geq(1, path, inner) => match (path, inner.as_ref()) {
                // Subjects-of target: ≥1 p.⊤
                (PathExpr::Prop(p), Shape::True) => {
                    let pid = self.graph.id_of_iri(p)?;
                    Some(
                        self.graph
                            .edges_with_predicate_ids(pid)
                            .map(|(s, _)| s)
                            .collect(),
                    )
                }
                // Objects-of target: ≥1 p⁻.⊤
                (PathExpr::Inverse(inv), Shape::True) => match inv.as_ref() {
                    PathExpr::Prop(p) => {
                        let pid = self.graph.id_of_iri(p)?;
                        Some(
                            self.graph
                                .edges_with_predicate_ids(pid)
                                .map(|(_, o)| o)
                                .collect(),
                        )
                    }
                    _ => None,
                },
                // Class target: ≥1 type/sub*.hasValue(c) — find all classes
                // that reach c via sub*, then all their instances.
                (PathExpr::Seq(first, rest), Shape::HasValue(c)) => {
                    let (PathExpr::Prop(type_p), PathExpr::ZeroOrMore(sub)) =
                        (first.as_ref(), rest.as_ref())
                    else {
                        return None;
                    };
                    let PathExpr::Prop(sub_p) = sub.as_ref() else {
                        return None;
                    };
                    let cid = self.graph.id_of(c)?;
                    // Classes reaching c: backward closure over sub_p.
                    let back = PathExpr::Prop(sub_p.clone()).inverse().star();
                    let classes = self.eval_path(&back, cid);
                    let type_pid = self.graph.id_of_iri(type_p)?;
                    let mut out = BTreeSet::new();
                    for class in classes {
                        out.extend(self.graph.subjects_ids(class, type_pid));
                    }
                    Some(out)
                }
                // Plain-class target without subclass closure:
                // ≥1 type.hasValue(c).
                (PathExpr::Prop(type_p), Shape::HasValue(c)) => {
                    let cid = self.graph.id_of(c)?;
                    let type_pid = self.graph.id_of_iri(type_p)?;
                    Some(self.graph.subjects_ids(cid, type_pid).collect())
                }
                _ => None,
            },
            _ => None,
        }
    }
}

impl<'a> Context<'a, Graph> {
    /// Term-level convenience for [`Context::conforms`]; nodes not occurring
    /// in the graph still have well-defined conformance (e.g. to `⊤` or
    /// `hasValue`). Only available on the mutable backend, because an
    /// unknown focus node must be interned into a local graph clone.
    pub fn conforms_term(&mut self, node: &Term, shape: &Shape) -> bool {
        match self.graph.id_of(node) {
            Some(id) => self.conforms(id, shape),
            None => {
                // Node absent from the graph: evaluate against the empty
                // neighborhood semantics — paths evaluate to ∅ (or {node}
                // for nullable paths, which cannot be represented without an
                // id; we fall back to a local graph clone with the node
                // interned).
                let mut g = self.graph.clone();
                let id = g.intern(node);
                let mut ctx = Context::new(self.schema, &g);
                ctx.conforms(id, shape)
            }
        }
    }
}

/// A literal comparison operator used by the property-pair shapes
/// (`lessThan`, `lessThanEq`, and the Remark 2.3 `moreThan` variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Whether the (possibly undefined) ordering satisfies the operator;
    /// incomparable values never do.
    pub fn holds(self, ord: Option<std::cmp::Ordering>) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (CmpOp::Lt, Some(Less))
                | (CmpOp::Le, Some(Less) | Some(Equal))
                | (CmpOp::Gt, Some(Greater))
                | (CmpOp::Ge, Some(Greater) | Some(Equal))
        )
    }
}

/// One violation: a target node that does not conform to its shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The shape definition's name.
    pub shape: Term,
    /// The non-conforming focus node.
    pub focus: Term,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "node {} does not conform to shape {}",
            self.focus, self.shape
        )
    }
}

/// The result of validating a graph against a schema.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValidationReport {
    pub violations: Vec<Violation>,
    /// Number of (shape, target node) conformance checks performed.
    pub checked: usize,
}

impl ValidationReport {
    /// True iff the graph conforms to the schema (no violations).
    pub fn conforms(&self) -> bool {
        self.violations.is_empty()
    }

    /// Serializes the report as a standard `sh:ValidationReport` RDF graph
    /// (what a conforming SHACL processor returns), ready for Turtle or
    /// N-Triples output.
    pub fn to_graph(&self) -> Graph {
        use shapefrag_rdf::vocab::{rdf, sh};
        use shapefrag_rdf::{BlankNode, Literal, Triple};
        let mut g = Graph::new();
        let report = Term::Blank(BlankNode::new("report"));
        g.insert(Triple::new(
            report.clone(),
            rdf::type_(),
            Term::Iri(sh::validation_report()),
        ));
        g.insert(Triple::new(
            report.clone(),
            sh::conforms(),
            Term::Literal(Literal::boolean(self.conforms())),
        ));
        for (i, v) in self.violations.iter().enumerate() {
            let result = Term::Blank(BlankNode::new(format!("result{i}")));
            g.insert(Triple::new(report.clone(), sh::result(), result.clone()));
            g.insert(Triple::new(
                result.clone(),
                rdf::type_(),
                Term::Iri(sh::validation_result()),
            ));
            g.insert(Triple::new(
                result.clone(),
                sh::focus_node(),
                v.focus.clone(),
            ));
            g.insert(Triple::new(
                result.clone(),
                sh::source_shape(),
                v.shape.clone(),
            ));
            g.insert(Triple::new(
                result,
                sh::result_severity(),
                Term::Iri(sh::violation()),
            ));
        }
        g
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.conforms() {
            write!(f, "conforms ({} checks)", self.checked)
        } else {
            writeln!(
                f,
                "{} violations ({} checks):",
                self.violations.len(),
                self.checked
            )?;
            for v in &self.violations {
                writeln!(f, "  {v}")?;
            }
            Ok(())
        }
    }
}

/// Validates `graph` against `schema`: for every definition `(s, φ, τ)` and
/// every node `a` with `H, G, a ⊨ τ`, checks `H, G, a ⊨ φ`.
pub fn validate<G: GraphAccess>(schema: &Schema, graph: &G) -> ValidationReport {
    let mut ctx = Context::new(schema, graph);
    let mut report = ValidationReport::default();
    for def in schema.iter() {
        let targets = ctx.target_nodes(&def.target);
        for node in targets {
            report.checked += 1;
            if !ctx.conforms(node, &def.shape) {
                report.violations.push(Violation {
                    shape: def.name.clone(),
                    focus: graph.term(node).clone(),
                });
            }
        }
    }
    report
}

/// Set-at-a-time [`validate`]: same report, but each definition's targets
/// are decided in one [`Context::conforms_all`] batch with a fresh shared
/// memo, so `hasShape` sub-shapes are checked once per node across all
/// referencing targets and path work is shared via the multi-source kernel.
pub fn validate_batch<G: GraphAccess>(schema: &Schema, graph: &G) -> ValidationReport {
    validate_batch_with_memo(schema, graph, Arc::new(ConformanceMemo::new()))
}

/// [`validate_batch`] against a caller-provided memo (which must belong to
/// this `(graph, schema)` pair); lets parallel drivers share decisions
/// across worker threads.
pub fn validate_batch_with_memo<G: GraphAccess>(
    schema: &Schema,
    graph: &G,
    memo: Arc<ConformanceMemo>,
) -> ValidationReport {
    let mut ctx = Context::with_memo(schema, graph, memo);
    let mut report = ValidationReport::default();
    for def in schema.iter() {
        let targets: Vec<TermId> = ctx.target_nodes(&def.target).into_iter().collect();
        // Route the top-level check through the *named* path so the
        // definition's own bits land in the memo (`def(name)` defaults to
        // the definition's shape, so the answers are identical). Named
        // bits are what makes subsumption derivation and cross-def reuse
        // possible.
        let shape = Shape::HasShape(def.name.clone());
        let conforming = ctx.conforms_all(&targets, &shape);
        report.checked += targets.len();
        for (node, ok) in targets.iter().zip(conforming) {
            if !ok {
                report.violations.push(Violation {
                    shape: def.name.clone(),
                    focus: graph.term(*node).clone(),
                });
            }
        }
    }
    report
}

/// Which definitions a containment-aware driver can settle without any
/// shape-body evaluation: definition `i` is covered when an earlier
/// definition with a provably *equivalent* shape and a syntactically
/// identical target has already run, so every one of `i`'s target bits
/// derives from the earlier definition's memo entries.
fn covered_defs(schema: &Schema, index: Option<&ContainmentIndex>) -> Vec<bool> {
    let defs: Vec<&crate::schema::ShapeDef> = schema.iter().collect();
    let mut covered = vec![false; defs.len()];
    let Some(index) = index else {
        return covered;
    };
    for i in 0..defs.len() {
        debug_assert_eq!(schema.name_id(&defs[i].name), Some(i as u32));
        for j in 0..i {
            if !covered[j]
                && defs[i].target == defs[j].target
                && index.supers_of(i as u32).contains(&(j as u32))
                && index.subs_of(i as u32).contains(&(j as u32))
            {
                covered[i] = true;
                break;
            }
        }
    }
    covered
}

/// [`validate_batch_with_memo`] with subsumption-keyed reuse: the memo's
/// attached [`ContainmentIndex`] (see
/// [`ConformanceMemo::attach_containment`]) lets decided bits of related
/// shapes answer top-level checks without evaluation. Returns the report —
/// bit-identical to the other drivers' — plus the number of definitions
/// that needed no shape-body evaluation at all (fully derived from an
/// equivalent definition's bits).
pub fn validate_batch_containment<G: GraphAccess>(
    schema: &Schema,
    graph: &G,
    memo: Arc<ConformanceMemo>,
) -> (ValidationReport, u64) {
    let covered = covered_defs(schema, memo.containment().as_deref());
    let mut ctx = Context::with_memo(schema, graph, memo);
    let mut report = ValidationReport::default();
    let mut skipped = 0u64;
    for (i, def) in schema.iter().enumerate() {
        let targets: Vec<TermId> = ctx.target_nodes(&def.target).into_iter().collect();
        let shape = Shape::HasShape(def.name.clone());
        let conforming = ctx.conforms_all(&targets, &shape);
        report.checked += targets.len();
        if covered[i] {
            skipped += 1;
        }
        for (node, ok) in targets.iter().zip(conforming) {
            if !ok {
                report.violations.push(Violation {
                    shape: def.name.clone(),
                    focus: graph.term(*node).clone(),
                });
            }
        }
    }
    (report, skipped)
}

/// Resource-governed [`validate_batch_containment`].
pub fn validate_batch_containment_governed<G: GraphAccess>(
    schema: &Schema,
    graph: &G,
    memo: Arc<ConformanceMemo>,
    exec: ExecCtx,
) -> Result<(ValidationReport, u64), EngineError> {
    let covered = covered_defs(schema, memo.containment().as_deref());
    let mut ctx = Context::with_memo(schema, graph, memo).with_exec(exec);
    let mut report = ValidationReport::default();
    let mut skipped = 0u64;
    for (i, def) in schema.iter().enumerate() {
        ctx.exec.check_now()?;
        let targets: Vec<TermId> = ctx.target_nodes(&def.target).into_iter().collect();
        if let Some(e) = ctx.take_fault() {
            return Err(e);
        }
        let shape = Shape::HasShape(def.name.clone());
        let conforming = ctx.conforms_all(&targets, &shape);
        if let Some(e) = ctx.take_fault() {
            return Err(e);
        }
        report.checked += targets.len();
        if covered[i] {
            skipped += 1;
        }
        for (node, ok) in targets.iter().zip(conforming) {
            if !ok {
                report.violations.push(Violation {
                    shape: def.name.clone(),
                    focus: graph.term(*node).clone(),
                });
            }
        }
    }
    Ok((report, skipped))
}

/// Resource-governed [`validate`]: same report on success, or the first
/// [`EngineError`] (deadline, budget, cancellation, depth) instead of a
/// partial — and therefore misleading — report.
pub fn validate_governed<G: GraphAccess>(
    schema: &Schema,
    graph: &G,
    exec: ExecCtx,
) -> Result<ValidationReport, EngineError> {
    let mut ctx = Context::new(schema, graph).with_exec(exec);
    let mut report = ValidationReport::default();
    for def in schema.iter() {
        ctx.exec.check_now()?;
        let targets = ctx.target_nodes(&def.target);
        if let Some(e) = ctx.take_fault() {
            return Err(e);
        }
        for node in targets {
            report.checked += 1;
            let ok = ctx.conforms(node, &def.shape);
            if let Some(e) = ctx.take_fault() {
                return Err(e);
            }
            if !ok {
                report.violations.push(Violation {
                    shape: def.name.clone(),
                    focus: graph.term(node).clone(),
                });
            }
        }
    }
    Ok(report)
}

/// Resource-governed [`validate_batch`]: the set-at-a-time driver under a
/// deadline/budget/cancellation governor.
pub fn validate_batch_governed<G: GraphAccess>(
    schema: &Schema,
    graph: &G,
    exec: ExecCtx,
) -> Result<ValidationReport, EngineError> {
    let mut ctx =
        Context::with_memo(schema, graph, Arc::new(ConformanceMemo::new())).with_exec(exec);
    let mut report = ValidationReport::default();
    for def in schema.iter() {
        ctx.exec.check_now()?;
        let targets: Vec<TermId> = ctx.target_nodes(&def.target).into_iter().collect();
        if let Some(e) = ctx.take_fault() {
            return Err(e);
        }
        let conforming = ctx.conforms_all(&targets, &def.shape);
        if let Some(e) = ctx.take_fault() {
            return Err(e);
        }
        report.checked += targets.len();
        for (node, ok) in targets.iter().zip(conforming) {
            if !ok {
                report.violations.push(Violation {
                    shape: def.name.clone(),
                    focus: graph.term(*node).clone(),
                });
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node_test::{NodeKind, NodeTest};
    use crate::schema::ShapeDef;
    use shapefrag_rdf::vocab::rdf;
    use shapefrag_rdf::{Iri, Literal, Triple};

    fn iri(n: &str) -> Iri {
        Iri::new(format!("http://e/{n}"))
    }

    fn term(n: &str) -> Term {
        Term::iri(format!("http://e/{n}"))
    }

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(term(s), iri(p), term(o))
    }

    fn lit(s: &str, p: &str, o: Literal) -> Triple {
        Triple::new(term(s), iri(p), Term::Literal(o))
    }

    fn p(n: &str) -> PathExpr {
        PathExpr::Prop(iri(n))
    }

    fn check(g: &Graph, node: &str, shape: &Shape) -> bool {
        let schema = Schema::empty();
        let mut ctx = Context::new(&schema, g);
        ctx.conforms_term(&term(node), shape)
    }

    #[test]
    fn workshop_shape_example() {
        // Example 1.1/2.2: ≥1 author.≥1 type/sub*.hasValue(Student)
        let g = Graph::from_triples([
            t("paper1", "author", "alice"),
            t("alice", "type", "PhDStudent"),
            t("PhDStudent", "sub", "Student"),
            t("paper2", "author", "bob"),
            t("bob", "type", "Professor"),
        ]);
        let shape = Shape::geq(
            1,
            p("author"),
            Shape::geq(
                1,
                p("type").then(p("sub").star()),
                Shape::has_value(term("Student")),
            ),
        );
        assert!(check(&g, "paper1", &shape));
        assert!(!check(&g, "paper2", &shape));
    }

    #[test]
    fn happy_at_work_example() {
        // Example 2.2: ¬disj(friend, colleague).
        let g = Graph::from_triples([
            t("v", "friend", "x"),
            t("v", "colleague", "x"),
            t("w", "friend", "y"),
            t("w", "colleague", "z"),
        ]);
        let shape = Shape::Disj(PathOrId::Path(p("friend")), iri("colleague")).not();
        assert!(check(&g, "v", &shape));
        assert!(!check(&g, "w", &shape));
    }

    #[test]
    fn self_loop_shapes() {
        // ¬disj(id, p): p-self-loop. eq(id, p): only p-edge is a self-loop.
        let g = Graph::from_triples([t("v", "p", "v"), t("w", "p", "w"), t("w", "p", "x")]);
        let has_loop = Shape::Disj(PathOrId::Id, iri("p")).not();
        let only_loop = Shape::Eq(PathOrId::Id, iri("p"));
        assert!(check(&g, "v", &has_loop));
        assert!(check(&g, "w", &has_loop));
        assert!(check(&g, "v", &only_loop));
        assert!(!check(&g, "w", &only_loop));
        assert!(!check(&g, "x", &has_loop));
    }

    #[test]
    fn eq_and_disj_on_paths() {
        let g = Graph::from_triples([
            t("a", "e", "x"),
            t("a", "p", "x"),
            t("b", "e", "x"),
            t("b", "p", "y"),
        ]);
        let eq = Shape::Eq(PathOrId::Path(p("e")), iri("p"));
        let disj = Shape::Disj(PathOrId::Path(p("e")), iri("p"));
        assert!(check(&g, "a", &eq));
        assert!(!check(&g, "b", &eq));
        assert!(!check(&g, "a", &disj));
        assert!(check(&g, "b", &disj));
    }

    #[test]
    fn counting_quantifiers() {
        let g = Graph::from_triples([t("a", "p", "x"), t("a", "p", "y"), t("a", "p", "z")]);
        assert!(check(&g, "a", &Shape::geq(3, p("p"), Shape::True)));
        assert!(!check(&g, "a", &Shape::geq(4, p("p"), Shape::True)));
        assert!(check(&g, "a", &Shape::leq(3, p("p"), Shape::True)));
        assert!(!check(&g, "a", &Shape::leq(2, p("p"), Shape::True)));
        // ≥0 is vacuous.
        assert!(check(&g, "nonode", &Shape::geq(0, p("p"), Shape::True)));
    }

    #[test]
    fn forall_vacuous_and_strict() {
        let g = Graph::from_triples([t("a", "p", "x"), t("x", "type", "C"), t("b", "p", "y")]);
        let all_c = Shape::for_all(
            p("p"),
            Shape::geq(1, p("type"), Shape::has_value(term("C"))),
        );
        assert!(check(&g, "a", &all_c));
        assert!(!check(&g, "b", &all_c));
        assert!(check(&g, "zzz-no-edges", &all_c)); // vacuously true
    }

    #[test]
    fn closedness() {
        let g = Graph::from_triples([t("a", "p", "x"), t("a", "q", "y")]);
        let closed_pq = Shape::Closed(BTreeSet::from([iri("p"), iri("q")]));
        let closed_p = Shape::Closed(BTreeSet::from([iri("p")]));
        assert!(check(&g, "a", &closed_pq));
        assert!(!check(&g, "a", &closed_p));
        // Nodes with no outgoing edges are trivially closed.
        assert!(check(&g, "x", &Shape::Closed(BTreeSet::new())));
    }

    #[test]
    fn less_than_shapes() {
        let g = Graph::from_triples([
            lit("a", "start", Literal::integer(1)),
            lit("a", "end", Literal::integer(5)),
            lit("b", "start", Literal::integer(7)),
            lit("b", "end", Literal::integer(5)),
            lit("c", "start", Literal::integer(5)),
            lit("c", "end", Literal::integer(5)),
        ]);
        let lt = Shape::LessThan(p("start"), iri("end"));
        let lte = Shape::LessThanEq(p("start"), iri("end"));
        assert!(check(&g, "a", &lt));
        assert!(!check(&g, "b", &lt));
        assert!(!check(&g, "c", &lt));
        assert!(check(&g, "c", &lte));
        // Non-literal values make lessThan fail.
        let g2 = Graph::from_triples([t("d", "start", "x"), lit("d", "end", Literal::integer(5))]);
        assert!(!check(&g2, "d", &lt));
        // Vacuous when either side is empty.
        assert!(check(&g, "nonode", &lt));
    }

    #[test]
    fn unique_lang() {
        let g = Graph::from_triples([
            lit("a", "label", Literal::lang_string("hi", "en")),
            lit("a", "label", Literal::lang_string("hallo", "de")),
            lit("b", "label", Literal::lang_string("hi", "en")),
            lit("b", "label", Literal::lang_string("hello", "en")),
            lit("c", "label", Literal::string("plain")),
            lit("c", "label", Literal::string("plain2")),
        ]);
        let ul = Shape::UniqueLang(p("label"));
        assert!(check(&g, "a", &ul));
        assert!(!check(&g, "b", &ul));
        // Untagged literals never clash.
        assert!(check(&g, "c", &ul));
    }

    #[test]
    fn node_tests_in_shapes() {
        let g = Graph::from_triples([lit("a", "age", Literal::integer(30)), t("a", "friend", "b")]);
        let all_int = Shape::for_all(
            p("age"),
            Shape::Test(NodeTest::Datatype(shapefrag_rdf::vocab::xsd::integer())),
        );
        assert!(check(&g, "a", &all_int));
        let all_iri = Shape::for_all(p("friend"), Shape::Test(NodeTest::Kind(NodeKind::Iri)));
        assert!(check(&g, "a", &all_iri));
    }

    #[test]
    fn has_shape_resolution_and_default() {
        let schema = Schema::new([ShapeDef::new(
            term("S"),
            Shape::geq(1, p("p"), Shape::True),
            Shape::False,
        )])
        .unwrap();
        let g = Graph::from_triples([t("a", "p", "x")]);
        let mut ctx = Context::new(&schema, &g);
        let a = g.id_of(&term("a")).unwrap();
        let x = g.id_of(&term("x")).unwrap();
        assert!(ctx.conforms(a, &Shape::HasShape(term("S"))));
        assert!(!ctx.conforms(x, &Shape::HasShape(term("S"))));
        // Undefined shape name defaults to ⊤.
        assert!(ctx.conforms(x, &Shape::HasShape(term("Undefined"))));
    }

    #[test]
    fn nnf_conformance_agrees_with_shape_conformance() {
        let g = Graph::from_triples([
            t("a", "p", "x"),
            t("a", "q", "x"),
            t("x", "type", "C"),
            lit("a", "l", Literal::lang_string("v", "en")),
        ]);
        let shapes = [
            Shape::geq(1, p("p"), Shape::True).not(),
            Shape::for_all(
                p("p"),
                Shape::geq(1, p("type"), Shape::has_value(term("C"))),
            ),
            Shape::Eq(PathOrId::Path(p("p")), iri("q")),
            Shape::Disj(PathOrId::Path(p("p")), iri("q")).not(),
            Shape::UniqueLang(p("l")).not(),
            Shape::leq(0, p("zz"), Shape::True),
            Shape::Closed(BTreeSet::from([iri("p"), iri("q"), iri("l")])),
        ];
        let schema = Schema::empty();
        let mut ctx = Context::new(&schema, &g);
        for node in g.node_ids() {
            for shape in &shapes {
                let nnf = Nnf::from_shape(shape);
                assert_eq!(
                    ctx.conforms(node, shape),
                    ctx.conforms_nnf(node, &nnf),
                    "disagreement on {shape} at {}",
                    g.term(node)
                );
                let neg = Nnf::from_negated_shape(shape);
                assert_eq!(
                    !ctx.conforms(node, shape),
                    ctx.conforms_nnf(node, &neg),
                    "negation disagreement on {shape} at {}",
                    g.term(node)
                );
            }
        }
    }

    #[test]
    fn validation_example_1_3() {
        // Schema: papers must have a student author (WorkshopShape with
        // class target Paper).
        let schema = Schema::new([ShapeDef::new(
            term("WorkshopShape"),
            Shape::geq(
                1,
                p("author"),
                Shape::geq(1, p("type"), Shape::has_value(term("Student"))),
            ),
            Shape::geq(
                1,
                PathExpr::Prop(rdf::type_()),
                Shape::has_value(term("Paper")),
            ),
        )])
        .unwrap();
        let mut ok = Graph::from_triples([
            t("paper1", "author", "alice"),
            t("alice", "type", "Student"),
        ]);
        ok.insert(Triple::new(term("paper1"), rdf::type_(), term("Paper")));
        assert!(validate(&schema, &ok).conforms());

        let mut bad = ok.clone();
        bad.insert(Triple::new(term("paper2"), rdf::type_(), term("Paper")));
        bad.insert(t("paper2", "author", "bob"));
        let report = validate(&schema, &bad);
        assert!(!report.conforms());
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].focus, term("paper2"));
    }

    #[test]
    fn fast_targets_match_slow_scan() {
        let mut g = Graph::from_triples([
            t("a", "p", "b"),
            t("c", "p", "d"),
            t("x", "type", "C1"),
            t("y", "type", "C2"),
            t("C2", "sub", "C1"),
        ]);
        g.insert(Triple::new(term("z"), rdf::type_(), term("C1")));
        let schema = Schema::empty();
        let targets: Vec<Shape> = vec![
            Shape::has_value(term("a")),
            Shape::geq(1, p("p"), Shape::True),
            Shape::geq(1, p("p").inverse(), Shape::True),
            Shape::geq(
                1,
                p("type").then(p("sub").star()),
                Shape::has_value(term("C1")),
            ),
            Shape::geq(1, p("type"), Shape::has_value(term("C1"))),
        ];
        for target in targets {
            let mut ctx = Context::new(&schema, &g);
            let fast = ctx.target_nodes(&target);
            // Slow scan.
            let slow: BTreeSet<TermId> = g
                .node_ids()
                .into_iter()
                .filter(|n| ctx.conforms(*n, &target))
                .collect();
            assert_eq!(fast, slow, "target {target}");
        }
    }

    #[test]
    fn report_serializes_as_shacl_validation_report() {
        use shapefrag_rdf::vocab::sh;
        let schema = Schema::new([ShapeDef::new(
            term("S"),
            Shape::geq(1, p("needed"), Shape::True),
            Shape::geq(1, p("p"), Shape::True),
        )])
        .unwrap();
        let g = Graph::from_triples([t("a", "p", "b")]);
        let report = validate(&schema, &g);
        let rg = report.to_graph();
        // One report node, sh:conforms false, one result with focus ex:a.
        assert_eq!(
            rg.triples_matching(None, Some(&sh::result()), None).len(),
            1
        );
        let focus = rg.triples_matching(None, Some(&sh::focus_node()), None);
        assert_eq!(focus.len(), 1);
        assert_eq!(focus[0].object, term("a"));
        let conforms = rg.triples_matching(None, Some(&sh::conforms()), None);
        assert_eq!(conforms[0].object.as_literal().unwrap().lexical(), "false");
        // A conforming report says so.
        let ok = validate(&schema, &Graph::new());
        let okg = ok.to_graph();
        assert_eq!(
            okg.triples_matching(None, Some(&sh::conforms()), None)[0]
                .object
                .as_literal()
                .unwrap()
                .lexical(),
            "true"
        );
    }

    #[test]
    fn conforms_all_agrees_with_conforms() {
        let g = Graph::from_triples([
            t("a", "p", "x"),
            t("a", "p", "y"),
            t("b", "p", "x"),
            t("x", "type", "C"),
            t("y", "type", "D"),
            t("a", "q", "x"),
            lit("a", "l", Literal::lang_string("v", "en")),
        ]);
        let schema = Schema::new([ShapeDef::new(
            term("Typed"),
            Shape::geq(1, p("type"), Shape::True),
            Shape::False,
        )])
        .unwrap();
        let shapes = [
            Shape::geq(1, p("p"), Shape::HasShape(term("Typed"))),
            Shape::for_all(p("p"), Shape::HasShape(term("Typed"))),
            Shape::leq(
                1,
                p("p"),
                Shape::geq(1, p("type"), Shape::has_value(term("C"))),
            ),
            Shape::geq(2, p("p"), Shape::True).and(Shape::UniqueLang(p("l"))),
            Shape::geq(1, p("q"), Shape::True).or(Shape::geq(1, p("zz"), Shape::True)),
            Shape::Eq(PathOrId::Path(p("p")), iri("q")).not(),
            Shape::Closed(BTreeSet::from([iri("p"), iri("q"), iri("l")])),
        ];
        let nodes: Vec<TermId> = g.node_ids().into_iter().collect();
        for shape in &shapes {
            let mut batch_ctx = Context::with_memo(&schema, &g, Arc::new(ConformanceMemo::new()));
            let batch = batch_ctx.conforms_all(&nodes, shape);
            let mut plain_ctx = Context::new(&schema, &g);
            for (i, &node) in nodes.iter().enumerate() {
                assert_eq!(
                    batch[i],
                    plain_ctx.conforms(node, shape),
                    "disagreement on {shape} at {}",
                    g.term(node)
                );
            }
            // NNF twin agrees as well.
            let nnf = Nnf::from_shape(shape);
            let nnf_batch = batch_ctx.conforms_all_nnf(&nodes, &nnf);
            assert_eq!(batch, nnf_batch, "NNF batch disagreement on {shape}");
        }
    }

    #[test]
    fn memo_decides_shared_subshapes_once() {
        // Two definitions both reference Typed; with a shared memo the
        // second pass answers from the table.
        let schema = Schema::new([
            ShapeDef::new(
                term("A"),
                Shape::for_all(p("p"), Shape::HasShape(term("Typed"))),
                Shape::geq(1, p("p"), Shape::True),
            ),
            ShapeDef::new(
                term("B"),
                Shape::geq(1, p("p"), Shape::HasShape(term("Typed"))),
                Shape::geq(1, p("p"), Shape::True),
            ),
            ShapeDef::new(
                term("Typed"),
                Shape::geq(1, p("type"), Shape::True),
                Shape::False,
            ),
        ])
        .unwrap();
        let g = Graph::from_triples([t("a", "p", "x"), t("a", "p", "y"), t("x", "type", "C")]);
        let memo = Arc::new(ConformanceMemo::new());
        let report = validate_batch_with_memo(&schema, &g, Arc::clone(&memo));
        // x and y were each decided once for Typed.
        let sid = schema.name_id(&term("Typed")).unwrap();
        assert_eq!(memo.lookup(sid, g.id_of(&term("x")).unwrap()), Some(true));
        assert_eq!(memo.lookup(sid, g.id_of(&term("y")).unwrap()), Some(false));
        assert_eq!(report, validate(&schema, &g));
    }

    #[test]
    fn containment_index_derives_bits_and_skips_equivalent_defs() {
        // A ≥1 q (loose), B ≥2 q (strict, ⊑ A), C duplicates A. Dense ids
        // follow name order: A=0, B=1, C=2.
        let mk = |n: u32| Shape::geq(n, p("q"), Shape::True);
        let target = Shape::geq(1, p("t"), Shape::True);
        let schema = Schema::new([
            ShapeDef::new(term("A"), mk(1), target.clone()),
            ShapeDef::new(term("B"), mk(2), target.clone()),
            ShapeDef::new(term("C"), mk(1), target.clone()),
        ])
        .unwrap();
        let g = Graph::from_triples([
            t("a", "t", "m"),
            t("a", "q", "x"),
            t("b", "t", "m"),
            t("b", "q", "x"),
            t("b", "q", "y"),
            t("c", "t", "m"),
        ]);
        let index = Arc::new(ContainmentIndex::from_edges(
            3,
            &[(1, 0), (0, 2), (2, 0), (1, 2)],
            schema_fingerprint(&schema),
        ));
        // Directed closure: bits of B flow up to A and C; bits of A flow
        // both ways through the equivalence.
        assert_eq!(index.related_closure(1), vec![0, 1, 2]);
        assert_eq!(index.related_closure(0), vec![0, 1, 2]);
        let memo = Arc::new(ConformanceMemo::new());
        assert!(memo.attach_containment(Arc::clone(&index)));
        let (report, skipped) = validate_batch_containment(&schema, &g, Arc::clone(&memo));
        // C is fully derived from A's bits (equivalent shape, same target).
        assert_eq!(skipped, 1);
        let (hits, _) = memo.containment_counters();
        assert!(hits > 0, "expected derived answers, got none");
        // Bit-identical to the plain sequential driver.
        assert_eq!(report, validate(&schema, &g));
        // A memo bound to a different schema refuses the index.
        let other = Schema::new([ShapeDef::new(term("Z"), mk(1), target)]).unwrap();
        let memo2 = Arc::new(ConformanceMemo::new());
        let _ = validate_batch_with_memo(&other, &g, Arc::clone(&memo2));
        assert!(!memo2.attach_containment(index));
        assert!(memo2.containment().is_none());
    }

    #[test]
    fn memo_sharing_across_backends_of_the_same_graph_is_allowed() {
        // Freezing is id-stable, so a memo warmed on the mutable graph may
        // be reused over its CSR snapshot (same fingerprint in debug).
        let schema = Schema::new([ShapeDef::new(
            term("S"),
            Shape::geq(1, p("p"), Shape::True),
            Shape::True,
        )])
        .unwrap();
        let g = Graph::from_triples([t("a", "p", "b")]);
        let f = g.freeze();
        let memo = Arc::new(ConformanceMemo::new());
        let r_mut = validate_batch_with_memo(&schema, &g, Arc::clone(&memo));
        let r_frozen = validate_batch_with_memo(&schema, &f, Arc::clone(&memo));
        assert_eq!(r_mut, r_frozen);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn memo_reuse_across_graphs_detaches_in_release() {
        let schema = Schema::new([ShapeDef::new(
            term("S"),
            Shape::geq(1, p("p"), Shape::True),
            Shape::True,
        )])
        .unwrap();
        let g1 = Graph::from_triples([t("a", "p", "b")]);
        let g2 = Graph::from_triples([t("c", "q", "d"), t("c", "q", "e")]);
        let memo = Arc::new(ConformanceMemo::new());
        let r1 = validate_batch_with_memo(&schema, &g1, Arc::clone(&memo));
        assert_eq!(r1, validate(&schema, &g1));
        let before = memo.len();
        // Mismatched attachment: the run must be correct (unmemoized) and
        // must not write g2 facts into g1's memo.
        let r2 = validate_batch_with_memo(&schema, &g2, Arc::clone(&memo));
        assert_eq!(r2, validate(&schema, &g2));
        assert_eq!(memo.len(), before, "detached run must not touch the memo");
    }

    #[test]
    fn memo_invalidate_rebind_and_clear() {
        let schema = Schema::new([ShapeDef::new(
            term("S"),
            Shape::geq(1, p("p"), Shape::True),
            Shape::True,
        )])
        .unwrap();
        let g = Graph::from_triples([t("a", "p", "b"), t("c", "p", "d")]);
        let memo = Arc::new(ConformanceMemo::new());
        let sid = schema.name_id(&term("S")).unwrap();
        let a = g.id_of(&term("a")).unwrap();
        let c = g.id_of(&term("c")).unwrap();
        memo.rebind(&schema, &g);
        memo.insert(sid, a, true);
        memo.insert(sid, c, false);
        memo.invalidate(sid, [a]);
        assert_eq!(memo.lookup(sid, a), None, "invalidated entry must drop");
        assert_eq!(memo.lookup(sid, c), Some(false), "other entries survive");
        // After rebinding to the same pair, attaching succeeds.
        let _ctx = Context::with_memo(&schema, &g, Arc::clone(&memo));
        memo.clear();
        assert!(memo.is_empty());
        // A cleared memo re-binds to any pair.
        let g2 = Graph::from_triples([t("x", "p", "y")]);
        let _ctx2 = Context::with_memo(&schema, &g2, Arc::clone(&memo));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "different (schema, graph) pair")]
    fn memo_reuse_across_graphs_panics_in_debug() {
        let schema = Schema::new([ShapeDef::new(
            term("S"),
            Shape::geq(1, p("p"), Shape::True),
            Shape::True,
        )])
        .unwrap();
        let g1 = Graph::from_triples([t("a", "p", "b")]);
        let g2 = Graph::from_triples([t("c", "p", "d"), t("c", "p", "e")]);
        let memo = Arc::new(ConformanceMemo::new());
        let _first = Context::with_memo(&schema, &g1, Arc::clone(&memo));
        // Same schema, different graph: the ids in the memo would be
        // meaningless here — the binding check must refuse.
        let _second = Context::with_memo(&schema, &g2, Arc::clone(&memo));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "different (schema, graph) pair")]
    fn memo_reuse_across_schemas_panics_in_debug() {
        let s1 = Schema::new([ShapeDef::new(
            term("S"),
            Shape::geq(1, p("p"), Shape::True),
            Shape::True,
        )])
        .unwrap();
        let s2 = Schema::new([ShapeDef::new(
            term("Other"),
            Shape::geq(1, p("p"), Shape::True),
            Shape::True,
        )])
        .unwrap();
        let g = Graph::from_triples([t("a", "p", "b")]);
        let memo = Arc::new(ConformanceMemo::new());
        let _first = Context::with_memo(&s1, &g, Arc::clone(&memo));
        let _second = Context::with_memo(&s2, &g, Arc::clone(&memo));
    }

    #[test]
    fn validate_batch_matches_validate() {
        let schema = Schema::new([
            ShapeDef::new(
                term("S"),
                Shape::geq(
                    1,
                    p("author"),
                    Shape::geq(1, p("type"), Shape::has_value(term("Student"))),
                ),
                Shape::geq(1, p("author"), Shape::True),
            ),
            ShapeDef::new(
                term("T"),
                Shape::for_all(p("author"), Shape::geq(1, p("type"), Shape::True)),
                Shape::geq(1, p("author"), Shape::True),
            ),
        ])
        .unwrap();
        let g = Graph::from_triples([
            t("p1", "author", "alice"),
            t("alice", "type", "Student"),
            t("p2", "author", "bob"),
            t("p3", "author", "alice"),
            t("p3", "author", "bob"),
        ]);
        let per_node = validate(&schema, &g);
        let batch = validate_batch(&schema, &g);
        assert_eq!(per_node, batch);
        assert_eq!(batch.checked, per_node.checked);
    }

    #[test]
    fn governed_validation_matches_ungoverned_when_unbounded() {
        let schema = Schema::new([ShapeDef::new(
            term("S"),
            Shape::geq(
                1,
                p("author"),
                Shape::geq(1, p("type"), Shape::has_value(term("Student"))),
            ),
            Shape::geq(1, p("author"), Shape::True),
        )])
        .unwrap();
        let g = Graph::from_triples([
            t("p1", "author", "alice"),
            t("alice", "type", "Student"),
            t("p2", "author", "bob"),
        ]);
        let plain = validate(&schema, &g);
        let gov = validate_governed(&schema, &g, ExecCtx::unbounded()).unwrap();
        assert_eq!(plain, gov);
        let gov_batch = validate_batch_governed(&schema, &g, ExecCtx::unbounded()).unwrap();
        assert_eq!(plain, gov_batch);
    }

    #[test]
    fn exhausted_step_budget_is_an_error_not_a_report() {
        use shapefrag_govern::{Budget, BudgetKind};
        let schema = Schema::new([ShapeDef::new(
            term("S"),
            Shape::for_all(p("p").star(), Shape::geq(1, p("p"), Shape::True)),
            Shape::geq(1, p("p"), Shape::True),
        )])
        .unwrap();
        // A cycle so p* has plenty of product-graph work to charge for.
        let g = Graph::from_triples([t("a", "p", "b"), t("b", "p", "c"), t("c", "p", "a")]);
        let err = validate_governed(
            &schema,
            &g,
            ExecCtx::with_budget(Budget::unlimited().steps(2)),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            EngineError::BudgetExceeded {
                kind: BudgetKind::Steps,
                ..
            }
        ));
        let err = validate_batch_governed(
            &schema,
            &g,
            ExecCtx::with_budget(Budget::unlimited().steps(2)),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            EngineError::BudgetExceeded {
                kind: BudgetKind::Steps,
                ..
            }
        ));
    }

    #[test]
    fn cancelled_token_aborts_validation() {
        use shapefrag_govern::{Budget, CancelToken};
        let schema = Schema::new([ShapeDef::new(
            term("S"),
            Shape::True,
            Shape::geq(1, p("p"), Shape::True),
        )])
        .unwrap();
        let g = Graph::from_triples([t("a", "p", "b")]);
        let token = CancelToken::new();
        token.cancel();
        let exec = ExecCtx::with_budget(Budget::unlimited()).with_cancel(&token);
        let err = validate_governed(&schema, &g, exec).unwrap_err();
        assert!(matches!(err, EngineError::Cancelled));
    }

    #[test]
    fn depth_limit_surfaces_on_deep_shape_trees() {
        use shapefrag_govern::Budget;
        // A right-nested ForAll chain deeper than the depth limit; the data
        // chain keeps candidates non-empty so recursion actually descends.
        let mut shape = Shape::geq(1, p("p"), Shape::True);
        for _ in 0..64 {
            shape = Shape::for_all(p("p"), shape);
        }
        let mut triples = Vec::new();
        for i in 0..70 {
            triples.push(t(&format!("n{i}"), "p", &format!("n{}", i + 1)));
        }
        let g = Graph::from_triples(triples);
        let schema = Schema::new([ShapeDef::new(
            term("S"),
            shape,
            Shape::geq(1, p("p"), Shape::True),
        )])
        .unwrap();
        let err = validate_governed(
            &schema,
            &g,
            ExecCtx::with_budget(Budget::unlimited().max_depth(16)),
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::DepthLimit { limit: 16 }));
    }

    #[test]
    fn validation_counts_checks() {
        let schema = Schema::new([ShapeDef::new(
            term("S"),
            Shape::True,
            Shape::geq(1, p("p"), Shape::True),
        )])
        .unwrap();
        let g = Graph::from_triples([t("a", "p", "b"), t("c", "p", "d")]);
        let report = validate(&schema, &g);
        assert!(report.conforms());
        assert_eq!(report.checked, 2);
    }
}
