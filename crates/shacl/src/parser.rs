//! Translation of real SHACL shapes graphs into the formal algebra
//! (Appendix A of the paper).
//!
//! The entry point is [`schema_from_shapes_graph`] (or
//! [`parse_shapes_turtle`] for Turtle text). Shapes may be declared
//! explicitly (`sh:NodeShape` / `sh:PropertyShape`) or referenced from other
//! shapes (`sh:node`, `sh:property`, `sh:not`, `sh:and`/`sh:or`/`sh:xone`
//! members, `sh:qualifiedValueShape`); every reachable shape node receives a
//! definition in the resulting [`Schema`]. A shape node with an `sh:path` is
//! treated as a property shape, any other as a node shape.

use std::collections::{BTreeSet, HashSet};
use std::fmt;

use shapefrag_govern::{EngineError, ErrorCode};
use shapefrag_rdf::turtle::{self, read_list};
use shapefrag_rdf::vocab::{rdf, rdfs, sh};
use shapefrag_rdf::{Graph, Iri, Literal, Span, Term, TripleSpans};

use crate::node_test::{NodeKind, NodeTest};
use crate::path::PathExpr;
use crate::schema::{Schema, SchemaError, ShapeDef};
use crate::shape::{PathOrId, Shape};
use crate::writer::SHX_NS;

/// An error translating a shapes graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShaclParseError {
    /// Machine-readable classification shared with the other parsers.
    pub code: ErrorCode,
    pub message: String,
}

impl ShaclParseError {
    /// A structural shapes-graph error ([`ErrorCode::BadStructure`]).
    pub fn new(message: impl Into<String>) -> Self {
        ShaclParseError::with_code(ErrorCode::BadStructure, message)
    }

    /// A classified error.
    pub fn with_code(code: ErrorCode, message: impl Into<String>) -> Self {
        ShaclParseError {
            code,
            message: message.into(),
        }
    }
}

impl fmt::Display for ShaclParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid shapes graph [{}]: {}", self.code, self.message)
    }
}

impl std::error::Error for ShaclParseError {}

impl From<SchemaError> for ShaclParseError {
    fn from(e: SchemaError) -> Self {
        ShaclParseError::new(e.to_string())
    }
}

impl From<ShaclParseError> for EngineError {
    fn from(e: ShaclParseError) -> Self {
        EngineError::Malformed {
            code: e.code,
            line: 0,
            column: 0,
            message: e.message,
        }
    }
}

/// Source positions for a parsed shapes graph: where each shape definition
/// and each of its constraint properties appeared in the Turtle text.
/// Queried by shape name (an IRI, or the generated blank-node label of an
/// inline `[...]` shape).
#[derive(Debug, Clone, Default)]
pub struct SchemaSpans {
    spans: TripleSpans,
}

impl SchemaSpans {
    /// Position of a shape definition (the first statement about it).
    pub fn def(&self, name: &Term) -> Option<Span> {
        self.spans.subject(name)
    }

    /// Position of one constraint property on a shape (e.g. `sh:minCount`).
    pub fn constraint(&self, name: &Term, property: &Iri) -> Option<Span> {
        self.spans.predicate(name, property)
    }
}

/// Parses Turtle text into a schema (shapes graph → formal schema).
pub fn parse_shapes_turtle(text: &str) -> Result<Schema, ShaclParseError> {
    let graph =
        turtle::parse(text).map_err(|e| ShaclParseError::with_code(e.code, e.to_string()))?;
    schema_from_shapes_graph(&graph)
}

/// [`parse_shapes_turtle`], additionally returning source positions for
/// every definition and constraint so diagnostics can point at the text.
pub fn parse_shapes_turtle_with_spans(
    text: &str,
) -> Result<(Schema, SchemaSpans), ShaclParseError> {
    let (graph, spans) = turtle::parse_with_spans(text)
        .map_err(|e| ShaclParseError::with_code(e.code, e.to_string()))?;
    let schema = schema_from_shapes_graph(&graph)?;
    Ok((schema, SchemaSpans { spans }))
}

/// [`parse_shapes_turtle_with_spans`] stopping before [`Schema::new`]'s
/// well-formedness gate: returns the raw definitions even when they are
/// recursive or duplicated, so the static analyzer can *report* those
/// defects instead of merely failing on them.
pub fn parse_shape_defs_turtle(
    text: &str,
) -> Result<(Vec<ShapeDef>, SchemaSpans), ShaclParseError> {
    let (graph, spans) = turtle::parse_with_spans(text)
        .map_err(|e| ShaclParseError::with_code(e.code, e.to_string()))?;
    let defs = defs_from_shapes_graph(&graph)?;
    Ok((defs, SchemaSpans { spans }))
}

/// Translates a SHACL shapes graph `S` into a schema `t(S)` (Appendix A).
pub fn schema_from_shapes_graph(shapes: &Graph) -> Result<Schema, ShaclParseError> {
    Ok(Schema::new(defs_from_shapes_graph(shapes)?)?)
}

/// The translation underlying [`schema_from_shapes_graph`], without the
/// schema well-formedness checks (duplicate names, recursion).
pub fn defs_from_shapes_graph(shapes: &Graph) -> Result<Vec<ShapeDef>, ShaclParseError> {
    let tr = Translator { g: shapes };
    let shape_nodes = tr.collect_shape_nodes()?;
    let mut defs = Vec::new();
    for node in shape_nodes {
        if node.is_literal() {
            // A malformed document can reference a literal where a shape is
            // expected (e.g. as an `sh:node` object); shape names must be
            // IRIs or blank nodes.
            return Err(ShaclParseError::new(format!(
                "literal used as a shape: {node}"
            )));
        }
        let expr = tr.translate_shape(&node)?;
        let target = tr.translate_target(&node)?;
        defs.push(ShapeDef::new(node, expr, target));
    }
    Ok(defs)
}

struct Translator<'g> {
    g: &'g Graph,
}

impl<'g> Translator<'g> {
    fn objects(&self, x: &Term, p: &Iri) -> Vec<Term> {
        let mut v: Vec<Term> = self.g.objects_for(x, p).into_iter().cloned().collect();
        v.sort();
        v
    }

    fn list_objects(&self, x: &Term, p: &Iri) -> Result<Vec<Term>, ShaclParseError> {
        let mut out = Vec::new();
        for head in self.objects(x, p) {
            let items = read_list(self.g, &head).ok_or_else(|| {
                ShaclParseError::new(format!("malformed SHACL list at {head} for {p}"))
            })?;
            out.extend(items);
        }
        Ok(out)
    }

    /// All shape nodes: declared ones plus everything reachable through
    /// shape-referencing properties.
    fn collect_shape_nodes(&self) -> Result<Vec<Term>, ShaclParseError> {
        let type_p = rdf::type_();
        let mut queue: Vec<Term> = Vec::new();
        for t in self
            .g
            .triples_matching(None, Some(&type_p), Some(&Term::Iri(sh::node_shape())))
        {
            queue.push(t.subject);
        }
        for t in
            self.g
                .triples_matching(None, Some(&type_p), Some(&Term::Iri(sh::property_shape())))
        {
            queue.push(t.subject);
        }
        queue.sort();
        let mut seen: HashSet<Term> = HashSet::new();
        let mut out = Vec::new();
        while let Some(node) = queue.pop() {
            if !seen.insert(node.clone()) {
                continue;
            }
            // References to other shapes.
            for p in [
                sh::node(),
                sh::property(),
                sh::not(),
                sh::qualified_value_shape(),
            ] {
                queue.extend(self.objects(&node, &p));
            }
            for p in [sh::and(), sh::or(), sh::xone()] {
                queue.extend(self.list_objects(&node, &p)?);
            }
            out.push(node);
        }
        out.sort();
        Ok(out)
    }

    fn is_property_shape(&self, x: &Term) -> bool {
        !self.objects(x, &sh::path()).is_empty()
    }

    /// `t_nodeshape` / `t_propertyshape` dispatch.
    fn translate_shape(&self, x: &Term) -> Result<Shape, ShaclParseError> {
        // sh:deactivated true — the shape imposes no constraint.
        if self
            .objects(x, &sh::deactivated())
            .iter()
            .any(|v| matches!(v, Term::Literal(l) if l.lexical() == "true"))
        {
            return Ok(Shape::True);
        }
        if self.is_property_shape(x) {
            self.translate_property_shape(x)
        } else {
            self.translate_node_shape(x)
        }
    }

    /// Appendix A.1: `t_nodeshape(d_x)`.
    fn translate_node_shape(&self, x: &Term) -> Result<Shape, ShaclParseError> {
        let mut conj = Vec::new();
        conj.extend(self.t_shape(x));
        conj.extend(self.t_logic(x)?);
        conj.extend(self.t_tests(x)?);
        conj.extend(self.t_value(x));
        conj.extend(self.t_in(x)?);
        conj.extend(self.t_closed(x)?);
        conj.extend(self.t_pair_id(x));
        // languageIn applied to the focus node itself.
        for head in self.objects(x, &sh::language_in()) {
            let langs = read_list(self.g, &head)
                .ok_or_else(|| ShaclParseError::new("malformed sh:languageIn list"))?;
            conj.push(Shape::disj_of(langs.iter().filter_map(lang_term).collect()));
        }
        Ok(Shape::conj(conj))
    }

    /// Appendix A.3: `t_propertyshape(d_x)`.
    fn translate_property_shape(&self, x: &Term) -> Result<Shape, ShaclParseError> {
        let paths = self.objects(x, &sh::path());
        if paths.len() != 1 {
            return Err(ShaclParseError::new(format!(
                "property shape {x} must have exactly one sh:path"
            )));
        }
        let e = self.translate_path(&paths[0])?;
        let mut conj = Vec::new();
        conj.extend(self.t_card(&e, x));
        conj.extend(self.t_pair_path(&e, x));
        conj.extend(self.t_qual(&e, x)?);
        conj.extend(self.t_all(&e, x)?);
        conj.extend(self.t_uniquelang(&e, x));
        Ok(Shape::conj(conj))
    }

    /// A.1.1 `t_shape`: sh:node / sh:property become `hasShape` references.
    fn t_shape(&self, x: &Term) -> Vec<Shape> {
        let mut out = Vec::new();
        for y in self.objects(x, &sh::node()) {
            out.push(Shape::HasShape(y));
        }
        for y in self.objects(x, &sh::property()) {
            out.push(Shape::HasShape(y));
        }
        out
    }

    /// A.1.2 `t_logic`: sh:and, sh:or, sh:not, sh:xone.
    fn t_logic(&self, x: &Term) -> Result<Vec<Shape>, ShaclParseError> {
        let mut out = Vec::new();
        for head in self.objects(x, &sh::and()) {
            let items = read_list(self.g, &head)
                .ok_or_else(|| ShaclParseError::new("malformed sh:and list"))?;
            out.push(Shape::conj(
                items.into_iter().map(Shape::HasShape).collect(),
            ));
        }
        for head in self.objects(x, &sh::or()) {
            let items = read_list(self.g, &head)
                .ok_or_else(|| ShaclParseError::new("malformed sh:or list"))?;
            out.push(Shape::disj_of(
                items.into_iter().map(Shape::HasShape).collect(),
            ));
        }
        for y in self.objects(x, &sh::not()) {
            out.push(Shape::HasShape(y).not());
        }
        for head in self.objects(x, &sh::xone()) {
            let items = read_list(self.g, &head)
                .ok_or_else(|| ShaclParseError::new("malformed sh:xone list"))?;
            let mut branches = Vec::new();
            for (i, y) in items.iter().enumerate() {
                let mut branch = vec![Shape::HasShape(y.clone())];
                for (j, z) in items.iter().enumerate() {
                    if i != j {
                        branch.push(Shape::HasShape(z.clone()).not());
                    }
                }
                branches.push(Shape::conj(branch));
            }
            out.push(Shape::disj_of(branches));
        }
        Ok(out)
    }

    /// A.1.3 `t_tests`: class, datatype, nodeKind, value ranges, string
    /// constraints.
    fn t_tests(&self, x: &Term) -> Result<Vec<Shape>, ShaclParseError> {
        let mut out = Vec::new();
        // sh:class → ≥1 rdf:type/rdfs:subClassOf*.hasValue(y)
        for y in self.objects(x, &sh::class()) {
            out.push(Shape::geq(
                1,
                PathExpr::Prop(rdf::type_()).then(PathExpr::Prop(rdfs::sub_class_of()).star()),
                Shape::HasValue(y),
            ));
        }
        for y in self.objects(x, &sh::datatype()) {
            let Term::Iri(dt) = y else {
                return Err(ShaclParseError::new("sh:datatype requires an IRI"));
            };
            out.push(Shape::Test(NodeTest::Datatype(dt)));
        }
        for y in self.objects(x, &sh::node_kind()) {
            let Term::Iri(kind_iri) = &y else {
                return Err(ShaclParseError::new("sh:nodeKind requires an IRI"));
            };
            let kind = match kind_iri.as_str() {
                s if s == sh::iri().as_str() => NodeKind::Iri,
                s if s == sh::blank_node().as_str() => NodeKind::BlankNode,
                s if s == sh::literal().as_str() => NodeKind::Literal,
                s if s == sh::blank_node_or_iri().as_str() => NodeKind::BlankNodeOrIri,
                s if s == sh::blank_node_or_literal().as_str() => NodeKind::BlankNodeOrLiteral,
                s if s == sh::iri_or_literal().as_str() => NodeKind::IriOrLiteral,
                other => return Err(ShaclParseError::new(format!("unknown sh:nodeKind {other}"))),
            };
            out.push(Shape::Test(NodeTest::Kind(kind)));
        }
        for (prop, make) in [
            (
                sh::min_exclusive(),
                NodeTest::MinExclusive as fn(Literal) -> NodeTest,
            ),
            (sh::min_inclusive(), NodeTest::MinInclusive),
            (sh::max_exclusive(), NodeTest::MaxExclusive),
            (sh::max_inclusive(), NodeTest::MaxInclusive),
        ] {
            for y in self.objects(x, &prop) {
                let Term::Literal(bound) = y else {
                    return Err(ShaclParseError::new(format!("{prop} requires a literal")));
                };
                out.push(Shape::Test(make(bound)));
            }
        }
        for (prop, make) in [
            (sh::min_length(), NodeTest::MinLength as fn(u32) -> NodeTest),
            (sh::max_length(), NodeTest::MaxLength),
        ] {
            for y in self.objects(x, &prop) {
                let n = int_value(&y)
                    .ok_or_else(|| ShaclParseError::new(format!("{prop} requires an integer")))?;
                out.push(Shape::Test(make(n)));
            }
        }
        let flags = self
            .objects(x, &sh::flags())
            .first()
            .and_then(|t| t.as_literal().map(|l| l.lexical().to_owned()))
            .unwrap_or_default();
        for y in self.objects(x, &sh::pattern()) {
            let Term::Literal(lit) = y else {
                return Err(ShaclParseError::new("sh:pattern requires a literal"));
            };
            let test = NodeTest::pattern(lit.lexical(), &flags)
                .map_err(|e| ShaclParseError::new(e.to_string()))?;
            out.push(Shape::Test(test));
        }
        Ok(out)
    }

    /// A.1.6 `t_value`: sh:hasValue.
    fn t_value(&self, x: &Term) -> Vec<Shape> {
        self.objects(x, &sh::has_value())
            .into_iter()
            .map(Shape::HasValue)
            .collect()
    }

    /// A.1.6 `t_in`: sh:in.
    fn t_in(&self, x: &Term) -> Result<Vec<Shape>, ShaclParseError> {
        let mut out = Vec::new();
        for head in self.objects(x, &sh::in_()) {
            let items = read_list(self.g, &head)
                .ok_or_else(|| ShaclParseError::new("malformed sh:in list"))?;
            out.push(Shape::disj_of(
                items.into_iter().map(Shape::HasValue).collect(),
            ));
        }
        Ok(out)
    }

    /// A.1.6 `t_closed`: sh:closed / sh:ignoredProperties. `P` collects the
    /// (IRI) paths of the shape's property shapes plus ignored properties.
    fn t_closed(&self, x: &Term) -> Result<Vec<Shape>, ShaclParseError> {
        let closed = self
            .objects(x, &sh::closed())
            .iter()
            .any(|v| matches!(v, Term::Literal(l) if l.lexical() == "true"));
        if !closed {
            return Ok(Vec::new());
        }
        let mut allowed: BTreeSet<Iri> = BTreeSet::new();
        for prop_shape in self.objects(x, &sh::property()) {
            for path in self.objects(&prop_shape, &sh::path()) {
                if let Term::Iri(p) = path {
                    allowed.insert(p);
                }
            }
        }
        for item in self.list_objects(x, &sh::ignored_properties())? {
            if let Term::Iri(p) = item {
                allowed.insert(p);
            }
        }
        Ok(vec![Shape::Closed(allowed)])
    }

    /// A.1.4 `t_pair(id, d_x)`: property-pair components on a node shape.
    fn t_pair_id(&self, x: &Term) -> Vec<Shape> {
        // lessThan / lessThanOrEquals are not allowed on node shapes → ⊥.
        if !self.objects(x, &sh::less_than()).is_empty()
            || !self.objects(x, &sh::less_than_or_equals()).is_empty()
        {
            return vec![Shape::False];
        }
        let mut out = Vec::new();
        for y in self.objects(x, &sh::equals()) {
            if let Term::Iri(p) = y {
                out.push(Shape::Eq(PathOrId::Id, p));
            }
        }
        for y in self.objects(x, &sh::disjoint()) {
            if let Term::Iri(p) = y {
                out.push(Shape::Disj(PathOrId::Id, p));
            }
        }
        out
    }

    /// A.3.1 `t_card`: sh:minCount / sh:maxCount.
    fn t_card(&self, e: &PathExpr, x: &Term) -> Vec<Shape> {
        let mut out = Vec::new();
        for y in self.objects(x, &sh::min_count()) {
            if let Some(n) = int_value(&y) {
                out.push(Shape::geq(n, e.clone(), Shape::True));
            }
        }
        for y in self.objects(x, &sh::max_count()) {
            if let Some(n) = int_value(&y) {
                out.push(Shape::leq(n, e.clone(), Shape::True));
            }
        }
        out
    }

    /// A.3.2 `t_pair(E, d_x)`: property-pair components on a property
    /// shape, including the `shx:` extension pairs (Remark 2.3).
    fn t_pair_path(&self, e: &PathExpr, x: &Term) -> Vec<Shape> {
        let mut out = Vec::new();
        for (prop, make) in [
            (
                sh::equals(),
                (|e, p| Shape::Eq(PathOrId::Path(e), p)) as fn(PathExpr, Iri) -> Shape,
            ),
            (sh::disjoint(), |e, p| Shape::Disj(PathOrId::Path(e), p)),
            (sh::less_than(), Shape::LessThan),
            (sh::less_than_or_equals(), Shape::LessThanEq),
            (Iri::new(format!("{SHX_NS}moreThan")), Shape::MoreThan),
            (
                Iri::new(format!("{SHX_NS}moreThanOrEquals")),
                Shape::MoreThanEq,
            ),
        ] {
            for y in self.objects(x, &prop) {
                if let Term::Iri(p) = y {
                    out.push(make(e.clone(), p));
                }
            }
        }
        out
    }

    /// A.3.3 `t_qual`: qualified value shapes with optional sibling
    /// disjointness.
    fn t_qual(&self, e: &PathExpr, x: &Term) -> Result<Vec<Shape>, ShaclParseError> {
        let q: Vec<Term> = self.objects(x, &sh::qualified_value_shape());
        if q.is_empty() {
            return Ok(Vec::new());
        }
        let qmin: Vec<u32> = self
            .objects(x, &sh::qualified_min_count())
            .iter()
            .filter_map(int_value)
            .collect();
        let qmax: Vec<u32> = self
            .objects(x, &sh::qualified_max_count())
            .iter()
            .filter_map(int_value)
            .collect();
        let disjoint_siblings = self
            .objects(x, &sh::qualified_value_shapes_disjoint())
            .iter()
            .any(|v| matches!(v, Term::Literal(l) if l.lexical() == "true"));

        // Sibling shapes: qualified value shapes of the *other* property
        // shapes attached to any parent of x.
        let mut siblings: BTreeSet<Term> = BTreeSet::new();
        if disjoint_siblings {
            let parents: Vec<Term> = self
                .g
                .triples_matching(None, Some(&sh::property()), Some(x))
                .into_iter()
                .map(|t| t.subject)
                .collect();
            for v in parents {
                for y in self.objects(&v, &sh::property()) {
                    if &y == x {
                        continue;
                    }
                    for w in self.objects(&y, &sh::qualified_value_shape()) {
                        siblings.insert(w);
                    }
                }
            }
        }

        let qualify = |y: &Term| -> Shape {
            let mut conj = vec![Shape::HasShape(y.clone())];
            for s in &siblings {
                conj.push(Shape::HasShape(s.clone()).not());
            }
            Shape::conj(conj)
        };

        let mut out = Vec::new();
        for y in &q {
            for &n in &qmin {
                out.push(Shape::geq(n, e.clone(), qualify(y)));
            }
            for &n in &qmax {
                out.push(Shape::leq(n, e.clone(), qualify(y)));
            }
        }
        Ok(out)
    }

    /// A.3.4 `t_all`: components that apply to all value nodes of a
    /// property shape, wrapped in `∀E.(…)`, plus the special `sh:hasValue`
    /// treatment (`≥1 E.hasValue(v)`).
    fn t_all(&self, e: &PathExpr, x: &Term) -> Result<Vec<Shape>, ShaclParseError> {
        let mut inner = Vec::new();
        inner.extend(self.t_shape(x));
        inner.extend(self.t_logic(x)?);
        inner.extend(self.t_tests(x)?);
        inner.extend(self.t_in(x)?);
        inner.extend(self.t_closed(x)?);
        for head in self.objects(x, &sh::language_in()) {
            let langs = read_list(self.g, &head)
                .ok_or_else(|| ShaclParseError::new("malformed sh:languageIn list"))?;
            inner.push(Shape::disj_of(langs.iter().filter_map(lang_term).collect()));
        }
        let mut out = Vec::new();
        if !inner.is_empty() {
            out.push(Shape::for_all(e.clone(), Shape::conj(inner)));
        }
        // sh:hasValue on a property shape is existential, not universal.
        let values = self.t_value(x);
        if !values.is_empty() {
            out.push(Shape::geq(1, e.clone(), Shape::conj(values)));
        }
        Ok(out)
    }

    /// A.3.5 `t_uniquelang`.
    fn t_uniquelang(&self, e: &PathExpr, x: &Term) -> Vec<Shape> {
        let unique = self
            .objects(x, &sh::unique_lang())
            .iter()
            .any(|v| matches!(v, Term::Literal(l) if l.lexical() == "true"));
        if unique {
            vec![Shape::UniqueLang(e.clone())]
        } else {
            Vec::new()
        }
    }

    /// A.2 `t_path`: SHACL property paths → path expressions.
    fn translate_path(&self, pp: &Term) -> Result<PathExpr, ShaclParseError> {
        self.translate_path_at(pp, 0)
    }

    /// Depth-guarded body of [`Translator::translate_path`]. A hostile
    /// document can make `sh:inversePath` (or any other structured-path
    /// property) point around a blank-node cycle; without the guard the
    /// translation recurses forever.
    fn translate_path_at(&self, pp: &Term, depth: usize) -> Result<PathExpr, ShaclParseError> {
        const MAX_PATH_DEPTH: usize = 128;
        if depth > MAX_PATH_DEPTH {
            return Err(ShaclParseError::with_code(
                ErrorCode::DepthLimit,
                format!("property path nesting deeper than {MAX_PATH_DEPTH} levels (cyclic path structure?)"),
            ));
        }
        if let Term::Iri(p) = pp {
            return Ok(PathExpr::Prop(p.clone()));
        }
        // Blank node: structured path.
        if let Some(y) = self
            .objects(pp, &Iri::new(format!("{SHX_NS}negatedPropertySet")))
            .first()
        {
            // Extension (Remark 6.3): a negated property set.
            let items = read_list(self.g, y)
                .ok_or_else(|| ShaclParseError::new("malformed shx:negatedPropertySet list"))?;
            let mut props = Vec::new();
            for item in items {
                match item {
                    Term::Iri(p) => props.push(p),
                    other => {
                        return Err(ShaclParseError::new(format!(
                            "negated property sets may only contain IRIs, got {other}"
                        )))
                    }
                }
            }
            return Ok(PathExpr::neg_props(props));
        }
        if let Some(y) = self.objects(pp, &sh::inverse_path()).first() {
            return Ok(self.translate_path_at(y, depth + 1)?.inverse());
        }
        if let Some(y) = self.objects(pp, &sh::zero_or_more_path()).first() {
            return Ok(self.translate_path_at(y, depth + 1)?.star());
        }
        if let Some(y) = self.objects(pp, &sh::one_or_more_path()).first() {
            return Ok(self.translate_path_at(y, depth + 1)?.plus());
        }
        if let Some(y) = self.objects(pp, &sh::zero_or_one_path()).first() {
            return Ok(self.translate_path_at(y, depth + 1)?.opt());
        }
        if let Some(y) = self.objects(pp, &sh::alternative_path()).first() {
            let items = read_list(self.g, y)
                .ok_or_else(|| ShaclParseError::new("malformed sh:alternativePath list"))?;
            let mut parts = items.iter().map(|t| self.translate_path_at(t, depth + 1));
            let first = parts
                .next()
                .ok_or_else(|| ShaclParseError::new("empty sh:alternativePath"))??;
            return parts.try_fold(first, |acc, next| Ok(acc.or(next?)));
        }
        // A SHACL list: a sequence path.
        if let Some(items) = read_list(self.g, pp) {
            let mut parts = items.iter().map(|t| self.translate_path_at(t, depth + 1));
            let first = parts
                .next()
                .ok_or_else(|| ShaclParseError::new("empty sequence path"))??;
            return parts.try_fold(first, |acc, next| Ok(acc.then(next?)));
        }
        Err(ShaclParseError::new(format!(
            "unrecognized property path {pp}"
        )))
    }

    /// A.4 `t_target`: target declarations → target shapes.
    fn translate_target(&self, x: &Term) -> Result<Shape, ShaclParseError> {
        let mut targets = Vec::new();
        for y in self.objects(x, &sh::target_node()) {
            targets.push(Shape::HasValue(y));
        }
        for y in self.objects(x, &sh::target_class()) {
            targets.push(Shape::geq(
                1,
                PathExpr::Prop(rdf::type_()).then(PathExpr::Prop(rdfs::sub_class_of()).star()),
                Shape::HasValue(y),
            ));
        }
        for y in self.objects(x, &sh::target_subjects_of()) {
            if let Term::Iri(p) = y {
                targets.push(Shape::geq(1, PathExpr::Prop(p), Shape::True));
            }
        }
        for y in self.objects(x, &sh::target_objects_of()) {
            if let Term::Iri(p) = y {
                targets.push(Shape::geq(1, PathExpr::Prop(p).inverse(), Shape::True));
            }
        }
        // No targets → ⊥ (the shape is never checked via targets).
        Ok(Shape::disj_of(targets))
    }
}

fn int_value(t: &Term) -> Option<u32> {
    match t {
        Term::Literal(l) => l.lexical().trim().parse().ok(),
        _ => None,
    }
}

fn lang_term(t: &Term) -> Option<Shape> {
    match t {
        Term::Literal(l) => Some(Shape::Test(NodeTest::Language(l.lexical().to_owned()))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validator::{validate, Context};

    const PREFIXES: &str = r#"
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix ex: <http://e/> .
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
"#;

    fn schema(body: &str) -> Schema {
        parse_shapes_turtle(&format!("{PREFIXES}\n{body}")).unwrap()
    }

    fn ex(n: &str) -> Term {
        Term::iri(format!("http://e/{n}"))
    }

    #[test]
    fn cyclic_inverse_path_is_a_structured_error() {
        // _:p sh:inversePath _:q . _:q sh:inversePath _:p — without the
        // depth guard the translation recurses forever.
        let err = parse_shapes_turtle(&format!(
            "{PREFIXES}
ex:S a sh:NodeShape ;
  sh:property [ sh:path _:p ; sh:minCount 1 ] .
_:p sh:inversePath _:q .
_:q sh:inversePath _:p .
"
        ))
        .unwrap_err();
        assert_eq!(err.code, ErrorCode::DepthLimit);
    }

    #[test]
    fn workshop_shape_from_intro() {
        let s = schema(
            r#"
ex:WorkshopShape a sh:NodeShape ;
  sh:targetClass ex:Paper ;
  sh:property [
    sh:path ex:author ;
    sh:qualifiedMinCount 1 ;
    sh:qualifiedValueShape [ sh:class ex:Student ] ] .
"#,
        );
        // WorkshopShape + property shape + qualified value shape.
        assert_eq!(s.len(), 3);
        let def = s.get(&ex("WorkshopShape")).unwrap();
        assert!(matches!(def.shape, Shape::HasShape(_)));
        // Validate the intro example end to end.
        let data = turtle::parse(&format!(
            "{PREFIXES}
ex:p1 rdf:type ex:Paper ; ex:author ex:alice .
ex:alice rdf:type ex:Student .
ex:p2 rdf:type ex:Paper ; ex:author ex:bob .
ex:bob rdf:type ex:Professor .
"
        ))
        .unwrap();
        let report = validate(&s, &data);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].focus, ex("p2"));
    }

    #[test]
    fn min_max_count() {
        let s = schema(
            r#"
ex:S a sh:NodeShape ;
  sh:targetSubjectsOf ex:p ;
  sh:property [ sh:path ex:p ; sh:minCount 1 ; sh:maxCount 2 ] .
"#,
        );
        let data = turtle::parse(&format!(
            "{PREFIXES}
ex:a ex:p ex:x .
ex:b ex:p ex:x , ex:y , ex:z .
"
        ))
        .unwrap();
        let report = validate(&s, &data);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].focus, ex("b"));
    }

    #[test]
    fn happy_at_work_not_disjoint() {
        let s = schema(
            r#"
ex:HappyAtWork a sh:NodeShape ;
  sh:targetSubjectsOf ex:friend ;
  sh:not [ a sh:PropertyShape ; sh:path ex:friend ; sh:disjoint ex:colleague ] .
"#,
        );
        let data = turtle::parse(&format!(
            "{PREFIXES}
ex:v ex:friend ex:x . ex:v ex:colleague ex:x .
ex:w ex:friend ex:y . ex:w ex:colleague ex:z .
"
        ))
        .unwrap();
        let report = validate(&s, &data);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].focus, ex("w"));
    }

    #[test]
    fn datatype_nodekind_and_ranges() {
        let s = schema(
            r#"
ex:S a sh:NodeShape ;
  sh:targetSubjectsOf ex:age ;
  sh:property [ sh:path ex:age ; sh:datatype xsd:integer ;
                sh:minInclusive 0 ; sh:maxExclusive 150 ] ;
  sh:property [ sh:path ex:friend ; sh:nodeKind sh:IRI ] .
"#,
        );
        let ok = turtle::parse(&format!("{PREFIXES}\nex:a ex:age 42 ; ex:friend ex:b .")).unwrap();
        assert!(validate(&s, &ok).conforms());
        let bad_age = turtle::parse(&format!("{PREFIXES}\nex:a ex:age 200 .")).unwrap();
        assert!(!validate(&s, &bad_age).conforms());
        let bad_type = turtle::parse(&format!("{PREFIXES}\nex:a ex:age \"old\" .")).unwrap();
        assert!(!validate(&s, &bad_type).conforms());
        let bad_friend =
            turtle::parse(&format!("{PREFIXES}\nex:a ex:age 5 ; ex:friend \"lit\" .")).unwrap();
        assert!(!validate(&s, &bad_friend).conforms());
    }

    #[test]
    fn pattern_and_lengths() {
        let s = schema(
            r#"
ex:S a sh:NodeShape ;
  sh:targetSubjectsOf ex:code ;
  sh:property [ sh:path ex:code ; sh:pattern "^[A-Z]{2}\\d+$" ;
                sh:minLength 4 ; sh:maxLength 6 ] .
"#,
        );
        let ok = turtle::parse(&format!("{PREFIXES}\nex:a ex:code \"AB123\" .")).unwrap();
        assert!(validate(&s, &ok).conforms());
        let bad = turtle::parse(&format!("{PREFIXES}\nex:a ex:code \"ab123\" .")).unwrap();
        assert!(!validate(&s, &bad).conforms());
        let too_long = turtle::parse(&format!("{PREFIXES}\nex:a ex:code \"AB12345\" .")).unwrap();
        assert!(!validate(&s, &too_long).conforms());
    }

    #[test]
    fn logical_components() {
        let s = schema(
            r#"
ex:HasP a sh:NodeShape ; sh:property [ sh:path ex:p ; sh:minCount 1 ] .
ex:HasQ a sh:NodeShape ; sh:property [ sh:path ex:q ; sh:minCount 1 ] .
ex:S a sh:NodeShape ;
  sh:targetNode ex:a , ex:b , ex:c ;
  sh:or ( ex:HasP ex:HasQ ) .
"#,
        );
        let data = turtle::parse(&format!(
            "{PREFIXES}\nex:a ex:p ex:x .\nex:b ex:q ex:x .\nex:c ex:r ex:x ."
        ))
        .unwrap();
        let report = validate(&s, &data);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].focus, ex("c"));
    }

    #[test]
    fn xone_is_exactly_one() {
        let s = schema(
            r#"
ex:HasP a sh:NodeShape ; sh:property [ sh:path ex:p ; sh:minCount 1 ] .
ex:HasQ a sh:NodeShape ; sh:property [ sh:path ex:q ; sh:minCount 1 ] .
ex:S a sh:NodeShape ;
  sh:targetNode ex:both , ex:one , ex:none ;
  sh:xone ( ex:HasP ex:HasQ ) .
"#,
        );
        let data = turtle::parse(&format!(
            "{PREFIXES}
ex:both ex:p ex:x ; ex:q ex:x .
ex:one ex:p ex:x .
ex:none ex:r ex:x .
"
        ))
        .unwrap();
        let report = validate(&s, &data);
        let violating: Vec<_> = report.violations.iter().map(|v| v.focus.clone()).collect();
        assert!(violating.contains(&ex("both")));
        assert!(violating.contains(&ex("none")));
        assert!(!violating.contains(&ex("one")));
    }

    #[test]
    fn complex_paths() {
        let s = schema(
            r#"
ex:S a sh:NodeShape ;
  sh:targetNode ex:a ;
  sh:property [ sh:path ( ex:p [ sh:inversePath ex:q ] ) ; sh:minCount 1 ] ;
  sh:property [ sh:path [ sh:zeroOrMorePath ex:r ] ; sh:maxCount 3 ] ;
  sh:property [ sh:path [ sh:alternativePath ( ex:s ex:t ) ] ; sh:minCount 1 ] .
"#,
        );
        let data = turtle::parse(&format!(
            "{PREFIXES}
ex:a ex:p ex:m . ex:n ex:q ex:m .
ex:a ex:r ex:b . ex:b ex:r ex:c .
ex:a ex:t ex:z .
"
        ))
        .unwrap();
        assert!(validate(&s, &data).conforms());
    }

    #[test]
    fn closed_with_ignored_properties() {
        let s = schema(
            r#"
ex:S a sh:NodeShape ;
  sh:targetNode ex:a , ex:b ;
  sh:closed true ;
  sh:ignoredProperties ( rdf:type ) ;
  sh:property [ sh:path ex:p ; sh:minCount 0 ] .
"#,
        );
        let data = turtle::parse(&format!(
            "{PREFIXES}
ex:a ex:p ex:x ; rdf:type ex:C .
ex:b ex:p ex:x ; ex:q ex:y .
"
        ))
        .unwrap();
        let report = validate(&s, &data);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].focus, ex("b"));
    }

    #[test]
    fn less_than_on_property_shape() {
        let s = schema(
            r#"
ex:S a sh:NodeShape ;
  sh:targetNode ex:a , ex:b ;
  sh:property [ sh:path ex:start ; sh:lessThan ex:end ] .
"#,
        );
        let data = turtle::parse(&format!(
            "{PREFIXES}
ex:a ex:start 1 ; ex:end 5 .
ex:b ex:start 9 ; ex:end 5 .
"
        ))
        .unwrap();
        let report = validate(&s, &data);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].focus, ex("b"));
    }

    #[test]
    fn unique_lang_and_language_in() {
        let s = schema(
            r#"
ex:S a sh:NodeShape ;
  sh:targetSubjectsOf ex:label ;
  sh:property [ sh:path ex:label ; sh:uniqueLang true ;
                sh:languageIn ( "en" "de" ) ] .
"#,
        );
        let ok = turtle::parse(&format!(
            "{PREFIXES}\nex:a ex:label \"hi\"@en , \"hallo\"@de ."
        ))
        .unwrap();
        assert!(validate(&s, &ok).conforms());
        let dup = turtle::parse(&format!(
            "{PREFIXES}\nex:a ex:label \"hi\"@en , \"hello\"@en-GB , \"yo\"@en ."
        ))
        .unwrap();
        assert!(!validate(&s, &dup).conforms());
        let wrong_lang =
            turtle::parse(&format!("{PREFIXES}\nex:a ex:label \"bonjour\"@fr .")).unwrap();
        assert!(!validate(&s, &wrong_lang).conforms());
    }

    #[test]
    fn has_value_and_in() {
        let s = schema(
            r#"
ex:S a sh:NodeShape ;
  sh:targetSubjectsOf ex:status ;
  sh:property [ sh:path ex:status ; sh:in ( ex:Active ex:Inactive ) ] ;
  sh:property [ sh:path ex:kind ; sh:hasValue ex:Good ] .
"#,
        );
        let ok = turtle::parse(&format!(
            "{PREFIXES}\nex:a ex:status ex:Active ; ex:kind ex:Good , ex:Other ."
        ))
        .unwrap();
        assert!(validate(&s, &ok).conforms());
        let bad_in = turtle::parse(&format!(
            "{PREFIXES}\nex:a ex:status ex:Unknown ; ex:kind ex:Good ."
        ))
        .unwrap();
        assert!(!validate(&s, &bad_in).conforms());
        // hasValue on a property shape is existential: missing entirely fails.
        let missing = turtle::parse(&format!("{PREFIXES}\nex:a ex:status ex:Active .")).unwrap();
        assert!(!validate(&s, &missing).conforms());
    }

    #[test]
    fn node_reference_and_deactivated() {
        let s = schema(
            r#"
ex:Base a sh:NodeShape ; sh:property [ sh:path ex:p ; sh:minCount 1 ] .
ex:Off a sh:NodeShape ; sh:deactivated true ;
  sh:property [ sh:path ex:zz ; sh:minCount 99 ] .
ex:S a sh:NodeShape ;
  sh:targetNode ex:a ;
  sh:node ex:Base ;
  sh:node ex:Off .
"#,
        );
        let data = turtle::parse(&format!("{PREFIXES}\nex:a ex:p ex:x .")).unwrap();
        assert!(validate(&s, &data).conforms());
    }

    #[test]
    fn qualified_value_shapes_disjoint_siblings() {
        // From the SHACL spec: a hand must have 4 fingers and 1 thumb,
        // disjointly qualified.
        let s = schema(
            r#"
ex:HandShape a sh:NodeShape ;
  sh:targetClass ex:Hand ;
  sh:property ex:fingerProp ;
  sh:property ex:thumbProp .
ex:fingerProp a sh:PropertyShape ;
  sh:path ex:digit ;
  sh:qualifiedValueShapesDisjoint true ;
  sh:qualifiedValueShape [ sh:class ex:Finger ] ;
  sh:qualifiedMinCount 4 ; sh:qualifiedMaxCount 4 .
ex:thumbProp a sh:PropertyShape ;
  sh:path ex:digit ;
  sh:qualifiedValueShapesDisjoint true ;
  sh:qualifiedValueShape [ sh:class ex:Thumb ] ;
  sh:qualifiedMinCount 1 ; sh:qualifiedMaxCount 1 .
"#,
        );
        let ok = turtle::parse(&format!(
            "{PREFIXES}
ex:h rdf:type ex:Hand ; ex:digit ex:f1 , ex:f2 , ex:f3 , ex:f4 , ex:t1 .
ex:f1 rdf:type ex:Finger . ex:f2 rdf:type ex:Finger .
ex:f3 rdf:type ex:Finger . ex:f4 rdf:type ex:Finger .
ex:t1 rdf:type ex:Thumb .
"
        ))
        .unwrap();
        assert!(validate(&s, &ok).conforms());
        let missing_finger = turtle::parse(&format!(
            "{PREFIXES}
ex:h rdf:type ex:Hand ; ex:digit ex:f1 , ex:f2 , ex:f3 , ex:t1 .
ex:f1 rdf:type ex:Finger . ex:f2 rdf:type ex:Finger .
ex:f3 rdf:type ex:Finger . ex:t1 rdf:type ex:Thumb .
"
        ))
        .unwrap();
        assert!(!validate(&s, &missing_finger).conforms());
    }

    #[test]
    fn subclass_reasoning_in_class_targets() {
        let s = schema(
            r#"
ex:S a sh:NodeShape ;
  sh:targetClass ex:Publication ;
  sh:property [ sh:path ex:title ; sh:minCount 1 ] .
"#,
        );
        let data = turtle::parse(&format!(
            "{PREFIXES}
ex:Paper rdfs:subClassOf ex:Publication .
ex:p rdf:type ex:Paper .
"
        ))
        .unwrap();
        // ex:p is a Publication via subclassing, and has no title.
        let report = validate(&s, &data);
        assert_eq!(report.violations.len(), 1);
    }

    #[test]
    fn no_targets_means_never_checked() {
        let s = schema("ex:S a sh:NodeShape ; sh:property [ sh:path ex:p ; sh:minCount 5 ] .");
        let data = turtle::parse(&format!("{PREFIXES}\nex:a ex:q ex:b .")).unwrap();
        assert!(validate(&s, &data).conforms());
        // But the shape still constrains when asked directly.
        let mut ctx = Context::new(&s, &data);
        let a = data.id_of(&ex("a")).unwrap();
        assert!(!ctx.conforms(a, &Shape::HasShape(ex("S"))));
    }

    #[test]
    fn equals_on_node_shape_uses_id() {
        let s = schema(
            r#"
ex:SelfLoop a sh:NodeShape ;
  sh:targetNode ex:a , ex:b ;
  sh:equals ex:p .
"#,
        );
        // eq(id, p): the node's only p-successor is itself.
        let data =
            turtle::parse(&format!("{PREFIXES}\nex:a ex:p ex:a .\nex:b ex:p ex:c .")).unwrap();
        let report = validate(&s, &data);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].focus, ex("b"));
    }

    #[test]
    fn malformed_lists_error() {
        let err = parse_shapes_turtle(&format!(
            "{PREFIXES}
ex:S a sh:NodeShape ; sh:in ex:notalist ."
        ))
        .unwrap_err();
        assert!(err.message.contains("malformed"));
    }
}
