//! Regular path query evaluation and path tracing.
//!
//! Two operations from the paper are implemented here, both generic over
//! any [`GraphAccess`] backend (mutable `Graph` or immutable
//! `FrozenGraph`):
//!
//! 1. **Evaluation** `⟦E⟧^G(a)` — the set of nodes reachable from `a` along
//!    paths matching `E` (Table 1 semantics, including the identity pairs
//!    contributed by `E?` and `E*`).
//! 2. **Tracing** `⋃_{x ∈ X} graph(paths(E, G, a, x))` — the subgraph traced
//!    out by all `E`-paths from `a` to nodes in a target set `X` (§3.2).
//!
//! Both work on the *product* of the graph with a Thompson NFA compiled
//! from `E`. For tracing, a product edge lies on an accepting run from
//! `(a, q₀)` to some `(x, q_F)` iff its source is forward-reachable and its
//! target is backward-reachable; the union of the underlying forward triples
//! of all such edges is exactly `graph(paths(E, G, a, X))` — the paper's
//! possibly-infinite path sets collapse to this finite edge set because
//! `graph(·)` only keeps the triples (cf. Proposition 3.1 and §3.3).

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::hash::BuildHasherDefault;

use shapefrag_govern::{EngineError, ExecCtx, MemGuard};
use shapefrag_rdf::graph::IntHasher;
use shapefrag_rdf::{GraphAccess, Iri, TermId};

/// Estimated bytes of intermediate state per discovered product pair
/// (visited-set entry plus its queue slot). Used for the memory budget.
const PAIR_COST: u64 = 48;

type IntSet = std::collections::HashSet<TermId, BuildHasherDefault<IntHasher>>;

/// Visited-set over the product graph: one small hash set per NFA state.
struct ProductSet {
    per_state: Vec<IntSet>,
}

impl ProductSet {
    fn new(states: usize) -> Self {
        ProductSet {
            per_state: (0..states).map(|_| IntSet::default()).collect(),
        }
    }

    fn insert(&mut self, node: TermId, state: u32) -> bool {
        self.per_state[state as usize].insert(node)
    }

    fn contains(&self, node: TermId, state: u32) -> bool {
        self.per_state[state as usize].contains(&node)
    }
}

/// How many sources one multi-source BFS pass handles; bounds the bitset
/// width (`256 / 64 = 4` words per product pair).
const SOURCE_CHUNK: usize = 256;

/// Per-source reachability bits over the product graph: for each
/// `(node, state)` pair, the set of source indices (within one chunk) that
/// reach it.
///
/// Structure-of-arrays layout, reusable across chunks: a dense `(state,
/// node)` → row index table pre-sized to the backend's term count
/// ([`GraphAccess::term_count`]) plus a contiguous bump arena of bitset
/// rows allocated on first touch. Lookups are one array index (no
/// hashing), rows discovered together sit together in memory, and
/// [`FrontierMatrix::reset`] is O(live rows), so a worker thread streaming
/// many chunks through one matrix performs no per-chunk allocation once
/// warm.
struct FrontierMatrix {
    /// Bitset words per row in the current chunk.
    words: usize,
    /// Dense per-state stride: every valid `TermId` is `< node_cap`.
    node_cap: usize,
    /// `state * node_cap + node` → row index into `bits`, `u32::MAX` when
    /// the pair was never reached.
    row_of: Vec<u32>,
    /// Row arena; row `r` occupies `bits[r * words .. (r + 1) * words]`.
    bits: Vec<u64>,
    /// Keys (indices into `row_of`) of live rows, in discovery order.
    touched: Vec<usize>,
}

impl FrontierMatrix {
    fn new() -> Self {
        FrontierMatrix {
            words: 0,
            node_cap: 0,
            row_of: Vec::new(),
            bits: Vec::new(),
            touched: Vec::new(),
        }
    }

    /// Prepares the matrix for a fresh chunk: clears live rows (keeping
    /// every buffer's capacity) and re-sizes the index for `states` NFA
    /// states over `node_cap` terms with `words`-word rows.
    fn reset(&mut self, states: usize, node_cap: usize, words: usize) {
        for &key in &self.touched {
            self.row_of[key] = u32::MAX;
        }
        self.touched.clear();
        self.bits.clear();
        self.words = words;
        self.node_cap = node_cap;
        let need = states * node_cap;
        if self.row_of.len() < need {
            self.row_of.resize(need, u32::MAX);
        }
    }

    fn key(&self, node: TermId, state: u32) -> usize {
        state as usize * self.node_cap + node.0 as usize
    }

    /// Unions `bits` into the pair's set; true iff any new bit appeared.
    /// First touch allocates the row from the arena tail.
    fn union(&mut self, node: TermId, state: u32, bits: &[u64]) -> bool {
        let key = self.key(node, state);
        let row = self.row_of[key];
        if row == u32::MAX {
            let r = self.bits.len() / self.words;
            self.row_of[key] = r as u32;
            self.touched.push(key);
            self.bits.extend_from_slice(bits);
            return bits.iter().any(|&w| w != 0);
        }
        let start = row as usize * self.words;
        let mut grew = false;
        for (word, add) in self.bits[start..start + self.words].iter_mut().zip(bits) {
            let merged = *word | add;
            grew |= merged != *word;
            *word = merged;
        }
        grew
    }

    fn get(&self, node: TermId, state: u32) -> Option<&[u64]> {
        let row = self.row_of[self.key(node, state)];
        if row == u32::MAX {
            None
        } else {
            let start = row as usize * self.words;
            Some(&self.bits[start..start + self.words])
        }
    }

    /// Copies the pair's bits into `buf` (zeroing it first); false when the
    /// pair was never reached.
    fn copy_into(&self, node: TermId, state: u32, buf: &mut [u64]) -> bool {
        match self.get(node, state) {
            Some(bits) => {
                buf.copy_from_slice(bits);
                true
            }
            None => {
                buf.fill(0);
                false
            }
        }
    }

    /// Decodes a touched key back into its `(node, state)` pair.
    fn decode(&self, key: usize) -> (TermId, u32) {
        (
            TermId((key % self.node_cap) as u32),
            (key / self.node_cap) as u32,
        )
    }
}

/// Per-worker scratch space for the multi-source kernels: the forward and
/// backward [`FrontierMatrix`] pair plus the worklist and bitset buffers
/// the BFS passes need. Owned by a [`PathCache`] (one per context, one
/// context per worker thread), so chunk after chunk reuses the same
/// allocations and the frontiers stay pre-sized to the CSR.
pub struct FrontierScratch {
    fwd: FrontierMatrix,
    bwd: FrontierMatrix,
    queue: VecDeque<(TermId, u32)>,
    seed_buf: Vec<u64>,
    copy_buf: Vec<u64>,
    gate_buf: Vec<u64>,
}

impl FrontierScratch {
    /// Creates an empty scratch; buffers grow to the graph on first use.
    pub fn new() -> Self {
        FrontierScratch {
            fwd: FrontierMatrix::new(),
            bwd: FrontierMatrix::new(),
            queue: VecDeque::new(),
            seed_buf: Vec::new(),
            copy_buf: Vec::new(),
            gate_buf: Vec::new(),
        }
    }
}

impl Default for FrontierScratch {
    fn default() -> Self {
        FrontierScratch::new()
    }
}

fn bits_intersect(a: &[u64], b: &[u64], out: &mut [u64]) -> bool {
    let mut any = false;
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = x & y;
        any |= *o != 0;
    }
    any
}

fn for_each_bit(bits: &[u64], mut f: impl FnMut(usize)) {
    for (w, word) in bits.iter().enumerate() {
        let mut word = *word;
        while word != 0 {
            let bit = word.trailing_zeros() as usize;
            f(w * 64 + bit);
            word &= word - 1;
        }
    }
}

use crate::path::PathExpr;

/// The result of a traced path evaluation: the set of `(subject,
/// predicate, object)` id-triples that witness the reachable endpoints.
pub type TraceSet = BTreeSet<(TermId, TermId, TermId)>;

/// A transition label: one property, or any property outside a negated set
/// (the Remark 6.3 extension).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Label {
    Prop(Iri),
    NegProp(BTreeSet<Iri>),
}

/// A transition label with properties resolved to graph term ids.
#[derive(Debug, Clone)]
enum ResolvedLabel {
    /// A single resolved property.
    Prop(TermId),
    /// Any property except the resolved ids (unresolved excluded IRIs
    /// cannot occur in the graph, so dropping them is sound).
    NegProp(BTreeSet<TermId>),
}

/// A Thompson NFA over the alphabet of forward/backward property steps.
#[derive(Debug, Clone)]
pub struct Nfa {
    start: u32,
    accept: u32,
    /// Epsilon transitions per state.
    eps: Vec<Vec<u32>>,
    /// Labeled transitions per state: `(label, inverse, next state)`.
    /// An `inverse` step from node `x` to node `y` consumes triple
    /// `(y, property, x)`.
    steps: Vec<Vec<(Label, bool, u32)>>,
}

impl Nfa {
    /// Compiles a path expression.
    pub fn compile(path: &PathExpr) -> Nfa {
        let mut builder = Builder {
            eps: Vec::new(),
            steps: Vec::new(),
        };
        let (start, accept) = builder.build(path, false);
        Nfa {
            start,
            accept,
            eps: builder.eps,
            steps: builder.steps,
        }
    }

    /// Number of states (grows linearly with the expression).
    pub fn state_count(&self) -> usize {
        self.eps.len()
    }

    /// True iff the automaton accepts the empty word, i.e. the path
    /// matches the identity pair `(v, v)` on every node. Agrees with
    /// [`PathExpr::is_nullable`] for compiled expressions.
    pub fn is_nullable(&self) -> bool {
        self.eps_closure(self.start).contains(&self.accept)
    }

    /// The labeled transitions a match can take *first*: every
    /// `(label, inverse)` edge leaving the ε-closure of the start state.
    /// A forward (`inverse == false`) first step from node `v` consumes an
    /// outgoing triple of `v` — which is what a `closed` declaration
    /// constrains — so this is the interface the static analyzer uses to
    /// detect `closed(P)` vs. required-property conflicts.
    pub fn first_steps(&self) -> Vec<(Label, bool)> {
        let mut out = Vec::new();
        for q in self.eps_closure(self.start) {
            for (label, inv, _) in &self.steps[q as usize] {
                let step = (label.clone(), *inv);
                if !out.contains(&step) {
                    out.push(step);
                }
            }
        }
        out
    }

    /// Sound language-inclusion test: `true` means every word accepted by
    /// `self` is accepted by `other`, hence `⟦E⟧^G(a) ⊆ ⟦F⟧^G(a)` on every
    /// graph and every start node (identity pairs included — the empty word
    /// is a word like any other). `false` means inclusion could not be
    /// *established*, never that it is refuted.
    ///
    /// The infinite property alphabet is abstracted to the properties
    /// mentioned by either automaton plus one fresh "unmentioned property"
    /// wildcard per direction; this is exact because a [`Label::NegProp`]
    /// transition treats all unmentioned properties alike. Over that finite
    /// alphabet the check walks the product of `self` with the on-the-fly
    /// determinization of `other` looking for a state that accepts in
    /// `self` but not in `other`; both sides are kept as ε-closed state
    /// sets. The walk gives up (returns `false`) once the product exceeds
    /// an internal cap, which keeps the worst case bounded on
    /// adversarially nested expressions.
    pub fn language_included_in(&self, other: &Nfa) -> bool {
        const PRODUCT_CAP: usize = 4096;
        let mut props: BTreeSet<&Iri> = BTreeSet::new();
        for steps in self.steps.iter().chain(other.steps.iter()) {
            for (label, _, _) in steps {
                match label {
                    Label::Prop(p) => {
                        props.insert(p);
                    }
                    Label::NegProp(ps) => props.extend(ps.iter()),
                }
            }
        }
        // A symbol is `(Some(p), inverse)` for a mentioned property or
        // `(None, inverse)` for the per-direction wildcard.
        let mut symbols: Vec<(Option<&Iri>, bool)> = Vec::new();
        for dir in [false, true] {
            symbols.extend(props.iter().map(|p| (Some(*p), dir)));
            symbols.push((None, dir));
        }
        let matches = |label: &Label, inv: bool, sym: (Option<&Iri>, bool)| {
            inv == sym.1
                && match (label, sym.0) {
                    (Label::Prop(p), Some(q)) => p == q,
                    (Label::Prop(_), None) => false,
                    (Label::NegProp(ps), Some(q)) => !ps.contains(q),
                    (Label::NegProp(_), None) => true,
                }
        };
        let start = (
            self.set_closure(vec![self.start]),
            other.set_closure(vec![other.start]),
        );
        let mut seen: std::collections::HashSet<(Vec<u32>, Vec<u32>)> =
            std::collections::HashSet::new();
        seen.insert(start.clone());
        let mut work = vec![start];
        while let Some((sa, sb)) = work.pop() {
            if sa.contains(&self.accept) && !sb.contains(&other.accept) {
                return false;
            }
            for &sym in &symbols {
                let next_a: Vec<u32> = sa
                    .iter()
                    .flat_map(|&q| self.steps[q as usize].iter())
                    .filter(|(label, inv, _)| matches(label, *inv, sym))
                    .map(|(_, _, n)| *n)
                    .collect();
                if next_a.is_empty() {
                    // `self` has no continuation on this symbol, so no
                    // word of `self` goes this way.
                    continue;
                }
                let next_b: Vec<u32> = sb
                    .iter()
                    .flat_map(|&q| other.steps[q as usize].iter())
                    .filter(|(label, inv, _)| matches(label, *inv, sym))
                    .map(|(_, _, n)| *n)
                    .collect();
                let state = (self.set_closure(next_a), other.set_closure(next_b));
                if seen.contains(&state) {
                    continue;
                }
                if seen.len() >= PRODUCT_CAP {
                    return false;
                }
                seen.insert(state.clone());
                work.push(state);
            }
        }
        true
    }

    /// ε-closure of a state set, sorted and deduplicated (so closures are
    /// usable as visited-set keys).
    fn set_closure(&self, seed: Vec<u32>) -> Vec<u32> {
        let mut seen = vec![false; self.state_count()];
        let mut stack = seed;
        let mut out = Vec::new();
        while let Some(q) = stack.pop() {
            if std::mem::replace(&mut seen[q as usize], true) {
                continue;
            }
            out.push(q);
            stack.extend(self.eps[q as usize].iter().copied());
        }
        out.sort_unstable();
        out
    }

    /// ε-closure of one state (iterative DFS).
    fn eps_closure(&self, from: u32) -> Vec<u32> {
        let mut seen = vec![false; self.state_count()];
        let mut stack = vec![from];
        let mut out = Vec::new();
        while let Some(q) = stack.pop() {
            if std::mem::replace(&mut seen[q as usize], true) {
                continue;
            }
            out.push(q);
            stack.extend(self.eps[q as usize].iter().copied());
        }
        out
    }
}

struct Builder {
    eps: Vec<Vec<u32>>,
    steps: Vec<Vec<(Label, bool, u32)>>,
}

impl Builder {
    fn fresh(&mut self) -> u32 {
        self.eps.push(Vec::new());
        self.steps.push(Vec::new());
        (self.eps.len() - 1) as u32
    }

    /// Builds the fragment for `path`, honoring an accumulated inversion:
    /// `(E₁/E₂)⁻ = E₂⁻/E₁⁻`, `(E⁻)⁻ = E`, and inversion distributes through
    /// the other operators.
    fn build(&mut self, path: &PathExpr, inverted: bool) -> (u32, u32) {
        match path {
            PathExpr::Prop(p) => {
                let s = self.fresh();
                let a = self.fresh();
                self.steps[s as usize].push((Label::Prop(p.clone()), inverted, a));
                (s, a)
            }
            PathExpr::NegProp(ps) => {
                let s = self.fresh();
                let a = self.fresh();
                self.steps[s as usize].push((Label::NegProp(ps.clone()), inverted, a));
                (s, a)
            }
            PathExpr::Inverse(e) => self.build(e, !inverted),
            PathExpr::Seq(e1, e2) => {
                let (first, second) = if inverted { (e2, e1) } else { (e1, e2) };
                let (s1, a1) = self.build(first, inverted);
                let (s2, a2) = self.build(second, inverted);
                self.eps[a1 as usize].push(s2);
                (s1, a2)
            }
            PathExpr::Alt(e1, e2) => {
                let (s1, a1) = self.build(e1, inverted);
                let (s2, a2) = self.build(e2, inverted);
                let s = self.fresh();
                let a = self.fresh();
                self.eps[s as usize].push(s1);
                self.eps[s as usize].push(s2);
                self.eps[a1 as usize].push(a);
                self.eps[a2 as usize].push(a);
                (s, a)
            }
            PathExpr::ZeroOrMore(e) => {
                let (si, ai) = self.build(e, inverted);
                let s = self.fresh();
                let a = self.fresh();
                self.eps[s as usize].push(si);
                self.eps[s as usize].push(a);
                self.eps[ai as usize].push(si);
                self.eps[ai as usize].push(a);
                (s, a)
            }
            PathExpr::ZeroOrOne(e) => {
                let (si, ai) = self.build(e, inverted);
                let s = self.fresh();
                let a = self.fresh();
                self.eps[s as usize].push(si);
                self.eps[s as usize].push(a);
                self.eps[ai as usize].push(a);
                (s, a)
            }
        }
    }
}

/// An NFA with its property IRIs resolved against a particular graph.
/// Resolution happens once per (path, graph) pair; transitions whose
/// property does not occur in the graph are dead.
#[derive(Debug, Clone)]
pub struct CompiledPath {
    nfa: Nfa,
    /// `steps[q]` → `(label, inverse, next)`; unresolved plain preds
    /// dropped.
    resolved: Vec<Vec<(ResolvedLabel, bool, u32)>>,
    /// Reverse of `resolved`: incoming labeled transitions per state.
    resolved_rev: Vec<Vec<(ResolvedLabel, bool, u32)>>,
    /// Reverse epsilon transitions per state.
    eps_rev: Vec<Vec<u32>>,
    /// Fast path: `E` is a single forward or inverse property.
    simple: Option<(TermId, bool)>,
}

impl CompiledPath {
    /// Compiles and resolves a path expression against a graph.
    pub fn new<G: GraphAccess>(path: &PathExpr, graph: &G) -> CompiledPath {
        let simple = match path {
            PathExpr::Prop(p) => graph.id_of_iri(p).map(|id| (id, false)),
            PathExpr::Inverse(inner) => match inner.as_ref() {
                PathExpr::Prop(p) => graph.id_of_iri(p).map(|id| (id, true)),
                _ => None,
            },
            _ => None,
        };
        let nfa = Nfa::compile(path);
        let n = nfa.state_count();
        let mut resolved = vec![Vec::new(); n];
        let mut resolved_rev = vec![Vec::new(); n];
        let mut eps_rev = vec![Vec::new(); n];
        for (q, transitions) in nfa.steps.iter().enumerate() {
            for (label, inv, next) in transitions {
                let resolved_label = match label {
                    Label::Prop(p) => match graph.id_of_iri(p) {
                        Some(pid) => ResolvedLabel::Prop(pid),
                        None => continue, // dead transition
                    },
                    Label::NegProp(ps) => ResolvedLabel::NegProp(
                        ps.iter().filter_map(|p| graph.id_of_iri(p)).collect(),
                    ),
                };
                resolved[q].push((resolved_label.clone(), *inv, *next));
                resolved_rev[*next as usize].push((resolved_label, *inv, q as u32));
            }
        }
        for (q, targets) in nfa.eps.iter().enumerate() {
            for next in targets {
                eps_rev[*next as usize].push(q as u32);
            }
        }
        CompiledPath {
            nfa,
            resolved,
            resolved_rev,
            eps_rev,
            simple,
        }
    }

    /// True iff the path matches the empty path (contributes identity).
    pub fn accepts_empty(&self) -> bool {
        // ε-closure of start contains accept?
        let mut seen = vec![false; self.nfa.state_count()];
        let mut stack = vec![self.nfa.start];
        while let Some(q) = stack.pop() {
            if seen[q as usize] {
                continue;
            }
            seen[q as usize] = true;
            if q == self.nfa.accept {
                return true;
            }
            for &next in &self.nfa.eps[q as usize] {
                stack.push(next);
            }
        }
        false
    }

    /// Evaluates `⟦E⟧^G(from)`: all nodes reachable from `from` along
    /// `E`-paths (plus `from` itself when `E` is nullable).
    pub fn eval_from<G: GraphAccess>(&self, graph: &G, from: TermId) -> BTreeSet<TermId> {
        self.try_eval_from(graph, from, &ExecCtx::unbounded())
            .expect("unbounded context cannot fail")
    }

    /// Governed [`CompiledPath::eval_from`]: ticks once per product-graph
    /// queue pop plus once per expanded edge, and charges the memory budget
    /// for every discovered product pair.
    pub fn try_eval_from<G: GraphAccess>(
        &self,
        graph: &G,
        from: TermId,
        ctx: &ExecCtx,
    ) -> Result<BTreeSet<TermId>, EngineError> {
        if let Some((pid, inv)) = self.simple {
            ctx.tick(1)?;
            return Ok(if inv {
                graph.subjects_ids(from, pid).collect()
            } else {
                graph.objects_ids(from, pid).collect()
            });
        }
        let mut mem = MemGuard::new(ctx);
        let mut result = BTreeSet::new();
        let mut visited = ProductSet::new(self.nfa.state_count());
        let mut queue: VecDeque<(TermId, u32)> = VecDeque::new();
        queue.push_back((from, self.nfa.start));
        visited.insert(from, self.nfa.start);
        while let Some((node, q)) = queue.pop_front() {
            if q == self.nfa.accept {
                result.insert(node);
            }
            let mut discovered = 0u64;
            let mut edges = 0u64;
            for &next in &self.nfa.eps[q as usize] {
                if visited.insert(node, next) {
                    discovered += 1;
                    queue.push_back((node, next));
                }
            }
            for (label, inv, next) in &self.resolved[q as usize] {
                successors(graph, node, label, *inv, |_pred, n2| {
                    edges += 1;
                    if visited.insert(n2, *next) {
                        discovered += 1;
                        queue.push_back((n2, *next));
                    }
                });
            }
            ctx.tick(1 + edges)?;
            mem.charge(discovered * PAIR_COST)?;
        }
        Ok(result)
    }

    /// Decides `(from, to) ∈ ⟦E⟧^G` without materializing the full result.
    pub fn connects<G: GraphAccess>(&self, graph: &G, from: TermId, to: TermId) -> bool {
        self.try_connects(graph, from, to, &ExecCtx::unbounded())
            .expect("unbounded context cannot fail")
    }

    /// Governed [`CompiledPath::connects`].
    pub fn try_connects<G: GraphAccess>(
        &self,
        graph: &G,
        from: TermId,
        to: TermId,
        ctx: &ExecCtx,
    ) -> Result<bool, EngineError> {
        if let Some((pid, inv)) = self.simple {
            ctx.tick(1)?;
            return Ok(if inv {
                graph.contains_ids(to, pid, from)
            } else {
                graph.contains_ids(from, pid, to)
            });
        }
        Ok(self.try_eval_from(graph, from, ctx)?.contains(&to))
    }

    /// Computes `⋃_{x ∈ targets} graph(paths(E, G, from, x))` as a set of
    /// id triples `(s, p, o)` of the underlying graph.
    ///
    /// `targets` is the set of admissible endpoints; pass the result of
    /// [`CompiledPath::eval_from`] (possibly filtered by a shape) — nodes in
    /// `targets` not actually reachable are ignored.
    pub fn trace<G: GraphAccess>(
        &self,
        graph: &G,
        from: TermId,
        targets: &BTreeSet<TermId>,
    ) -> TraceSet {
        self.try_trace(graph, from, targets, &ExecCtx::unbounded())
            .expect("unbounded context cannot fail")
    }

    /// Governed [`CompiledPath::trace`]: every BFS pop and edge expansion in
    /// the forward, backward, and collection phases ticks the context.
    pub fn try_trace<G: GraphAccess>(
        &self,
        graph: &G,
        from: TermId,
        targets: &BTreeSet<TermId>,
        ctx: &ExecCtx,
    ) -> Result<TraceSet, EngineError> {
        let mut out = BTreeSet::new();
        if let Some((pid, inv)) = self.simple {
            // paths(p, G, a, x) is the single length-one path; its graph is
            // the forward triple.
            ctx.tick(targets.len() as u64)?;
            for &x in targets {
                if inv {
                    if graph.contains_ids(x, pid, from) {
                        out.insert((x, pid, from));
                    }
                } else if graph.contains_ids(from, pid, x) {
                    out.insert((from, pid, x));
                }
            }
            return Ok(out);
        }

        // Forward reachability over the product graph.
        let states = self.nfa.state_count();
        let mut mem = MemGuard::new(ctx);
        let mut forward = ProductSet::new(states);
        let mut queue: VecDeque<(TermId, u32)> = VecDeque::new();
        forward.insert(from, self.nfa.start);
        queue.push_back((from, self.nfa.start));
        while let Some((node, q)) = queue.pop_front() {
            let mut discovered = 0u64;
            let mut edges = 0u64;
            for &next in &self.nfa.eps[q as usize] {
                if forward.insert(node, next) {
                    discovered += 1;
                    queue.push_back((node, next));
                }
            }
            for (label, inv, next) in &self.resolved[q as usize] {
                successors(graph, node, label, *inv, |_pred, n2| {
                    edges += 1;
                    if forward.insert(n2, *next) {
                        discovered += 1;
                        queue.push_back((n2, *next));
                    }
                });
            }
            ctx.tick(1 + edges)?;
            mem.charge(discovered * PAIR_COST)?;
        }

        // Backward reachability from accepting target pairs, restricted to
        // forward-reachable pairs.
        let mut backward = ProductSet::new(states);
        let mut queue: VecDeque<(TermId, u32)> = VecDeque::new();
        for &x in targets {
            if forward.contains(x, self.nfa.accept) && backward.insert(x, self.nfa.accept) {
                queue.push_back((x, self.nfa.accept));
            }
        }
        while let Some((node, q)) = queue.pop_front() {
            let mut discovered = 0u64;
            let mut edges = 0u64;
            for &prev in &self.eps_rev[q as usize] {
                if forward.contains(node, prev) && backward.insert(node, prev) {
                    discovered += 1;
                    queue.push_back((node, prev));
                }
            }
            for (label, inv, prev) in &self.resolved_rev[q as usize] {
                // Transition (prev) -(label, inv)-> (q). Find predecessor
                // nodes m with the corresponding triple to `node`:
                //   forward: (m, p, node) ∈ G
                //   inverse: (node, p, m) ∈ G
                predecessors(graph, node, label, *inv, |_pred, m| {
                    edges += 1;
                    if forward.contains(m, *prev) && backward.insert(m, *prev) {
                        discovered += 1;
                        queue.push_back((m, *prev));
                    }
                });
            }
            ctx.tick(1 + edges)?;
            mem.charge(discovered * PAIR_COST)?;
        }

        // Collect edges whose source is reachable and target co-reachable.
        for (q, nodes) in backward.per_state.iter().enumerate() {
            for &node in nodes {
                let mut edges = 0u64;
                for (label, inv, next) in &self.resolved[q] {
                    successors(graph, node, label, *inv, |pred, n2| {
                        edges += 1;
                        if backward.contains(n2, *next) {
                            if *inv {
                                out.insert((n2, pred, node));
                            } else {
                                out.insert((node, pred, n2));
                            }
                        }
                    });
                }
                ctx.tick(1 + edges)?;
            }
        }
        Ok(out)
    }

    /// Set-at-a-time evaluation: `⟦E⟧^G(sources[i])` for every source in one
    /// (chunked) product-graph traversal instead of `sources.len()`
    /// independent BFS passes.
    ///
    /// Each product pair `(node, state)` carries a bitset of the source
    /// indices that reach it; a pair is re-expanded only when its bitset
    /// grows, so regions of the product graph shared between sources are
    /// walked once per chunk rather than once per source. Results are
    /// per-source and identical to [`CompiledPath::eval_from`].
    pub fn eval_from_many<G: GraphAccess>(
        &self,
        graph: &G,
        sources: &[TermId],
    ) -> Vec<BTreeSet<TermId>> {
        self.try_eval_from_many(graph, sources, &ExecCtx::unbounded())
            .expect("unbounded context cannot fail")
    }

    /// Governed [`CompiledPath::eval_from_many`]. The context is consulted
    /// at every chunk boundary and throughout the shared product traversal.
    /// Allocates a fresh [`FrontierScratch`]; hot callers (the validator's
    /// [`PathCache`]) reuse a per-worker scratch instead.
    pub fn try_eval_from_many<G: GraphAccess>(
        &self,
        graph: &G,
        sources: &[TermId],
        ctx: &ExecCtx,
    ) -> Result<Vec<BTreeSet<TermId>>, EngineError> {
        self.try_eval_from_many_with(graph, sources, ctx, &mut FrontierScratch::new())
    }

    /// [`CompiledPath::try_eval_from_many`] over caller-owned scratch
    /// buffers, allocation-free across chunks once the scratch is warm.
    pub fn try_eval_from_many_with<G: GraphAccess>(
        &self,
        graph: &G,
        sources: &[TermId],
        ctx: &ExecCtx,
        scratch: &mut FrontierScratch,
    ) -> Result<Vec<BTreeSet<TermId>>, EngineError> {
        if let Some((pid, inv)) = self.simple {
            // Single-property paths are direct index lookups per source;
            // nothing is shared between sources.
            ctx.tick(sources.len() as u64)?;
            return Ok(sources
                .iter()
                .map(|&from| {
                    if inv {
                        graph.subjects_ids(from, pid).collect()
                    } else {
                        graph.objects_ids(from, pid).collect()
                    }
                })
                .collect());
        }
        let mut results: Vec<BTreeSet<TermId>> = vec![BTreeSet::new(); sources.len()];
        for (chunk_idx, chunk) in sources.chunks(SOURCE_CHUNK).enumerate() {
            ctx.check_now()?;
            let base = chunk_idx * SOURCE_CHUNK;
            let mut mem = MemGuard::new(ctx);
            self.forward_bits(graph, chunk, ctx, &mut mem, scratch)?;
            // Read results off the accept state: bit i set at (node, accept)
            // means source i reaches node.
            let forward = &scratch.fwd;
            for &key in &forward.touched {
                let (node, state) = forward.decode(key);
                if state != self.nfa.accept {
                    continue;
                }
                if let Some(bits) = forward.get(node, state) {
                    for_each_bit(bits, |i| {
                        results[base + i].insert(node);
                    });
                }
            }
        }
        Ok(results)
    }

    /// Batched tracing: for each request `(from, targets)`, computes
    /// `⋃_{x ∈ targets} graph(paths(E, G, from, x))`, sharing the forward
    /// and backward product traversals across all requests in a chunk.
    ///
    /// An edge `(node, q) → (n2, next)` of the product graph lies on an
    /// accepting run for request `i` iff `i ∈ forward(node, q)` and
    /// `i ∈ backward(n2, next)`, where the backward bits are seeded from
    /// each request's admissible targets at the accept state and propagated
    /// through forward-reachable pairs only. Results are per-request and
    /// identical to [`CompiledPath::trace`].
    pub fn trace_many<G: GraphAccess>(
        &self,
        graph: &G,
        requests: &[(TermId, BTreeSet<TermId>)],
    ) -> Vec<TraceSet> {
        self.try_trace_many(graph, requests, &ExecCtx::unbounded())
            .expect("unbounded context cannot fail")
    }

    /// Governed [`CompiledPath::trace_many`]. Allocates a fresh
    /// [`FrontierScratch`]; hot callers reuse a per-worker scratch.
    pub fn try_trace_many<G: GraphAccess>(
        &self,
        graph: &G,
        requests: &[(TermId, BTreeSet<TermId>)],
        ctx: &ExecCtx,
    ) -> Result<Vec<TraceSet>, EngineError> {
        self.try_trace_many_with(graph, requests, ctx, &mut FrontierScratch::new())
    }

    /// [`CompiledPath::try_trace_many`] over caller-owned scratch buffers,
    /// allocation-free across chunks once the scratch is warm.
    pub fn try_trace_many_with<G: GraphAccess>(
        &self,
        graph: &G,
        requests: &[(TermId, BTreeSet<TermId>)],
        ctx: &ExecCtx,
        scratch: &mut FrontierScratch,
    ) -> Result<Vec<TraceSet>, EngineError> {
        if let Some((pid, inv)) = self.simple {
            return requests
                .iter()
                .map(|(from, targets)| {
                    ctx.tick(1 + targets.len() as u64)?;
                    let mut out = BTreeSet::new();
                    for &x in targets {
                        if inv {
                            if graph.contains_ids(x, pid, *from) {
                                out.insert((x, pid, *from));
                            }
                        } else if graph.contains_ids(*from, pid, x) {
                            out.insert((*from, pid, x));
                        }
                    }
                    Ok(out)
                })
                .collect();
        }
        let states = self.nfa.state_count();
        let node_cap = graph.term_count();
        let mut results: Vec<TraceSet> = vec![BTreeSet::new(); requests.len()];
        for (chunk_idx, chunk) in requests.chunks(SOURCE_CHUNK).enumerate() {
            ctx.check_now()?;
            let base = chunk_idx * SOURCE_CHUNK;
            let words = chunk.len().div_ceil(64);
            let sources: Vec<TermId> = chunk.iter().map(|(from, _)| *from).collect();
            let mut mem = MemGuard::new(ctx);
            self.forward_bits(graph, &sources, ctx, &mut mem, scratch)?;

            // Backward propagation restricted to forward-reachable pairs:
            // bits flowing into (m, prev) are the mover's bits intersected
            // with forward(m, prev).
            let FrontierScratch {
                fwd,
                bwd: backward,
                queue,
                seed_buf: seed,
                copy_buf,
                gate_buf: gated,
            } = scratch;
            let forward: &FrontierMatrix = fwd;
            backward.reset(states, node_cap, words);
            queue.clear();
            seed.clear();
            seed.resize(words, 0);
            copy_buf.clear();
            copy_buf.resize(words, 0);
            gated.clear();
            gated.resize(words, 0);
            for (i, (_, targets)) in chunk.iter().enumerate() {
                seed.fill(0);
                seed[i / 64] = 1u64 << (i % 64);
                for &x in targets {
                    let reached = forward
                        .get(x, self.nfa.accept)
                        .is_some_and(|bits| bits[i / 64] & seed[i / 64] != 0);
                    if reached && backward.union(x, self.nfa.accept, seed) {
                        queue.push_back((x, self.nfa.accept));
                    }
                }
            }
            while let Some((node, q)) = queue.pop_front() {
                if !backward.copy_into(node, q, copy_buf) {
                    continue;
                }
                let mut pushed = 0u64;
                let mut edges = 0u64;
                for &prev in &self.eps_rev[q as usize] {
                    let fwd_bits = match forward.get(node, prev) {
                        Some(bits) => bits,
                        None => continue,
                    };
                    if bits_intersect(copy_buf, fwd_bits, gated)
                        && backward.union(node, prev, gated)
                    {
                        pushed += 1;
                        queue.push_back((node, prev));
                    }
                }
                for (label, inv, prev) in &self.resolved_rev[q as usize] {
                    let mut grown: Vec<TermId> = Vec::new();
                    predecessors(graph, node, label, *inv, |_pred, m| {
                        edges += 1;
                        if forward.get(m, *prev).is_some() {
                            grown.push(m);
                        }
                    });
                    for m in grown {
                        let fwd_bits = forward.get(m, *prev).expect("filtered above");
                        if bits_intersect(copy_buf, fwd_bits, gated)
                            && backward.union(m, *prev, gated)
                        {
                            pushed += 1;
                            queue.push_back((m, *prev));
                        }
                    }
                }
                ctx.tick(1 + edges)?;
                mem.charge(pushed * (PAIR_COST + 8 * words as u64))?;
            }

            // Edge collection: attribute each surviving product edge to the
            // requests in forward(src pair) ∩ backward(dst pair).
            for idx in 0..backward.touched.len() {
                let (node, q) = backward.decode(backward.touched[idx]);
                let fwd_bits = match forward.get(node, q) {
                    Some(bits) => bits,
                    None => continue,
                };
                for (label, inv, next) in &self.resolved[q as usize] {
                    let mut hits: Vec<(TermId, TermId)> = Vec::new();
                    successors(graph, node, label, *inv, |pred, n2| {
                        hits.push((pred, n2));
                    });
                    ctx.tick(1 + hits.len() as u64)?;
                    for (pred, n2) in hits {
                        let bwd_bits = match backward.get(n2, *next) {
                            Some(bits) => bits,
                            None => continue,
                        };
                        if bits_intersect(fwd_bits, bwd_bits, gated) {
                            let triple = if *inv {
                                (n2, pred, node)
                            } else {
                                (node, pred, n2)
                            };
                            for_each_bit(gated, |i| {
                                results[base + i].insert(triple);
                            });
                        }
                    }
                }
            }
        }
        Ok(results)
    }

    /// Multi-source forward reachability over the product graph: one worklist
    /// pass labeling each reached `(node, state)` pair with the set of chunk
    /// source indices that reach it. The result is left in `scratch.fwd`.
    fn forward_bits<G: GraphAccess>(
        &self,
        graph: &G,
        chunk: &[TermId],
        ctx: &ExecCtx,
        mem: &mut MemGuard<'_>,
        scratch: &mut FrontierScratch,
    ) -> Result<(), EngineError> {
        let words = chunk.len().div_ceil(64);
        let entry_cost = PAIR_COST + 8 * words as u64;
        let FrontierScratch {
            fwd: forward,
            queue,
            seed_buf: seed,
            copy_buf,
            ..
        } = scratch;
        forward.reset(self.nfa.state_count(), graph.term_count(), words);
        queue.clear();
        seed.clear();
        seed.resize(words, 0);
        for (i, &from) in chunk.iter().enumerate() {
            seed.fill(0);
            seed[i / 64] = 1u64 << (i % 64);
            if forward.union(from, self.nfa.start, seed) {
                queue.push_back((from, self.nfa.start));
            }
        }
        mem.charge(queue.len() as u64 * entry_cost)?;
        copy_buf.clear();
        copy_buf.resize(words, 0);
        while let Some((node, q)) = queue.pop_front() {
            // Re-read current bits: the pair may have grown again since it
            // was queued (stale entries just propagate the newest bits).
            if !forward.copy_into(node, q, copy_buf) {
                continue;
            }
            let mut pushed = 0u64;
            let mut edges = 0u64;
            for &next in &self.nfa.eps[q as usize] {
                if forward.union(node, next, copy_buf) {
                    pushed += 1;
                    queue.push_back((node, next));
                }
            }
            for (label, inv, next) in &self.resolved[q as usize] {
                let mut grown: Vec<TermId> = Vec::new();
                successors(graph, node, label, *inv, |_pred, n2| {
                    edges += 1;
                    grown.push(n2);
                });
                for n2 in grown {
                    if forward.union(n2, *next, copy_buf) {
                        pushed += 1;
                        queue.push_back((n2, *next));
                    }
                }
            }
            ctx.tick(1 + edges)?;
            mem.charge(pushed * entry_cost)?;
        }
        Ok(())
    }
}

/// Enumerates the `(predicate id, neighbor)` pairs reachable from `node`
/// by one transition with the given label/direction.
fn successors<G: GraphAccess>(
    graph: &G,
    node: TermId,
    label: &ResolvedLabel,
    inverse: bool,
    mut f: impl FnMut(TermId, TermId),
) {
    match (label, inverse) {
        (ResolvedLabel::Prop(pid), false) => {
            for o in graph.objects_ids(node, *pid) {
                f(*pid, o);
            }
        }
        (ResolvedLabel::Prop(pid), true) => {
            for s in graph.subjects_ids(node, *pid) {
                f(*pid, s);
            }
        }
        (ResolvedLabel::NegProp(excluded), false) => {
            let edges: Vec<(TermId, TermId)> = graph.out_edges_ids(node).collect();
            for (p, o) in edges {
                if !excluded.contains(&p) {
                    f(p, o);
                }
            }
        }
        (ResolvedLabel::NegProp(excluded), true) => {
            let edges: Vec<(TermId, TermId)> = graph.in_edges_ids(node).collect();
            for (p, s) in edges {
                if !excluded.contains(&p) {
                    f(p, s);
                }
            }
        }
    }
}

/// Enumerates the `(predicate id, predecessor)` pairs that reach `node` by
/// one transition with the given label/direction (the reverse of
/// [`successors`]).
fn predecessors<G: GraphAccess>(
    graph: &G,
    node: TermId,
    label: &ResolvedLabel,
    inverse: bool,
    mut f: impl FnMut(TermId, TermId),
) {
    match (label, inverse) {
        // Forward transition into `node`: (m, p, node) ∈ G.
        (ResolvedLabel::Prop(pid), false) => {
            for m in graph.subjects_ids(node, *pid) {
                f(*pid, m);
            }
        }
        // Inverse transition into `node`: (node, p, m) ∈ G.
        (ResolvedLabel::Prop(pid), true) => {
            for m in graph.objects_ids(node, *pid) {
                f(*pid, m);
            }
        }
        (ResolvedLabel::NegProp(excluded), false) => {
            let edges: Vec<(TermId, TermId)> = graph.in_edges_ids(node).collect();
            for (p, m) in edges {
                if !excluded.contains(&p) {
                    f(p, m);
                }
            }
        }
        (ResolvedLabel::NegProp(excluded), true) => {
            let edges: Vec<(TermId, TermId)> = graph.out_edges_ids(node).collect();
            for (p, m) in edges {
                if !excluded.contains(&p) {
                    f(p, m);
                }
            }
        }
    }
}

/// A per-graph cache of compiled paths. Validators and provenance engines
/// evaluate the same expressions for many focus nodes; compiling once
/// amortizes NFA construction and predicate resolution. The cache also
/// owns a [`FrontierScratch`], so the multi-source kernels of every path
/// evaluated through one cache (= one worker thread) share pre-sized,
/// reusable frontier buffers.
#[derive(Default)]
pub struct PathCache {
    cache: HashMap<PathExpr, CompiledPath>,
    scratch: FrontierScratch,
}

impl PathCache {
    /// Creates an empty cache (tied to one graph by convention: do not mix
    /// graphs in one cache, ids would be meaningless).
    pub fn new() -> Self {
        PathCache::default()
    }

    /// Gets or compiles the path for this graph.
    pub fn get<G: GraphAccess>(&mut self, path: &PathExpr, graph: &G) -> &CompiledPath {
        Self::compiled(&mut self.cache, path, graph)
    }

    /// Entry helper on the bare map so callers can split-borrow the
    /// compiled path and the frontier scratch at once.
    fn compiled<'c, G: GraphAccess>(
        cache: &'c mut HashMap<PathExpr, CompiledPath>,
        path: &PathExpr,
        graph: &G,
    ) -> &'c CompiledPath {
        cache
            .entry(path.clone())
            .or_insert_with(|| CompiledPath::new(path, graph))
    }

    /// Convenience: `⟦E⟧^G(from)`.
    pub fn eval<G: GraphAccess>(
        &mut self,
        path: &PathExpr,
        graph: &G,
        from: TermId,
    ) -> BTreeSet<TermId> {
        self.get(path, graph).eval_from(graph, from)
    }

    /// Convenience: trace `graph(paths(E, G, from, targets))`.
    pub fn trace<G: GraphAccess>(
        &mut self,
        path: &PathExpr,
        graph: &G,
        from: TermId,
        targets: &BTreeSet<TermId>,
    ) -> TraceSet {
        self.get(path, graph).trace(graph, from, targets)
    }

    /// Convenience: set-at-a-time `⟦E⟧^G(sources[i])` for all sources.
    pub fn eval_many<G: GraphAccess>(
        &mut self,
        path: &PathExpr,
        graph: &G,
        sources: &[TermId],
    ) -> Vec<BTreeSet<TermId>> {
        let compiled = Self::compiled(&mut self.cache, path, graph);
        compiled
            .try_eval_from_many_with(graph, sources, &ExecCtx::unbounded(), &mut self.scratch)
            .expect("unbounded context cannot fail")
    }

    /// Convenience: batched tracing for all `(from, targets)` requests.
    pub fn trace_many<G: GraphAccess>(
        &mut self,
        path: &PathExpr,
        graph: &G,
        requests: &[(TermId, BTreeSet<TermId>)],
    ) -> Vec<TraceSet> {
        let compiled = Self::compiled(&mut self.cache, path, graph);
        compiled
            .try_trace_many_with(graph, requests, &ExecCtx::unbounded(), &mut self.scratch)
            .expect("unbounded context cannot fail")
    }

    /// Governed [`PathCache::eval`].
    pub fn try_eval<G: GraphAccess>(
        &mut self,
        path: &PathExpr,
        graph: &G,
        from: TermId,
        ctx: &ExecCtx,
    ) -> Result<BTreeSet<TermId>, EngineError> {
        self.get(path, graph).try_eval_from(graph, from, ctx)
    }

    /// Governed [`PathCache::trace`].
    pub fn try_trace<G: GraphAccess>(
        &mut self,
        path: &PathExpr,
        graph: &G,
        from: TermId,
        targets: &BTreeSet<TermId>,
        ctx: &ExecCtx,
    ) -> Result<TraceSet, EngineError> {
        self.get(path, graph).try_trace(graph, from, targets, ctx)
    }

    /// Governed [`PathCache::eval_many`].
    pub fn try_eval_many<G: GraphAccess>(
        &mut self,
        path: &PathExpr,
        graph: &G,
        sources: &[TermId],
        ctx: &ExecCtx,
    ) -> Result<Vec<BTreeSet<TermId>>, EngineError> {
        let compiled = Self::compiled(&mut self.cache, path, graph);
        compiled.try_eval_from_many_with(graph, sources, ctx, &mut self.scratch)
    }

    /// Governed [`PathCache::trace_many`].
    pub fn try_trace_many<G: GraphAccess>(
        &mut self,
        path: &PathExpr,
        graph: &G,
        requests: &[(TermId, BTreeSet<TermId>)],
        ctx: &ExecCtx,
    ) -> Result<Vec<TraceSet>, EngineError> {
        let compiled = Self::compiled(&mut self.cache, path, graph);
        compiled.try_trace_many_with(graph, requests, ctx, &mut self.scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapefrag_rdf::{Graph, Term, Triple};

    fn iri(n: &str) -> Iri {
        Iri::new(format!("http://e/{n}"))
    }

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(
            Term::iri(format!("http://e/{s}")),
            iri(p),
            Term::iri(format!("http://e/{o}")),
        )
    }

    fn p(n: &str) -> PathExpr {
        PathExpr::Prop(iri(n))
    }

    fn id(g: &Graph, n: &str) -> TermId {
        g.id_of(&Term::iri(format!("http://e/{n}"))).unwrap()
    }

    fn eval(g: &Graph, e: &PathExpr, from: &str) -> BTreeSet<String> {
        let c = CompiledPath::new(e, g);
        c.eval_from(g, id(g, from))
            .into_iter()
            .map(|x| g.term(x).to_string())
            .collect()
    }

    fn names(g: &Graph, ids: &BTreeSet<TermId>) -> BTreeSet<String> {
        ids.iter().map(|x| g.term(*x).to_string()).collect()
    }

    fn n(x: &str) -> String {
        format!("<http://e/{x}>")
    }

    #[test]
    fn simple_property() {
        let g = Graph::from_triples([t("a", "p", "b"), t("a", "p", "c"), t("b", "p", "d")]);
        assert_eq!(eval(&g, &p("p"), "a"), BTreeSet::from([n("b"), n("c")]));
    }

    fn included(a: &PathExpr, b: &PathExpr) -> bool {
        Nfa::compile(a).language_included_in(&Nfa::compile(b))
    }

    #[test]
    fn language_inclusion_basic() {
        // Reflexivity and alternation weakening.
        assert!(included(&p("p"), &p("p")));
        assert!(included(&p("p"), &p("p").or(p("q"))));
        assert!(!included(&p("p").or(p("q")), &p("p")));
        // Star absorbs repetitions and options.
        assert!(included(&p("p"), &p("p").star()));
        assert!(included(&p("p").then(p("p")), &p("p").star()));
        assert!(included(&p("p").opt(), &p("p").star()));
        assert!(!included(&p("p").star(), &p("p").opt()));
        assert!(!included(&p("p").star(), &p("p")));
        // Nullability matters: p* accepts the empty word, p/p* does not.
        assert!(included(&p("p").plus(), &p("p").star()));
        assert!(!included(&p("p").star(), &p("p").plus()));
    }

    #[test]
    fn language_inclusion_direction_sensitive() {
        assert!(included(&p("p").inverse(), &p("p").inverse()));
        assert!(!included(&p("p").inverse(), &p("p")));
        assert!(!included(&p("p"), &p("p").inverse()));
        // (p/q)⁻ and q⁻/p⁻ are the same language.
        let a = p("p").then(p("q")).inverse();
        let b = p("q").inverse().then(p("p").inverse());
        assert!(included(&a, &b));
        assert!(included(&b, &a));
    }

    #[test]
    fn language_inclusion_negated_sets() {
        let not_q = PathExpr::neg_props([iri("q")]);
        let not_pq = PathExpr::neg_props([iri("p"), iri("q")]);
        // p ∉ {q}, so a p-step is one of !(q)'s steps.
        assert!(included(&p("p"), &not_q));
        assert!(!included(&p("q"), &not_q));
        // Bigger excluded set ⇒ smaller language.
        assert!(included(&not_pq, &not_q));
        assert!(!included(&not_q, &not_pq));
        // The wildcard: !(q) takes properties nobody mentions, p doesn't.
        assert!(!included(&not_q, &p("p")));
        assert!(included(
            &PathExpr::any_prop(),
            &PathExpr::any_prop().star()
        ));
    }

    #[test]
    fn language_inclusion_mixed_structure() {
        // (p|q)/r ⊆ (p/r) | (q/r) and back — distributivity.
        let a = p("p").or(p("q")).then(p("r"));
        let b = p("p").then(p("r")).or(p("q").then(p("r")));
        assert!(included(&a, &b));
        assert!(included(&b, &a));
        // (p*)* ≡ p*.
        assert!(included(&p("p").star().star(), &p("p").star()));
        assert!(included(&p("p").star(), &p("p").star().star()));
        // p/q ⊄ q/p.
        assert!(!included(&p("p").then(p("q")), &p("q").then(p("p"))));
    }

    #[test]
    fn inverse_property() {
        let g = Graph::from_triples([t("a", "p", "b"), t("c", "p", "b")]);
        assert_eq!(
            eval(&g, &p("p").inverse(), "b"),
            BTreeSet::from([n("a"), n("c")])
        );
    }

    #[test]
    fn sequence() {
        let g = Graph::from_triples([t("a", "p", "b"), t("b", "q", "c"), t("b", "q", "d")]);
        assert_eq!(
            eval(&g, &p("p").then(p("q")), "a"),
            BTreeSet::from([n("c"), n("d")])
        );
    }

    #[test]
    fn inverse_of_sequence_reverses() {
        // (p/q)⁻ from c: c -q⁻-> b -p⁻-> a
        let g = Graph::from_triples([t("a", "p", "b"), t("b", "q", "c")]);
        assert_eq!(
            eval(&g, &p("p").then(p("q")).inverse(), "c"),
            BTreeSet::from([n("a")])
        );
    }

    #[test]
    fn double_inverse_cancels() {
        let g = Graph::from_triples([t("a", "p", "b")]);
        assert_eq!(
            eval(&g, &p("p").inverse().inverse(), "a"),
            BTreeSet::from([n("b")])
        );
    }

    #[test]
    fn alternative() {
        let g = Graph::from_triples([t("a", "p", "b"), t("a", "q", "c")]);
        assert_eq!(
            eval(&g, &p("p").or(p("q")), "a"),
            BTreeSet::from([n("b"), n("c")])
        );
    }

    #[test]
    fn zero_or_one_includes_self() {
        let g = Graph::from_triples([t("a", "p", "b")]);
        assert_eq!(
            eval(&g, &p("p").opt(), "a"),
            BTreeSet::from([n("a"), n("b")])
        );
    }

    #[test]
    fn star_reflexive_transitive() {
        let g = Graph::from_triples([t("a", "p", "b"), t("b", "p", "c"), t("c", "p", "d")]);
        assert_eq!(
            eval(&g, &p("p").star(), "a"),
            BTreeSet::from([n("a"), n("b"), n("c"), n("d")])
        );
    }

    #[test]
    fn star_on_cycle_terminates() {
        let g = Graph::from_triples([t("a", "p", "b"), t("b", "p", "a")]);
        assert_eq!(
            eval(&g, &p("p").star(), "a"),
            BTreeSet::from([n("a"), n("b")])
        );
    }

    #[test]
    fn plus_excludes_self_without_cycle() {
        let g = Graph::from_triples([t("a", "p", "b"), t("b", "p", "c")]);
        assert_eq!(
            eval(&g, &p("p").plus(), "a"),
            BTreeSet::from([n("b"), n("c")])
        );
    }

    #[test]
    fn trace_simple_property() {
        let g = Graph::from_triples([t("a", "p", "b"), t("a", "p", "c"), t("x", "p", "y")]);
        let c = CompiledPath::new(&p("p"), &g);
        let targets = BTreeSet::from([id(&g, "b")]);
        let traced = c.trace(&g, id(&g, "a"), &targets);
        assert_eq!(traced.len(), 1);
        let (s, _, o) = traced.into_iter().next().unwrap();
        assert_eq!(g.term(s).to_string(), n("a"));
        assert_eq!(g.term(o).to_string(), n("b"));
    }

    #[test]
    fn trace_inverse_keeps_forward_triple() {
        let g = Graph::from_triples([t("a", "p", "b")]);
        let c = CompiledPath::new(&p("p").inverse(), &g);
        let targets = BTreeSet::from([id(&g, "a")]);
        let traced = c.trace(&g, id(&g, "b"), &targets);
        assert_eq!(traced.len(), 1);
        let (s, _, o) = traced.into_iter().next().unwrap();
        // The underlying triple is stored forward: (a, p, b).
        assert_eq!(g.term(s).to_string(), n("a"));
        assert_eq!(g.term(o).to_string(), n("b"));
    }

    #[test]
    fn trace_sequence_keeps_only_connecting_edges() {
        let g = Graph::from_triples([
            t("a", "p", "b"),
            t("b", "q", "c"),
            t("a", "p", "dead"), // no q edge out of dead
            t("z", "q", "c"),    // not reachable from a via p
        ]);
        let e = p("p").then(p("q"));
        let c = CompiledPath::new(&e, &g);
        let targets = BTreeSet::from([id(&g, "c")]);
        let traced = names(
            &g,
            &c.trace(&g, id(&g, "a"), &targets)
                .into_iter()
                .map(|(s, _, _)| s)
                .collect(),
        );
        // Only edges a-p->b and b-q->c; subjects are a and b.
        assert_eq!(traced, BTreeSet::from([n("a"), n("b")]));
    }

    #[test]
    fn trace_star_includes_all_path_edges() {
        // Diamond: a->b->d and a->c->d; both lie on p* paths from a to d.
        let g = Graph::from_triples([
            t("a", "p", "b"),
            t("b", "p", "d"),
            t("a", "p", "c"),
            t("c", "p", "d"),
            t("d", "p", "e"), // beyond the target; not on a→d path? e is beyond d; edge d->e is not on any a→d path.
        ]);
        let c = CompiledPath::new(&p("p").star(), &g);
        let targets = BTreeSet::from([id(&g, "d")]);
        let traced = c.trace(&g, id(&g, "a"), &targets);
        assert_eq!(traced.len(), 4);
    }

    #[test]
    fn trace_star_with_cycle_includes_cycle_edges() {
        // a -> b -> c -> b cycle, target c: the cycle edges b->c and c->b
        // all lie on some a→c path matching p*.
        let g = Graph::from_triples([t("a", "p", "b"), t("b", "p", "c"), t("c", "p", "b")]);
        let c = CompiledPath::new(&p("p").star(), &g);
        let targets = BTreeSet::from([id(&g, "c")]);
        let traced = c.trace(&g, id(&g, "a"), &targets);
        assert_eq!(traced.len(), 3);
    }

    #[test]
    fn trace_empty_path_yields_no_triples() {
        // Target reachable only via the empty path: no edges traced.
        let g = Graph::from_triples([t("a", "p", "b")]);
        let c = CompiledPath::new(&p("p").star(), &g);
        let targets = BTreeSet::from([id(&g, "a")]);
        let traced = c.trace(&g, id(&g, "a"), &targets);
        assert!(traced.is_empty());
    }

    #[test]
    fn trace_unreachable_target_is_empty() {
        let g = Graph::from_triples([t("a", "p", "b"), t("x", "p", "y")]);
        let c = CompiledPath::new(&p("p"), &g);
        let targets = BTreeSet::from([id(&g, "y")]);
        assert!(c.trace(&g, id(&g, "a"), &targets).is_empty());
    }

    #[test]
    fn proposition_3_1_path_semantics_preserved_in_trace() {
        // F = graph(paths(E, G, a, b)) ⇒ (a,b) ∈ ⟦E⟧^F.
        let g = Graph::from_triples([
            t("a", "p", "b"),
            t("b", "q", "c"),
            t("b", "r", "z"),
            t("c", "p", "c"),
        ]);
        let e = p("p").then(p("q")).then(p("p").star());
        let c = CompiledPath::new(&e, &g);
        let a = id(&g, "a");
        for x in c.eval_from(&g, a) {
            let traced = c.trace(&g, a, &BTreeSet::from([x]));
            let f = Graph::from_triples(traced.iter().map(|&(s, pp, o)| g.triple_of(s, pp, o)));
            let cf = CompiledPath::new(&e, &f);
            let a_f = f.id_of(g.term(a)).expect("start node in traced graph");
            let x_term = g.term(x);
            let x_f = f.id_of(x_term).expect("target node in traced graph");
            assert!(
                cf.connects(&f, a_f, x_f),
                "({}, {}) lost in traced subgraph",
                g.term(a),
                x_term
            );
        }
    }

    #[test]
    fn accepts_empty_matches_nullability() {
        let g = Graph::from_triples([t("a", "p", "b")]);
        for e in [
            p("p"),
            p("p").star(),
            p("p").opt(),
            p("p").then(p("q")),
            p("p").star().then(p("q").opt()),
        ] {
            let c = CompiledPath::new(&e, &g);
            assert_eq!(c.accepts_empty(), e.is_nullable(), "for {e}");
        }
    }

    #[test]
    fn unknown_predicate_evaluates_empty() {
        let g = Graph::from_triples([t("a", "p", "b")]);
        assert!(eval(&g, &p("unknown"), "a").is_empty());
        assert_eq!(
            eval(&g, &p("unknown").star(), "a"),
            BTreeSet::from([n("a")])
        );
    }

    #[test]
    fn eval_from_many_matches_eval_from() {
        // A braided graph exercising star/alt sharing between sources.
        let g = Graph::from_triples([
            t("a", "p", "b"),
            t("b", "p", "c"),
            t("c", "p", "d"),
            t("b", "q", "x"),
            t("x", "p", "c"),
            t("d", "q", "a"),
            t("z", "p", "z"),
        ]);
        let exprs = [
            p("p"),
            p("p").inverse(),
            p("p").star(),
            p("p").or(p("q")).star(),
            p("p").then(p("q").opt()),
            p("q").inverse().then(p("p").star()),
        ];
        let sources: Vec<TermId> = ["a", "b", "c", "d", "x", "z"]
            .iter()
            .map(|s| id(&g, s))
            .collect();
        for e in &exprs {
            let c = CompiledPath::new(e, &g);
            let batch = c.eval_from_many(&g, &sources);
            assert_eq!(batch.len(), sources.len());
            for (i, &from) in sources.iter().enumerate() {
                assert_eq!(batch[i], c.eval_from(&g, from), "expr {e}, source {i}");
            }
        }
    }

    #[test]
    fn eval_from_many_handles_duplicate_sources() {
        let g = Graph::from_triples([t("a", "p", "b"), t("b", "p", "c")]);
        let c = CompiledPath::new(&p("p").star(), &g);
        let a = id(&g, "a");
        let batch = c.eval_from_many(&g, &[a, a, id(&g, "b"), a]);
        let single = c.eval_from(&g, a);
        assert_eq!(batch[0], single);
        assert_eq!(batch[1], single);
        assert_eq!(batch[3], single);
        assert_eq!(batch[2], c.eval_from(&g, id(&g, "b")));
    }

    #[test]
    fn eval_from_many_empty_sources() {
        let g = Graph::from_triples([t("a", "p", "b")]);
        let c = CompiledPath::new(&p("p"), &g);
        assert!(c.eval_from_many(&g, &[]).is_empty());
    }

    #[test]
    fn eval_from_many_spans_chunks() {
        // More sources than one bitset chunk: chain x0 -p-> x1 -p-> … so
        // every source has a distinct result.
        let chain: Vec<Triple> = (0..(SOURCE_CHUNK + 40))
            .map(|i| t(&format!("x{i}"), "p", &format!("x{}", i + 1)))
            .collect();
        let g = Graph::from_triples(chain);
        let e = p("p").then(p("p"));
        let c = CompiledPath::new(&e, &g);
        let sources: Vec<TermId> = (0..(SOURCE_CHUNK + 40))
            .map(|i| id(&g, &format!("x{i}")))
            .collect();
        let batch = c.eval_from_many(&g, &sources);
        for (i, &from) in sources.iter().enumerate() {
            assert_eq!(batch[i], c.eval_from(&g, from), "source {i}");
        }
    }

    #[test]
    fn trace_many_matches_trace() {
        let g = Graph::from_triples([
            t("a", "p", "b"),
            t("b", "p", "d"),
            t("a", "p", "c"),
            t("c", "p", "d"),
            t("d", "p", "e"),
            t("b", "q", "c"),
            t("e", "q", "a"),
        ]);
        let exprs = [
            p("p"),
            p("p").star(),
            p("p").or(p("q")).star(),
            p("p").then(p("q")),
            p("q").inverse(),
        ];
        let all: Vec<&str> = vec!["a", "b", "c", "d", "e"];
        for e in &exprs {
            let c = CompiledPath::new(e, &g);
            let requests: Vec<(TermId, BTreeSet<TermId>)> = all
                .iter()
                .map(|s| {
                    let from = id(&g, s);
                    (from, c.eval_from(&g, from))
                })
                .collect();
            let batch = c.trace_many(&g, &requests);
            for (i, (from, targets)) in requests.iter().enumerate() {
                assert_eq!(
                    batch[i],
                    c.trace(&g, *from, targets),
                    "expr {e}, source {}",
                    all[i]
                );
            }
        }
    }

    #[test]
    fn trace_many_separates_overlapping_sources() {
        // Both sources reach d through shared edges, but only edges on
        // *that source's* paths may appear in its result.
        let g = Graph::from_triples([
            t("a", "p", "m"),
            t("b", "p", "m"),
            t("m", "p", "d"),
            t("b", "p", "d"),
        ]);
        let c = CompiledPath::new(&p("p").plus(), &g);
        let d = id(&g, "d");
        let requests = vec![
            (id(&g, "a"), BTreeSet::from([d])),
            (id(&g, "b"), BTreeSet::from([d])),
        ];
        let batch = c.trace_many(&g, &requests);
        // Source a never uses b's edges.
        let a_subjects: BTreeSet<String> =
            names(&g, &batch[0].iter().map(|&(s, _, _)| s).collect());
        assert_eq!(a_subjects, BTreeSet::from([n("a"), n("m")]));
        let b_subjects: BTreeSet<String> =
            names(&g, &batch[1].iter().map(|&(s, _, _)| s).collect());
        assert_eq!(b_subjects, BTreeSet::from([n("b"), n("m")]));
        for (i, (from, targets)) in requests.iter().enumerate() {
            assert_eq!(batch[i], c.trace(&g, *from, targets));
        }
    }

    #[test]
    fn path_cache_reuses_compilations() {
        let g = Graph::from_triples([t("a", "p", "b")]);
        let mut cache = PathCache::new();
        let e = p("p").star();
        let r1 = cache.eval(&e, &g, id(&g, "a"));
        let r2 = cache.eval(&e, &g, id(&g, "a"));
        assert_eq!(r1, r2);
        assert_eq!(cache.cache.len(), 1);
    }
}
