//! # shapefrag-shacl
//!
//! SHACL substrate: the paper's formal shape algebra (§2), negation normal
//! form (§3.1), a regular-path-query engine with path tracing (§3.2–3.3),
//! node tests with a built-in lite regex engine, nonrecursive shape schemas,
//! a conformance validator (Table 1), and a parser translating real SHACL
//! shapes graphs into the formal algebra (Appendix A).
//!
//! ```
//! use shapefrag_shacl::{parser::parse_shapes_turtle, validator::validate};
//! use shapefrag_rdf::turtle;
//!
//! let schema = parse_shapes_turtle(r#"
//!     @prefix sh: <http://www.w3.org/ns/shacl#> .
//!     @prefix ex: <http://example.org/> .
//!     ex:PersonShape a sh:NodeShape ;
//!       sh:targetClass ex:Person ;
//!       sh:property [ sh:path ex:name ; sh:minCount 1 ] .
//! "#).unwrap();
//!
//! let data = turtle::parse(r#"
//!     @prefix ex: <http://example.org/> .
//!     @prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
//!     ex:ok rdf:type ex:Person ; ex:name "Ann" .
//!     ex:bad rdf:type ex:Person .
//! "#).unwrap();
//!
//! let report = validate(&schema, &data);
//! assert!(!report.conforms());
//! assert_eq!(report.violations.len(), 1);
//! ```
#![forbid(unsafe_code)]

pub mod nnf;
pub mod node_test;
pub mod parser;
pub mod path;
pub mod regex;
pub mod rpq;
pub mod schema;
pub mod shape;
pub mod validator;
pub mod writer;

pub use nnf::Nnf;
pub use node_test::{NodeKind, NodeTest};
pub use parser::{SchemaSpans, ShaclParseError};
pub use path::PathExpr;
pub use rpq::{CompiledPath, Nfa, PathCache};
pub use schema::{Schema, SchemaError, ShapeDef};
pub use shape::{PathOrId, Shape};
pub use shapefrag_govern::{Budget, CancelToken, EngineError, ErrorCode, ExecCtx};
pub use validator::{
    schema_fingerprint, validate, validate_batch, validate_batch_containment,
    validate_batch_containment_governed, validate_batch_governed, validate_batch_with_memo,
    validate_governed, ConformanceMemo, ContainmentIndex, Context, ValidationReport, Violation,
};
pub use writer::{schema_to_shapes_graph, schema_to_shapes_graph_strict, schema_to_turtle};
