//! Serialization of formal schemas back to SHACL shapes graphs — the
//! inverse of the Appendix A translation.
//!
//! Every construct of the shape algebra maps to SHACL core except the two
//! extensions, which use an extension namespace `shx:`
//! (`http://shapefragments.example.org/ext#`): `shx:moreThan` /
//! `shx:moreThanOrEquals` (Remark 2.3) and `shx:negatedPropertySet`
//! (Remark 6.3). [`crate::parser`] reads the extension vocabulary back, so
//! `parse(write(schema))` is semantics-preserving for every schema —
//! exercised by the round-trip property tests.

use shapefrag_rdf::vocab::{rdf, sh};
use shapefrag_rdf::{BlankNode, Graph, Iri, Literal, Term, Triple};

use crate::node_test::{NodeKind, NodeTest};
use crate::path::PathExpr;
use crate::schema::Schema;
use crate::shape::{PathOrId, Shape};

/// The extension namespace for constructs beyond SHACL core.
pub const SHX_NS: &str = "http://shapefragments.example.org/ext#";

fn shx(local: &str) -> Iri {
    Iri::new(format!("{SHX_NS}{local}"))
}

/// Serializes a schema as a SHACL shapes graph.
///
/// Targets outside the real-SHACL forms (node / class / subjects-of /
/// objects-of, or disjunctions thereof; `⊥` = never targeted) have no
/// SHACL syntax and are silently written as *no target* — the shape
/// definition survives but is never checked via targets after a round
/// trip. Use [`schema_to_shapes_graph_strict`] to get an error instead.
pub fn schema_to_shapes_graph(schema: &Schema) -> Graph {
    let mut w = Writer {
        graph: Graph::new(),
        counter: 0,
    };
    for def in schema.iter() {
        let node = def.name.clone();
        w.insert(node.clone(), rdf::type_(), Term::Iri(sh::node_shape()));
        w.write_shape_body(&node, &def.shape);
        w.write_target(&node, &def.target);
    }
    w.graph
}

/// A target shape that has no SHACL target syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsupportedTarget {
    /// The shape definition's name.
    pub shape: Term,
}

impl std::fmt::Display for UnsupportedTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "the target of shape {} has no SHACL target syntax and would be lost on write",
            self.shape
        )
    }
}

impl std::error::Error for UnsupportedTarget {}

/// Like [`schema_to_shapes_graph`], but fails instead of silently dropping
/// targets that real SHACL cannot express.
pub fn schema_to_shapes_graph_strict(schema: &Schema) -> Result<Graph, UnsupportedTarget> {
    for def in schema.iter() {
        if !target_is_expressible(&def.target) {
            return Err(UnsupportedTarget {
                shape: def.name.clone(),
            });
        }
    }
    Ok(schema_to_shapes_graph(schema))
}

/// Whether a target shape maps onto SHACL target declarations.
fn target_is_expressible(target: &Shape) -> bool {
    match target {
        Shape::False | Shape::HasValue(_) => true,
        Shape::Or(items) => items.iter().all(target_is_expressible),
        Shape::Geq(1, path, inner) => match (path, inner.as_ref()) {
            (PathExpr::Prop(_), Shape::True) => true,
            (PathExpr::Inverse(inv), Shape::True) => {
                matches!(inv.as_ref(), PathExpr::Prop(_))
            }
            (PathExpr::Seq(first, rest), Shape::HasValue(_)) => matches!(
                (first.as_ref(), rest.as_ref()),
                (PathExpr::Prop(tp), PathExpr::ZeroOrMore(sub))
                    if *tp == rdf::type_() && matches!(sub.as_ref(), PathExpr::Prop(_))
            ),
            _ => false,
        },
        _ => false,
    }
}

/// Serializes a schema as SHACL Turtle text.
pub fn schema_to_turtle(schema: &Schema) -> String {
    shapefrag_rdf::turtle::serialize(
        &schema_to_shapes_graph(schema),
        &[
            ("sh", shapefrag_rdf::vocab::SH_NS),
            ("shx", SHX_NS),
            ("rdf", shapefrag_rdf::vocab::RDF_NS),
        ],
    )
}

struct Writer {
    graph: Graph,
    counter: usize,
}

impl Writer {
    fn insert(&mut self, s: Term, p: Iri, o: Term) {
        self.graph.insert(Triple::new(s, p, o));
    }

    fn fresh(&mut self) -> Term {
        self.counter += 1;
        Term::Blank(BlankNode::new(format!("w{}", self.counter)))
    }

    fn list(&mut self, items: Vec<Term>) -> Term {
        let mut tail = Term::Iri(rdf::nil());
        for item in items.into_iter().rev() {
            let cell = self.fresh();
            self.insert(cell.clone(), rdf::first(), item);
            self.insert(cell.clone(), rdf::rest(), tail);
            tail = cell;
        }
        tail
    }

    /// A fresh anonymous node shape wrapping `shape`.
    fn aux_shape(&mut self, shape: &Shape) -> Term {
        let node = self.fresh();
        self.write_shape_body(&node, shape);
        node
    }

    /// Writes the constraints of `shape` onto the (node-shape) `node`.
    fn write_shape_body(&mut self, node: &Term, shape: &Shape) {
        match shape {
            Shape::True => {} // the empty node shape
            Shape::False => {
                // ¬⊤: sh:not of the empty shape.
                let empty = self.fresh();
                self.insert(node.clone(), sh::not(), empty);
            }
            Shape::HasShape(name) => {
                self.insert(node.clone(), sh::node(), name.clone());
            }
            Shape::Test(t) => self.write_test(node, t),
            Shape::HasValue(c) => {
                self.insert(node.clone(), sh::has_value(), c.clone());
            }
            Shape::Eq(PathOrId::Id, p) => {
                self.insert(node.clone(), sh::equals(), Term::Iri(p.clone()));
            }
            Shape::Disj(PathOrId::Id, p) => {
                self.insert(node.clone(), sh::disjoint(), Term::Iri(p.clone()));
            }
            Shape::Eq(PathOrId::Path(e), p) => {
                self.pair_property(node, e, sh::equals(), p);
            }
            Shape::Disj(PathOrId::Path(e), p) => {
                self.pair_property(node, e, sh::disjoint(), p);
            }
            Shape::LessThan(e, p) => self.pair_property(node, e, sh::less_than(), p),
            Shape::LessThanEq(e, p) => self.pair_property(node, e, sh::less_than_or_equals(), p),
            Shape::MoreThan(e, p) => self.pair_property(node, e, shx("moreThan"), p),
            Shape::MoreThanEq(e, p) => self.pair_property(node, e, shx("moreThanOrEquals"), p),
            Shape::Closed(allowed) => {
                self.insert(
                    node.clone(),
                    sh::closed(),
                    Term::Literal(Literal::boolean(true)),
                );
                let items: Vec<Term> = allowed.iter().map(|p| Term::Iri(p.clone())).collect();
                let list = self.list(items);
                self.insert(node.clone(), sh::ignored_properties(), list);
            }
            Shape::UniqueLang(e) => {
                let prop = self.property_shape(e);
                self.insert(
                    prop.clone(),
                    sh::unique_lang(),
                    Term::Literal(Literal::boolean(true)),
                );
                self.insert(node.clone(), sh::property(), prop);
            }
            Shape::Not(inner) => {
                let aux = self.aux_shape(inner);
                self.insert(node.clone(), sh::not(), aux);
            }
            Shape::And(items) => {
                let members: Vec<Term> = items.iter().map(|s| self.aux_shape(s)).collect();
                let list = self.list(members);
                self.insert(node.clone(), sh::and(), list);
            }
            Shape::Or(items) => {
                let members: Vec<Term> = items.iter().map(|s| self.aux_shape(s)).collect();
                let list = self.list(members);
                self.insert(node.clone(), sh::or(), list);
            }
            Shape::Geq(n, e, inner) => self.quantifier(node, *n, e, inner, true),
            Shape::Leq(n, e, inner) => self.quantifier(node, *n, e, inner, false),
            Shape::ForAll(e, inner) => {
                let prop = self.property_shape(e);
                let aux = self.aux_shape(inner);
                self.insert(prop.clone(), sh::node(), aux);
                self.insert(node.clone(), sh::property(), prop);
            }
        }
    }

    /// `≥n E.ψ` / `≤n E.ψ` as (qualified) cardinality property shapes.
    fn quantifier(&mut self, node: &Term, n: u32, e: &PathExpr, inner: &Shape, min: bool) {
        let prop = self.property_shape(e);
        let count = Term::Literal(Literal::integer(n as i64));
        if matches!(inner, Shape::True) {
            let keyword = if min {
                sh::min_count()
            } else {
                sh::max_count()
            };
            self.insert(prop.clone(), keyword, count);
        } else {
            let aux = self.aux_shape(inner);
            self.insert(prop.clone(), sh::qualified_value_shape(), aux);
            let keyword = if min {
                sh::qualified_min_count()
            } else {
                sh::qualified_max_count()
            };
            self.insert(prop.clone(), keyword, count);
        }
        self.insert(node.clone(), sh::property(), prop);
    }

    /// A fresh property shape carrying `sh:path` for `e`.
    fn property_shape(&mut self, e: &PathExpr) -> Term {
        let prop = self.fresh();
        let path = self.write_path(e);
        self.insert(prop.clone(), sh::path(), path);
        prop
    }

    fn pair_property(&mut self, node: &Term, e: &PathExpr, keyword: Iri, p: &Iri) {
        let prop = self.property_shape(e);
        self.insert(prop.clone(), keyword, Term::Iri(p.clone()));
        self.insert(node.clone(), sh::property(), prop);
    }

    /// A.2 in reverse: path expressions to SHACL property paths.
    fn write_path(&mut self, e: &PathExpr) -> Term {
        match e {
            PathExpr::Prop(p) => Term::Iri(p.clone()),
            PathExpr::NegProp(ps) => {
                let node = self.fresh();
                let items: Vec<Term> = ps.iter().map(|p| Term::Iri(p.clone())).collect();
                let list = self.list(items);
                self.insert(node.clone(), shx("negatedPropertySet"), list);
                node
            }
            PathExpr::Inverse(inner) => {
                let node = self.fresh();
                let target = self.write_path(inner);
                self.insert(node.clone(), sh::inverse_path(), target);
                node
            }
            PathExpr::Seq(a, b) => {
                // Flatten nested sequences into one SHACL list.
                let mut parts = Vec::new();
                flatten_seq(e, &mut parts);
                let _ = (a, b);
                let items: Vec<Term> = parts.iter().map(|p| self.write_path(p)).collect();
                self.list(items)
            }
            PathExpr::Alt(_, _) => {
                let mut parts = Vec::new();
                flatten_alt(e, &mut parts);
                let node = self.fresh();
                let items: Vec<Term> = parts.iter().map(|p| self.write_path(p)).collect();
                let list = self.list(items);
                self.insert(node.clone(), sh::alternative_path(), list);
                node
            }
            PathExpr::ZeroOrMore(inner) => {
                let node = self.fresh();
                let target = self.write_path(inner);
                self.insert(node.clone(), sh::zero_or_more_path(), target);
                node
            }
            PathExpr::ZeroOrOne(inner) => {
                let node = self.fresh();
                let target = self.write_path(inner);
                self.insert(node.clone(), sh::zero_or_one_path(), target);
                node
            }
        }
    }

    fn write_test(&mut self, node: &Term, t: &NodeTest) {
        match t {
            NodeTest::Kind(kind) => {
                let iri = match kind {
                    NodeKind::Iri => sh::iri(),
                    NodeKind::BlankNode => sh::blank_node(),
                    NodeKind::Literal => sh::literal(),
                    NodeKind::BlankNodeOrIri => sh::blank_node_or_iri(),
                    NodeKind::BlankNodeOrLiteral => sh::blank_node_or_literal(),
                    NodeKind::IriOrLiteral => sh::iri_or_literal(),
                };
                self.insert(node.clone(), sh::node_kind(), Term::Iri(iri));
            }
            NodeTest::Datatype(dt) => {
                self.insert(node.clone(), sh::datatype(), Term::Iri(dt.clone()));
            }
            NodeTest::MinExclusive(b) => {
                self.insert(node.clone(), sh::min_exclusive(), Term::Literal(b.clone()));
            }
            NodeTest::MinInclusive(b) => {
                self.insert(node.clone(), sh::min_inclusive(), Term::Literal(b.clone()));
            }
            NodeTest::MaxExclusive(b) => {
                self.insert(node.clone(), sh::max_exclusive(), Term::Literal(b.clone()));
            }
            NodeTest::MaxInclusive(b) => {
                self.insert(node.clone(), sh::max_inclusive(), Term::Literal(b.clone()));
            }
            NodeTest::MinLength(n) => {
                self.insert(
                    node.clone(),
                    sh::min_length(),
                    Term::Literal(Literal::integer(*n as i64)),
                );
            }
            NodeTest::MaxLength(n) => {
                self.insert(
                    node.clone(),
                    sh::max_length(),
                    Term::Literal(Literal::integer(*n as i64)),
                );
            }
            NodeTest::Pattern(p) => {
                self.insert(
                    node.clone(),
                    sh::pattern(),
                    Term::Literal(Literal::string(p.source().to_owned())),
                );
                if !p.flags().is_empty() {
                    self.insert(
                        node.clone(),
                        sh::flags(),
                        Term::Literal(Literal::string(p.flags().to_owned())),
                    );
                }
            }
            NodeTest::Language(range) => {
                let list = self.list(vec![Term::Literal(Literal::string(range.clone()))]);
                self.insert(node.clone(), sh::language_in(), list);
            }
        }
    }

    /// Standard target forms become target declarations; a disjunction of
    /// standard forms becomes several declarations; anything else (incl. ⊥,
    /// "never targeted") is written as no target.
    fn write_target(&mut self, node: &Term, target: &Shape) {
        match target {
            Shape::False => {}
            Shape::Or(items) => {
                for item in items {
                    self.write_target(node, item);
                }
            }
            Shape::HasValue(c) => {
                self.insert(node.clone(), sh::target_node(), c.clone());
            }
            Shape::Geq(1, path, inner) => match (path, inner.as_ref()) {
                (PathExpr::Prop(p), Shape::True) => {
                    self.insert(node.clone(), sh::target_subjects_of(), Term::Iri(p.clone()));
                }
                (PathExpr::Inverse(inv), Shape::True) => {
                    if let PathExpr::Prop(p) = inv.as_ref() {
                        self.insert(node.clone(), sh::target_objects_of(), Term::Iri(p.clone()));
                    }
                }
                (PathExpr::Seq(first, rest), Shape::HasValue(c)) => {
                    // type/sub* class target.
                    if matches!(
                        (first.as_ref(), rest.as_ref()),
                        (PathExpr::Prop(tp), PathExpr::ZeroOrMore(_)) if *tp == rdf::type_()
                    ) {
                        self.insert(node.clone(), sh::target_class(), c.clone());
                    }
                }
                _ => {}
            },
            _ => {}
        }
    }
}

fn flatten_seq<'a>(e: &'a PathExpr, out: &mut Vec<&'a PathExpr>) {
    match e {
        PathExpr::Seq(a, b) => {
            flatten_seq(a, out);
            flatten_seq(b, out);
        }
        other => out.push(other),
    }
}

fn flatten_alt<'a>(e: &'a PathExpr, out: &mut Vec<&'a PathExpr>) {
    match e {
        PathExpr::Alt(a, b) => {
            flatten_alt(a, out);
            flatten_alt(b, out);
        }
        other => out.push(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::schema_from_shapes_graph;
    use crate::schema::ShapeDef;
    use crate::validator::Context;

    fn term(n: &str) -> Term {
        Term::iri(format!("http://e/{n}"))
    }

    fn iri(n: &str) -> Iri {
        Iri::new(format!("http://e/{n}"))
    }

    fn p(n: &str) -> PathExpr {
        PathExpr::Prop(iri(n))
    }

    fn round_trip(schema: &Schema) -> Schema {
        let graph = schema_to_shapes_graph(schema);
        schema_from_shapes_graph(&graph).expect("written shapes graph reparses")
    }

    /// Semantic agreement of a schema and its round trip on a test graph.
    fn assert_semantics_equal(original: &Schema, graph: &Graph) {
        let reparsed = round_trip(original);
        let mut ctx1 = Context::new(original, graph);
        let mut ctx2 = Context::new(&reparsed, graph);
        for def in original.iter() {
            let shape1 = Shape::HasShape(def.name.clone());
            // The round-tripped schema keeps the same top-level names.
            let def2 = reparsed
                .get(&def.name)
                .unwrap_or_else(|| panic!("{} lost in round trip", def.name));
            let shape2 = Shape::HasShape(def2.name.clone());
            for v in graph.node_ids() {
                assert_eq!(
                    ctx1.conforms(v, &shape1),
                    ctx2.conforms(v, &shape2),
                    "shape semantics changed for {} at {}",
                    def.name,
                    graph.term(v)
                );
                assert_eq!(
                    ctx1.conforms(v, &def.target),
                    ctx2.conforms(v, &def2.target),
                    "target semantics changed for {} at {}",
                    def.name,
                    graph.term(v)
                );
            }
        }
    }

    fn data() -> Graph {
        let t = |s: &str, pp: &str, o: &str| Triple::new(term(s), iri(pp), term(o));
        let mut g = Graph::from_triples([
            t("a", "p0", "b"),
            t("b", "p1", "c"),
            t("a", "p1", "a"),
            t("c", "p2", "a"),
            t("x", "p0", "c"),
        ]);
        g.insert(Triple::new(term("a"), rdf::type_(), term("C")));
        g.insert(Triple::new(
            term("a"),
            iri("lit"),
            Term::Literal(Literal::integer(5)),
        ));
        g.insert(Triple::new(
            term("a"),
            iri("lab"),
            Term::Literal(Literal::lang_string("x", "en")),
        ));
        g
    }

    #[test]
    fn round_trip_core_constructs() {
        let defs = vec![
            ShapeDef::new(
                term("S1"),
                Shape::geq(1, p("p0"), Shape::geq(2, p("p1"), Shape::True)),
                Shape::geq(1, p("p0"), Shape::True),
            ),
            ShapeDef::new(
                term("S2"),
                Shape::for_all(p("p0"), Shape::Test(NodeTest::Kind(NodeKind::Iri)))
                    .and(Shape::leq(3, p("p1"), Shape::True)),
                Shape::HasValue(term("a")),
            ),
            ShapeDef::new(
                term("S3"),
                Shape::Eq(PathOrId::Id, iri("p1"))
                    .or(Shape::Disj(PathOrId::Path(p("p0")), iri("p1"))),
                Shape::geq(1, p("p2").inverse(), Shape::True),
            ),
            ShapeDef::new(
                term("S4"),
                Shape::Closed([iri("p0"), iri("p1")].into())
                    .and(Shape::UniqueLang(p("lab")))
                    .and(Shape::LessThan(p("lit"), iri("lit2"))),
                Shape::False,
            ),
        ];
        let schema = Schema::new(defs).unwrap();
        assert_semantics_equal(&schema, &data());
    }

    #[test]
    fn round_trip_extensions() {
        let defs = vec![ShapeDef::new(
            term("Ext"),
            Shape::MoreThan(p("lit"), iri("lit2"))
                .and(Shape::MoreThanEq(p("lit"), iri("lit3")))
                .and(Shape::geq(1, PathExpr::neg_props([iri("p0")]), Shape::True)),
            Shape::geq(1, p("p0"), Shape::True),
        )];
        let schema = Schema::new(defs).unwrap();
        assert_semantics_equal(&schema, &data());
    }

    #[test]
    fn round_trip_complex_paths() {
        let path = p("p0")
            .then(p("p1").or(p("p2")).star())
            .then(p("p1").inverse().opt());
        let defs = vec![ShapeDef::new(
            term("Paths"),
            Shape::geq(1, path, Shape::True),
            Shape::geq(
                1,
                PathExpr::Prop(rdf::type_())
                    .then(PathExpr::Prop(shapefrag_rdf::vocab::rdfs::sub_class_of()).star()),
                Shape::has_value(term("C")),
            ),
        )];
        let schema = Schema::new(defs).unwrap();
        assert_semantics_equal(&schema, &data());
    }

    #[test]
    fn strict_writer_rejects_inexpressible_targets() {
        let good = Schema::new(vec![ShapeDef::new(
            term("S"),
            Shape::True,
            Shape::geq(1, p("p0"), Shape::True),
        )])
        .unwrap();
        assert!(schema_to_shapes_graph_strict(&good).is_ok());
        let bad = Schema::new(vec![ShapeDef::new(
            term("S"),
            Shape::True,
            Shape::geq(2, p("p0"), Shape::True), // no SHACL target syntax
        )])
        .unwrap();
        let err = schema_to_shapes_graph_strict(&bad).unwrap_err();
        assert_eq!(err.shape, term("S"));
    }

    #[test]
    fn written_turtle_parses() {
        let schema = Schema::new(vec![ShapeDef::new(
            term("S"),
            Shape::geq(
                1,
                p("p0"),
                Shape::Test(NodeTest::pattern("^a", "i").unwrap()),
            ),
            Shape::geq(1, p("p0"), Shape::True),
        )])
        .unwrap();
        let text = schema_to_turtle(&schema);
        assert!(text.contains("sh:qualifiedValueShape") || text.contains("qualifiedValueShape"));
        let graph = shapefrag_rdf::turtle::parse(&text).expect("turtle parses");
        let reparsed = schema_from_shapes_graph(&graph).expect("schema reparses");
        assert!(reparsed.get(&term("S")).is_some());
    }
}
