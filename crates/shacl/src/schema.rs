//! Shape schemas (the formalization of SHACL "shapes graphs", §2).
//!
//! A *shape definition* is a triple `(s, φ, τ)` of a shape name, a shape
//! expression, and a target expression. A *schema* is a finite set of shape
//! definitions with distinct names. As in the SHACL recommendation (and the
//! paper), only **nonrecursive** schemas are admitted.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

use shapefrag_rdf::Term;

use crate::shape::Shape;

/// A shape definition `(s, φ, τ)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeDef {
    /// The shape name `s ∈ I ∪ B`.
    pub name: Term,
    /// The shape expression φ.
    pub shape: Shape,
    /// The target expression τ (any shape; real SHACL targets are the
    /// monotone forms listed in §4).
    pub target: Shape,
}

impl ShapeDef {
    /// Creates a shape definition.
    pub fn new(name: impl Into<Term>, shape: Shape, target: Shape) -> Self {
        let name = name.into();
        assert!(
            !name.is_literal(),
            "shape names must be IRIs or blank nodes"
        );
        ShapeDef {
            name,
            shape,
            target,
        }
    }
}

/// Error constructing a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// Two definitions share a name.
    DuplicateName(Term),
    /// The `hasShape` reference graph has a directed cycle through this
    /// shape name.
    Recursive(Term),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::DuplicateName(name) => {
                write!(f, "duplicate shape definition for {name}")
            }
            SchemaError::Recursive(name) => {
                write!(f, "schema is recursive through shape {name}")
            }
        }
    }
}

impl std::error::Error for SchemaError {}

/// A nonrecursive shape schema `H`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    defs: BTreeMap<Term, ShapeDef>,
    /// Dense ids for defined shape names in definition (name) order; used
    /// as compact memo keys by the batch validator.
    name_ids: HashMap<Term, u32>,
}

impl Schema {
    /// The empty schema (every `hasShape` reference then defaults to ⊤).
    pub fn empty() -> Self {
        Schema::default()
    }

    /// Builds a schema from definitions, checking name uniqueness and
    /// nonrecursion.
    pub fn new(defs: impl IntoIterator<Item = ShapeDef>) -> Result<Self, SchemaError> {
        let mut map = BTreeMap::new();
        for def in defs {
            let name = def.name.clone();
            if map.insert(name.clone(), def).is_some() {
                return Err(SchemaError::DuplicateName(name));
            }
        }
        let name_ids = map
            .keys()
            .enumerate()
            .map(|(i, name)| (name.clone(), i as u32))
            .collect();
        let schema = Schema {
            defs: map,
            name_ids,
        };
        if let Some(name) = schema.find_cycle() {
            return Err(SchemaError::Recursive(name));
        }
        Ok(schema)
    }

    /// The dense id of a defined shape name (`None` for undefined names,
    /// which default to ⊤ and need no memoization).
    pub fn name_id(&self, name: &Term) -> Option<u32> {
        self.name_ids.get(name).copied()
    }

    /// `def(s, H)`: the shape expression defining `s`, or ⊤ if `s` has no
    /// definition (the behavior in real SHACL).
    pub fn def(&self, name: &Term) -> Shape {
        self.defs
            .get(name)
            .map(|d| d.shape.clone())
            .unwrap_or(Shape::True)
    }

    /// Looks up the full definition for a name.
    pub fn get(&self, name: &Term) -> Option<&ShapeDef> {
        self.defs.get(name)
    }

    /// Iterates the shape definitions (ordered by name).
    pub fn iter(&self) -> impl Iterator<Item = &ShapeDef> {
        self.defs.values()
    }

    /// Number of shape definitions.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True iff the schema has no definitions.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// The request shapes `{ φ ∧ τ | (s, φ, τ) ∈ H }` used to form the
    /// shape fragment of a schema (§4).
    pub fn request_shapes(&self) -> Vec<Shape> {
        self.iter()
            .map(|d| d.shape.clone().and(d.target.clone()))
            .collect()
    }

    /// Detects a cycle in the `hasShape` reference graph; returns a name on
    /// a cycle if one exists. Edges `s₁ → s₂` exist when `hasShape(s₂)`
    /// occurs in the shape expression (or target) defining `s₁`.
    fn find_cycle(&self) -> Option<Term> {
        #[derive(Clone, Copy, PartialEq)]
        enum State {
            Visiting,
            Done,
        }
        // Iterative three-color DFS (Enter/Exit job stack): reference chains
        // can be as deep as the schema is large, so no call-stack recursion.
        enum Job<'a> {
            Enter(&'a Term),
            Exit(&'a Term),
        }
        let mut states: HashMap<&Term, State> = HashMap::new();
        for start in self.defs.keys() {
            if states.contains_key(start) {
                continue;
            }
            let mut jobs = vec![Job::Enter(start)];
            while let Some(job) = jobs.pop() {
                match job {
                    Job::Enter(name) => {
                        match states.get(name) {
                            Some(State::Done) => continue,
                            // A back edge into a gray node: that node is on
                            // the cycle (the DFS start need not be).
                            Some(State::Visiting) => return Some(name.clone()),
                            None => {}
                        }
                        let Some(def) = self.defs.get(name) else {
                            continue; // Undefined names dangle to ⊤; no cycle.
                        };
                        states.insert(name, State::Visiting);
                        jobs.push(Job::Exit(name));
                        let mut refs: Vec<&Term> = def.shape.referenced_shapes();
                        refs.extend(def.target.referenced_shapes());
                        for r in refs {
                            jobs.push(Job::Enter(r));
                        }
                    }
                    Job::Exit(name) => {
                        states.insert(name, State::Done);
                    }
                }
            }
        }
        None
    }

    /// All shape names transitively referenced from a shape (for
    /// diagnostics and translation sizing).
    pub fn transitive_refs(&self, shape: &Shape) -> Vec<Term> {
        let mut seen: HashSet<Term> = HashSet::new();
        let mut stack: Vec<Term> = shape.referenced_shapes().into_iter().cloned().collect();
        let mut out = Vec::new();
        while let Some(name) = stack.pop() {
            if seen.insert(name.clone()) {
                for r in self.def(&name).referenced_shapes() {
                    stack.push(r.clone());
                }
                out.push(name);
            }
        }
        out.sort();
        out
    }
}

impl FromIterator<ShapeDef> for Result<Schema, SchemaError> {
    fn from_iter<I: IntoIterator<Item = ShapeDef>>(iter: I) -> Self {
        Schema::new(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::PathExpr;

    fn p(name: &str) -> PathExpr {
        PathExpr::prop(format!("http://e/{name}"))
    }

    fn name(n: &str) -> Term {
        Term::iri(format!("http://e/{n}"))
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::new([
            ShapeDef::new(name("S"), Shape::True, Shape::False),
            ShapeDef::new(name("S"), Shape::False, Shape::False),
        ])
        .unwrap_err();
        assert!(matches!(err, SchemaError::DuplicateName(_)));
    }

    #[test]
    fn undefined_reference_defaults_to_top() {
        let schema = Schema::empty();
        assert_eq!(schema.def(&name("Missing")), Shape::True);
    }

    #[test]
    fn direct_recursion_rejected() {
        let err = Schema::new([ShapeDef::new(
            name("S"),
            Shape::geq(1, p("a"), Shape::HasShape(name("S"))),
            Shape::False,
        )])
        .unwrap_err();
        assert!(matches!(err, SchemaError::Recursive(_)));
    }

    #[test]
    fn mutual_recursion_rejected() {
        let err = Schema::new([
            ShapeDef::new(name("S"), Shape::HasShape(name("T")), Shape::False),
            ShapeDef::new(name("T"), Shape::HasShape(name("S")).not(), Shape::False),
        ])
        .unwrap_err();
        assert!(matches!(err, SchemaError::Recursive(_)));
    }

    #[test]
    fn dag_references_accepted() {
        let schema = Schema::new([
            ShapeDef::new(name("S"), Shape::HasShape(name("T")), Shape::False),
            ShapeDef::new(
                name("U"),
                Shape::HasShape(name("T")).and(Shape::HasShape(name("S"))),
                Shape::False,
            ),
            ShapeDef::new(name("T"), Shape::True, Shape::False),
        ])
        .unwrap();
        assert_eq!(schema.len(), 3);
        assert_eq!(schema.transitive_refs(&schema.def(&name("U"))).len(), 2);
    }

    #[test]
    fn reference_to_undefined_shape_is_not_recursive() {
        let schema = Schema::new([ShapeDef::new(
            name("S"),
            Shape::HasShape(name("Missing")),
            Shape::False,
        )])
        .unwrap();
        assert_eq!(schema.def(&name("Missing")), Shape::True);
    }

    #[test]
    fn request_shapes_conjoin_shape_and_target() {
        let schema = Schema::new([ShapeDef::new(
            name("S"),
            Shape::geq(1, p("author"), Shape::True),
            Shape::has_value(Term::iri("http://e/x")),
        )])
        .unwrap();
        let reqs = schema.request_shapes();
        assert_eq!(reqs.len(), 1);
        assert!(matches!(&reqs[0], Shape::And(items) if items.len() == 2));
    }
}
