//! SHACL property paths, formalized as the paper's path expressions (§2):
//!
//! ```text
//! E := p | E⁻ | E/E | E ∪ E | E* | E?
//! ```
//!
//! plus the extension proposed in Remark 6.3 of the paper: *negated
//! property sets* `!(p₁ | … | pₙ)` (as in SPARQL property paths), which
//! match a step over any property **not** in the set. With this extension
//! every triple pattern fragment becomes expressible as a shape fragment.

use std::collections::BTreeSet;
use std::fmt;

use shapefrag_rdf::Iri;

/// A path expression `E`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PathExpr {
    /// A property `p ∈ I`.
    Prop(Iri),
    /// Extension (Remark 6.3): a step over any property *not* in the set,
    /// SPARQL's `!(p₁|…|pₙ)`. The empty set matches every property.
    NegProp(BTreeSet<Iri>),
    /// Inverse `E⁻`.
    Inverse(Box<PathExpr>),
    /// Sequence `E₁/E₂`.
    Seq(Box<PathExpr>, Box<PathExpr>),
    /// Alternative `E₁ ∪ E₂`.
    Alt(Box<PathExpr>, Box<PathExpr>),
    /// Kleene star `E*` (zero or more).
    ZeroOrMore(Box<PathExpr>),
    /// `E?` (zero or one).
    ZeroOrOne(Box<PathExpr>),
}

impl PathExpr {
    /// A property step.
    pub fn prop(p: impl Into<Iri>) -> Self {
        PathExpr::Prop(p.into())
    }

    /// A negated-property-set step `!(p₁|…|pₙ)` (Remark 6.3 extension).
    pub fn neg_props(props: impl IntoIterator<Item = Iri>) -> Self {
        PathExpr::NegProp(props.into_iter().collect())
    }

    /// A step over *any* property (`!()` — the empty negated set).
    pub fn any_prop() -> Self {
        PathExpr::NegProp(BTreeSet::new())
    }

    /// The inverse of this path.
    pub fn inverse(self) -> Self {
        PathExpr::Inverse(Box::new(self))
    }

    /// This path followed by `next`.
    pub fn then(self, next: PathExpr) -> Self {
        PathExpr::Seq(Box::new(self), Box::new(next))
    }

    /// This path or `other`.
    pub fn or(self, other: PathExpr) -> Self {
        PathExpr::Alt(Box::new(self), Box::new(other))
    }

    /// Zero or more repetitions.
    pub fn star(self) -> Self {
        PathExpr::ZeroOrMore(Box::new(self))
    }

    /// One or more repetitions, `E/E*` (how SHACL's `sh:oneOrMorePath`
    /// is translated in Appendix A).
    pub fn plus(self) -> Self {
        self.clone().then(self.star())
    }

    /// Zero or one occurrence.
    pub fn opt(self) -> Self {
        PathExpr::ZeroOrOne(Box::new(self))
    }

    /// Sequence of `self` repeated `n ≥ 1` times (`E/E/…/E`).
    pub fn repeat(self, n: usize) -> Self {
        assert!(n >= 1, "repeat requires n >= 1");
        let mut e = self.clone();
        for _ in 1..n {
            e = e.then(self.clone());
        }
        e
    }

    /// All property IRIs mentioned in this expression.
    pub fn properties(&self) -> Vec<&Iri> {
        let mut out = Vec::new();
        self.collect_properties(&mut out);
        out
    }

    fn collect_properties<'a>(&'a self, out: &mut Vec<&'a Iri>) {
        match self {
            PathExpr::Prop(p) => out.push(p),
            PathExpr::NegProp(ps) => out.extend(ps.iter()),
            PathExpr::Inverse(e) | PathExpr::ZeroOrMore(e) | PathExpr::ZeroOrOne(e) => {
                e.collect_properties(out)
            }
            PathExpr::Seq(a, b) | PathExpr::Alt(a, b) => {
                a.collect_properties(out);
                b.collect_properties(out);
            }
        }
    }

    /// True iff this expression can match the empty path (i.e. `⟦E⟧`
    /// contains the identity relation).
    pub fn is_nullable(&self) -> bool {
        match self {
            PathExpr::Prop(_) | PathExpr::NegProp(_) => false,
            PathExpr::Inverse(e) => e.is_nullable(),
            PathExpr::Seq(a, b) => a.is_nullable() && b.is_nullable(),
            PathExpr::Alt(a, b) => a.is_nullable() || b.is_nullable(),
            PathExpr::ZeroOrMore(_) | PathExpr::ZeroOrOne(_) => true,
        }
    }

    /// Writes the expression in SPARQL property-path syntax.
    pub fn to_sparql(&self) -> String {
        self.to_string()
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, parent_prec: u8) -> fmt::Result {
        // Precedence: Alt(1) < Seq(2) < unary postfix(3) < atom(4).
        let prec = match self {
            PathExpr::Alt(..) => 1,
            PathExpr::Seq(..) => 2,
            PathExpr::Inverse(_) | PathExpr::ZeroOrMore(_) | PathExpr::ZeroOrOne(_) => 3,
            PathExpr::Prop(_) | PathExpr::NegProp(_) => 4,
        };
        let parens = prec < parent_prec;
        if parens {
            write!(f, "(")?;
        }
        match self {
            PathExpr::Prop(p) => write!(f, "{p}")?,
            PathExpr::NegProp(ps) => {
                write!(f, "!(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, "|")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")?;
            }
            PathExpr::Inverse(e) => {
                write!(f, "^")?;
                e.fmt_prec(f, 4)?;
            }
            PathExpr::Seq(a, b) => {
                a.fmt_prec(f, 2)?;
                write!(f, "/")?;
                b.fmt_prec(f, 3)?;
            }
            PathExpr::Alt(a, b) => {
                a.fmt_prec(f, 1)?;
                write!(f, "|")?;
                b.fmt_prec(f, 2)?;
            }
            PathExpr::ZeroOrMore(e) => {
                e.fmt_prec(f, 4)?;
                write!(f, "*")?;
            }
            PathExpr::ZeroOrOne(e) => {
                e.fmt_prec(f, 4)?;
                write!(f, "?")?;
            }
        }
        if parens {
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

impl fmt::Debug for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<Iri> for PathExpr {
    fn from(iri: Iri) -> Self {
        PathExpr::Prop(iri)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(name: &str) -> PathExpr {
        PathExpr::prop(format!("http://e/{name}"))
    }

    #[test]
    fn display_uses_sparql_syntax() {
        let e = p("a").inverse().then(p("b").or(p("c")).star());
        assert_eq!(e.to_string(), "^<http://e/a>/(<http://e/b>|<http://e/c>)*");
    }

    #[test]
    fn nullability() {
        assert!(!p("a").is_nullable());
        assert!(p("a").star().is_nullable());
        assert!(p("a").opt().is_nullable());
        assert!(!p("a").then(p("b").star()).is_nullable());
        assert!(p("a").opt().then(p("b").star()).is_nullable());
        assert!(p("a").or(p("b").opt()).is_nullable());
        assert!(!p("a").plus().is_nullable());
    }

    #[test]
    fn properties_collected() {
        let e = p("a").then(p("b")).or(p("a"));
        let props = e.properties();
        assert_eq!(props.len(), 3);
    }

    #[test]
    fn neg_prop_display_and_nullability() {
        let e = PathExpr::neg_props([Iri::new("http://e/a"), Iri::new("http://e/b")]);
        assert_eq!(e.to_string(), "!(<http://e/a>|<http://e/b>)");
        assert!(!e.is_nullable());
        assert_eq!(PathExpr::any_prop().to_string(), "!()");
        assert_eq!(e.properties().len(), 2);
    }

    #[test]
    fn repeat_builds_sequences() {
        let e = p("a").repeat(3);
        assert_eq!(e.to_string(), "<http://e/a>/<http://e/a>/<http://e/a>");
    }
}
