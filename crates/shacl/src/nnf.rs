//! Negation normal form (NNF).
//!
//! Following Grädel and Tannen (and §3.1 of the paper), the neighborhood
//! definition assumes shapes in NNF: negation applied only to atomic shapes.
//! The [`Nnf`] type makes this invariant structural — negated atoms are
//! their own constructors, and there is no general `Not`.
//!
//! Negation is pushed down with De Morgan's laws and the quantifier rules
//!
//! ```text
//! ¬ ≥n+1 E.ψ ≡ ≤n E.ψ      ¬ ≤n E.ψ ≡ ≥n+1 E.ψ      ¬ ∀E.ψ ≡ ≥1 E.¬ψ
//! ¬ ≥0 E.ψ ≡ ⊥
//! ```

use std::collections::BTreeSet;
use std::fmt;

use shapefrag_rdf::{Iri, Term};

use crate::node_test::NodeTest;
use crate::path::PathExpr;
use crate::shape::{PathOrId, Shape};

/// A shape in negation normal form.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Nnf {
    True,
    False,
    HasShape(Term),
    NotHasShape(Term),
    Test(NodeTest),
    NotTest(NodeTest),
    HasValue(Term),
    NotHasValue(Term),
    Eq(PathOrId, Iri),
    NotEq(PathOrId, Iri),
    Disj(PathOrId, Iri),
    NotDisj(PathOrId, Iri),
    Closed(BTreeSet<Iri>),
    NotClosed(BTreeSet<Iri>),
    LessThan(PathExpr, Iri),
    NotLessThan(PathExpr, Iri),
    LessThanEq(PathExpr, Iri),
    NotLessThanEq(PathExpr, Iri),
    MoreThan(PathExpr, Iri),
    NotMoreThan(PathExpr, Iri),
    MoreThanEq(PathExpr, Iri),
    NotMoreThanEq(PathExpr, Iri),
    UniqueLang(PathExpr),
    NotUniqueLang(PathExpr),
    And(Vec<Nnf>),
    Or(Vec<Nnf>),
    Geq(u32, PathExpr, Box<Nnf>),
    Leq(u32, PathExpr, Box<Nnf>),
    ForAll(PathExpr, Box<Nnf>),
}

impl Nnf {
    /// Converts a shape to NNF (pushing negation down; preserves the
    /// overall syntactic structure).
    pub fn from_shape(shape: &Shape) -> Nnf {
        convert(shape, true)
    }

    /// Converts the *negation* of a shape to NNF.
    pub fn from_negated_shape(shape: &Shape) -> Nnf {
        convert(shape, false)
    }

    /// The NNF of `¬self`. Used by the Table-2 rules for `≤n E.ψ` (which
    /// recurse into `¬ψ`) and rule 2 (`¬hasShape(s)` dereferences to
    /// `¬def(s, H)` in NNF).
    pub fn negated(&self) -> Nnf {
        match self {
            Nnf::True => Nnf::False,
            Nnf::False => Nnf::True,
            Nnf::HasShape(s) => Nnf::NotHasShape(s.clone()),
            Nnf::NotHasShape(s) => Nnf::HasShape(s.clone()),
            Nnf::Test(t) => Nnf::NotTest(t.clone()),
            Nnf::NotTest(t) => Nnf::Test(t.clone()),
            Nnf::HasValue(c) => Nnf::NotHasValue(c.clone()),
            Nnf::NotHasValue(c) => Nnf::HasValue(c.clone()),
            Nnf::Eq(e, p) => Nnf::NotEq(e.clone(), p.clone()),
            Nnf::NotEq(e, p) => Nnf::Eq(e.clone(), p.clone()),
            Nnf::Disj(e, p) => Nnf::NotDisj(e.clone(), p.clone()),
            Nnf::NotDisj(e, p) => Nnf::Disj(e.clone(), p.clone()),
            Nnf::Closed(ps) => Nnf::NotClosed(ps.clone()),
            Nnf::NotClosed(ps) => Nnf::Closed(ps.clone()),
            Nnf::LessThan(e, p) => Nnf::NotLessThan(e.clone(), p.clone()),
            Nnf::NotLessThan(e, p) => Nnf::LessThan(e.clone(), p.clone()),
            Nnf::LessThanEq(e, p) => Nnf::NotLessThanEq(e.clone(), p.clone()),
            Nnf::NotLessThanEq(e, p) => Nnf::LessThanEq(e.clone(), p.clone()),
            Nnf::MoreThan(e, p) => Nnf::NotMoreThan(e.clone(), p.clone()),
            Nnf::NotMoreThan(e, p) => Nnf::MoreThan(e.clone(), p.clone()),
            Nnf::MoreThanEq(e, p) => Nnf::NotMoreThanEq(e.clone(), p.clone()),
            Nnf::NotMoreThanEq(e, p) => Nnf::MoreThanEq(e.clone(), p.clone()),
            Nnf::UniqueLang(e) => Nnf::NotUniqueLang(e.clone()),
            Nnf::NotUniqueLang(e) => Nnf::UniqueLang(e.clone()),
            Nnf::And(items) => Nnf::Or(items.iter().map(Nnf::negated).collect()),
            Nnf::Or(items) => Nnf::And(items.iter().map(Nnf::negated).collect()),
            Nnf::Geq(n, e, inner) => {
                if *n == 0 {
                    Nnf::False
                } else {
                    Nnf::Leq(n - 1, e.clone(), inner.clone())
                }
            }
            Nnf::Leq(n, e, inner) => Nnf::Geq(n + 1, e.clone(), inner.clone()),
            Nnf::ForAll(e, inner) => Nnf::Geq(1, e.clone(), Box::new(inner.negated())),
        }
    }

    /// Converts back to the general shape algebra (injective on semantics:
    /// `to_shape` of an NNF conforms exactly like the NNF itself).
    pub fn to_shape(&self) -> Shape {
        match self {
            Nnf::True => Shape::True,
            Nnf::False => Shape::False,
            Nnf::HasShape(s) => Shape::HasShape(s.clone()),
            Nnf::NotHasShape(s) => Shape::HasShape(s.clone()).not(),
            Nnf::Test(t) => Shape::Test(t.clone()),
            Nnf::NotTest(t) => Shape::Test(t.clone()).not(),
            Nnf::HasValue(c) => Shape::HasValue(c.clone()),
            Nnf::NotHasValue(c) => Shape::HasValue(c.clone()).not(),
            Nnf::Eq(e, p) => Shape::Eq(e.clone(), p.clone()),
            Nnf::NotEq(e, p) => Shape::Eq(e.clone(), p.clone()).not(),
            Nnf::Disj(e, p) => Shape::Disj(e.clone(), p.clone()),
            Nnf::NotDisj(e, p) => Shape::Disj(e.clone(), p.clone()).not(),
            Nnf::Closed(ps) => Shape::Closed(ps.clone()),
            Nnf::NotClosed(ps) => Shape::Closed(ps.clone()).not(),
            Nnf::LessThan(e, p) => Shape::LessThan(e.clone(), p.clone()),
            Nnf::NotLessThan(e, p) => Shape::LessThan(e.clone(), p.clone()).not(),
            Nnf::LessThanEq(e, p) => Shape::LessThanEq(e.clone(), p.clone()),
            Nnf::NotLessThanEq(e, p) => Shape::LessThanEq(e.clone(), p.clone()).not(),
            Nnf::MoreThan(e, p) => Shape::MoreThan(e.clone(), p.clone()),
            Nnf::NotMoreThan(e, p) => Shape::MoreThan(e.clone(), p.clone()).not(),
            Nnf::MoreThanEq(e, p) => Shape::MoreThanEq(e.clone(), p.clone()),
            Nnf::NotMoreThanEq(e, p) => Shape::MoreThanEq(e.clone(), p.clone()).not(),
            Nnf::UniqueLang(e) => Shape::UniqueLang(e.clone()),
            Nnf::NotUniqueLang(e) => Shape::UniqueLang(e.clone()).not(),
            Nnf::And(items) => Shape::And(items.iter().map(Nnf::to_shape).collect()),
            Nnf::Or(items) => Shape::Or(items.iter().map(Nnf::to_shape).collect()),
            Nnf::Geq(n, e, inner) => Shape::Geq(*n, e.clone(), Box::new(inner.to_shape())),
            Nnf::Leq(n, e, inner) => Shape::Leq(*n, e.clone(), Box::new(inner.to_shape())),
            Nnf::ForAll(e, inner) => Shape::ForAll(e.clone(), Box::new(inner.to_shape())),
        }
    }
}

/// `convert(φ, true)` = NNF of φ; `convert(φ, false)` = NNF of ¬φ.
fn convert(shape: &Shape, positive: bool) -> Nnf {
    match shape {
        Shape::True => {
            if positive {
                Nnf::True
            } else {
                Nnf::False
            }
        }
        Shape::False => {
            if positive {
                Nnf::False
            } else {
                Nnf::True
            }
        }
        Shape::HasShape(s) => {
            if positive {
                Nnf::HasShape(s.clone())
            } else {
                Nnf::NotHasShape(s.clone())
            }
        }
        Shape::Test(t) => {
            if positive {
                Nnf::Test(t.clone())
            } else {
                Nnf::NotTest(t.clone())
            }
        }
        Shape::HasValue(c) => {
            if positive {
                Nnf::HasValue(c.clone())
            } else {
                Nnf::NotHasValue(c.clone())
            }
        }
        Shape::Eq(e, p) => {
            if positive {
                Nnf::Eq(e.clone(), p.clone())
            } else {
                Nnf::NotEq(e.clone(), p.clone())
            }
        }
        Shape::Disj(e, p) => {
            if positive {
                Nnf::Disj(e.clone(), p.clone())
            } else {
                Nnf::NotDisj(e.clone(), p.clone())
            }
        }
        Shape::Closed(ps) => {
            if positive {
                Nnf::Closed(ps.clone())
            } else {
                Nnf::NotClosed(ps.clone())
            }
        }
        Shape::LessThan(e, p) => {
            if positive {
                Nnf::LessThan(e.clone(), p.clone())
            } else {
                Nnf::NotLessThan(e.clone(), p.clone())
            }
        }
        Shape::LessThanEq(e, p) => {
            if positive {
                Nnf::LessThanEq(e.clone(), p.clone())
            } else {
                Nnf::NotLessThanEq(e.clone(), p.clone())
            }
        }
        Shape::MoreThan(e, p) => {
            if positive {
                Nnf::MoreThan(e.clone(), p.clone())
            } else {
                Nnf::NotMoreThan(e.clone(), p.clone())
            }
        }
        Shape::MoreThanEq(e, p) => {
            if positive {
                Nnf::MoreThanEq(e.clone(), p.clone())
            } else {
                Nnf::NotMoreThanEq(e.clone(), p.clone())
            }
        }
        Shape::UniqueLang(e) => {
            if positive {
                Nnf::UniqueLang(e.clone())
            } else {
                Nnf::NotUniqueLang(e.clone())
            }
        }
        Shape::Not(inner) => convert(inner, !positive),
        Shape::And(items) => {
            let converted: Vec<Nnf> = items.iter().map(|s| convert(s, positive)).collect();
            if positive {
                Nnf::And(converted)
            } else {
                Nnf::Or(converted)
            }
        }
        Shape::Or(items) => {
            let converted: Vec<Nnf> = items.iter().map(|s| convert(s, positive)).collect();
            if positive {
                Nnf::Or(converted)
            } else {
                Nnf::And(converted)
            }
        }
        Shape::Geq(n, e, inner) => {
            if positive {
                Nnf::Geq(*n, e.clone(), Box::new(convert(inner, true)))
            } else if *n == 0 {
                // ¬ ≥0 E.ψ is simply false.
                Nnf::False
            } else {
                Nnf::Leq(n - 1, e.clone(), Box::new(convert(inner, true)))
            }
        }
        Shape::Leq(n, e, inner) => {
            if positive {
                Nnf::Leq(*n, e.clone(), Box::new(convert(inner, true)))
            } else {
                Nnf::Geq(n + 1, e.clone(), Box::new(convert(inner, true)))
            }
        }
        Shape::ForAll(e, inner) => {
            if positive {
                Nnf::ForAll(e.clone(), Box::new(convert(inner, true)))
            } else {
                Nnf::Geq(1, e.clone(), Box::new(convert(inner, false)))
            }
        }
    }
}

impl fmt::Display for Nnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_shape())
    }
}

impl fmt::Debug for Nnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<&Shape> for Nnf {
    fn from(shape: &Shape) -> Self {
        Nnf::from_shape(shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(name: &str) -> PathExpr {
        PathExpr::prop(format!("http://e/{name}"))
    }

    #[test]
    fn double_negation_cancels() {
        let s = Shape::has_value(Term::iri("http://e/c")).not().not();
        assert_eq!(Nnf::from_shape(&s), Nnf::HasValue(Term::iri("http://e/c")));
    }

    #[test]
    fn de_morgan() {
        let s = Shape::True.and(Shape::False).not();
        assert_eq!(Nnf::from_shape(&s), Nnf::Or(vec![Nnf::False, Nnf::True]));
    }

    #[test]
    fn quantifier_duality() {
        // ¬ ≥2 E.⊤ ≡ ≤1 E.⊤
        let s = Shape::geq(2, p("a"), Shape::True).not();
        assert_eq!(
            Nnf::from_shape(&s),
            Nnf::Leq(1, p("a"), Box::new(Nnf::True))
        );
        // ¬ ≤3 E.⊤ ≡ ≥4 E.⊤
        let s = Shape::leq(3, p("a"), Shape::True).not();
        assert_eq!(
            Nnf::from_shape(&s),
            Nnf::Geq(4, p("a"), Box::new(Nnf::True))
        );
        // ¬ ≥0 E.⊤ ≡ ⊥
        let s = Shape::geq(0, p("a"), Shape::True).not();
        assert_eq!(Nnf::from_shape(&s), Nnf::False);
    }

    #[test]
    fn forall_negation_introduces_negated_body() {
        // ¬ ∀E.hasValue(c) ≡ ≥1 E.¬hasValue(c)
        let c = Term::iri("http://e/c");
        let s = Shape::for_all(p("a"), Shape::has_value(c.clone())).not();
        assert_eq!(
            Nnf::from_shape(&s),
            Nnf::Geq(1, p("a"), Box::new(Nnf::NotHasValue(c)))
        );
    }

    #[test]
    fn negation_under_quantifier_body() {
        // ≥1 E.¬(ψ ∧ χ) pushes into the body.
        let s = Shape::geq(
            1,
            p("a"),
            Shape::True
                .and(Shape::has_value(Term::iri("http://e/c")))
                .not(),
        );
        let nnf = Nnf::from_shape(&s);
        match nnf {
            Nnf::Geq(1, _, body) => {
                assert!(matches!(*body, Nnf::Or(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negated_is_involutive() {
        let shapes = [
            Shape::Eq(PathOrId::Id, Iri::new("http://e/p")),
            Shape::geq(2, p("a"), Shape::for_all(p("b"), Shape::True)),
            Shape::UniqueLang(p("l")),
            Shape::Closed(BTreeSet::from([Iri::new("http://e/p")])),
        ];
        for s in shapes {
            let n = Nnf::from_shape(&s);
            assert_eq!(n.negated().negated(), n, "¬¬{s} should be {s}");
        }
    }

    #[test]
    fn negated_geq_zero_is_false() {
        let n = Nnf::Geq(0, p("a"), Box::new(Nnf::True));
        assert_eq!(n.negated(), Nnf::False);
    }

    #[test]
    fn round_trip_to_shape() {
        let s = Shape::for_all(p("a"), Shape::geq(1, p("b"), Shape::True))
            .and(Shape::Disj(PathOrId::Id, Iri::new("http://e/q")).not());
        let nnf = Nnf::from_shape(&s);
        // Round trip re-normalizes to the same NNF.
        assert_eq!(Nnf::from_shape(&nnf.to_shape()), nnf);
    }
}
