//! Negation normal form (NNF).
//!
//! Following Grädel and Tannen (and §3.1 of the paper), the neighborhood
//! definition assumes shapes in NNF: negation applied only to atomic shapes.
//! The [`Nnf`] type makes this invariant structural — negated atoms are
//! their own constructors, and there is no general `Not`.
//!
//! Negation is pushed down with De Morgan's laws and the quantifier rules
//!
//! ```text
//! ¬ ≥n+1 E.ψ ≡ ≤n E.ψ      ¬ ≤n E.ψ ≡ ≥n+1 E.ψ      ¬ ∀E.ψ ≡ ≥1 E.¬ψ
//! ¬ ≥0 E.ψ ≡ ⊥
//! ```

use std::collections::BTreeSet;
use std::fmt;
use std::mem;

use shapefrag_rdf::{Iri, Term};

use crate::node_test::NodeTest;
use crate::path::PathExpr;
use crate::shape::{PathOrId, Shape};

/// A shape in negation normal form.
///
/// Like [`Shape`], `Clone`, `Drop`, and the conversions are implemented
/// with explicit worklists so adversarially deep formulas cannot overflow
/// the thread stack.
#[derive(PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Nnf {
    True,
    False,
    HasShape(Term),
    NotHasShape(Term),
    Test(NodeTest),
    NotTest(NodeTest),
    HasValue(Term),
    NotHasValue(Term),
    Eq(PathOrId, Iri),
    NotEq(PathOrId, Iri),
    Disj(PathOrId, Iri),
    NotDisj(PathOrId, Iri),
    Closed(BTreeSet<Iri>),
    NotClosed(BTreeSet<Iri>),
    LessThan(PathExpr, Iri),
    NotLessThan(PathExpr, Iri),
    LessThanEq(PathExpr, Iri),
    NotLessThanEq(PathExpr, Iri),
    MoreThan(PathExpr, Iri),
    NotMoreThan(PathExpr, Iri),
    MoreThanEq(PathExpr, Iri),
    NotMoreThanEq(PathExpr, Iri),
    UniqueLang(PathExpr),
    NotUniqueLang(PathExpr),
    And(Vec<Nnf>),
    Or(Vec<Nnf>),
    Geq(u32, PathExpr, Box<Nnf>),
    Leq(u32, PathExpr, Box<Nnf>),
    ForAll(PathExpr, Box<Nnf>),
}

impl Nnf {
    /// Converts a shape to NNF (pushing negation down; preserves the
    /// overall syntactic structure).
    pub fn from_shape(shape: &Shape) -> Nnf {
        convert(shape, true)
    }

    /// Converts the *negation* of a shape to NNF.
    pub fn from_negated_shape(shape: &Shape) -> Nnf {
        convert(shape, false)
    }

    /// The NNF of `¬self`. Used by the Table-2 rules for `≤n E.ψ` (which
    /// recurse into `¬ψ`) and rule 2 (`¬hasShape(s)` dereferences to
    /// `¬def(s, H)` in NNF).
    pub fn negated(&self) -> Nnf {
        transform(self, true)
    }

    /// True for variants with no child formulas.
    fn is_leaf(&self) -> bool {
        !matches!(
            self,
            Nnf::And(_) | Nnf::Or(_) | Nnf::Geq(..) | Nnf::Leq(..) | Nnf::ForAll(..)
        )
    }

    /// Detaches every direct child (replacing it with `⊤`) onto `out`.
    /// Shared by the iterative [`Drop`] implementation.
    fn detach_children(&mut self, out: &mut Vec<Nnf>) {
        match self {
            Nnf::Geq(_, _, inner) | Nnf::Leq(_, _, inner) | Nnf::ForAll(_, inner) => {
                out.push(mem::replace(&mut **inner, Nnf::True))
            }
            Nnf::And(items) | Nnf::Or(items) => out.append(items),
            _ => {}
        }
    }

    /// Converts back to the general shape algebra (injective on semantics:
    /// `to_shape` of an NNF conforms exactly like the NNF itself).
    /// Iterative for the same reason as [`convert`]/[`transform`].
    pub fn to_shape(&self) -> Shape {
        enum Job<'a> {
            Enter(&'a Nnf),
            Exit(&'a Nnf),
        }
        let mut jobs = vec![Job::Enter(self)];
        let mut built: Vec<Shape> = Vec::new();
        while let Some(job) = jobs.pop() {
            match job {
                Job::Enter(n) => match n {
                    Nnf::And(items) | Nnf::Or(items) => {
                        jobs.push(Job::Exit(n));
                        for item in items.iter().rev() {
                            jobs.push(Job::Enter(item));
                        }
                    }
                    Nnf::Geq(_, _, inner) | Nnf::Leq(_, _, inner) | Nnf::ForAll(_, inner) => {
                        jobs.push(Job::Exit(n));
                        jobs.push(Job::Enter(inner));
                    }
                    leaf => built.push(leaf.leaf_to_shape()),
                },
                Job::Exit(n) => {
                    let rebuilt = match n {
                        Nnf::And(items) => Shape::And(built.split_off(built.len() - items.len())),
                        Nnf::Or(items) => Shape::Or(built.split_off(built.len() - items.len())),
                        Nnf::Geq(k, e, _) => {
                            Shape::Geq(*k, e.clone(), Box::new(built.pop().unwrap()))
                        }
                        Nnf::Leq(k, e, _) => {
                            Shape::Leq(*k, e.clone(), Box::new(built.pop().unwrap()))
                        }
                        Nnf::ForAll(e, _) => {
                            Shape::ForAll(e.clone(), Box::new(built.pop().unwrap()))
                        }
                        _ => unreachable!("only composites take the Exit path"),
                    };
                    built.push(rebuilt);
                }
            }
        }
        debug_assert_eq!(built.len(), 1);
        built.pop().expect("worklist produces exactly one shape")
    }

    /// Leaf conversion for the [`Nnf::to_shape`] worklist.
    fn leaf_to_shape(&self) -> Shape {
        match self {
            Nnf::True => Shape::True,
            Nnf::False => Shape::False,
            Nnf::HasShape(s) => Shape::HasShape(s.clone()),
            Nnf::NotHasShape(s) => Shape::HasShape(s.clone()).not(),
            Nnf::Test(t) => Shape::Test(t.clone()),
            Nnf::NotTest(t) => Shape::Test(t.clone()).not(),
            Nnf::HasValue(c) => Shape::HasValue(c.clone()),
            Nnf::NotHasValue(c) => Shape::HasValue(c.clone()).not(),
            Nnf::Eq(e, p) => Shape::Eq(e.clone(), p.clone()),
            Nnf::NotEq(e, p) => Shape::Eq(e.clone(), p.clone()).not(),
            Nnf::Disj(e, p) => Shape::Disj(e.clone(), p.clone()),
            Nnf::NotDisj(e, p) => Shape::Disj(e.clone(), p.clone()).not(),
            Nnf::Closed(ps) => Shape::Closed(ps.clone()),
            Nnf::NotClosed(ps) => Shape::Closed(ps.clone()).not(),
            Nnf::LessThan(e, p) => Shape::LessThan(e.clone(), p.clone()),
            Nnf::NotLessThan(e, p) => Shape::LessThan(e.clone(), p.clone()).not(),
            Nnf::LessThanEq(e, p) => Shape::LessThanEq(e.clone(), p.clone()),
            Nnf::NotLessThanEq(e, p) => Shape::LessThanEq(e.clone(), p.clone()).not(),
            Nnf::MoreThan(e, p) => Shape::MoreThan(e.clone(), p.clone()),
            Nnf::NotMoreThan(e, p) => Shape::MoreThan(e.clone(), p.clone()).not(),
            Nnf::MoreThanEq(e, p) => Shape::MoreThanEq(e.clone(), p.clone()),
            Nnf::NotMoreThanEq(e, p) => Shape::MoreThanEq(e.clone(), p.clone()).not(),
            Nnf::UniqueLang(e) => Shape::UniqueLang(e.clone()),
            Nnf::NotUniqueLang(e) => Shape::UniqueLang(e.clone()).not(),
            Nnf::And(_) | Nnf::Or(_) | Nnf::Geq(..) | Nnf::Leq(..) | Nnf::ForAll(..) => {
                unreachable!("leaf_to_shape called on a composite formula")
            }
        }
    }
}

/// Converts an atomic (leaf) shape under a polarity.
fn convert_atom(shape: &Shape, positive: bool) -> Nnf {
    match (shape, positive) {
        (Shape::True, true) | (Shape::False, false) => Nnf::True,
        (Shape::True, false) | (Shape::False, true) => Nnf::False,
        (Shape::HasShape(s), true) => Nnf::HasShape(s.clone()),
        (Shape::HasShape(s), false) => Nnf::NotHasShape(s.clone()),
        (Shape::Test(t), true) => Nnf::Test(t.clone()),
        (Shape::Test(t), false) => Nnf::NotTest(t.clone()),
        (Shape::HasValue(c), true) => Nnf::HasValue(c.clone()),
        (Shape::HasValue(c), false) => Nnf::NotHasValue(c.clone()),
        (Shape::Eq(e, p), true) => Nnf::Eq(e.clone(), p.clone()),
        (Shape::Eq(e, p), false) => Nnf::NotEq(e.clone(), p.clone()),
        (Shape::Disj(e, p), true) => Nnf::Disj(e.clone(), p.clone()),
        (Shape::Disj(e, p), false) => Nnf::NotDisj(e.clone(), p.clone()),
        (Shape::Closed(ps), true) => Nnf::Closed(ps.clone()),
        (Shape::Closed(ps), false) => Nnf::NotClosed(ps.clone()),
        (Shape::LessThan(e, p), true) => Nnf::LessThan(e.clone(), p.clone()),
        (Shape::LessThan(e, p), false) => Nnf::NotLessThan(e.clone(), p.clone()),
        (Shape::LessThanEq(e, p), true) => Nnf::LessThanEq(e.clone(), p.clone()),
        (Shape::LessThanEq(e, p), false) => Nnf::NotLessThanEq(e.clone(), p.clone()),
        (Shape::MoreThan(e, p), true) => Nnf::MoreThan(e.clone(), p.clone()),
        (Shape::MoreThan(e, p), false) => Nnf::NotMoreThan(e.clone(), p.clone()),
        (Shape::MoreThanEq(e, p), true) => Nnf::MoreThanEq(e.clone(), p.clone()),
        (Shape::MoreThanEq(e, p), false) => Nnf::NotMoreThanEq(e.clone(), p.clone()),
        (Shape::UniqueLang(e), true) => Nnf::UniqueLang(e.clone()),
        (Shape::UniqueLang(e), false) => Nnf::NotUniqueLang(e.clone()),
        _ => unreachable!("convert_atom called on a composite shape"),
    }
}

/// `convert(φ, true)` = NNF of φ; `convert(φ, false)` = NNF of ¬φ.
///
/// Iterative (explicit job stack carrying the polarity): the conversion of
/// a 100 000-deep negation tower must not recurse. Quantifier rules applied
/// at `Exit` time:
///
/// ```text
/// ¬ ≥n+1 E.ψ ≡ ≤n E.ψ      ¬ ≤n E.ψ ≡ ≥n+1 E.ψ      ¬ ∀E.ψ ≡ ≥1 E.¬ψ
/// ¬ ≥0 E.ψ ≡ ⊥
/// ```
fn convert(root: &Shape, positive: bool) -> Nnf {
    enum Job<'a> {
        Enter(&'a Shape, bool),
        Exit(&'a Shape, bool),
    }
    let mut jobs = vec![Job::Enter(root, positive)];
    let mut built: Vec<Nnf> = Vec::new();
    while let Some(job) = jobs.pop() {
        match job {
            Job::Enter(s, pos) => match s {
                Shape::Not(inner) => jobs.push(Job::Enter(inner, !pos)),
                Shape::And(items) | Shape::Or(items) => {
                    jobs.push(Job::Exit(s, pos));
                    for item in items.iter().rev() {
                        jobs.push(Job::Enter(item, pos));
                    }
                }
                Shape::Geq(n, _, inner) => {
                    if !pos && *n == 0 {
                        // ¬ ≥0 E.ψ is simply false.
                        built.push(Nnf::False);
                    } else {
                        jobs.push(Job::Exit(s, pos));
                        jobs.push(Job::Enter(inner, true));
                    }
                }
                Shape::Leq(_, _, inner) => {
                    jobs.push(Job::Exit(s, pos));
                    jobs.push(Job::Enter(inner, true));
                }
                Shape::ForAll(_, inner) => {
                    jobs.push(Job::Exit(s, pos));
                    // ¬∀E.ψ ≡ ≥1 E.¬ψ: the body inherits the polarity.
                    jobs.push(Job::Enter(inner, pos));
                }
                atom => built.push(convert_atom(atom, pos)),
            },
            Job::Exit(s, pos) => {
                let rebuilt = match s {
                    Shape::And(items) => {
                        let children = built.split_off(built.len() - items.len());
                        if pos {
                            Nnf::And(children)
                        } else {
                            Nnf::Or(children)
                        }
                    }
                    Shape::Or(items) => {
                        let children = built.split_off(built.len() - items.len());
                        if pos {
                            Nnf::Or(children)
                        } else {
                            Nnf::And(children)
                        }
                    }
                    Shape::Geq(n, e, _) => {
                        let inner = Box::new(built.pop().unwrap());
                        if pos {
                            Nnf::Geq(*n, e.clone(), inner)
                        } else {
                            Nnf::Leq(n - 1, e.clone(), inner)
                        }
                    }
                    Shape::Leq(n, e, _) => {
                        let inner = Box::new(built.pop().unwrap());
                        if pos {
                            Nnf::Leq(*n, e.clone(), inner)
                        } else {
                            Nnf::Geq(n + 1, e.clone(), inner)
                        }
                    }
                    Shape::ForAll(e, _) => {
                        let inner = Box::new(built.pop().unwrap());
                        if pos {
                            Nnf::ForAll(e.clone(), inner)
                        } else {
                            Nnf::Geq(1, e.clone(), inner)
                        }
                    }
                    _ => unreachable!(),
                };
                built.push(rebuilt);
            }
        }
    }
    debug_assert_eq!(built.len(), 1);
    built.pop().unwrap()
}

/// Negates (or copies) an atomic NNF formula.
fn transform_atom(n: &Nnf, negate: bool) -> Nnf {
    if !negate {
        return match n {
            Nnf::True => Nnf::True,
            Nnf::False => Nnf::False,
            Nnf::HasShape(s) => Nnf::HasShape(s.clone()),
            Nnf::NotHasShape(s) => Nnf::NotHasShape(s.clone()),
            Nnf::Test(t) => Nnf::Test(t.clone()),
            Nnf::NotTest(t) => Nnf::NotTest(t.clone()),
            Nnf::HasValue(c) => Nnf::HasValue(c.clone()),
            Nnf::NotHasValue(c) => Nnf::NotHasValue(c.clone()),
            Nnf::Eq(e, p) => Nnf::Eq(e.clone(), p.clone()),
            Nnf::NotEq(e, p) => Nnf::NotEq(e.clone(), p.clone()),
            Nnf::Disj(e, p) => Nnf::Disj(e.clone(), p.clone()),
            Nnf::NotDisj(e, p) => Nnf::NotDisj(e.clone(), p.clone()),
            Nnf::Closed(ps) => Nnf::Closed(ps.clone()),
            Nnf::NotClosed(ps) => Nnf::NotClosed(ps.clone()),
            Nnf::LessThan(e, p) => Nnf::LessThan(e.clone(), p.clone()),
            Nnf::NotLessThan(e, p) => Nnf::NotLessThan(e.clone(), p.clone()),
            Nnf::LessThanEq(e, p) => Nnf::LessThanEq(e.clone(), p.clone()),
            Nnf::NotLessThanEq(e, p) => Nnf::NotLessThanEq(e.clone(), p.clone()),
            Nnf::MoreThan(e, p) => Nnf::MoreThan(e.clone(), p.clone()),
            Nnf::NotMoreThan(e, p) => Nnf::NotMoreThan(e.clone(), p.clone()),
            Nnf::MoreThanEq(e, p) => Nnf::MoreThanEq(e.clone(), p.clone()),
            Nnf::NotMoreThanEq(e, p) => Nnf::NotMoreThanEq(e.clone(), p.clone()),
            Nnf::UniqueLang(e) => Nnf::UniqueLang(e.clone()),
            Nnf::NotUniqueLang(e) => Nnf::NotUniqueLang(e.clone()),
            _ => unreachable!("transform_atom called on a composite formula"),
        };
    }
    match n {
        Nnf::True => Nnf::False,
        Nnf::False => Nnf::True,
        Nnf::HasShape(s) => Nnf::NotHasShape(s.clone()),
        Nnf::NotHasShape(s) => Nnf::HasShape(s.clone()),
        Nnf::Test(t) => Nnf::NotTest(t.clone()),
        Nnf::NotTest(t) => Nnf::Test(t.clone()),
        Nnf::HasValue(c) => Nnf::NotHasValue(c.clone()),
        Nnf::NotHasValue(c) => Nnf::HasValue(c.clone()),
        Nnf::Eq(e, p) => Nnf::NotEq(e.clone(), p.clone()),
        Nnf::NotEq(e, p) => Nnf::Eq(e.clone(), p.clone()),
        Nnf::Disj(e, p) => Nnf::NotDisj(e.clone(), p.clone()),
        Nnf::NotDisj(e, p) => Nnf::Disj(e.clone(), p.clone()),
        Nnf::Closed(ps) => Nnf::NotClosed(ps.clone()),
        Nnf::NotClosed(ps) => Nnf::Closed(ps.clone()),
        Nnf::LessThan(e, p) => Nnf::NotLessThan(e.clone(), p.clone()),
        Nnf::NotLessThan(e, p) => Nnf::LessThan(e.clone(), p.clone()),
        Nnf::LessThanEq(e, p) => Nnf::NotLessThanEq(e.clone(), p.clone()),
        Nnf::NotLessThanEq(e, p) => Nnf::LessThanEq(e.clone(), p.clone()),
        Nnf::MoreThan(e, p) => Nnf::NotMoreThan(e.clone(), p.clone()),
        Nnf::NotMoreThan(e, p) => Nnf::MoreThan(e.clone(), p.clone()),
        Nnf::MoreThanEq(e, p) => Nnf::NotMoreThanEq(e.clone(), p.clone()),
        Nnf::NotMoreThanEq(e, p) => Nnf::MoreThanEq(e.clone(), p.clone()),
        Nnf::UniqueLang(e) => Nnf::NotUniqueLang(e.clone()),
        Nnf::NotUniqueLang(e) => Nnf::UniqueLang(e.clone()),
        _ => unreachable!("transform_atom called on a composite formula"),
    }
}

/// `transform(n, false)` is a deep copy of `n`; `transform(n, true)` is the
/// NNF of `¬n`. One iterative walker serves as both the manual [`Clone`]
/// implementation and [`Nnf::negated`] — the polarity travels with each job
/// because negation under `≥`/`≤` copies the body unchanged while negation
/// under `∀` flips it (`¬∀E.ψ ≡ ≥1 E.¬ψ`).
fn transform(root: &Nnf, negate: bool) -> Nnf {
    enum Job<'a> {
        Enter(&'a Nnf, bool),
        Exit(&'a Nnf, bool),
    }
    let mut jobs = vec![Job::Enter(root, negate)];
    let mut built: Vec<Nnf> = Vec::new();
    while let Some(job) = jobs.pop() {
        match job {
            Job::Enter(n, neg) => match n {
                Nnf::And(items) | Nnf::Or(items) => {
                    jobs.push(Job::Exit(n, neg));
                    for item in items.iter().rev() {
                        jobs.push(Job::Enter(item, neg));
                    }
                }
                Nnf::Geq(k, _, inner) => {
                    if neg && *k == 0 {
                        built.push(Nnf::False);
                    } else {
                        jobs.push(Job::Exit(n, neg));
                        // ¬ ≥k E.ψ ≡ ≤k−1 E.ψ: the body is copied as-is.
                        jobs.push(Job::Enter(inner, false));
                    }
                }
                Nnf::Leq(_, _, inner) => {
                    jobs.push(Job::Exit(n, neg));
                    jobs.push(Job::Enter(inner, false));
                }
                Nnf::ForAll(_, inner) => {
                    jobs.push(Job::Exit(n, neg));
                    jobs.push(Job::Enter(inner, neg));
                }
                atom => built.push(transform_atom(atom, neg)),
            },
            Job::Exit(n, neg) => {
                let rebuilt = match n {
                    Nnf::And(items) => {
                        let children = built.split_off(built.len() - items.len());
                        if neg {
                            Nnf::Or(children)
                        } else {
                            Nnf::And(children)
                        }
                    }
                    Nnf::Or(items) => {
                        let children = built.split_off(built.len() - items.len());
                        if neg {
                            Nnf::And(children)
                        } else {
                            Nnf::Or(children)
                        }
                    }
                    Nnf::Geq(k, e, _) => {
                        let inner = Box::new(built.pop().unwrap());
                        if neg {
                            Nnf::Leq(k - 1, e.clone(), inner)
                        } else {
                            Nnf::Geq(*k, e.clone(), inner)
                        }
                    }
                    Nnf::Leq(k, e, _) => {
                        let inner = Box::new(built.pop().unwrap());
                        if neg {
                            Nnf::Geq(k + 1, e.clone(), inner)
                        } else {
                            Nnf::Leq(*k, e.clone(), inner)
                        }
                    }
                    Nnf::ForAll(e, _) => {
                        let inner = Box::new(built.pop().unwrap());
                        if neg {
                            Nnf::Geq(1, e.clone(), inner)
                        } else {
                            Nnf::ForAll(e.clone(), inner)
                        }
                    }
                    _ => unreachable!(),
                };
                built.push(rebuilt);
            }
        }
    }
    debug_assert_eq!(built.len(), 1);
    built.pop().unwrap()
}

impl Clone for Nnf {
    fn clone(&self) -> Self {
        transform(self, false)
    }
}

impl Drop for Nnf {
    /// Iterative drop, mirroring [`Shape`]'s.
    fn drop(&mut self) {
        if self.is_leaf() {
            return;
        }
        let mut stack: Vec<Nnf> = Vec::new();
        self.detach_children(&mut stack);
        while let Some(mut n) = stack.pop() {
            n.detach_children(&mut stack);
        }
    }
}

impl fmt::Display for Nnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_shape())
    }
}

impl fmt::Debug for Nnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<&Shape> for Nnf {
    fn from(shape: &Shape) -> Self {
        Nnf::from_shape(shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(name: &str) -> PathExpr {
        PathExpr::prop(format!("http://e/{name}"))
    }

    #[test]
    fn double_negation_cancels() {
        let s = Shape::has_value(Term::iri("http://e/c")).not().not();
        assert_eq!(Nnf::from_shape(&s), Nnf::HasValue(Term::iri("http://e/c")));
    }

    #[test]
    fn de_morgan() {
        let s = Shape::True.and(Shape::False).not();
        assert_eq!(Nnf::from_shape(&s), Nnf::Or(vec![Nnf::False, Nnf::True]));
    }

    #[test]
    fn quantifier_duality() {
        // ¬ ≥2 E.⊤ ≡ ≤1 E.⊤
        let s = Shape::geq(2, p("a"), Shape::True).not();
        assert_eq!(
            Nnf::from_shape(&s),
            Nnf::Leq(1, p("a"), Box::new(Nnf::True))
        );
        // ¬ ≤3 E.⊤ ≡ ≥4 E.⊤
        let s = Shape::leq(3, p("a"), Shape::True).not();
        assert_eq!(
            Nnf::from_shape(&s),
            Nnf::Geq(4, p("a"), Box::new(Nnf::True))
        );
        // ¬ ≥0 E.⊤ ≡ ⊥
        let s = Shape::geq(0, p("a"), Shape::True).not();
        assert_eq!(Nnf::from_shape(&s), Nnf::False);
    }

    #[test]
    fn forall_negation_introduces_negated_body() {
        // ¬ ∀E.hasValue(c) ≡ ≥1 E.¬hasValue(c)
        let c = Term::iri("http://e/c");
        let s = Shape::for_all(p("a"), Shape::has_value(c.clone())).not();
        assert_eq!(
            Nnf::from_shape(&s),
            Nnf::Geq(1, p("a"), Box::new(Nnf::NotHasValue(c)))
        );
    }

    #[test]
    fn negation_under_quantifier_body() {
        // ≥1 E.¬(ψ ∧ χ) pushes into the body.
        let s = Shape::geq(
            1,
            p("a"),
            Shape::True
                .and(Shape::has_value(Term::iri("http://e/c")))
                .not(),
        );
        let nnf = Nnf::from_shape(&s);
        match &nnf {
            Nnf::Geq(1, _, body) => {
                assert!(matches!(**body, Nnf::Or(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negated_is_involutive() {
        let shapes = [
            Shape::Eq(PathOrId::Id, Iri::new("http://e/p")),
            Shape::geq(2, p("a"), Shape::for_all(p("b"), Shape::True)),
            Shape::UniqueLang(p("l")),
            Shape::Closed(BTreeSet::from([Iri::new("http://e/p")])),
        ];
        for s in shapes {
            let n = Nnf::from_shape(&s);
            assert_eq!(n.negated().negated(), n, "¬¬{s} should be {s}");
        }
    }

    #[test]
    fn negated_geq_zero_is_false() {
        let n = Nnf::Geq(0, p("a"), Box::new(Nnf::True));
        assert_eq!(n.negated(), Nnf::False);
    }

    #[test]
    fn round_trip_to_shape() {
        let s = Shape::for_all(p("a"), Shape::geq(1, p("b"), Shape::True))
            .and(Shape::Disj(PathOrId::Id, Iri::new("http://e/q")).not());
        let nnf = Nnf::from_shape(&s);
        // Round trip re-normalizes to the same NNF.
        assert_eq!(Nnf::from_shape(&nnf.to_shape()), nnf);
    }
}
