//! Change-impact profiles: which edits can affect which definitions.
//!
//! For incremental revalidation we need, per shape definition, a sound
//! over-approximation of the triples its evaluation can *read*. Evaluating
//! `H, G, a ⊨ φ` only ever touches the graph through path steps and the
//! closed check, so three syntactic features — computed transitively over
//! the `hasShape` reference graph, the same dependency structure
//! [`refgraph`](crate::refgraph) analyzes — bound the read set:
//!
//! - **`preds`** — the property alphabet: every property IRI mentioned in
//!   the definition's shape, its target, and every transitively referenced
//!   definition. A triple whose predicate is outside the alphabet can
//!   never be read (unless `wildcard`).
//! - **`wildcard`** — `closed(P)` reads *all* outgoing predicates of the
//!   focus node, and a negated property set `!(p₁|…|pₙ)` traverses any
//!   predicate outside the set; either makes the alphabet unbounded.
//! - **`depth`** — the maximum traversal distance from a focus node to an
//!   endpoint of any read triple: each path step moves one hop, nested
//!   quantifiers add up, and a Kleene star under a quantifier makes the
//!   distance unbounded (`None`).
//! - **direction** — every read is a *traversal*: a plain property step
//!   moves subject → object, a step under `Inverse` moves object →
//!   subject. `inv_preds`/`inv_wildcard` record which predicates may be
//!   traversed in the inverse direction; everything in `preds` may be
//!   traversed forward. Direction is what keeps impact sets small: a
//!   focus can only read a triple it can *reach*, so the impacted foci of
//!   a touched triple are its ancestors in the directed traversal graph,
//!   not its undirected neighborhood (which explodes through hub objects
//!   like `rdf:type` class nodes).
//!
//! The consumer (`shapefrag-core`'s incremental engine) uses the profile
//! both ways: a definition whose alphabet misses every touched predicate
//! is *entirely* unaffected (targets included — target properties are part
//! of the profile), and for affected definitions the impacted focus set is
//! the ancestor BFS of radius `depth` from the touched triples' readable
//! endpoints over the direction-labeled traversal graph. DESIGN.md §14
//! gives the soundness argument.

use std::collections::{BTreeMap, BTreeSet};

use shapefrag_rdf::{Iri, Term};
use shapefrag_shacl::{PathExpr, PathOrId, Shape, ShapeDef};

/// The static change-impact profile of one shape definition. See the
/// module docs for the meaning of each field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImpactProfile {
    /// The definition's name.
    pub name: Term,
    /// Transitive property alphabet (shape + target + referenced defs).
    pub preds: BTreeSet<Iri>,
    /// Predicates that may be traversed object → subject (they sit under
    /// an odd number of `Inverse` wrappers somewhere in the definition).
    /// Always a subset of `preds`.
    pub inv_preds: BTreeSet<Iri>,
    /// True when evaluation may read triples of arbitrary predicates.
    pub wildcard: bool,
    /// True when an arbitrary-predicate step (`!(p…)` or `closed`) may be
    /// traversed in the inverse direction.
    pub inv_wildcard: bool,
    /// Maximum focus-to-read traversal distance; `None` = unbounded.
    pub depth: Option<u32>,
}

impl ImpactProfile {
    /// True iff a triple with predicate `pred` can be read while
    /// evaluating this definition (shape or target) at any focus node.
    pub fn reads_pred(&self, pred: &Iri) -> bool {
        self.wildcard || self.preds.contains(pred)
    }
}

/// `None` is unbounded (dominates both operations).
fn opt_max(a: Option<u32>, b: Option<u32>) -> Option<u32> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.max(y)),
        _ => None,
    }
}

fn opt_add(a: Option<u32>, b: Option<u32>) -> Option<u32> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.saturating_add(y)),
        _ => None,
    }
}

/// Maximum number of single-property steps a path can take; `None` for a
/// star (unbounded repetition).
fn path_depth(e: &PathExpr) -> Option<u32> {
    match e {
        PathExpr::Prop(_) | PathExpr::NegProp(_) => Some(1),
        PathExpr::Inverse(inner) | PathExpr::ZeroOrOne(inner) => path_depth(inner),
        PathExpr::Seq(a, b) => opt_add(path_depth(a), path_depth(b)),
        PathExpr::Alt(a, b) => opt_max(path_depth(a), path_depth(b)),
        PathExpr::ZeroOrMore(_) => None,
    }
}

/// True iff the path contains a negated property set (which traverses
/// arbitrary predicates, so the alphabet cannot bound it).
fn path_wildcard(e: &PathExpr) -> bool {
    match e {
        PathExpr::Prop(_) => false,
        PathExpr::NegProp(_) => true,
        PathExpr::Inverse(inner) | PathExpr::ZeroOrMore(inner) | PathExpr::ZeroOrOne(inner) => {
            path_wildcard(inner)
        }
        PathExpr::Seq(a, b) | PathExpr::Alt(a, b) => path_wildcard(a) || path_wildcard(b),
    }
}

/// Collects the steps a path may take *in the inverse direction*
/// (object → subject): predicates into `inv`, an inverse wildcard step
/// into `inv_wild`. `inverted` flips under each `Inverse` wrapper
/// (`Inverse(Inverse(p))` traverses forward again).
fn path_inverse_steps(e: &PathExpr, inverted: bool, inv: &mut BTreeSet<Iri>, inv_wild: &mut bool) {
    match e {
        PathExpr::Prop(p) => {
            if inverted {
                inv.insert(p.clone());
            }
        }
        PathExpr::NegProp(_) => {
            if inverted {
                *inv_wild = true;
            }
        }
        PathExpr::Inverse(inner) => path_inverse_steps(inner, !inverted, inv, inv_wild),
        PathExpr::ZeroOrMore(inner) | PathExpr::ZeroOrOne(inner) => {
            path_inverse_steps(inner, inverted, inv, inv_wild)
        }
        PathExpr::Seq(a, b) | PathExpr::Alt(a, b) => {
            path_inverse_steps(a, inverted, inv, inv_wild);
            path_inverse_steps(b, inverted, inv, inv_wild);
        }
    }
}

/// Per-definition accumulator for one walk (before reference closure).
#[derive(Default)]
struct Acc {
    preds: BTreeSet<Iri>,
    inv_preds: BTreeSet<Iri>,
    wildcard: bool,
    inv_wildcard: bool,
    /// Max read distance from the focus; `Some(0)` when nothing is read.
    depth: Option<u32>,
    /// `hasShape` references with the quantifier offset they sit under.
    refs: Vec<(Term, Option<u32>)>,
}

impl Acc {
    fn new() -> Acc {
        Acc {
            depth: Some(0),
            ..Acc::default()
        }
    }

    fn read_at(&mut self, dist: Option<u32>) {
        self.depth = opt_max(self.depth, dist);
    }

    fn take_path(&mut self, e: &PathExpr) {
        self.preds.extend(e.properties().into_iter().cloned());
        self.wildcard |= path_wildcard(e);
        path_inverse_steps(e, false, &mut self.inv_preds, &mut self.inv_wildcard);
    }
}

/// Walks a shape; `off` is the focus offset accumulated from enclosing
/// quantifier paths (reads inside happen that far from the real focus).
fn walk(shape: &Shape, off: Option<u32>, acc: &mut Acc) {
    match shape {
        Shape::True | Shape::False | Shape::Test(_) | Shape::HasValue(_) => {}
        Shape::HasShape(name) => acc.refs.push((name.clone(), off)),
        Shape::Eq(f, p) | Shape::Disj(f, p) => {
            acc.preds.insert(p.clone());
            let d = match f {
                PathOrId::Id => Some(0),
                PathOrId::Path(e) => {
                    acc.take_path(e);
                    path_depth(e)
                }
            };
            acc.read_at(opt_add(off, opt_max(Some(1), d)));
        }
        Shape::Closed(allowed) => {
            acc.wildcard = true;
            acc.preds.extend(allowed.iter().cloned());
            acc.read_at(opt_add(off, Some(1)));
        }
        Shape::LessThan(e, p)
        | Shape::LessThanEq(e, p)
        | Shape::MoreThan(e, p)
        | Shape::MoreThanEq(e, p) => {
            acc.preds.insert(p.clone());
            acc.take_path(e);
            acc.read_at(opt_add(off, opt_max(Some(1), path_depth(e))));
        }
        Shape::UniqueLang(e) => {
            acc.take_path(e);
            acc.read_at(opt_add(off, path_depth(e)));
        }
        Shape::Not(inner) => walk(inner, off, acc),
        Shape::And(items) | Shape::Or(items) => {
            for item in items {
                walk(item, off, acc);
            }
        }
        Shape::Geq(_, e, inner) | Shape::Leq(_, e, inner) | Shape::ForAll(e, inner) => {
            acc.take_path(e);
            let d = path_depth(e);
            acc.read_at(opt_add(off, d));
            walk(inner, opt_add(off, d), acc);
        }
    }
}

/// Computes the change-impact profile of every definition, in input order.
///
/// References to undefined names contribute nothing (they default to ⊤,
/// which reads nothing — matching the validator). On a *recursive* input
/// (possible when called on raw defs rather than a constructed `Schema`)
/// the profiles stay sound: the alphabet fixpoint always terminates, and
/// any depth still growing after `n` closure rounds collapses to
/// unbounded.
pub fn impact_profiles<'a>(defs: impl IntoIterator<Item = &'a ShapeDef>) -> Vec<ImpactProfile> {
    let defs: Vec<&ShapeDef> = defs.into_iter().collect();
    let index: BTreeMap<&Term, usize> =
        defs.iter().enumerate().map(|(i, d)| (&d.name, i)).collect();
    let mut accs: Vec<Acc> = defs
        .iter()
        .map(|d| {
            let mut acc = Acc::new();
            walk(&d.shape, Some(0), &mut acc);
            walk(&d.target, Some(0), &mut acc);
            acc
        })
        .collect();

    // Reference closure. Alphabet and wildcard live in a finite lattice, so
    // the loop reaches a fixpoint; depth can only fail to settle under
    // recursion, which the round cap converts to `None`.
    let n = defs.len();
    let mut rounds = 0;
    loop {
        let mut changed = false;
        for i in 0..n {
            let refs = std::mem::take(&mut accs[i].refs);
            for (name, off) in &refs {
                let Some(&j) = index.get(name) else { continue };
                if j != i {
                    let (preds_j, inv_j, wild_j, inv_wild_j, depth_j) = (
                        accs[j].preds.clone(),
                        accs[j].inv_preds.clone(),
                        accs[j].wildcard,
                        accs[j].inv_wildcard,
                        accs[j].depth,
                    );
                    let before = accs[i].preds.len();
                    accs[i].preds.extend(preds_j);
                    changed |= accs[i].preds.len() != before;
                    let before = accs[i].inv_preds.len();
                    accs[i].inv_preds.extend(inv_j);
                    changed |= accs[i].inv_preds.len() != before;
                    changed |= wild_j && !accs[i].wildcard;
                    accs[i].wildcard |= wild_j;
                    changed |= inv_wild_j && !accs[i].inv_wildcard;
                    accs[i].inv_wildcard |= inv_wild_j;
                    let cand = opt_max(accs[i].depth, opt_add(*off, depth_j));
                    changed |= cand != accs[i].depth;
                    accs[i].depth = cand;
                }
            }
            accs[i].refs = refs;
        }
        rounds += 1;
        if !changed {
            break;
        }
        if rounds > n {
            // Recursive reference structure: depths may never settle.
            for acc in &mut accs {
                if !acc.refs.is_empty() {
                    acc.depth = None;
                }
            }
            break;
        }
    }

    defs.iter()
        .zip(accs)
        .map(|(d, acc)| ImpactProfile {
            name: d.name.clone(),
            preds: acc.preds,
            inv_preds: acc.inv_preds,
            wildcard: acc.wildcard,
            inv_wildcard: acc.inv_wildcard,
            depth: acc.depth,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapefrag_shacl::Schema;

    fn name(n: &str) -> Term {
        Term::iri(format!("http://e/{n}"))
    }

    fn iri(n: &str) -> Iri {
        Iri::new(format!("http://e/{n}"))
    }

    fn p(n: &str) -> PathExpr {
        PathExpr::Prop(iri(n))
    }

    #[test]
    fn flat_property_shape() {
        let defs = [ShapeDef::new(
            name("S"),
            Shape::geq(1, p("author"), Shape::True),
            Shape::geq(1, p("type"), Shape::True),
        )];
        let prof = &impact_profiles(&defs)[0];
        assert_eq!(
            prof.preds,
            [iri("author"), iri("type")].into_iter().collect()
        );
        assert!(!prof.wildcard);
        assert_eq!(prof.depth, Some(1));
        assert!(prof.reads_pred(&iri("author")));
        assert!(!prof.reads_pred(&iri("unrelated")));
    }

    #[test]
    fn nested_quantifiers_add_depth() {
        let defs = [ShapeDef::new(
            name("S"),
            Shape::geq(
                1,
                p("a"),
                Shape::geq(2, p("b"), Shape::geq(1, p("c"), Shape::True)),
            ),
            Shape::False,
        )];
        let prof = &impact_profiles(&defs)[0];
        assert_eq!(prof.depth, Some(3));
    }

    #[test]
    fn star_is_unbounded_and_closed_is_wildcard() {
        let defs = [
            ShapeDef::new(
                name("Star"),
                Shape::geq(1, p("sub").star(), Shape::True),
                Shape::False,
            ),
            ShapeDef::new(
                name("Closed"),
                Shape::Closed([iri("a"), iri("b")].into_iter().collect()),
                Shape::False,
            ),
            ShapeDef::new(
                name("Neg"),
                Shape::geq(1, PathExpr::any_prop(), Shape::True),
                Shape::False,
            ),
        ];
        let profs = impact_profiles(&defs);
        assert_eq!(profs[0].depth, None);
        assert!(!profs[0].wildcard);
        assert!(profs[1].wildcard);
        assert_eq!(profs[1].depth, Some(1));
        assert!(profs[2].wildcard);
    }

    #[test]
    fn references_close_transitively_with_offsets() {
        let schema = Schema::new([
            ShapeDef::new(
                name("A"),
                Shape::geq(1, p("x"), Shape::HasShape(name("B"))),
                Shape::geq(1, p("t"), Shape::True),
            ),
            ShapeDef::new(
                name("B"),
                Shape::geq(1, p("y"), Shape::HasShape(name("C"))),
                Shape::False,
            ),
            ShapeDef::new(name("C"), Shape::geq(1, p("z"), Shape::True), Shape::False),
        ])
        .unwrap();
        let defs: Vec<ShapeDef> = schema.iter().cloned().collect();
        let profs = impact_profiles(&defs);
        let a = profs.iter().find(|pr| pr.name == name("A")).unwrap();
        assert_eq!(
            a.preds,
            [iri("x"), iri("y"), iri("z"), iri("t")]
                .into_iter()
                .collect()
        );
        // x to B (1) + y to C (1) + z (1).
        assert_eq!(a.depth, Some(3));
        let b = profs.iter().find(|pr| pr.name == name("B")).unwrap();
        assert_eq!(b.depth, Some(2));
        assert!(!b.preds.contains(&iri("x")));
    }

    #[test]
    fn undefined_reference_reads_nothing() {
        let defs = [ShapeDef::new(
            name("S"),
            Shape::HasShape(name("Ghost")),
            Shape::geq(1, p("t"), Shape::True),
        )];
        let prof = &impact_profiles(&defs)[0];
        assert_eq!(prof.preds, [iri("t")].into_iter().collect());
        assert_eq!(prof.depth, Some(1));
    }

    #[test]
    fn recursive_defs_collapse_depth_not_alphabet() {
        // Raw defs (not a Schema) may be mutually recursive.
        let defs = [
            ShapeDef::new(
                name("A"),
                Shape::geq(1, p("x"), Shape::HasShape(name("B"))),
                Shape::False,
            ),
            ShapeDef::new(
                name("B"),
                Shape::geq(1, p("y"), Shape::HasShape(name("A"))),
                Shape::False,
            ),
        ];
        let profs = impact_profiles(&defs);
        for prof in &profs {
            assert_eq!(prof.preds, [iri("x"), iri("y")].into_iter().collect());
            assert_eq!(prof.depth, None, "recursion must force unbounded depth");
        }
    }

    #[test]
    fn inverse_steps_are_tracked_directionally() {
        let defs = [
            ShapeDef::new(
                name("Fwd"),
                Shape::geq(1, p("a").then(p("b")), Shape::True),
                Shape::False,
            ),
            ShapeDef::new(
                name("Inv"),
                Shape::geq(1, p("a").then(p("b").inverse()), Shape::True),
                Shape::False,
            ),
            ShapeDef::new(
                name("DoubleInv"),
                Shape::geq(1, p("a").inverse().inverse(), Shape::True),
                Shape::False,
            ),
            ShapeDef::new(
                name("InvWild"),
                Shape::geq(1, PathExpr::any_prop().inverse(), Shape::True),
                Shape::False,
            ),
        ];
        let profs = impact_profiles(&defs);
        assert!(profs[0].inv_preds.is_empty());
        assert!(!profs[0].inv_wildcard);
        assert_eq!(profs[1].inv_preds, [iri("b")].into_iter().collect());
        assert!(profs[1].preds.contains(&iri("b")), "inv_preds ⊆ preds");
        // An even number of Inverse wrappers traverses forward again.
        assert!(profs[2].inv_preds.is_empty());
        assert!(profs[3].inv_wildcard);
        assert!(profs[3].wildcard);
    }

    #[test]
    fn inverse_alphabet_closes_over_references() {
        let defs = [
            ShapeDef::new(
                name("A"),
                Shape::geq(1, p("x"), Shape::HasShape(name("B"))),
                Shape::False,
            ),
            ShapeDef::new(
                name("B"),
                Shape::geq(1, p("y").inverse(), Shape::True),
                Shape::False,
            ),
        ];
        let profs = impact_profiles(&defs);
        let a = profs.iter().find(|pr| pr.name == name("A")).unwrap();
        assert_eq!(a.inv_preds, [iri("y")].into_iter().collect());
    }

    #[test]
    fn eq_and_comparisons_read_both_sides() {
        let defs = [ShapeDef::new(
            name("S"),
            Shape::Eq(PathOrId::Path(p("a").then(p("b"))), iri("q"))
                .and(Shape::LessThan(p("v"), iri("w"))),
            Shape::False,
        )];
        let prof = &impact_profiles(&defs)[0];
        assert_eq!(
            prof.preds,
            [iri("a"), iri("b"), iri("q"), iri("v"), iri("w")]
                .into_iter()
                .collect()
        );
        assert_eq!(prof.depth, Some(2));
    }
}
