//! Passes 1–2: NNF constant folding, contradiction detection, and dead
//! pattern / trivial-constraint reporting.
//!
//! The fold walks a formula bottom-up (iteratively — `Nnf` trees can be
//! adversarially deep) computing a three-valued [`Status`] per subterm and
//! rebuilding a simplified formula. Rewrites come in two flavors:
//!
//! - **Structural** rewrites that preserve both conformance *and* the
//!   Table-2 neighborhood at every collection polarity: flattening nested
//!   `∧`/`∨`, dropping literal `⊤` conjuncts and literal `⊥` disjuncts,
//!   exact-duplicate removal, and empty/singleton normalization. These
//!   always apply.
//! - **Status** rewrites that replace a statically-valid subterm with `⊤`
//!   (or a statically-unsatisfiable one with `⊥`, or drop it from an
//!   enclosing `∧`/`∨`). These preserve conformance but can change the
//!   neighborhood, so at [`SimplifyLevel::Fragment`] they are *gated* on
//!   the collection polarity of the subterm (see [`can_true`]/[`can_false`]):
//!   a subterm `ψ ≡ ⊥` is never collected positively (no node conforms, and
//!   Table 2 only descends into conforming subterms), so `ψ → ⊥` is safe
//!   exactly where `ψ` is collected positively only — and dually for `⊤`.
//!   At [`SimplifyLevel::Validation`] only conformance matters and both
//!   rewrites always fire.
//!
//! Nesting parity tracks how collection polarity changes inside a formula:
//! the body of `≤n E.ψ` is collected as `¬ψ` (Table 2 traces endpoints
//! conforming to the negation), so parity flips there; `∧`/`∨`/`≥`/`∀`
//! pass it through unchanged.

use std::collections::BTreeMap;
use std::mem;

use shapefrag_rdf::Term;
use shapefrag_shacl::rpq::Label;
use shapefrag_shacl::{Nfa, Nnf, NodeKind, NodeTest, PathExpr};

use crate::diagnostic::{codes, Diagnostic, Severity};
use crate::refgraph::Polarity;

/// How aggressively [`fold_nnf`] may rewrite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimplifyLevel {
    /// Preserve validation results *and* neighborhood-based fragments:
    /// status rewrites only fire at pure collection polarities.
    #[default]
    Fragment,
    /// Preserve validation results only: full constant folding.
    Validation,
}

/// Three-valued static truth of a subterm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Every node conforms, in every graph.
    Valid,
    /// No node conforms, in any graph.
    Unsat,
    /// Not statically determined.
    Unknown,
}

impl Status {
    pub fn negate(self) -> Status {
        match self {
            Status::Valid => Status::Unsat,
            Status::Unsat => Status::Valid,
            Status::Unknown => Status::Unknown,
        }
    }
}

/// May a statically-valid subterm collected at `pol` become `⊤`? Safe when
/// only conformance matters, or when the subterm is collected negated only:
/// its negation `≡ ⊥` is never collected, and neither is `¬⊤`.
fn can_true(level: SimplifyLevel, pol: Polarity) -> bool {
    level == SimplifyLevel::Validation || (pol.neg && !pol.pos)
}

/// Dual of [`can_true`]: an unsatisfiable subterm collected positively only
/// is never collected at all (nothing conforms to it), so `→ ⊥` preserves
/// the fragment.
fn can_false(level: SimplifyLevel, pol: Polarity) -> bool {
    level == SimplifyLevel::Validation || (pol.pos && !pol.neg)
}

fn polarity_at(def_pol: Polarity, parity: bool) -> Polarity {
    if parity {
        Polarity {
            pos: def_pol.neg,
            neg: def_pol.pos,
        }
    } else {
        def_pol
    }
}

/// Applies the gated status rewrite to a finished subterm.
fn finalize(nnf: Nnf, status: Status, level: SimplifyLevel, pol: Polarity) -> (Nnf, Status) {
    let nnf = match status {
        Status::Valid if can_true(level, pol) => Nnf::True,
        Status::Unsat if can_false(level, pol) => Nnf::False,
        _ => nnf,
    };
    (nnf, status)
}

/// The categories of terms a [`NodeKind`] admits: `(iri, blank, literal)`.
fn kind_categories(kind: NodeKind) -> (bool, bool, bool) {
    match kind {
        NodeKind::Iri => (true, false, false),
        NodeKind::BlankNode => (false, true, false),
        NodeKind::Literal => (false, false, true),
        NodeKind::BlankNodeOrIri => (true, true, false),
        NodeKind::BlankNodeOrLiteral => (false, true, true),
        NodeKind::IriOrLiteral => (true, false, true),
    }
}

/// True when no single term can satisfy both tests.
pub fn tests_conflict(a: &NodeTest, b: &NodeTest) -> bool {
    use std::cmp::Ordering;
    let gt = |x: &shapefrag_rdf::Literal, y: &shapefrag_rdf::Literal| {
        x.value().partial_cmp_value(&y.value()) == Some(Ordering::Greater)
    };
    let ge = |x: &shapefrag_rdf::Literal, y: &shapefrag_rdf::Literal| {
        matches!(
            x.value().partial_cmp_value(&y.value()),
            Some(Ordering::Greater) | Some(Ordering::Equal)
        )
    };
    match (a, b) {
        (NodeTest::Datatype(d1), NodeTest::Datatype(d2)) => d1 != d2,
        (NodeTest::Kind(k1), NodeTest::Kind(k2)) => {
            let (i1, b1, l1) = kind_categories(*k1);
            let (i2, b2, l2) = kind_categories(*k2);
            !((i1 && i2) || (b1 && b2) || (l1 && l2))
        }
        (NodeTest::Datatype(_), NodeTest::Kind(k)) | (NodeTest::Kind(k), NodeTest::Datatype(_)) => {
            !kind_categories(*k).2
        }
        (NodeTest::MinLength(n), NodeTest::MaxLength(m))
        | (NodeTest::MaxLength(m), NodeTest::MinLength(n)) => n > m,
        (NodeTest::MinInclusive(lo), NodeTest::MaxInclusive(hi))
        | (NodeTest::MaxInclusive(hi), NodeTest::MinInclusive(lo)) => gt(lo, hi),
        (NodeTest::MinInclusive(lo), NodeTest::MaxExclusive(hi))
        | (NodeTest::MaxExclusive(hi), NodeTest::MinInclusive(lo)) => ge(lo, hi),
        (NodeTest::MinExclusive(lo), NodeTest::MaxInclusive(hi))
        | (NodeTest::MaxInclusive(hi), NodeTest::MinExclusive(lo)) => ge(lo, hi),
        (NodeTest::MinExclusive(lo), NodeTest::MaxExclusive(hi))
        | (NodeTest::MaxExclusive(hi), NodeTest::MinExclusive(lo)) => ge(lo, hi),
        _ => false,
    }
}

fn is_composite(n: &Nnf) -> bool {
    matches!(
        n,
        Nnf::And(_) | Nnf::Or(_) | Nnf::Geq(..) | Nnf::Leq(..) | Nnf::ForAll(..)
    )
}

/// Checks one ordered pair of conjuncts for a static contradiction.
fn pair_conflict_ordered(a: &Nnf, b: &Nnf) -> Option<(&'static str, String)> {
    match (a, b) {
        (Nnf::HasValue(x), Nnf::HasValue(y)) if x != y => Some((
            codes::HAS_VALUE_CONFLICT,
            format!("conflicting hasValue constraints: the node cannot be both {x} and {y}"),
        )),
        (Nnf::Geq(n, e1, inner1), Nnf::Leq(m, e2, inner2))
            if e1 == e2 && n > m && (inner1 == inner2 || matches!(**inner2, Nnf::True)) =>
        {
            Some((
                codes::CARDINALITY_CONFLICT,
                format!("cardinality conflict on path {e1}: ≥{n} and ≤{m} cannot both hold"),
            ))
        }
        (Nnf::HasValue(v), Nnf::Test(t)) if !t.satisfied_by(v) => Some((
            codes::TEST_CONFLICT,
            format!("hasValue({v}) conflicts with node test {t}"),
        )),
        (Nnf::HasValue(v), Nnf::NotTest(t)) if t.satisfied_by(v) => Some((
            codes::TEST_CONFLICT,
            format!("hasValue({v}) conflicts with negated node test {t}"),
        )),
        (Nnf::Test(t1), Nnf::Test(t2)) if tests_conflict(t1, t2) => Some((
            codes::TEST_CONFLICT,
            format!("conjoined node tests {t1} and {t2} admit no value"),
        )),
        (Nnf::Closed(allowed), Nnf::Geq(n, e, _)) if *n >= 1 && !e.is_nullable() => {
            // closed(P) forbids outgoing triples with predicates outside P.
            // A required path whose every possible first step is a forward
            // property outside P can never start.
            let steps = Nfa::compile(e).first_steps();
            let all_forbidden = !steps.is_empty()
                && steps.iter().all(|(label, inv)| {
                    !inv && matches!(label, Label::Prop(p) if !allowed.contains(p))
                });
            if all_forbidden {
                Some((
                    codes::CLOSED_CONFLICT,
                    format!(
                        "closed shape forbids every first step of required path {e} \
                         (≥{n} can never hold)"
                    ),
                ))
            } else {
                None
            }
        }
        _ => {
            if !is_composite(a) && !is_composite(b) && *b == a.negated() {
                Some((
                    codes::TEST_CONFLICT,
                    format!("mutually exclusive conjuncts: {a} and {b}"),
                ))
            } else {
                None
            }
        }
    }
}

fn pair_conflict(a: &Nnf, b: &Nnf) -> Option<(&'static str, String)> {
    pair_conflict_ordered(a, b).or_else(|| pair_conflict_ordered(b, a))
}

fn fold_leaf(
    leaf: &Nnf,
    level: SimplifyLevel,
    pol: Polarity,
    def_status: &BTreeMap<Term, Status>,
    diags: &mut Vec<Diagnostic>,
) -> (Nnf, Status) {
    let status = match leaf {
        Nnf::True => Status::Valid,
        Nnf::False => Status::Unsat,
        Nnf::Test(NodeTest::Pattern(p)) if p.never_matches() => {
            diags.push(Diagnostic::new(
                codes::DEAD_PATTERN,
                Severity::Warn,
                None,
                format!("pattern {p:?} cannot match any string; the test always fails"),
            ));
            Status::Unsat
        }
        Nnf::NotTest(NodeTest::Pattern(p)) if p.never_matches() => {
            diags.push(Diagnostic::new(
                codes::DEAD_PATTERN,
                Severity::Warn,
                None,
                format!("pattern {p:?} cannot match any string; the negated test always passes"),
            ));
            Status::Valid
        }
        // Undefined references default to ⊤ (reported by the reference
        // pass); defined ones take the folded status of their φ.
        Nnf::HasShape(name) => def_status.get(name).copied().unwrap_or(Status::Valid),
        Nnf::NotHasShape(name) => def_status
            .get(name)
            .copied()
            .unwrap_or(Status::Valid)
            .negate(),
        _ => Status::Unknown,
    };
    finalize(leaf.clone(), status, level, pol)
}

fn fold_and(
    children: Vec<(Nnf, Status)>,
    level: SimplifyLevel,
    pol: Polarity,
    diags: &mut Vec<Diagnostic>,
) -> (Nnf, Status) {
    let mut status = if children.iter().any(|(_, s)| *s == Status::Unsat) {
        Status::Unsat
    } else if children.iter().all(|(_, s)| *s == Status::Valid) {
        Status::Valid
    } else {
        Status::Unknown
    };
    let mut conjuncts: Vec<Nnf> = Vec::new();
    for (mut n, st) in children {
        if matches!(n, Nnf::True) {
            continue; // B(⊤) = ∅: always safe to drop from ∧.
        }
        if st == Status::Valid && can_true(level, pol) {
            continue; // Gated: a valid conjunct never constrains conformance.
        }
        if let Nnf::And(items) = &mut n {
            for item in mem::take(items) {
                if !matches!(item, Nnf::True) && !conjuncts.contains(&item) {
                    conjuncts.push(item);
                }
            }
        } else if !conjuncts.contains(&n) {
            conjuncts.push(n);
        }
    }
    for i in 0..conjuncts.len() {
        for j in i + 1..conjuncts.len() {
            if let Some((code, message)) = pair_conflict(&conjuncts[i], &conjuncts[j]) {
                diags.push(Diagnostic::new(code, Severity::Deny, None, message));
                status = Status::Unsat;
            }
        }
    }
    let nnf = match conjuncts.len() {
        0 => Nnf::True,
        1 => conjuncts.pop().expect("len checked"),
        _ => Nnf::And(conjuncts),
    };
    finalize(nnf, status, level, pol)
}

fn fold_or(children: Vec<(Nnf, Status)>, level: SimplifyLevel, pol: Polarity) -> (Nnf, Status) {
    let status = if children.iter().any(|(_, s)| *s == Status::Valid) {
        Status::Valid
    } else if children.iter().all(|(_, s)| *s == Status::Unsat) {
        Status::Unsat
    } else {
        Status::Unknown
    };
    let mut disjuncts: Vec<Nnf> = Vec::new();
    for (mut n, st) in children {
        if matches!(n, Nnf::False) {
            continue; // ⊥ never conforms, so ∨ never collects it.
        }
        if st == Status::Unsat && can_false(level, pol) {
            continue; // Gated: an unsatisfiable disjunct never helps.
        }
        if let Nnf::Or(items) = &mut n {
            for item in mem::take(items) {
                if !matches!(item, Nnf::False) && !disjuncts.contains(&item) {
                    disjuncts.push(item);
                }
            }
        } else if !disjuncts.contains(&n) {
            disjuncts.push(n);
        }
    }
    let nnf = match disjuncts.len() {
        0 => Nnf::False,
        1 => disjuncts.pop().expect("len checked"),
        _ => Nnf::Or(disjuncts),
    };
    finalize(nnf, status, level, pol)
}

#[allow(clippy::too_many_arguments)]
fn fold_geq(
    k: u32,
    e: &PathExpr,
    inner: Nnf,
    inner_status: Status,
    level: SimplifyLevel,
    pol: Polarity,
    diags: &mut Vec<Diagnostic>,
) -> (Nnf, Status) {
    let status = if k == 0 {
        diags.push(Diagnostic::new(
            codes::TRIVIAL_CONSTRAINT,
            Severity::Warn,
            None,
            format!("≥0 {e} is trivially satisfied"),
        ));
        Status::Valid
    } else if inner_status == Status::Unsat {
        Status::Unsat
    } else if k == 1 && e.is_nullable() && inner_status == Status::Valid {
        // A nullable path always yields the focus node itself.
        Status::Valid
    } else {
        Status::Unknown
    };
    finalize(Nnf::Geq(k, e.clone(), Box::new(inner)), status, level, pol)
}

#[allow(clippy::too_many_arguments)]
fn fold_leq(
    k: u32,
    e: &PathExpr,
    inner: Nnf,
    inner_status: Status,
    level: SimplifyLevel,
    pol: Polarity,
    diags: &mut Vec<Diagnostic>,
) -> (Nnf, Status) {
    let status = if inner_status == Status::Unsat {
        Status::Valid // Zero qualifying endpoints: ≤k holds for any k.
    } else if k == 0 && e.is_nullable() && inner_status == Status::Valid {
        if matches!(inner, Nnf::True) {
            diags.push(Diagnostic::new(
                codes::LEQ_ZERO_NULLABLE,
                Severity::Deny,
                None,
                format!(
                    "≤0 {e} over a nullable path can never hold: the focus node \
                     itself always matches"
                ),
            ));
        }
        Status::Unsat
    } else {
        Status::Unknown
    };
    finalize(Nnf::Leq(k, e.clone(), Box::new(inner)), status, level, pol)
}

fn fold_forall(
    e: &PathExpr,
    inner: Nnf,
    inner_status: Status,
    level: SimplifyLevel,
    pol: Polarity,
) -> (Nnf, Status) {
    let status = match inner_status {
        Status::Valid => Status::Valid,
        Status::Unsat if e.is_nullable() => Status::Unsat,
        _ => Status::Unknown,
    };
    finalize(Nnf::ForAll(e.clone(), Box::new(inner)), status, level, pol)
}

/// Folds one formula bottom-up. `def_pol` is the collection polarity of the
/// enclosing definition (from the reference pass); `def_status` maps each
/// *defined* name to the folded status of its shape expression (`Unknown`
/// entries are fine — e.g. in recursive schemas).
///
/// Returns the rewritten formula, its status, and the findings (without
/// shape attribution or spans — the caller adds those).
pub fn fold_nnf(
    root: &Nnf,
    level: SimplifyLevel,
    def_pol: Polarity,
    def_status: &BTreeMap<Term, Status>,
) -> (Nnf, Status, Vec<Diagnostic>) {
    enum Job<'a> {
        Enter(&'a Nnf, bool),
        Exit(&'a Nnf, bool),
    }
    let mut jobs = vec![Job::Enter(root, false)];
    let mut built: Vec<(Nnf, Status)> = Vec::new();
    let mut diags: Vec<Diagnostic> = Vec::new();
    while let Some(job) = jobs.pop() {
        match job {
            Job::Enter(n, parity) => match n {
                Nnf::And(items) | Nnf::Or(items) => {
                    jobs.push(Job::Exit(n, parity));
                    for item in items.iter().rev() {
                        jobs.push(Job::Enter(item, parity));
                    }
                }
                Nnf::Geq(_, _, inner) | Nnf::ForAll(_, inner) => {
                    jobs.push(Job::Exit(n, parity));
                    jobs.push(Job::Enter(inner, parity));
                }
                Nnf::Leq(_, _, inner) => {
                    jobs.push(Job::Exit(n, parity));
                    // ≤ bodies are collected negated: parity flips.
                    jobs.push(Job::Enter(inner, !parity));
                }
                leaf => {
                    let pol = polarity_at(def_pol, parity);
                    built.push(fold_leaf(leaf, level, pol, def_status, &mut diags));
                }
            },
            Job::Exit(n, parity) => {
                let pol = polarity_at(def_pol, parity);
                let result = match n {
                    Nnf::And(items) => {
                        let children = built.split_off(built.len() - items.len());
                        fold_and(children, level, pol, &mut diags)
                    }
                    Nnf::Or(items) => {
                        let children = built.split_off(built.len() - items.len());
                        fold_or(children, level, pol)
                    }
                    Nnf::Geq(k, e, _) => {
                        let (inner, st) = built.pop().expect("worklist balance");
                        fold_geq(*k, e, inner, st, level, pol, &mut diags)
                    }
                    Nnf::Leq(k, e, _) => {
                        let (inner, st) = built.pop().expect("worklist balance");
                        // The body was folded at flipped parity.
                        fold_leq(*k, e, inner, st, level, pol, &mut diags)
                    }
                    Nnf::ForAll(e, _) => {
                        let (inner, st) = built.pop().expect("worklist balance");
                        fold_forall(e, inner, st, level, pol)
                    }
                    _ => unreachable!("only composites take the Exit path"),
                };
                built.push(result);
            }
        }
    }
    debug_assert_eq!(built.len(), 1);
    let (nnf, status) = built.pop().expect("worklist produces exactly one result");
    (nnf, status, diags)
}

/// Scans every path expression in a formula for redundant operators
/// (`(E?)?`, `(E*)*`, `(E*)?`, `(E?)*`) — legal, but they bloat the
/// compiled NFA for no semantic gain. Reports only; path rewrites could
/// change recorded traces, so none are performed.
pub fn path_warnings(root: &Nnf) -> Vec<Diagnostic> {
    use shapefrag_shacl::shape::PathOrId;
    let mut out = Vec::new();
    let mut formulas: Vec<&Nnf> = vec![root];
    let mut paths: Vec<&PathExpr> = Vec::new();
    while let Some(n) = formulas.pop() {
        match n {
            Nnf::And(items) | Nnf::Or(items) => formulas.extend(items.iter()),
            Nnf::Geq(_, e, inner) | Nnf::Leq(_, e, inner) => {
                paths.push(e);
                formulas.push(inner);
            }
            Nnf::ForAll(e, inner) => {
                paths.push(e);
                formulas.push(inner);
            }
            Nnf::UniqueLang(e) | Nnf::NotUniqueLang(e) => paths.push(e),
            Nnf::Eq(PathOrId::Path(e), _)
            | Nnf::NotEq(PathOrId::Path(e), _)
            | Nnf::Disj(PathOrId::Path(e), _)
            | Nnf::NotDisj(PathOrId::Path(e), _) => paths.push(e),
            Nnf::LessThan(e, _)
            | Nnf::NotLessThan(e, _)
            | Nnf::LessThanEq(e, _)
            | Nnf::NotLessThanEq(e, _)
            | Nnf::MoreThan(e, _)
            | Nnf::NotMoreThan(e, _)
            | Nnf::MoreThanEq(e, _)
            | Nnf::NotMoreThanEq(e, _) => paths.push(e),
            _ => {}
        }
    }
    while let Some(p) = paths.pop() {
        match p {
            PathExpr::ZeroOrOne(inner) => {
                match inner.as_ref() {
                    PathExpr::ZeroOrOne(_) => out.push(redundant_op(p, "(E?)? ≡ E?")),
                    PathExpr::ZeroOrMore(_) => out.push(redundant_op(p, "(E*)? ≡ E*")),
                    _ => {}
                }
                paths.push(inner);
            }
            PathExpr::ZeroOrMore(inner) => {
                match inner.as_ref() {
                    PathExpr::ZeroOrMore(_) => out.push(redundant_op(p, "(E*)* ≡ E*")),
                    PathExpr::ZeroOrOne(_) => out.push(redundant_op(p, "(E?)* ≡ E*")),
                    _ => {}
                }
                paths.push(inner);
            }
            PathExpr::Inverse(inner) => paths.push(inner),
            PathExpr::Seq(a, b) | PathExpr::Alt(a, b) => {
                paths.push(a);
                paths.push(b);
            }
            _ => {}
        }
    }
    out
}

fn redundant_op(path: &PathExpr, law: &str) -> Diagnostic {
    Diagnostic::new(
        codes::REDUNDANT_PATH_OP,
        Severity::Warn,
        None,
        format!("redundant path operator in {path}: {law}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapefrag_rdf::Literal;

    fn p(n: &str) -> PathExpr {
        PathExpr::prop(format!("http://e/{n}"))
    }

    fn pos() -> Polarity {
        Polarity {
            pos: true,
            neg: false,
        }
    }

    fn fold_frag(n: &Nnf) -> (Nnf, Status, Vec<Diagnostic>) {
        fold_nnf(n, SimplifyLevel::Fragment, pos(), &BTreeMap::new())
    }

    fn fold_val(n: &Nnf) -> (Nnf, Status, Vec<Diagnostic>) {
        fold_nnf(n, SimplifyLevel::Validation, pos(), &BTreeMap::new())
    }

    #[test]
    fn literal_true_dropped_from_and_at_fragment_level() {
        let n = Nnf::And(vec![Nnf::True, Nnf::HasValue(Term::iri("http://e/c"))]);
        let (out, st, _) = fold_frag(&n);
        assert_eq!(out, Nnf::HasValue(Term::iri("http://e/c")));
        assert_eq!(st, Status::Unknown);
    }

    #[test]
    fn geq_zero_is_trivial_but_not_rewritten_at_fragment_level() {
        let n = Nnf::Geq(0, p("a"), Box::new(Nnf::True));
        let (out, st, diags) = fold_frag(&n);
        // Status is known valid and W001 fires, but the quantifier's
        // neighborhood (its path traces) must survive at fragment level.
        assert_eq!(st, Status::Valid);
        assert!(diags.iter().any(|d| d.code == codes::TRIVIAL_CONSTRAINT));
        assert!(matches!(out, Nnf::Geq(0, _, _)));
        // At validation level it folds away entirely.
        let (out, _, _) = fold_val(&n);
        assert_eq!(out, Nnf::True);
    }

    #[test]
    fn cardinality_conflict_detected() {
        let n = Nnf::And(vec![
            Nnf::Geq(3, p("a"), Box::new(Nnf::True)),
            Nnf::Leq(1, p("a"), Box::new(Nnf::True)),
        ]);
        let (out, st, diags) = fold_frag(&n);
        assert_eq!(st, Status::Unsat);
        assert!(diags.iter().any(|d| d.code == codes::CARDINALITY_CONFLICT));
        // Pure-pos polarity permits the ⊥ rewrite even at fragment level.
        assert_eq!(out, Nnf::False);
    }

    #[test]
    fn has_value_conflict_detected() {
        let n = Nnf::And(vec![
            Nnf::HasValue(Term::iri("http://e/a")),
            Nnf::HasValue(Term::iri("http://e/b")),
        ]);
        let (_, st, diags) = fold_frag(&n);
        assert_eq!(st, Status::Unsat);
        assert!(diags.iter().any(|d| d.code == codes::HAS_VALUE_CONFLICT));
    }

    #[test]
    fn test_conflicts_detected() {
        // Disjoint datatypes.
        let n = Nnf::And(vec![
            Nnf::Test(NodeTest::Datatype(shapefrag_rdf::vocab::xsd::integer())),
            Nnf::Test(NodeTest::Datatype(shapefrag_rdf::vocab::xsd::string())),
        ]);
        assert_eq!(fold_frag(&n).1, Status::Unsat);
        // Inverted length bounds.
        let n = Nnf::And(vec![
            Nnf::Test(NodeTest::MinLength(5)),
            Nnf::Test(NodeTest::MaxLength(2)),
        ]);
        assert_eq!(fold_frag(&n).1, Status::Unsat);
        // Inverted value range.
        let n = Nnf::And(vec![
            Nnf::Test(NodeTest::MinInclusive(Literal::integer(10))),
            Nnf::Test(NodeTest::MaxInclusive(Literal::integer(3))),
        ]);
        assert_eq!(fold_frag(&n).1, Status::Unsat);
        // hasValue violating a test.
        let n = Nnf::And(vec![
            Nnf::HasValue(Term::iri("http://e/a")),
            Nnf::Test(NodeTest::Kind(NodeKind::Literal)),
        ]);
        let (_, st, diags) = fold_frag(&n);
        assert_eq!(st, Status::Unsat);
        assert!(diags.iter().any(|d| d.code == codes::TEST_CONFLICT));
        // Dual atoms.
        let t = NodeTest::MinLength(3);
        let n = Nnf::And(vec![Nnf::Test(t.clone()), Nnf::NotTest(t)]);
        assert_eq!(fold_frag(&n).1, Status::Unsat);
    }

    #[test]
    fn compatible_range_is_not_a_conflict() {
        let n = Nnf::And(vec![
            Nnf::Test(NodeTest::MinInclusive(Literal::integer(1))),
            Nnf::Test(NodeTest::MaxInclusive(Literal::integer(10))),
        ]);
        let (_, st, diags) = fold_frag(&n);
        assert_eq!(st, Status::Unknown);
        assert!(diags.is_empty());
    }

    #[test]
    fn closed_conflict_detected() {
        let allowed: std::collections::BTreeSet<_> = [shapefrag_rdf::Iri::new("http://e/ok")]
            .into_iter()
            .collect();
        let n = Nnf::And(vec![
            Nnf::Closed(allowed.clone()),
            Nnf::Geq(1, p("forbidden"), Box::new(Nnf::True)),
        ]);
        let (_, st, diags) = fold_frag(&n);
        assert_eq!(st, Status::Unsat);
        assert!(diags.iter().any(|d| d.code == codes::CLOSED_CONFLICT));
        // An allowed first step is fine.
        let n = Nnf::And(vec![
            Nnf::Closed(allowed.clone()),
            Nnf::Geq(1, PathExpr::prop("http://e/ok"), Box::new(Nnf::True)),
        ]);
        assert!(fold_frag(&n).2.is_empty());
        // Inverse steps are incoming triples: closed does not constrain them.
        let n = Nnf::And(vec![
            Nnf::Closed(allowed),
            Nnf::Geq(1, p("forbidden").inverse(), Box::new(Nnf::True)),
        ]);
        assert!(fold_frag(&n).2.is_empty());
    }

    #[test]
    fn leq_zero_nullable_is_unsat() {
        let n = Nnf::Leq(0, p("a").opt(), Box::new(Nnf::True));
        let (_, st, diags) = fold_frag(&n);
        assert_eq!(st, Status::Unsat);
        assert!(diags.iter().any(|d| d.code == codes::LEQ_ZERO_NULLABLE));
        // Non-nullable path: fine (counts only proper successors).
        let n = Nnf::Leq(0, p("a"), Box::new(Nnf::True));
        assert_eq!(fold_frag(&n).1, Status::Unknown);
    }

    #[test]
    fn dead_pattern_reported() {
        let t = NodeTest::pattern("a$b", "").expect("parses");
        let n = Nnf::Test(t);
        let (_, st, diags) = fold_frag(&n);
        assert_eq!(st, Status::Unsat);
        assert!(diags.iter().any(|d| d.code == codes::DEAD_PATTERN));
    }

    #[test]
    fn leq_body_polarity_gates_flip() {
        // Def collected pos-only. Inside a ≤ body the collection polarity is
        // negative, so a valid subterm MAY fold to ⊤ there at fragment level.
        let n = Nnf::Leq(
            2,
            p("a"),
            Box::new(Nnf::And(vec![
                Nnf::Geq(0, p("b"), Box::new(Nnf::True)),
                Nnf::HasValue(Term::iri("http://e/c")),
            ])),
        );
        let (out, _, _) = fold_frag(&n);
        match &out {
            Nnf::Leq(2, _, inner) => {
                assert_eq!(**inner, Nnf::HasValue(Term::iri("http://e/c")));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn statuses_propagate_through_references() {
        let mut def_status = BTreeMap::new();
        def_status.insert(Term::iri("http://e/Bad"), Status::Unsat);
        let n = Nnf::HasShape(Term::iri("http://e/Bad"));
        let (out, st, _) = fold_nnf(&n, SimplifyLevel::Validation, pos(), &def_status);
        assert_eq!(st, Status::Unsat);
        assert_eq!(out, Nnf::False);
        let n = Nnf::NotHasShape(Term::iri("http://e/Bad"));
        let (_, st, _) = fold_nnf(&n, SimplifyLevel::Validation, pos(), &def_status);
        assert_eq!(st, Status::Valid);
    }

    #[test]
    fn or_of_duplicates_collapses() {
        let c = Nnf::HasValue(Term::iri("http://e/c"));
        let n = Nnf::Or(vec![c.clone(), Nnf::False, c.clone()]);
        let (out, _, _) = fold_frag(&n);
        assert_eq!(out, c);
    }

    #[test]
    fn redundant_path_ops_reported() {
        let n = Nnf::Geq(1, p("a").star().star(), Box::new(Nnf::True));
        let diags = path_warnings(&n);
        assert!(diags.iter().any(|d| d.code == codes::REDUNDANT_PATH_OP));
        let n = Nnf::Geq(1, p("a").opt().opt(), Box::new(Nnf::True));
        assert!(!path_warnings(&n).is_empty());
        let n = Nnf::Geq(1, p("a").star(), Box::new(Nnf::True));
        assert!(path_warnings(&n).is_empty());
    }
}
