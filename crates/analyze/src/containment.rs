//! Containment analysis over the NNF shape algebra.
//!
//! A *sound but incomplete* subsumption judgment `φ ⊑ ψ`: whenever
//! [`subsumes`] returns `true`, every node conformant to `φ` is conformant
//! to `ψ` on every graph (and contrapositively, every node non-conformant
//! to `ψ` is non-conformant to `φ`). `false` means the judgment could not
//! be *derived* — it never refutes containment. The rule system (DESIGN.md
//! §15) is syntax-directed over [`Nnf`]:
//!
//! - **Boolean structure** — `∨`-elimination and `∧`-introduction first
//!   (they lose nothing), then `∧`-weakening and `∨`-introduction.
//! - **Quantifiers** — `≥n E.α ⊑ ≥m F.β` when `n ≥ m`, `L(E) ⊆ L(F)` and
//!   `α ⊑ β`; `≤n E.α ⊑ ≤m F.β` when `n ≤ m`, `L(F) ⊆ L(E)` and `β ⊑ α`
//!   (anti-monotone body); `∀E.α ⊑ ∀F.β` when `L(F) ⊆ L(E)` and `α ⊑ β`.
//!   Path-language inclusion is decided by
//!   [`Nfa::language_included_in`](shapefrag_shacl::rpq::Nfa), a product /
//!   subset-construction check on the compiled path automata.
//! - **Node tests** — interval inclusion on value ranges and lengths, node
//!   kind category subsets, `test ⊑ ¬test'` through
//!   [`tests_conflict`](crate::fold::tests_conflict), and constant
//!   propagation through `hasValue`.
//! - **References** — `hasShape(a) ⊑ hasShape(b)` coinductively: the pair
//!   is assumed while the dereferenced bodies are compared, so mutually
//!   recursive definitions are handled without divergence.
//!   `¬hasShape(a) ⊑ ¬hasShape(b)` is the contravariant instance.
//!   Asymmetric occurrences unfold one definition (guarded, so cyclic
//!   schemas cannot loop).
//!
//! The per-schema [`ContainmentMatrix`] folds the judgment with the
//! `{Valid, Unsat, Unknown}` status lattice (`Unsat ⊑ anything`,
//! `anything ⊑ Valid`) and is the artifact the validator's
//! subsumption-keyed memo, the batch planner's shape skipping, and the
//! serve fragment cache all key off.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet};
use std::hash::{Hash, Hasher};
use std::rc::Rc;

use shapefrag_rdf::Term;
use shapefrag_shacl::node_test::{NodeKind, NodeTest};
use shapefrag_shacl::rpq::Nfa;
use shapefrag_shacl::validator::{schema_fingerprint, ContainmentIndex};
use shapefrag_shacl::{Nnf, PathExpr, Schema, ShapeDef};

use crate::diagnostic::{codes, Diagnostic, Severity};
use crate::fold::{self, SimplifyLevel, Status};
use crate::refgraph;

/// Total rule applications allowed per top-level query; exhaustion means
/// "could not derive" (sound). Generously above anything a real schema
/// needs — the 57-shape suite's deepest query uses well under 100.
const FUEL: u32 = 50_000;

/// One sound subsumption query: `true` ⇒ `φ ⊑ ψ` over the definitions in
/// `defs` (used to dereference `hasShape` atoms; absent names default to
/// `⊤`, matching [`Schema::def`]).
pub fn subsumes(defs: &[ShapeDef], phi: &Nnf, psi: &Nnf) -> bool {
    Checker::new(defs).query(phi, psi)
}

/// The syntax-directed derivation engine. One instance amortizes the
/// lazily converted definition NNFs and the path-inclusion cache across
/// many queries (the matrix runs `n²` of them).
struct Checker<'a> {
    env: BTreeMap<&'a Term, &'a ShapeDef>,
    /// Lazily built NNF of each definition body (positive polarity).
    pos: BTreeMap<Term, Rc<Nnf>>,
    /// Lazily built NNF of each *negated* definition body.
    neg: BTreeMap<Term, Rc<Nnf>>,
    /// Name pairs `(a, b)` with `def(a) ⊑ def(b)` already established at
    /// top level (matrix edges proven earlier); usable as facts.
    facts: BTreeSet<(Term, Term)>,
    /// Coinductive hypothesis set for the current query.
    assumed: BTreeSet<(Term, Term)>,
    /// Names currently being unfolded asymmetrically (cycle guard), split
    /// by which side of the judgment the unfolding happened on.
    unfolding: BTreeSet<(Term, bool)>,
    /// Path-language inclusion cache: `(E, F) → L(E) ⊆ L(F)`.
    paths: BTreeMap<(PathExpr, PathExpr), bool>,
    fuel: u32,
}

impl<'a> Checker<'a> {
    fn new(defs: &'a [ShapeDef]) -> Checker<'a> {
        Checker {
            env: defs.iter().map(|d| (&d.name, d)).collect(),
            pos: BTreeMap::new(),
            neg: BTreeMap::new(),
            facts: BTreeSet::new(),
            assumed: BTreeSet::new(),
            unfolding: BTreeSet::new(),
            paths: BTreeMap::new(),
            fuel: 0,
        }
    }

    /// Runs one top-level query with fresh fuel and hypothesis state.
    fn query(&mut self, phi: &Nnf, psi: &Nnf) -> bool {
        self.fuel = FUEL;
        self.assumed.clear();
        self.unfolding.clear();
        self.sub(phi, psi)
    }

    /// NNF of `def(name)` (or `⊤` when undefined, like [`Schema::def`]).
    fn pos_nnf(&mut self, name: &Term) -> Rc<Nnf> {
        if let Some(n) = self.pos.get(name) {
            return Rc::clone(n);
        }
        let nnf = Rc::new(match self.env.get(name) {
            Some(def) => Nnf::from_shape(&def.shape),
            None => Nnf::True,
        });
        self.pos.insert(name.clone(), Rc::clone(&nnf));
        nnf
    }

    /// NNF of `¬def(name)`.
    fn neg_nnf(&mut self, name: &Term) -> Rc<Nnf> {
        if let Some(n) = self.neg.get(name) {
            return Rc::clone(n);
        }
        let nnf = Rc::new(match self.env.get(name) {
            Some(def) => Nnf::from_negated_shape(&def.shape),
            None => Nnf::False,
        });
        self.neg.insert(name.clone(), Rc::clone(&nnf));
        nnf
    }

    /// `L(e) ⊆ L(f)`, cached. Syntactic equality short-circuits the
    /// automaton construction.
    fn path_included(&mut self, e: &PathExpr, f: &PathExpr) -> bool {
        if e == f {
            return true;
        }
        let key = (e.clone(), f.clone());
        if let Some(&hit) = self.paths.get(&key) {
            return hit;
        }
        let ok = Nfa::compile(e).language_included_in(&Nfa::compile(f));
        self.paths.insert(key, ok);
        ok
    }

    /// `def(a) ⊑ def(b)` with the coinductive hypothesis rule: the pair is
    /// assumed while the bodies are compared, so a recursive reference back
    /// to `(a, b)` discharges instead of diverging.
    fn name_subsumes(&mut self, a: &Term, b: &Term) -> bool {
        if a == b || self.facts.contains(&(a.clone(), b.clone())) {
            return true;
        }
        let key = (a.clone(), b.clone());
        if self.assumed.contains(&key) {
            return true;
        }
        self.assumed.insert(key.clone());
        let pa = self.pos_nnf(a);
        let pb = self.pos_nnf(b);
        let ok = self.sub(&pa, &pb);
        self.assumed.remove(&key);
        ok
    }

    /// The judgment `φ ⊑ ψ`. Syntax-directed; every `true` is backed by a
    /// sound rule, `false` merely means no rule applied.
    fn sub(&mut self, phi: &Nnf, psi: &Nnf) -> bool {
        if self.fuel == 0 {
            return false;
        }
        self.fuel -= 1;
        // Reflexivity and the lattice bounds.
        if phi == psi || is_bot(phi) || is_top(psi) {
            return true;
        }
        // Complete boolean decompositions: a disjunction is contained iff
        // every disjunct is; a conjunction contains iff every conjunct does.
        if let Nnf::Or(items) = phi {
            return items.iter().all(|t| self.sub(t, psi));
        }
        if let Nnf::And(items) = psi {
            return items.iter().all(|t| self.sub(phi, t));
        }
        // Reference pairs take the coinductive rule before any unfolding.
        match (phi, psi) {
            (Nnf::HasShape(a), Nnf::HasShape(b)) => return self.name_subsumes(a, b),
            (Nnf::NotHasShape(a), Nnf::NotHasShape(b)) => return self.name_subsumes(b, a),
            _ => {}
        }
        // Weakening: one conjunct of φ suffices; one disjunct of ψ suffices.
        if let Nnf::And(items) = phi {
            if items.iter().any(|t| self.sub(t, psi)) {
                return true;
            }
        }
        if let Nnf::Or(items) = psi {
            if items.iter().any(|t| self.sub(phi, t)) {
                return true;
            }
        }
        // Quantifiers, node tests, constants, closedness.
        let direct = match (phi, psi) {
            (Nnf::Geq(n, e, a), Nnf::Geq(m, f, b)) => {
                n >= m && self.path_included(e, f) && self.sub(a, b)
            }
            (Nnf::Leq(n, e, a), Nnf::Leq(m, f, b)) => {
                n <= m && self.path_included(f, e) && self.sub(b, a)
            }
            (Nnf::ForAll(e, a), Nnf::ForAll(f, b)) => self.path_included(f, e) && self.sub(a, b),
            // ≤0 E.⊤ means "no E-successors at all": any ∀ over a
            // sub-language of E is then vacuous.
            (Nnf::Leq(0, e, a), Nnf::ForAll(f, _)) => is_top(a) && self.path_included(f, e),
            (Nnf::Test(a), Nnf::Test(b)) => test_implies(a, b),
            (Nnf::Test(a), Nnf::NotTest(b)) => fold::tests_conflict(a, b),
            (Nnf::NotTest(a), Nnf::NotTest(b)) => test_implies(b, a),
            (Nnf::Test(a), Nnf::NotHasValue(v)) => !a.satisfied_by(v),
            (Nnf::NotTest(a), Nnf::NotHasValue(v)) => a.satisfied_by(v),
            (Nnf::HasValue(v), Nnf::Test(b)) => b.satisfied_by(v),
            (Nnf::HasValue(v), Nnf::NotTest(b)) => !b.satisfied_by(v),
            (Nnf::HasValue(v), Nnf::NotHasValue(w)) => v != w,
            (Nnf::Closed(p), Nnf::Closed(q)) => p.is_subset(q),
            (Nnf::NotClosed(p), Nnf::NotClosed(q)) => q.is_subset(p),
            (Nnf::UniqueLang(e), Nnf::UniqueLang(f)) => self.path_included(f, e),
            (Nnf::NotUniqueLang(e), Nnf::NotUniqueLang(f)) => self.path_included(e, f),
            _ => false,
        };
        if direct {
            return true;
        }
        // Asymmetric reference unfolding, each guarded per (name, side) so
        // cyclic definitions terminate (the guard refuses re-entry).
        if let Nnf::HasShape(a) = phi {
            if self.unfold(a, true, |c| {
                let body = c.pos_nnf(a);
                c.sub(&body, psi)
            }) {
                return true;
            }
        }
        if let Nnf::NotHasShape(a) = phi {
            if self.unfold(a, true, |c| {
                let body = c.neg_nnf(a);
                c.sub(&body, psi)
            }) {
                return true;
            }
        }
        if let Nnf::HasShape(b) = psi {
            if self.unfold(b, false, |c| {
                let body = c.pos_nnf(b);
                c.sub(phi, &body)
            }) {
                return true;
            }
        }
        if let Nnf::NotHasShape(b) = psi {
            if self.unfold(b, false, |c| {
                let body = c.neg_nnf(b);
                c.sub(phi, &body)
            }) {
                return true;
            }
        }
        false
    }

    /// Runs `body` with `(name, left)` marked as unfolding; returns `false`
    /// without recursing when the mark is already set.
    fn unfold(&mut self, name: &Term, left: bool, body: impl FnOnce(&mut Self) -> bool) -> bool {
        let key = (name.clone(), left);
        if !self.unfolding.insert(key.clone()) {
            return false;
        }
        let ok = body(self);
        self.unfolding.remove(&key);
        ok
    }
}

/// Syntactic tautology check: `true` ⇒ every node satisfies the formula.
fn is_top(n: &Nnf) -> bool {
    match n {
        Nnf::True => true,
        Nnf::Geq(0, _, _) => true,
        Nnf::Leq(_, _, inner) => is_bot(inner),
        Nnf::ForAll(_, inner) => is_top(inner),
        Nnf::And(items) => items.iter().all(is_top),
        Nnf::Or(items) => items.iter().any(is_top),
        _ => false,
    }
}

/// Syntactic unsatisfiability check: `true` ⇒ no node satisfies it.
fn is_bot(n: &Nnf) -> bool {
    match n {
        Nnf::False => true,
        Nnf::Geq(k, _, inner) => *k >= 1 && is_bot(inner),
        // The identity pair makes a nullable path's count at least one.
        Nnf::Leq(0, e, inner) => e.is_nullable() && is_top(inner),
        Nnf::And(items) => items.iter().any(is_bot),
        Nnf::Or(items) => items.iter().all(is_bot),
        _ => false,
    }
}

/// Node-kind category bits: IRI / blank / literal.
fn kind_bits(k: NodeKind) -> u8 {
    match k {
        NodeKind::Iri => 0b001,
        NodeKind::BlankNode => 0b010,
        NodeKind::Literal => 0b100,
        NodeKind::BlankNodeOrIri => 0b011,
        NodeKind::BlankNodeOrLiteral => 0b110,
        NodeKind::IriOrLiteral => 0b101,
    }
}

/// Sound implication between node tests: `true` ⇒ every node satisfying
/// `a` satisfies `b`.
pub fn test_implies(a: &NodeTest, b: &NodeTest) -> bool {
    use std::cmp::Ordering::{Greater, Less};
    if a == b {
        return true;
    }
    let cmp = |x: &shapefrag_rdf::Literal, y: &shapefrag_rdf::Literal| {
        x.value().partial_cmp_value(&y.value())
    };
    match (a, b) {
        (NodeTest::Kind(x), NodeTest::Kind(y)) => kind_bits(*x) & !kind_bits(*y) == 0,
        // Tests only literals can pass imply any literal-admitting kind.
        (
            NodeTest::Datatype(_)
            | NodeTest::Language(_)
            | NodeTest::MinExclusive(_)
            | NodeTest::MinInclusive(_)
            | NodeTest::MaxExclusive(_)
            | NodeTest::MaxInclusive(_),
            NodeTest::Kind(y),
        ) => kind_bits(*y) & 0b100 != 0,
        // Length and pattern tests need a string representation, which
        // only IRIs and literals have.
        (
            NodeTest::MinLength(_) | NodeTest::MaxLength(_) | NodeTest::Pattern(_),
            NodeTest::Kind(y),
        ) => kind_bits(*y) & 0b101 == 0b101,
        (NodeTest::Language(_), NodeTest::Datatype(dt)) => {
            *dt == shapefrag_rdf::vocab::rdf::lang_string()
        }
        // Interval inclusion on the value order. Comparability of the two
        // bounds pins both to the same value family, so transitivity holds
        // for any node the stricter bound admits.
        (NodeTest::MinInclusive(x), NodeTest::MinInclusive(y))
        | (NodeTest::MinExclusive(x), NodeTest::MinInclusive(y))
        | (NodeTest::MinExclusive(x), NodeTest::MinExclusive(y)) => {
            cmp(x, y).is_some_and(|o| o != Less)
        }
        (NodeTest::MinInclusive(x), NodeTest::MinExclusive(y)) => cmp(x, y) == Some(Greater),
        (NodeTest::MaxInclusive(x), NodeTest::MaxInclusive(y))
        | (NodeTest::MaxExclusive(x), NodeTest::MaxInclusive(y))
        | (NodeTest::MaxExclusive(x), NodeTest::MaxExclusive(y)) => {
            cmp(x, y).is_some_and(|o| o != Greater)
        }
        (NodeTest::MaxInclusive(x), NodeTest::MaxExclusive(y)) => cmp(x, y) == Some(Less),
        (NodeTest::MinLength(x), NodeTest::MinLength(y)) => x >= y,
        (NodeTest::MaxLength(x), NodeTest::MaxLength(y)) => x <= y,
        _ => false,
    }
}

/// The containment relation of one schema, as a reusable artifact.
///
/// `names` is in sorted (dense-id) order, matching [`Schema::name_id`], so
/// edge endpoints double as the validator's shape ids. An edge `(sub,
/// sup)` asserts `shape(names[sub]) ⊑ shape(names[sup])` — over the
/// definitions' *shape expressions*, which is exactly what the
/// conformance memo caches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContainmentMatrix {
    /// Definition names, sorted; index = dense shape id.
    pub names: Vec<Term>,
    /// Folded `{Valid, Unsat, Unknown}` status per definition.
    pub statuses: Vec<Status>,
    /// Proper containment edges `(sub, sup)`, `sub ≠ sup`, sorted.
    pub edges: Vec<(u32, u32)>,
}

impl ContainmentMatrix {
    /// Computes the matrix over raw definitions (cycles tolerated — the
    /// coinductive rule handles them; statuses fall back to `Unknown`).
    pub fn of_defs(defs: &[ShapeDef]) -> ContainmentMatrix {
        let mut names: Vec<Term> = defs.iter().map(|d| d.name.clone()).collect();
        names.sort();
        names.dedup();
        let status_by_name = def_statuses(defs);
        let statuses: Vec<Status> = names
            .iter()
            .map(|n| status_by_name.get(n).copied().unwrap_or(Status::Unknown))
            .collect();
        let by_name: BTreeMap<&Term, &ShapeDef> = defs.iter().map(|d| (&d.name, d)).collect();
        let nnfs: Vec<Nnf> = names
            .iter()
            .map(|n| Nnf::from_shape(&by_name[n].shape))
            .collect();
        let mut checker = Checker::new(defs);
        let mut edges = Vec::new();
        for a in 0..names.len() {
            for b in 0..names.len() {
                if a == b {
                    continue;
                }
                // Status-lattice folding: ⊥ is below everything, ⊤ above.
                let proven = statuses[a] == Status::Unsat
                    || statuses[b] == Status::Valid
                    || checker.query(&nnfs[a], &nnfs[b]);
                if proven {
                    edges.push((a as u32, b as u32));
                    checker.facts.insert((names[a].clone(), names[b].clone()));
                }
            }
        }
        ContainmentMatrix {
            names,
            statuses,
            edges,
        }
    }

    /// Matrix of an already-constructed schema; ids line up with
    /// [`Schema::name_id`].
    pub fn of_schema(schema: &Schema) -> ContainmentMatrix {
        let defs: Vec<ShapeDef> = schema.iter().cloned().collect();
        ContainmentMatrix::of_defs(&defs)
    }

    /// Shape ids properly subsumed by `sid` (edges into `sid`).
    pub fn subs_of(&self, sid: u32) -> impl Iterator<Item = u32> + '_ {
        self.edges
            .iter()
            .filter(move |(_, sup)| *sup == sid)
            .map(|(sub, _)| *sub)
    }

    /// Shape ids properly subsuming `sid` (edges out of `sid`).
    pub fn supers_of(&self, sid: u32) -> impl Iterator<Item = u32> + '_ {
        self.edges
            .iter()
            .filter(move |(sub, _)| *sub == sid)
            .map(|(_, sup)| *sup)
    }

    /// True iff both directions were proven.
    pub fn equivalent(&self, a: u32, b: u32) -> bool {
        self.edges.binary_search(&(a, b)).is_ok() && self.edges.binary_search(&(b, a)).is_ok()
    }

    /// Every shape whose memo bits can transitively derive from — or flow
    /// into — bits of `seed`: the union of the forward closure (true bits
    /// propagate sub → sup) and the backward closure (false bits propagate
    /// sup → sub). `seed` itself is included. This is the invalidation set
    /// the incremental validator clears alongside an impacted shape.
    pub fn related_closure(&self, seed: u32) -> Vec<u32> {
        let n = self.names.len();
        let mut out: BTreeSet<u32> = BTreeSet::new();
        out.insert(seed);
        for forward in [true, false] {
            let mut work = vec![seed];
            let mut seen = vec![false; n];
            seen[seed as usize] = true;
            while let Some(s) = work.pop() {
                let next: Vec<u32> = if forward {
                    self.supers_of(s).collect()
                } else {
                    self.subs_of(s).collect()
                };
                for t in next {
                    if !std::mem::replace(&mut seen[t as usize], true) {
                        out.insert(t);
                        work.push(t);
                    }
                }
            }
        }
        out.into_iter().collect()
    }

    /// Stable digest of the whole artifact (names, statuses, edges); the
    /// runtime layers use it to guard against a matrix computed for a
    /// different schema.
    pub fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.names.len().hash(&mut h);
        for n in &self.names {
            n.to_string().hash(&mut h);
        }
        for s in &self.statuses {
            (*s as u8).hash(&mut h);
        }
        self.edges.hash(&mut h);
        h.finish()
    }

    /// Converts to the validator-side index, stamped with the schema
    /// fingerprint so [`ConformanceMemo`] can refuse a mismatched matrix.
    ///
    /// [`ConformanceMemo`]: shapefrag_shacl::validator::ConformanceMemo
    pub fn to_index(&self, schema: &Schema) -> ContainmentIndex {
        ContainmentIndex::from_edges(self.names.len(), &self.edges, schema_fingerprint(schema))
    }

    /// Human-readable rendering: one `⊑` / `≡` line per relation plus a
    /// summary line (equivalences are printed once, smaller name first).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let mut equivalences = 0usize;
        let mut proper = 0usize;
        for &(a, b) in &self.edges {
            if self.equivalent(a, b) {
                if a < b {
                    equivalences += 1;
                    out.push_str(&format!(
                        "{} ≡ {}\n",
                        self.names[a as usize], self.names[b as usize]
                    ));
                }
            } else {
                proper += 1;
                out.push_str(&format!(
                    "{} ⊑ {}\n",
                    self.names[a as usize], self.names[b as usize]
                ));
            }
        }
        out.push_str(&format!(
            "{} shape definition(s): {} proper containment(s), {} equivalence(s)\n",
            self.names.len(),
            proper,
            equivalences
        ));
        out
    }

    /// JSON rendering: `names`/`statuses` aligned arrays plus `edges` as
    /// `[sub, sup]` id pairs.
    pub fn to_json(&self) -> String {
        fn esc(out: &mut String, s: &str) {
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
        }
        let mut out = String::from("{\n  \"shapes\": ");
        out.push_str(&self.names.len().to_string());
        out.push_str(",\n  \"containments\": ");
        out.push_str(&self.edges.len().to_string());
        out.push_str(",\n  \"fingerprint\": ");
        out.push_str(&self.fingerprint().to_string());
        out.push_str(",\n  \"names\": [");
        for (i, n) in self.names.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('"');
            esc(&mut out, &n.to_string());
            out.push('"');
        }
        out.push_str("],\n  \"statuses\": [");
        for (i, s) in self.statuses.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(match s {
                Status::Valid => "\"valid\"",
                Status::Unsat => "\"unsat\"",
                Status::Unknown => "\"unknown\"",
            });
        }
        out.push_str("],\n  \"edges\": [");
        for (i, (a, b)) in self.edges.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("[{a}, {b}]"));
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Per-definition folded statuses, references-first like
/// [`analyze_defs`](crate::analyze_defs); on recursive schemas every
/// reference conservatively stays `Unknown`.
fn def_statuses(defs: &[ShapeDef]) -> BTreeMap<Term, Status> {
    let rg = refgraph::analyze_refs(defs);
    let mut def_status: BTreeMap<Term, Status> = defs
        .iter()
        .map(|d| (d.name.clone(), Status::Unknown))
        .collect();
    let order: Vec<Term> = rg
        .topo
        .unwrap_or_else(|| defs.iter().map(|d| d.name.clone()).collect());
    let by_name: BTreeMap<&Term, &ShapeDef> = defs.iter().map(|d| (&d.name, d)).collect();
    for name in &order {
        let Some(def) = by_name.get(name) else {
            continue;
        };
        let pol = rg.polarity.get(name).copied().unwrap_or_default();
        let phi = Nnf::from_shape(&def.shape);
        let (_, status, _) = fold::fold_nnf(&phi, SimplifyLevel::Validation, pol, &def_status);
        def_status.insert((*name).clone(), status);
    }
    def_status
}

/// Redundant-shape findings derived from a matrix: `SF-W030` for
/// equivalent definition pairs, `SF-W031` for proper containments not
/// already explained by a trivial status (those carry `SF-E001` /
/// `SF-W006` from the fold pass instead).
pub fn containment_diagnostics(matrix: &ContainmentMatrix) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for &(a, b) in &matrix.edges {
        let (sub, sup) = (&matrix.names[a as usize], &matrix.names[b as usize]);
        if matrix.equivalent(a, b) {
            if a < b {
                out.push(Diagnostic::new(
                    codes::EQUIVALENT_SHAPES,
                    Severity::Warn,
                    Some(sup.clone()),
                    format!(
                        "shape expression is equivalent to {sub}: conformance answers \
                         are shared, and one of the two definitions is redundant"
                    ),
                ));
            }
        } else if matrix.statuses[a as usize] != Status::Unsat
            && matrix.statuses[b as usize] != Status::Valid
        {
            out.push(Diagnostic::new(
                codes::SUBSUMED_SHAPE,
                Severity::Warn,
                Some(sup.clone()),
                format!(
                    "shape expression is subsumed by {sub} (every {sub}-conformant \
                     node conforms here): checks overlap wherever targets do"
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapefrag_rdf::Literal;
    use shapefrag_shacl::Shape;

    fn name(n: &str) -> Term {
        Term::iri(format!("http://e/{n}"))
    }

    fn p(n: &str) -> PathExpr {
        PathExpr::prop(format!("http://e/{n}"))
    }

    fn geq(n: u32, e: PathExpr, inner: Nnf) -> Nnf {
        Nnf::Geq(n, e, Box::new(inner))
    }

    fn leq(n: u32, e: PathExpr, inner: Nnf) -> Nnf {
        Nnf::Leq(n, e, Box::new(inner))
    }

    fn sub(phi: &Nnf, psi: &Nnf) -> bool {
        subsumes(&[], phi, psi)
    }

    #[test]
    fn lattice_bounds() {
        let t = Nnf::Test(NodeTest::MinLength(3));
        assert!(sub(&Nnf::False, &t));
        assert!(sub(&t, &Nnf::True));
        assert!(sub(&t, &t));
        assert!(!sub(&Nnf::True, &t));
        // ≥0 is ⊤, ≥1.⊥ is ⊥.
        assert!(sub(&t, &geq(0, p("a"), t.clone())));
        assert!(sub(&geq(1, p("a"), Nnf::False), &t));
        // ≤0 over a nullable path with a ⊤ body is ⊥.
        assert!(sub(&leq(0, p("a").star(), Nnf::True), &t));
    }

    #[test]
    fn and_or_weakening() {
        let a = Nnf::Test(NodeTest::MinLength(3));
        let b = Nnf::Test(NodeTest::MaxLength(9));
        let both = Nnf::And(vec![a.clone(), b.clone()]);
        let either = Nnf::Or(vec![a.clone(), b.clone()]);
        assert!(sub(&both, &a));
        assert!(sub(&both, &b));
        assert!(sub(&a, &either));
        assert!(sub(&both, &either));
        assert!(!sub(&either, &both));
        assert!(!sub(&either, &a));
        // ∧-intro and ∨-elim.
        assert!(sub(&both, &Nnf::And(vec![b.clone(), a.clone()])));
        assert!(sub(&either, &Nnf::Or(vec![b, a])));
    }

    #[test]
    fn cardinality_interval_inclusion() {
        let top = Nnf::True;
        assert!(sub(
            &geq(3, p("q"), top.clone()),
            &geq(1, p("q"), top.clone())
        ));
        assert!(!sub(
            &geq(1, p("q"), top.clone()),
            &geq(3, p("q"), top.clone())
        ));
        assert!(sub(
            &leq(1, p("q"), top.clone()),
            &leq(4, p("q"), top.clone())
        ));
        assert!(!sub(
            &leq(4, p("q"), top.clone()),
            &leq(1, p("q"), top.clone())
        ));
        // Path weakening on ≥ (language grows), strengthening on ≤.
        assert!(sub(
            &geq(2, p("q"), top.clone()),
            &geq(1, p("q").or(p("r")), top.clone())
        ));
        assert!(sub(
            &leq(1, p("q").or(p("r")), top.clone()),
            &leq(2, p("q"), top.clone())
        ));
        assert!(!sub(
            &geq(2, p("q").or(p("r")), top.clone()),
            &geq(1, p("q"), top.clone())
        ));
        // Body is monotone under ≥, anti-monotone under ≤.
        let strict = Nnf::Test(NodeTest::MinLength(5));
        let loose = Nnf::Test(NodeTest::MinLength(2));
        assert!(sub(
            &geq(1, p("q"), strict.clone()),
            &geq(1, p("q"), loose.clone())
        ));
        assert!(!sub(
            &geq(1, p("q"), loose.clone()),
            &geq(1, p("q"), strict.clone())
        ));
        assert!(sub(
            &leq(2, p("q"), loose.clone()),
            &leq(2, p("q"), strict.clone())
        ));
        assert!(!sub(&leq(2, p("q"), strict), &leq(2, p("q"), loose)));
    }

    #[test]
    fn forall_rules() {
        let strict = Nnf::Test(NodeTest::MinLength(5));
        let loose = Nnf::Test(NodeTest::MinLength(2));
        let fa = |e: PathExpr, inner: Nnf| Nnf::ForAll(e, Box::new(inner));
        assert!(sub(&fa(p("q"), strict.clone()), &fa(p("q"), loose.clone())));
        assert!(!sub(
            &fa(p("q"), loose.clone()),
            &fa(p("q"), strict.clone())
        ));
        // ∀ over the larger language implies ∀ over the smaller.
        assert!(sub(
            &fa(p("q").or(p("r")), loose.clone()),
            &fa(p("q"), loose.clone())
        ));
        assert!(!sub(
            &fa(p("q"), loose.clone()),
            &fa(p("q").or(p("r")), loose.clone())
        ));
        // No successors at all ⇒ any ∀ is vacuous.
        assert!(sub(&leq(0, p("q"), Nnf::True), &fa(p("q"), strict)));
    }

    #[test]
    fn node_test_implication() {
        let t = |t: NodeTest| Nnf::Test(t);
        assert!(sub(&t(NodeTest::MinLength(5)), &t(NodeTest::MinLength(3))));
        assert!(!sub(&t(NodeTest::MinLength(3)), &t(NodeTest::MinLength(5))));
        assert!(sub(&t(NodeTest::MaxLength(3)), &t(NodeTest::MaxLength(5))));
        assert!(sub(
            &t(NodeTest::MinInclusive(Literal::integer(5))),
            &t(NodeTest::MinInclusive(Literal::integer(3)))
        ));
        assert!(sub(
            &t(NodeTest::MinInclusive(Literal::integer(5))),
            &t(NodeTest::MinExclusive(Literal::integer(3)))
        ));
        assert!(!sub(
            &t(NodeTest::MinInclusive(Literal::integer(3))),
            &t(NodeTest::MinExclusive(Literal::integer(3)))
        ));
        assert!(sub(
            &t(NodeTest::MaxExclusive(Literal::integer(3))),
            &t(NodeTest::MaxInclusive(Literal::integer(3)))
        ));
        assert!(sub(
            &t(NodeTest::Kind(NodeKind::Iri)),
            &t(NodeTest::Kind(NodeKind::BlankNodeOrIri))
        ));
        assert!(!sub(
            &t(NodeTest::Kind(NodeKind::BlankNodeOrIri)),
            &t(NodeTest::Kind(NodeKind::Iri))
        ));
        // Datatype pins the node to a literal.
        assert!(sub(
            &t(NodeTest::Datatype(shapefrag_rdf::vocab::xsd::integer())),
            &t(NodeTest::Kind(NodeKind::Literal))
        ));
        // Conflicting tests: minLength 5 rules out maxLength 3.
        assert!(sub(
            &t(NodeTest::MinLength(5)),
            &Nnf::NotTest(NodeTest::MaxLength(3))
        ));
        // Negation is contravariant.
        assert!(sub(
            &Nnf::NotTest(NodeTest::MinLength(3)),
            &Nnf::NotTest(NodeTest::MinLength(5))
        ));
    }

    #[test]
    fn has_value_propagation() {
        let five = Term::Literal(Literal::integer(5));
        let six = Term::Literal(Literal::integer(6));
        assert!(sub(
            &Nnf::HasValue(five.clone()),
            &Nnf::Test(NodeTest::MinInclusive(Literal::integer(5)))
        ));
        assert!(!sub(
            &Nnf::HasValue(five.clone()),
            &Nnf::Test(NodeTest::MinExclusive(Literal::integer(5)))
        ));
        assert!(sub(
            &Nnf::HasValue(five.clone()),
            &Nnf::NotTest(NodeTest::MinLength(2))
        ));
        assert!(sub(&Nnf::HasValue(five.clone()), &Nnf::NotHasValue(six)));
        assert!(!sub(&Nnf::HasValue(five.clone()), &Nnf::NotHasValue(five)));
    }

    #[test]
    fn closed_and_unique_lang() {
        let small: BTreeSet<_> = [shapefrag_rdf::Iri::new("http://e/p")].into();
        let big: BTreeSet<_> = [
            shapefrag_rdf::Iri::new("http://e/p"),
            shapefrag_rdf::Iri::new("http://e/q"),
        ]
        .into();
        assert!(sub(&Nnf::Closed(small.clone()), &Nnf::Closed(big.clone())));
        assert!(!sub(&Nnf::Closed(big.clone()), &Nnf::Closed(small.clone())));
        assert!(sub(
            &Nnf::NotClosed(big.clone()),
            &Nnf::NotClosed(small.clone())
        ));
        assert!(!sub(&Nnf::NotClosed(small), &Nnf::NotClosed(big)));
        // uniqueLang over a superset path implies it over the subset.
        assert!(sub(
            &Nnf::UniqueLang(p("l").or(p("m"))),
            &Nnf::UniqueLang(p("l"))
        ));
        assert!(!sub(
            &Nnf::UniqueLang(p("l")),
            &Nnf::UniqueLang(p("l").or(p("m")))
        ));
    }

    #[test]
    fn has_shape_unfolding_and_coinduction() {
        let defs = vec![
            ShapeDef::new(
                name("Strict"),
                Shape::geq(2, p("q"), Shape::True),
                Shape::False,
            ),
            ShapeDef::new(
                name("Loose"),
                Shape::geq(1, p("q"), Shape::True),
                Shape::False,
            ),
            // Mutually recursive pair, structurally parallel.
            ShapeDef::new(
                name("EvenA"),
                Shape::geq(2, p("n"), Shape::HasShape(name("OddA"))),
                Shape::False,
            ),
            ShapeDef::new(
                name("OddA"),
                Shape::geq(1, p("n"), Shape::HasShape(name("EvenA"))),
                Shape::False,
            ),
            ShapeDef::new(
                name("EvenB"),
                Shape::geq(1, p("n"), Shape::HasShape(name("OddB"))),
                Shape::False,
            ),
            ShapeDef::new(
                name("OddB"),
                Shape::geq(1, p("n"), Shape::HasShape(name("EvenB"))),
                Shape::False,
            ),
        ];
        let hs = |n: &str| Nnf::HasShape(name(n));
        assert!(subsumes(&defs, &hs("Strict"), &hs("Loose")));
        assert!(!subsumes(&defs, &hs("Loose"), &hs("Strict")));
        // Unfold on one side only.
        assert!(subsumes(&defs, &hs("Strict"), &geq(1, p("q"), Nnf::True)));
        assert!(subsumes(&defs, &geq(3, p("q"), Nnf::True), &hs("Loose")));
        // Coinduction: EvenA ⊑ EvenB needs the (OddA, OddB) and back the
        // (EvenA, EvenB) hypothesis.
        assert!(subsumes(&defs, &hs("EvenA"), &hs("EvenB")));
        assert!(!subsumes(&defs, &hs("EvenB"), &hs("EvenA")));
        // Negated references are contravariant.
        assert!(subsumes(
            &defs,
            &Nnf::NotHasShape(name("Loose")),
            &Nnf::NotHasShape(name("Strict"))
        ));
        assert!(!subsumes(
            &defs,
            &Nnf::NotHasShape(name("Strict")),
            &Nnf::NotHasShape(name("Loose"))
        ));
        // Undefined references dereference to ⊤.
        assert!(subsumes(&defs, &hs("Loose"), &hs("NoSuchShape")));
    }

    #[test]
    fn matrix_over_overlapping_defs() {
        let defs = vec![
            ShapeDef::new(
                name("A"),
                Shape::geq(2, p("q"), Shape::True),
                Shape::geq(1, p("t"), Shape::True),
            ),
            ShapeDef::new(
                name("B"),
                Shape::geq(1, p("q"), Shape::True),
                Shape::geq(1, p("t"), Shape::True),
            ),
            // C duplicates B under another name.
            ShapeDef::new(
                name("C"),
                Shape::geq(1, p("q"), Shape::True),
                Shape::geq(1, p("t"), Shape::True),
            ),
        ];
        let m = ContainmentMatrix::of_defs(&defs);
        assert_eq!(m.names, vec![name("A"), name("B"), name("C")]);
        let id = |n: &Term| m.names.iter().position(|x| x == n).unwrap() as u32;
        let (a, b, c) = (id(&name("A")), id(&name("B")), id(&name("C")));
        assert!(m.edges.contains(&(a, b)));
        assert!(m.edges.contains(&(a, c)));
        assert!(!m.edges.contains(&(b, a)));
        assert!(m.equivalent(b, c));
        assert!(!m.equivalent(a, b));
        // Directed closure from A reaches B and C (true bits flow up).
        assert_eq!(m.related_closure(a), vec![a, b, c]);
        // Fingerprint is stable and sensitive to edges.
        assert_eq!(
            m.fingerprint(),
            ContainmentMatrix::of_defs(&defs).fingerprint()
        );
        let diags = containment_diagnostics(&m);
        assert!(diags.iter().any(|d| d.code == codes::EQUIVALENT_SHAPES));
        assert!(diags.iter().any(|d| d.code == codes::SUBSUMED_SHAPE));
        let json = m.to_json();
        assert!(json.contains("\"shapes\": 3"));
        assert!(json.contains("\"edges\": ["));
        let text = m.render_text();
        assert!(text.contains("≡"));
        assert!(text.contains("⊑"));
    }

    #[test]
    fn status_lattice_folds_into_edges() {
        let defs = vec![
            // Statically unsatisfiable: below everything.
            ShapeDef::new(
                name("Bot"),
                Shape::has_value(Term::iri("http://e/x"))
                    .and(Shape::has_value(Term::iri("http://e/y"))),
                Shape::False,
            ),
            // Statically valid: above everything.
            ShapeDef::new(
                name("Top"),
                Shape::geq(0, p("q"), Shape::True),
                Shape::False,
            ),
            ShapeDef::new(
                name("Mid"),
                Shape::geq(1, p("q"), Shape::True),
                Shape::False,
            ),
        ];
        let m = ContainmentMatrix::of_defs(&defs);
        let id = |n: &str| m.names.iter().position(|x| *x == name(n)).unwrap() as u32;
        assert!(m.edges.contains(&(id("Bot"), id("Mid"))));
        assert!(m.edges.contains(&(id("Mid"), id("Top"))));
        assert!(m.edges.contains(&(id("Bot"), id("Top"))));
        assert!(!m.edges.contains(&(id("Top"), id("Mid"))));
    }

    #[test]
    fn no_false_positives_on_unrelated_atoms() {
        // A grab bag of pairs that must all stay unproven.
        let pairs = [
            (
                Nnf::Test(NodeTest::MinLength(2)),
                Nnf::Test(NodeTest::MaxLength(9)),
            ),
            (
                Nnf::Eq(
                    shapefrag_shacl::PathOrId::Id,
                    shapefrag_rdf::Iri::new("http://e/p"),
                ),
                Nnf::Eq(
                    shapefrag_shacl::PathOrId::Id,
                    shapefrag_rdf::Iri::new("http://e/q"),
                ),
            ),
            (geq(1, p("a"), Nnf::True), geq(1, p("b"), Nnf::True)),
            (Nnf::UniqueLang(p("l")), Nnf::NotUniqueLang(p("l"))),
        ];
        for (phi, psi) in pairs {
            assert!(!sub(&phi, &psi), "{phi} ⊑ {psi} must not be derivable");
        }
    }
}
