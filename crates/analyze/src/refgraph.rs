//! Pass 3: shape-reference graph analysis.
//!
//! Builds the directed graph over shape names (an edge `s₁ → s₂` for every
//! `hasShape(s₂)` inside the definition of `s₁`), annotated with the
//! *parity* of the reference: odd when the reference sits under an odd
//! number of negations — a `¬hasShape` atom, or nesting inside the body of
//! a `≤n` quantifier (`≤n E.ψ ≡ ¬ ≥n+1 E.ψ`). On that graph it reports:
//!
//! - **SF-E020** — strongly connected components with more than one node
//!   (or a self-loop): the schema is recursive and the engine rejects it.
//! - **SF-E021** — a recursive component containing an odd-parity edge:
//!   the recursion passes through negation, so the schema has no stratified
//!   semantics even in engines that admit recursion. Reported instead of
//!   (not in addition to) E020 for that component.
//! - **SF-W022** — a definition with no targets that is unreachable from
//!   every targeted definition: it can never influence validation.
//! - **SF-W023** — a reference to a name with no definition (which SHACL
//!   silently defaults to ⊤ — almost always a typo).
//!
//! It also computes the *collection polarities* used by the simplifier's
//! fragment-preservation gates, and a topological order (references before
//! referrers) for bottom-up status propagation.

use std::collections::BTreeMap;

use shapefrag_rdf::Term;
use shapefrag_shacl::{Nnf, Shape, ShapeDef};

use crate::diagnostic::{codes, Diagnostic, Severity};

/// The polarities at which a definition's neighborhood is collected during
/// fragment extraction. A definition referenced only under even parity is
/// collected positively (its conforming-neighborhood rules apply);
/// referenced under odd parity it is collected as its negation. Most defs
/// are `pos`-only; the simplifier may fold a subterm to ⊥ (resp. ⊤) at
/// fragment level only where the enclosing polarity is pure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Polarity {
    pub pos: bool,
    pub neg: bool,
}

/// Result of the reference-graph pass.
#[derive(Debug, Clone, Default)]
pub struct RefGraph {
    /// E020/E021/W022/W023 findings (spans attached by the caller).
    pub diagnostics: Vec<Diagnostic>,
    /// Collection polarities per defined name (fixpoint over the graph).
    pub polarity: BTreeMap<Term, Polarity>,
    /// Defined names ordered references-first, or `None` when the graph is
    /// cyclic (then no bottom-up status propagation is possible).
    pub topo: Option<Vec<Term>>,
}

/// Collects `(referenced name, parity)` pairs from a formula. Parity flips
/// through `¬hasShape` atoms and through `≤` bodies.
fn collect_refs(root: &Nnf, out: &mut Vec<(Term, bool)>) {
    let mut stack: Vec<(&Nnf, bool)> = vec![(root, false)];
    while let Some((n, parity)) = stack.pop() {
        match n {
            Nnf::HasShape(name) => out.push((name.clone(), parity)),
            Nnf::NotHasShape(name) => out.push((name.clone(), !parity)),
            Nnf::And(items) | Nnf::Or(items) => {
                stack.extend(items.iter().map(|i| (i, parity)));
            }
            Nnf::Geq(_, _, inner) | Nnf::ForAll(_, inner) => stack.push((inner, parity)),
            Nnf::Leq(_, _, inner) => stack.push((inner, !parity)),
            _ => {}
        }
    }
}

/// True when a target expression is *statically* empty (the definition
/// targets nothing). Conservative: only the literal forms the parser emits
/// for target-less definitions are recognized.
fn target_is_bottom(target: &Shape) -> bool {
    matches!(target, Shape::False) || matches!(target, Shape::Or(items) if items.is_empty())
}

/// Iterative Tarjan SCC over the defined-name graph. Returns components in
/// reverse topological order (each component before its referencers).
fn tarjan(n: usize, adj: &[Vec<(usize, bool)>]) -> Vec<Vec<usize>> {
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0u32;
    let mut components: Vec<Vec<usize>> = Vec::new();

    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        // Explicit call stack of (vertex, next-edge cursor).
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
            if *cursor < adj[v].len() {
                let (w, _) = adj[v][*cursor];
                *cursor += 1;
                if index[w] == UNSET {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("Tarjan stack underflow");
                        on_stack[w] = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    components.push(component);
                }
            }
        }
    }
    components
}

/// Runs the reference-graph pass over raw definitions (pre-`Schema`, so
/// recursive inputs are analyzable rather than rejected).
pub fn analyze_refs(defs: &[ShapeDef]) -> RefGraph {
    let names: Vec<&Term> = defs.iter().map(|d| &d.name).collect();
    let id_of: BTreeMap<&Term, usize> = names.iter().enumerate().map(|(i, n)| (*n, i)).collect();

    let mut diagnostics = Vec::new();

    // Edges (per def, deduplicated) and undefined references.
    let mut adj: Vec<Vec<(usize, bool)>> = vec![Vec::new(); defs.len()];
    for (i, def) in defs.iter().enumerate() {
        let mut refs: Vec<(Term, bool)> = Vec::new();
        collect_refs(&Nnf::from_shape(&def.shape), &mut refs);
        collect_refs(&Nnf::from_shape(&def.target), &mut refs);
        let mut undefined_reported: Vec<&Term> = Vec::new();
        for (name, parity) in &refs {
            match id_of.get(name) {
                Some(&j) => {
                    if !adj[i].contains(&(j, *parity)) {
                        adj[i].push((j, *parity));
                    }
                }
                None => {
                    if !undefined_reported.contains(&name) {
                        undefined_reported.push(name);
                        diagnostics.push(Diagnostic::new(
                            codes::UNDEFINED_REF,
                            Severity::Warn,
                            Some(def.name.clone()),
                            format!(
                                "reference to undefined shape {name} (undefined shapes \
                                 default to ⊤, so this constraint always passes)"
                            ),
                        ));
                    }
                }
            }
        }
    }

    // SCCs → recursion / stratification findings.
    let components = tarjan(defs.len(), &adj);
    let mut cyclic = false;
    for component in &components {
        let nontrivial =
            component.len() > 1 || adj[component[0]].iter().any(|(w, _)| *w == component[0]);
        if !nontrivial {
            continue;
        }
        cyclic = true;
        let in_component = |w: usize| component.contains(&w);
        let through_negation = component
            .iter()
            .flat_map(|&v| adj[v].iter())
            .any(|&(w, parity)| in_component(w) && parity);
        let mut members: Vec<String> = component.iter().map(|&v| names[v].to_string()).collect();
        members.sort();
        let witness = component.iter().map(|&v| names[v]).min().cloned();
        if through_negation {
            diagnostics.push(Diagnostic::new(
                codes::NEGATION_CYCLE,
                Severity::Deny,
                witness,
                format!(
                    "shape references form a cycle through negation ({}); the schema \
                     is unstratifiable",
                    members.join(" → ")
                ),
            ));
        } else {
            diagnostics.push(Diagnostic::new(
                codes::RECURSIVE_SCHEMA,
                Severity::Deny,
                witness,
                format!(
                    "shape references form a cycle ({}); only nonrecursive schemas \
                     are admitted",
                    members.join(" → ")
                ),
            ));
        }
    }

    // Reachability from targeted definitions → W022.
    let mut reached = vec![false; defs.len()];
    let mut frontier: Vec<usize> = defs
        .iter()
        .enumerate()
        .filter(|(_, d)| !target_is_bottom(&d.target))
        .map(|(i, _)| i)
        .collect();
    for &i in &frontier {
        reached[i] = true;
    }
    while let Some(v) = frontier.pop() {
        for &(w, _) in &adj[v] {
            if !reached[w] {
                reached[w] = true;
                frontier.push(w);
            }
        }
    }
    for (i, def) in defs.iter().enumerate() {
        if !reached[i] {
            diagnostics.push(Diagnostic::new(
                codes::UNREACHABLE_DEF,
                Severity::Warn,
                Some(def.name.clone()),
                "definition has no targets and is not referenced by any targeted \
                 definition; it never influences validation"
                    .to_string(),
            ));
        }
    }

    // Collection-polarity fixpoint. Every definition is itself a fragment
    // root (schema fragments union all request shapes), so all seed `pos`;
    // references propagate the referrer's polarities, flipped on odd edges.
    let mut polarity: Vec<Polarity> = vec![
        Polarity {
            pos: true,
            neg: false
        };
        defs.len()
    ];
    let mut worklist: Vec<usize> = (0..defs.len()).collect();
    while let Some(v) = worklist.pop() {
        let from = polarity[v];
        for &(w, parity) in &adj[v] {
            let contribution = if parity {
                Polarity {
                    pos: from.neg,
                    neg: from.pos,
                }
            } else {
                from
            };
            let merged = Polarity {
                pos: polarity[w].pos || contribution.pos,
                neg: polarity[w].neg || contribution.neg,
            };
            if merged != polarity[w] {
                polarity[w] = merged;
                worklist.push(w);
            }
        }
    }

    // Topological order (references first): Tarjan emits components in
    // reverse topological order of the condensation, which for an acyclic
    // graph is exactly references-before-referrers.
    let topo = if cyclic {
        None
    } else {
        Some(
            components
                .iter()
                .map(|c| names[c[0]].clone())
                .collect::<Vec<Term>>(),
        )
    };

    RefGraph {
        diagnostics,
        polarity: defs
            .iter()
            .enumerate()
            .map(|(i, d)| (d.name.clone(), polarity[i]))
            .collect(),
        topo,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapefrag_shacl::PathExpr;

    fn name(n: &str) -> Term {
        Term::iri(format!("http://e/{n}"))
    }

    fn p(n: &str) -> PathExpr {
        PathExpr::prop(format!("http://e/{n}"))
    }

    fn targeted(n: &str, shape: Shape) -> ShapeDef {
        ShapeDef::new(name(n), shape, Shape::geq(1, p("type"), Shape::True))
    }

    fn helper(n: &str, shape: Shape) -> ShapeDef {
        ShapeDef::new(name(n), shape, Shape::False)
    }

    #[test]
    fn acyclic_schema_is_clean() {
        let rg = analyze_refs(&[
            targeted("S", Shape::HasShape(name("T"))),
            helper("T", Shape::True),
        ]);
        assert!(rg.diagnostics.is_empty());
        let topo = rg.topo.unwrap();
        assert_eq!(topo, vec![name("T"), name("S")]);
    }

    #[test]
    fn positive_cycle_is_e020() {
        let rg = analyze_refs(&[
            helper("A", Shape::HasShape(name("B"))),
            helper("B", Shape::HasShape(name("A"))),
        ]);
        assert!(rg
            .diagnostics
            .iter()
            .any(|d| d.code == codes::RECURSIVE_SCHEMA));
        assert!(rg.topo.is_none());
    }

    #[test]
    fn negation_cycle_is_e021_not_e020() {
        let rg = analyze_refs(&[
            helper("A", Shape::HasShape(name("B"))),
            helper("B", Shape::HasShape(name("A")).not()),
        ]);
        assert!(rg
            .diagnostics
            .iter()
            .any(|d| d.code == codes::NEGATION_CYCLE));
        assert!(!rg
            .diagnostics
            .iter()
            .any(|d| d.code == codes::RECURSIVE_SCHEMA));
    }

    #[test]
    fn leq_nesting_flips_parity() {
        // A references B inside a ≤ body: odd parity, so A ↔ B through the
        // quantifier is a negation cycle.
        let rg = analyze_refs(&[
            helper("A", Shape::leq(0, p("a"), Shape::HasShape(name("B")))),
            helper("B", Shape::HasShape(name("A"))),
        ]);
        assert!(rg
            .diagnostics
            .iter()
            .any(|d| d.code == codes::NEGATION_CYCLE));
    }

    #[test]
    fn unreached_helper_without_targets_is_w022() {
        let rg = analyze_refs(&[targeted("S", Shape::True), helper("Orphan", Shape::True)]);
        let w022: Vec<_> = rg
            .diagnostics
            .iter()
            .filter(|d| d.code == codes::UNREACHABLE_DEF)
            .collect();
        assert_eq!(w022.len(), 1);
        assert_eq!(w022[0].shape, Some(name("Orphan")));
    }

    #[test]
    fn referenced_helper_is_reachable() {
        let rg = analyze_refs(&[
            targeted("S", Shape::HasShape(name("T"))),
            helper("T", Shape::True),
        ]);
        assert!(!rg
            .diagnostics
            .iter()
            .any(|d| d.code == codes::UNREACHABLE_DEF));
    }

    #[test]
    fn undefined_reference_is_w023() {
        let rg = analyze_refs(&[targeted("S", Shape::HasShape(name("Missing")))]);
        let w023: Vec<_> = rg
            .diagnostics
            .iter()
            .filter(|d| d.code == codes::UNDEFINED_REF)
            .collect();
        assert_eq!(w023.len(), 1);
        assert_eq!(w023[0].shape, Some(name("S")));
    }

    #[test]
    fn polarity_fixpoint_tracks_negation() {
        let defs = [
            targeted(
                "S",
                Shape::HasShape(name("P")).and(Shape::HasShape(name("N")).not()),
            ),
            helper("P", Shape::True),
            helper("N", Shape::True),
        ];
        let rg = analyze_refs(&defs);
        // P is referenced positively and is itself a root: pos only.
        assert_eq!(
            rg.polarity[&name("P")],
            Polarity {
                pos: true,
                neg: false
            }
        );
        // N is referenced under negation *and* is a root: both polarities.
        assert_eq!(
            rg.polarity[&name("N")],
            Polarity {
                pos: true,
                neg: true
            }
        );
    }
}
