//! Structured analyzer diagnostics with stable codes.
//!
//! Codes are permanent API: tools may filter on them, so a code is never
//! reused for a different defect. `SF-Exxx` codes are deny-level (the
//! schema contains a genuine contradiction and should be rejected before
//! validation), `SF-Wxxx` are warnings (legal but almost certainly not
//! what the author meant, or wasted validator work).

use std::fmt;

use shapefrag_rdf::{Span, Term};

/// Stable diagnostic codes. See DESIGN.md §11 for the full taxonomy.
pub mod codes {
    /// A targeted definition is statically unsatisfiable: every target
    /// match is guaranteed to be a violation.
    pub const UNSATISFIABLE_DEF: &str = "SF-E001";
    /// `≥n E.ψ ∧ ≤m E.ψ'` on the same path with `n > m`.
    pub const CARDINALITY_CONFLICT: &str = "SF-E002";
    /// Two `sh:hasValue` constraints demanding different constants.
    pub const HAS_VALUE_CONFLICT: &str = "SF-E003";
    /// Conjoined node tests (or a test and a `sh:hasValue` constant) that
    /// no term can satisfy together.
    pub const TEST_CONFLICT: &str = "SF-E004";
    /// `sh:closed` forbids the first property step of a required path.
    pub const CLOSED_CONFLICT: &str = "SF-E005";
    /// `≤0` over a nullable path (the identity pair always counts).
    pub const LEQ_ZERO_NULLABLE: &str = "SF-E006";
    /// The `hasShape` reference graph has a cycle (rejected by the engine).
    pub const RECURSIVE_SCHEMA: &str = "SF-E020";
    /// A reference cycle passing through negation (unstratifiable even in
    /// engines that admit recursion).
    pub const NEGATION_CYCLE: &str = "SF-E021";

    /// A constraint that is statically always satisfied (e.g. `≥0 E.ψ`).
    pub const TRIVIAL_CONSTRAINT: &str = "SF-W001";
    /// A targeted definition whose shape simplifies to ⊤ — validation of
    /// its targets can never fail.
    pub const ALWAYS_TRUE_DEF: &str = "SF-W006";
    /// A redundant path operator (e.g. `E??`, `(E*)*`).
    pub const REDUNDANT_PATH_OP: &str = "SF-W010";
    /// A `sh:pattern` that provably matches no string.
    pub const DEAD_PATTERN: &str = "SF-W012";
    /// A definition with no targets that no targeted definition references.
    pub const UNREACHABLE_DEF: &str = "SF-W022";
    /// A reference to a shape with no definition (defaults to ⊤).
    pub const UNDEFINED_REF: &str = "SF-W023";
    /// Two definitions with provably equivalent shape expressions — one of
    /// them duplicates the other's conformance work.
    pub const EQUIVALENT_SHAPES: &str = "SF-W030";
    /// A definition whose shape expression is properly subsumed by another
    /// definition's: wherever the targets overlap, the checks do too.
    pub const SUBSUMED_SHAPE: &str = "SF-W031";
}

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but legal; validation proceeds.
    Warn,
    /// A contradiction: the schema should be rejected at load time.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warn => write!(f, "warn"),
            Severity::Deny => write!(f, "deny"),
        }
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (`SF-Wxxx` / `SF-Exxx`, see [`codes`]).
    pub code: &'static str,
    pub severity: Severity,
    /// The shape definition the finding is about, when attributable.
    pub shape: Option<Term>,
    /// Source position (threaded up from the shapes-graph parser), when
    /// the schema came from text.
    pub span: Option<Span>,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    pub fn new(
        code: &'static str,
        severity: Severity,
        shape: Option<Term>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            shape,
            span: None,
            message: message.into(),
        }
    }

    /// Attaches a source position (builder style).
    pub fn at(mut self, span: Option<Span>) -> Diagnostic {
        self.span = span;
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        if let Some(span) = self.span {
            write!(f, " {span}")?;
        }
        if let Some(shape) = &self.shape {
            write!(f, " {shape}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// True iff any finding is deny-level.
pub fn has_deny(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Deny)
}

fn json_escape(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Renders findings as a JSON document:
/// `{"diagnostics": [...], "warnings": n, "denials": m}`.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\n  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"code\": \"");
        out.push_str(d.code);
        out.push_str("\", \"severity\": \"");
        out.push_str(&d.severity.to_string());
        out.push('"');
        if let Some(span) = d.span {
            out.push_str(&format!(
                ", \"line\": {}, \"column\": {}",
                span.line, span.column
            ));
        }
        if let Some(shape) = &d.shape {
            out.push_str(", \"shape\": \"");
            json_escape(&mut out, &shape.to_string());
            out.push('"');
        }
        out.push_str(", \"message\": \"");
        json_escape(&mut out, &d.message);
        out.push_str("\"}");
    }
    if diags.is_empty() {
        out.push(']');
    } else {
        out.push_str("\n  ]");
    }
    let warnings = diags
        .iter()
        .filter(|d| d.severity == Severity::Warn)
        .count();
    let denials = diags
        .iter()
        .filter(|d| d.severity == Severity::Deny)
        .count();
    out.push_str(&format!(
        ",\n  \"warnings\": {warnings},\n  \"denials\": {denials}\n}}\n"
    ));
    out
}
