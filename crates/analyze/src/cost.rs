//! Pass 4: per-shape cost annotation.
//!
//! Classifies the evaluation cost of every definition so batch drivers can
//! route work: the fan-out class of its paths (does an edge step stay
//! within one node's adjacency, or can it traverse the graph?) and whether
//! batch evaluation shares work across focus nodes (the memo-sharing
//! potential exploited by `validate_batch`). The routing heuristic in
//! `shapefrag-core`'s instrumented driver consumes [`shape_shares_work`];
//! it previously lived there as an ad-hoc private helper.

use std::collections::BTreeMap;

use shapefrag_rdf::Term;
use shapefrag_shacl::shape::PathOrId;
use shapefrag_shacl::{Nnf, PathExpr, Schema};

/// Fan-out class of a path expression, ordered by cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PathClass {
    /// One forward or inverse property step: a single adjacency lookup.
    Simple,
    /// A closure-free combination (sequence, alternative, negated sets,
    /// optional): bounded by a constant number of adjacency scans.
    Local,
    /// Contains a Kleene closure: evaluation is a product-graph BFS whose
    /// frontier can span the whole graph.
    Traversing,
}

/// Classifies a path expression by fan-out.
pub fn path_class(path: &PathExpr) -> PathClass {
    match path {
        PathExpr::Prop(_) => PathClass::Simple,
        PathExpr::NegProp(_) => PathClass::Local,
        PathExpr::Inverse(inner) => match inner.as_ref() {
            PathExpr::Prop(_) => PathClass::Simple,
            other => path_class(other).max(PathClass::Local),
        },
        PathExpr::Seq(a, b) | PathExpr::Alt(a, b) => {
            path_class(a).max(path_class(b)).max(PathClass::Local)
        }
        PathExpr::ZeroOrMore(_) => PathClass::Traversing,
        PathExpr::ZeroOrOne(inner) => path_class(inner).max(PathClass::Local),
    }
}

/// True iff the path is a single forward or inverse property step, which
/// the per-node evaluator answers with one index lookup.
pub fn path_is_simple(path: &PathExpr) -> bool {
    path_class(path) == PathClass::Simple
}

/// True iff batch (set-at-a-time) evaluation of this shape shares work
/// across focus nodes: a non-simple path (multi-source BFS amortizes the
/// product-graph exploration), a non-trivial quantifier inner (endpoint
/// conformance checks hit the shared memo), or a path-equality pair.
/// Shapes that are pure local lookups gain nothing from batching, and the
/// batch driver routes them to the cheaper per-node loop.
pub fn shape_shares_work(schema: &Schema, shape: &Nnf) -> bool {
    match shape {
        Nnf::Geq(_, e, inner) | Nnf::Leq(_, e, inner) | Nnf::ForAll(e, inner) => {
            !path_is_simple(e) || !matches!(inner.as_ref(), Nnf::True)
        }
        Nnf::Eq(PathOrId::Path(_), _) => true,
        Nnf::And(items) | Nnf::Or(items) => items.iter().any(|i| shape_shares_work(schema, i)),
        Nnf::HasShape(name) | Nnf::NotHasShape(name) => {
            shape_shares_work(schema, &Nnf::from_shape(&schema.def(name)))
        }
        _ => false,
    }
}

/// Cost annotation for one definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShapeCost {
    /// The most expensive path class appearing in `φ ∧ τ` (transitively
    /// through references). `None` when the definition touches no path.
    pub fan_out: Option<PathClass>,
    /// Whether batch evaluation shares work across focus nodes.
    pub shares_work: bool,
}

/// Cost annotation of one (already NNF-converted) shape: the scheduling
/// priority input for the parallel engine, which routes arbitrary request
/// shapes — not only named definitions — by cost.
pub fn shape_cost(schema: &Schema, shape: &Nnf) -> ShapeCost {
    ShapeCost {
        fan_out: max_path_class(schema, shape),
        shares_work: shape_shares_work(schema, shape),
    }
}

/// Annotates every definition of a schema with its cost class.
pub fn annotate(schema: &Schema) -> BTreeMap<Term, ShapeCost> {
    let mut out = BTreeMap::new();
    for def in schema.iter() {
        let nnf = Nnf::from_shape(&def.shape.clone().and(def.target.clone()));
        out.insert(def.name.clone(), shape_cost(schema, &nnf));
    }
    out
}

fn max_path_class(schema: &Schema, shape: &Nnf) -> Option<PathClass> {
    let mut best: Option<PathClass> = None;
    let bump = |c: PathClass, best: &mut Option<PathClass>| {
        *best = Some(best.map_or(c, |b: PathClass| b.max(c)));
    };
    let mut stack: Vec<Nnf> = vec![shape.clone()];
    let mut seen_defs: Vec<Term> = Vec::new();
    while let Some(node) = stack.pop() {
        match &node {
            Nnf::Geq(_, e, inner) | Nnf::Leq(_, e, inner) | Nnf::ForAll(e, inner) => {
                bump(path_class(e), &mut best);
                stack.push((**inner).clone());
            }
            Nnf::UniqueLang(e) | Nnf::NotUniqueLang(e) => bump(path_class(e), &mut best),
            Nnf::Eq(PathOrId::Path(e), _)
            | Nnf::NotEq(PathOrId::Path(e), _)
            | Nnf::Disj(PathOrId::Path(e), _)
            | Nnf::NotDisj(PathOrId::Path(e), _) => bump(path_class(e), &mut best),
            Nnf::LessThan(e, _)
            | Nnf::NotLessThan(e, _)
            | Nnf::LessThanEq(e, _)
            | Nnf::NotLessThanEq(e, _)
            | Nnf::MoreThan(e, _)
            | Nnf::NotMoreThan(e, _)
            | Nnf::MoreThanEq(e, _)
            | Nnf::NotMoreThanEq(e, _) => bump(path_class(e), &mut best),
            Nnf::And(items) | Nnf::Or(items) => stack.extend(items.iter().cloned()),
            // Schemas are acyclic, but avoid re-walking shared refs.
            Nnf::HasShape(name) | Nnf::NotHasShape(name) if !seen_defs.contains(name) => {
                seen_defs.push(name.clone());
                stack.push(Nnf::from_shape(&schema.def(name)));
            }
            _ => {}
        }
    }
    best
}
