#![forbid(unsafe_code)]
//! # shapefrag-analyze
//!
//! Static analyzer for shape schemas: multi-pass diagnostics with stable
//! codes and source spans, plus a semantics-preserving simplifier feeding
//! the validator. See DESIGN.md §11 for the taxonomy and the soundness
//! argument behind each rewrite.
//!
//! The passes, in order:
//!
//! 1. **Reference graph** ([`refgraph`]) — recursion (SF-E020), negation
//!    cycles / unstratifiability (SF-E021), unreachable definitions
//!    (SF-W022), undefined references (SF-W023), and the collection
//!    polarities the simplifier's fragment gates need.
//! 2. **Constant folding** ([`fold`]) — ⊤/⊥ propagation through NNF,
//!    contradiction detection (SF-E002…E006), dead `sh:pattern`s
//!    (SF-W012), trivial constraints (SF-W001), redundant path operators
//!    (SF-W010), and per-definition unsatisfiability (SF-E001) /
//!    always-⊤ (SF-W006) verdicts.
//! 3. **Cost annotation** ([`cost`]) — path fan-out class and batch
//!    memo-sharing potential per definition, consumed by the batch
//!    driver's routing heuristic.
//!
//! ```
//! use shapefrag_analyze::{analyze_defs, codes, has_deny};
//! use shapefrag_shacl::parser::parse_shape_defs_turtle;
//!
//! let (defs, spans) = parse_shape_defs_turtle(r#"
//!     @prefix sh: <http://www.w3.org/ns/shacl#> .
//!     @prefix ex: <http://example.org/> .
//!     ex:S a sh:NodeShape ;
//!       sh:targetClass ex:Thing ;
//!       sh:property [ sh:path ex:p ; sh:minCount 2 ; sh:maxCount 1 ] .
//! "#).unwrap();
//! let diags = analyze_defs(&defs, Some(&spans));
//! assert!(diags.iter().any(|d| d.code == codes::CARDINALITY_CONFLICT));
//! assert!(has_deny(&diags));
//! ```

pub mod containment;
pub mod cost;
pub mod diagnostic;
pub mod fold;
pub mod impact;
pub mod refgraph;

pub use containment::{containment_diagnostics, subsumes, test_implies, ContainmentMatrix};
pub use cost::{
    annotate, path_class, path_is_simple, shape_cost, shape_shares_work, PathClass, ShapeCost,
};
pub use diagnostic::{codes, has_deny, to_json, Diagnostic, Severity};
pub use fold::{fold_nnf, path_warnings, tests_conflict, SimplifyLevel, Status};
pub use impact::{impact_profiles, ImpactProfile};
pub use refgraph::{analyze_refs, Polarity, RefGraph};

use std::collections::BTreeMap;

use shapefrag_rdf::vocab::sh;
use shapefrag_rdf::{GraphAccess, Iri, Span, Term};
use shapefrag_shacl::validator::ValidationReport;
use shapefrag_shacl::{Nnf, Schema, SchemaSpans, ShapeDef};

/// The constraint predicates whose source position best localizes a code,
/// tried in order before falling back to the definition's own position.
fn span_predicates(code: &str) -> Vec<Iri> {
    match code {
        codes::CARDINALITY_CONFLICT => vec![sh::max_count(), sh::min_count()],
        codes::LEQ_ZERO_NULLABLE => vec![sh::max_count()],
        codes::HAS_VALUE_CONFLICT => vec![sh::has_value()],
        codes::TEST_CONFLICT => vec![
            sh::datatype(),
            sh::node_kind(),
            sh::min_length(),
            sh::max_length(),
            sh::min_inclusive(),
            sh::max_inclusive(),
            sh::min_exclusive(),
            sh::max_exclusive(),
            sh::has_value(),
            sh::in_(),
        ],
        codes::CLOSED_CONFLICT => vec![sh::closed()],
        codes::DEAD_PATTERN => vec![sh::pattern()],
        codes::TRIVIAL_CONSTRAINT => vec![sh::min_count()],
        codes::REDUNDANT_PATH_OP => vec![sh::path()],
        codes::UNDEFINED_REF => vec![
            sh::node(),
            sh::property(),
            sh::not(),
            sh::and(),
            sh::or(),
            sh::xone(),
            sh::qualified_value_shape(),
        ],
        _ => Vec::new(),
    }
}

fn resolve_span(spans: &SchemaSpans, name: &Term, code: &str) -> Option<Span> {
    span_predicates(code)
        .iter()
        .find_map(|p| spans.constraint(name, p))
        .or_else(|| spans.def(name))
}

/// Runs the full analysis over raw shape definitions (pre-[`Schema`], so
/// recursive and otherwise rejected inputs are *reported*, not errored).
/// Pass the spans from [`shapefrag_shacl::parser::parse_shape_defs_turtle`]
/// to get source positions on the findings.
pub fn analyze_defs(defs: &[ShapeDef], spans: Option<&SchemaSpans>) -> Vec<Diagnostic> {
    let rg = refgraph::analyze_refs(defs);
    let mut diags = rg.diagnostics;
    let mut def_status: BTreeMap<Term, Status> = defs
        .iter()
        .map(|d| (d.name.clone(), Status::Unknown))
        .collect();
    // Fold references-first so statuses resolve across definitions; in
    // recursive schemas every reference conservatively stays Unknown.
    let order: Vec<Term> = rg
        .topo
        .clone()
        .unwrap_or_else(|| defs.iter().map(|d| d.name.clone()).collect());
    let by_name: BTreeMap<&Term, &ShapeDef> = defs.iter().map(|d| (&d.name, d)).collect();
    for name in &order {
        let Some(def) = by_name.get(name) else {
            continue;
        };
        let pol = rg.polarity.get(name).copied().unwrap_or_default();
        let phi = Nnf::from_shape(&def.shape);
        let (_, phi_status, mut local) =
            fold::fold_nnf(&phi, SimplifyLevel::Validation, pol, &def_status);
        let tau = Nnf::from_shape(&def.target);
        let (_, tau_status, tau_diags) =
            fold::fold_nnf(&tau, SimplifyLevel::Validation, pol, &def_status);
        local.extend(tau_diags);
        local.extend(fold::path_warnings(&phi));
        local.extend(fold::path_warnings(&tau));
        def_status.insert((*name).clone(), phi_status);
        let targeted = tau_status != Status::Unsat;
        if targeted && phi_status == Status::Unsat {
            local.push(Diagnostic::new(
                codes::UNSATISFIABLE_DEF,
                Severity::Deny,
                None,
                "definition is statically unsatisfiable: every target match is \
                 reported as a violation"
                    .to_string(),
            ));
        }
        if targeted && phi_status == Status::Valid {
            local.push(Diagnostic::new(
                codes::ALWAYS_TRUE_DEF,
                Severity::Warn,
                None,
                "shape expression is statically always satisfied: targets can \
                 never fail validation"
                    .to_string(),
            ));
        }
        for mut d in local {
            if d.shape.is_none() {
                d.shape = Some((*name).clone());
            }
            diags.push(d);
        }
    }
    if let Some(spans) = spans {
        for d in &mut diags {
            if d.span.is_none() {
                if let Some(n) = &d.shape {
                    d.span = resolve_span(spans, n, d.code);
                }
            }
        }
    }
    // Deny findings first; otherwise stable (preserves per-def order).
    diags.sort_by_key(|d| std::cmp::Reverse(d.severity));
    diags
}

/// [`analyze_defs`] over an already-constructed (hence nonrecursive)
/// schema.
pub fn analyze_schema(schema: &Schema, spans: Option<&SchemaSpans>) -> Vec<Diagnostic> {
    let defs: Vec<ShapeDef> = schema.iter().cloned().collect();
    analyze_defs(&defs, spans)
}

/// Rewrites a schema into a simplified, semantics-preserving form.
///
/// At [`SimplifyLevel::Validation`] the result validates every graph
/// identically (same violations, same checked target sets). At
/// [`SimplifyLevel::Fragment`] the Table-2 provenance fragments are
/// preserved as well — rewrites that could change a neighborhood are gated
/// on the collection polarity computed by the reference pass. Returns the
/// findings surfaced while folding.
pub fn simplify(schema: &Schema, level: SimplifyLevel) -> (Schema, Vec<Diagnostic>) {
    let defs: Vec<ShapeDef> = schema.iter().cloned().collect();
    let rg = refgraph::analyze_refs(&defs);
    let mut diags = rg.diagnostics;
    let mut def_status: BTreeMap<Term, Status> = defs
        .iter()
        .map(|d| (d.name.clone(), Status::Unknown))
        .collect();
    let order = rg
        .topo
        .expect("Schema construction guarantees an acyclic reference graph");
    let by_name: BTreeMap<Term, ShapeDef> = defs.into_iter().map(|d| (d.name.clone(), d)).collect();
    let mut new_defs: Vec<ShapeDef> = Vec::with_capacity(by_name.len());
    for name in &order {
        let def = &by_name[name];
        let pol = rg.polarity.get(name).copied().unwrap_or_default();
        let (phi, phi_status, d1) =
            fold::fold_nnf(&Nnf::from_shape(&def.shape), level, pol, &def_status);
        let (tau, _, d2) = fold::fold_nnf(&Nnf::from_shape(&def.target), level, pol, &def_status);
        def_status.insert(name.clone(), phi_status);
        for mut d in d1.into_iter().chain(d2) {
            if d.shape.is_none() {
                d.shape = Some(name.clone());
            }
            diags.push(d);
        }
        new_defs.push(ShapeDef::new(name.clone(), phi.to_shape(), tau.to_shape()));
    }
    let simplified = Schema::new(new_defs)
        .expect("simplification removes subterms but never introduces names or cycles");
    (simplified, diags)
}

/// Batch validation with a validation-level pre-simplify: folds the schema
/// first (cheap, schema-sized) and validates with the smaller formulas.
/// The report is identical to `validate_batch(schema, graph)`.
pub fn validate_batch_simplified<G: GraphAccess>(
    schema: &Schema,
    graph: &G,
) -> (ValidationReport, Vec<Diagnostic>) {
    let (simplified, diags) = simplify(schema, SimplifyLevel::Validation);
    (
        shapefrag_shacl::validator::validate_batch(&simplified, graph),
        diags,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapefrag_shacl::parser::parse_shape_defs_turtle;
    use shapefrag_shacl::{PathExpr, Shape};

    fn name(n: &str) -> Term {
        Term::iri(format!("http://e/{n}"))
    }

    fn p(n: &str) -> PathExpr {
        PathExpr::prop(format!("http://e/{n}"))
    }

    #[test]
    fn unsatisfiable_targeted_def_is_e001() {
        let schema = Schema::new([ShapeDef::new(
            name("S"),
            Shape::has_value(Term::iri("http://e/a"))
                .and(Shape::has_value(Term::iri("http://e/b"))),
            Shape::geq(1, p("type"), Shape::True),
        )])
        .unwrap();
        let diags = analyze_schema(&schema, None);
        assert!(diags.iter().any(|d| d.code == codes::UNSATISFIABLE_DEF));
        assert!(has_deny(&diags));
    }

    #[test]
    fn untargeted_unsat_def_is_not_e001() {
        let schema = Schema::new([ShapeDef::new(
            name("S"),
            Shape::has_value(Term::iri("http://e/a"))
                .and(Shape::has_value(Term::iri("http://e/b"))),
            Shape::False,
        )])
        .unwrap();
        let diags = analyze_schema(&schema, None);
        assert!(!diags.iter().any(|d| d.code == codes::UNSATISFIABLE_DEF));
    }

    #[test]
    fn always_true_targeted_def_is_w006() {
        let schema = Schema::new([ShapeDef::new(
            name("S"),
            Shape::True,
            Shape::geq(1, p("type"), Shape::True),
        )])
        .unwrap();
        let diags = analyze_schema(&schema, None);
        assert!(diags.iter().any(|d| d.code == codes::ALWAYS_TRUE_DEF));
        assert!(!has_deny(&diags));
    }

    #[test]
    fn statuses_flow_across_references() {
        // S requires Bad, Bad is unsatisfiable: S is unsatisfiable too.
        let schema = Schema::new([
            ShapeDef::new(
                name("S"),
                Shape::HasShape(name("Bad")),
                Shape::geq(1, p("type"), Shape::True),
            ),
            ShapeDef::new(
                name("Bad"),
                Shape::has_value(Term::iri("http://e/a"))
                    .and(Shape::has_value(Term::iri("http://e/b"))),
                Shape::False,
            ),
        ])
        .unwrap();
        let diags = analyze_schema(&schema, None);
        let e001: Vec<_> = diags
            .iter()
            .filter(|d| d.code == codes::UNSATISFIABLE_DEF)
            .collect();
        assert_eq!(e001.len(), 1);
        assert_eq!(e001[0].shape, Some(name("S")));
    }

    #[test]
    fn recursive_defs_are_analyzed_not_errored() {
        let (defs, spans) = parse_shape_defs_turtle(
            r#"
            @prefix sh: <http://www.w3.org/ns/shacl#> .
            @prefix ex: <http://example.org/> .
            ex:A a sh:NodeShape ; sh:node ex:B .
            ex:B a sh:NodeShape ; sh:node ex:A .
            "#,
        )
        .unwrap();
        let diags = analyze_defs(&defs, Some(&spans));
        assert!(diags.iter().any(|d| d.code == codes::RECURSIVE_SCHEMA));
    }

    #[test]
    fn spans_point_at_the_offending_constraint() {
        let (defs, spans) = parse_shape_defs_turtle(
            "@prefix sh: <http://www.w3.org/ns/shacl#> .\n\
             @prefix ex: <http://example.org/> .\n\
             ex:S a sh:NodeShape ;\n\
               sh:targetClass ex:T ;\n\
               sh:hasValue ex:a ;\n\
               sh:pattern \"a$b\" .\n",
        )
        .unwrap();
        let diags = analyze_defs(&defs, Some(&spans));
        let dead = diags
            .iter()
            .find(|d| d.code == codes::DEAD_PATTERN)
            .expect("dead pattern reported");
        let span = dead.span.expect("span attached");
        assert_eq!(span.line, 6);
    }

    #[test]
    fn simplify_preserves_schema_validity() {
        let schema = Schema::new([
            ShapeDef::new(
                name("S"),
                Shape::True.and(Shape::HasShape(name("T"))),
                Shape::geq(1, p("type"), Shape::True),
            ),
            ShapeDef::new(name("T"), Shape::geq(0, p("a"), Shape::True), Shape::False),
        ])
        .unwrap();
        let (frag, _) = simplify(&schema, SimplifyLevel::Fragment);
        assert_eq!(frag.len(), schema.len());
        let (val, _) = simplify(&schema, SimplifyLevel::Validation);
        // Validation-level folding collapses T's trivial ≥0 to ⊤.
        assert_eq!(val.def(&name("T")), Shape::True);
    }

    #[test]
    fn json_output_is_wellformed() {
        let diags = vec![Diagnostic::new(
            codes::DEAD_PATTERN,
            Severity::Warn,
            Some(name("S")),
            "a \"quoted\" message",
        )];
        let json = to_json(&diags);
        assert!(json.contains("\"SF-W012\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"warnings\": 1"));
        assert!(json.contains("\"denials\": 0"));
    }
}
