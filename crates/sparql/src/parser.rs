//! A recursive-descent parser for the SPARQL subset of [`crate::algebra`].
//!
//! Supports `PREFIX` declarations, `SELECT [DISTINCT]` with variable /
//! `(… AS ?v)` projections or `*`, group graph patterns with `.`-separated
//! elements, `UNION`, `MINUS`, `OPTIONAL`, `FILTER`, nested sub-`SELECT`s,
//! property paths in the predicate position, and the expression grammar
//! used by the generated provenance queries and the benchmark workloads.
//!
//! Round-trip guarantee: `parse_select(q.to_string())` evaluates to the
//! same solutions as `q` (exercised by differential tests).

use std::collections::HashMap;
use std::fmt;

use shapefrag_govern::{EngineError, ErrorCode};
use shapefrag_rdf::vocab::rdf;
use shapefrag_rdf::{Iri, Literal, Term};
use shapefrag_shacl::PathExpr;

use crate::algebra::{Expr, Pattern, Projection, Select, TriplePattern, VarOrTerm};

/// Nesting cap for groups, parenthesized paths/expressions, and unary
/// operator chains: adversarial inputs like `((((…))))` must produce a
/// structured error, not a call-stack overflow.
const MAX_DEPTH: usize = 128;

/// A SPARQL parse error with a position (1-based line/column plus the raw
/// character offset) and a machine-readable [`ErrorCode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparqlParseError {
    pub offset: usize,
    pub line: usize,
    pub column: usize,
    pub code: ErrorCode,
    pub message: String,
}

impl fmt::Display for SparqlParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SPARQL parse error at {}:{} [{}]: {}",
            self.line, self.column, self.code, self.message
        )
    }
}

impl std::error::Error for SparqlParseError {}

impl From<SparqlParseError> for EngineError {
    fn from(e: SparqlParseError) -> Self {
        EngineError::Malformed {
            code: e.code,
            line: e.line,
            column: e.column,
            message: e.message,
        }
    }
}

/// Parses a `SELECT` query (with optional `PREFIX` prologue).
pub fn parse_select(input: &str) -> Result<Select, SparqlParseError> {
    let mut p = Parser {
        chars: input.chars().collect(),
        pos: 0,
        depth: 0,
        prefixes: HashMap::new(),
    };
    p.skip_ws();
    while p.peek_keyword("PREFIX") {
        p.parse_prefix()?;
    }
    let select = p.parse_select()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(p.err("trailing content after query"));
    }
    Ok(select)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
    depth: usize,
    prefixes: HashMap<String, String>,
}

impl Parser {
    fn err(&self, msg: impl Into<String>) -> SparqlParseError {
        self.err_code(ErrorCode::Syntax, msg)
    }

    fn err_code(&self, code: ErrorCode, msg: impl Into<String>) -> SparqlParseError {
        let (mut line, mut column) = (1usize, 1usize);
        for &c in self.chars.iter().take(self.pos) {
            if c == '\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        SparqlParseError {
            offset: self.pos,
            line,
            column,
            code,
            message: msg.into(),
        }
    }

    /// Enters one grammar-recursion level; pair with a `depth -= 1` on the
    /// way out (see the `parse_*` wrappers).
    fn descend(&mut self) -> Result<(), SparqlParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err_code(
                ErrorCode::DepthLimit,
                format!("query nesting deeper than {MAX_DEPTH} levels"),
            ));
        }
        Ok(())
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<char> {
        self.chars.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.pos += 1;
                }
                Some('#') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    /// Case-insensitive keyword lookahead (not consuming).
    fn peek_keyword(&self, kw: &str) -> bool {
        let kchars: Vec<char> = kw.chars().collect();
        for (i, kc) in kchars.iter().enumerate() {
            match self.peek_at(i) {
                Some(c) if c.eq_ignore_ascii_case(kc) => {}
                _ => return false,
            }
        }
        // Must not continue as an identifier.
        !matches!(self.peek_at(kchars.len()), Some(c) if c.is_alphanumeric() || c == '_')
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += kw.chars().count();
            self.skip_ws();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SparqlParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw}")))
        }
    }

    fn expect(&mut self, c: char) -> Result<(), SparqlParseError> {
        self.skip_ws();
        match self.bump() {
            Some(got) if got == c => {
                self.skip_ws();
                Ok(())
            }
            Some(got) => Err(self.err_code(
                ErrorCode::UnexpectedChar,
                format!("expected '{c}', found '{got}'"),
            )),
            None => Err(self.err_code(
                ErrorCode::UnexpectedEof,
                format!("expected '{c}', found end of input"),
            )),
        }
    }

    fn try_eat(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            self.skip_ws();
            true
        } else {
            false
        }
    }

    fn parse_prefix(&mut self) -> Result<(), SparqlParseError> {
        self.expect_keyword("PREFIX")?;
        let mut name = String::new();
        while let Some(c) = self.peek() {
            if c == ':' {
                break;
            }
            if c.is_whitespace() {
                return Err(self.err("expected ':' in PREFIX"));
            }
            name.push(c);
            self.pos += 1;
        }
        self.expect(':')?;
        let iri = self.parse_iri_ref()?;
        self.prefixes.insert(name, iri);
        self.skip_ws();
        Ok(())
    }

    fn parse_select(&mut self) -> Result<Select, SparqlParseError> {
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        let mut projection: Option<Vec<Projection>> = None;
        self.skip_ws();
        if self.try_eat('*') {
            // SELECT *
        } else {
            let mut items = Vec::new();
            loop {
                self.skip_ws();
                match self.peek() {
                    Some('?') | Some('$') => {
                        let v = self.parse_var()?;
                        items.push(Projection::Var(v));
                    }
                    Some('(') => {
                        self.bump();
                        self.skip_ws();
                        let item = match self.peek() {
                            Some('?') | Some('$') => {
                                let x = self.parse_var()?;
                                self.skip_ws();
                                self.expect_keyword("AS")?;
                                let y = self.parse_var()?;
                                Projection::Rename(x, y)
                            }
                            _ => {
                                let t = self.parse_term()?;
                                self.skip_ws();
                                self.expect_keyword("AS")?;
                                let v = self.parse_var()?;
                                Projection::Const(t, v)
                            }
                        };
                        self.expect(')')?;
                        items.push(item);
                    }
                    _ => break,
                }
            }
            if items.is_empty() {
                return Err(self.err("SELECT needs at least one projection or *"));
            }
            projection = Some(items);
        }
        self.skip_ws();
        // WHERE is optional in SPARQL.
        let _ = self.eat_keyword("WHERE");
        let pattern = self.parse_group()?;
        Ok(Select {
            distinct,
            projection,
            pattern,
        })
    }

    /// Parses `{ … }`.
    fn parse_group(&mut self) -> Result<Pattern, SparqlParseError> {
        self.descend()?;
        let out = self.parse_group_inner();
        self.depth -= 1;
        out
    }

    fn parse_group_inner(&mut self) -> Result<Pattern, SparqlParseError> {
        self.expect('{')?;
        // Sub-select?
        if self.peek_keyword("SELECT") {
            let sel = self.parse_select()?;
            self.expect('}')?;
            return Ok(Pattern::SubSelect(Box::new(sel)));
        }
        let mut pattern = Pattern::Unit;
        let mut filters: Vec<Expr> = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some('}') => {
                    self.bump();
                    self.skip_ws();
                    break;
                }
                None => {
                    return Err(
                        self.err_code(ErrorCode::UnexpectedEof, "unterminated group pattern")
                    )
                }
                Some('{') => {
                    let sub = self.parse_group_or_union_or_minus()?;
                    pattern = pattern.join(sub);
                    let _ = self.try_eat('.');
                }
                _ if self.peek_keyword("FILTER") => {
                    self.expect_keyword("FILTER")?;
                    let e = self.parse_constraint()?;
                    filters.push(e);
                    let _ = self.try_eat('.');
                }
                _ if self.peek_keyword("OPTIONAL") => {
                    self.expect_keyword("OPTIONAL")?;
                    let right = self.parse_group()?;
                    pattern = Pattern::LeftJoin(Box::new(pattern), Box::new(right), None);
                    let _ = self.try_eat('.');
                }
                _ => {
                    let triples = self.parse_triples_block()?;
                    pattern = pattern.join(triples);
                    // parse_triples_block consumes its trailing dots.
                }
            }
        }
        for e in filters {
            pattern = pattern.filter(e);
        }
        Ok(pattern)
    }

    /// Parses `{A} (UNION|MINUS|OPTIONAL {B})*` where the leading `{` has
    /// not been consumed.
    fn parse_group_or_union_or_minus(&mut self) -> Result<Pattern, SparqlParseError> {
        let mut left = self.parse_group()?;
        loop {
            self.skip_ws();
            if self.eat_keyword("UNION") {
                let right = self.parse_group()?;
                left = Pattern::Union(Box::new(left), Box::new(right));
            } else if self.eat_keyword("MINUS") {
                let right = self.parse_group()?;
                left = Pattern::Minus(Box::new(left), Box::new(right));
            } else if self.eat_keyword("OPTIONAL") {
                let right = self.parse_group()?;
                left = Pattern::LeftJoin(Box::new(left), Box::new(right), None);
            } else {
                return Ok(left);
            }
        }
    }

    /// Parses consecutive triple/path patterns until a delimiter.
    fn parse_triples_block(&mut self) -> Result<Pattern, SparqlParseError> {
        let mut bgp: Vec<TriplePattern> = Vec::new();
        let mut pattern = Pattern::Unit;
        loop {
            self.skip_ws();
            let subject = self.parse_var_or_term()?;
            self.skip_ws();
            // Predicate: variable, or property path.
            if matches!(self.peek(), Some('?') | Some('$')) {
                let pvar = self.parse_var()?;
                let object = self.parse_var_or_term()?;
                bgp.push(TriplePattern::new(subject, VarOrTerm::Var(pvar), object));
            } else {
                let path = self.parse_path()?;
                let object = self.parse_var_or_term()?;
                match path {
                    PathExpr::Prop(p) => {
                        bgp.push(TriplePattern::new(
                            subject,
                            VarOrTerm::Term(Term::Iri(p)),
                            object,
                        ));
                    }
                    complex => {
                        pattern = pattern.join(Pattern::Path {
                            subject,
                            path: complex,
                            object,
                        });
                    }
                }
            }
            self.skip_ws();
            if self.try_eat('.') {
                self.skip_ws();
                // Another triple may follow; stop on delimiters/keywords.
                match self.peek() {
                    Some('}') | Some('{') | None => break,
                    _ if self.peek_keyword("FILTER")
                        || self.peek_keyword("OPTIONAL")
                        || self.peek_keyword("UNION")
                        || self.peek_keyword("MINUS") =>
                    {
                        break
                    }
                    _ => continue,
                }
            } else {
                break;
            }
        }
        if !bgp.is_empty() {
            pattern = Pattern::Bgp(bgp).join(pattern);
        }
        Ok(pattern)
    }

    fn parse_var(&mut self) -> Result<String, SparqlParseError> {
        self.skip_ws();
        match self.bump() {
            Some('?') | Some('$') => {}
            _ => return Err(self.err("expected variable")),
        }
        let mut name = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                name.push(c);
                self.pos += 1;
            } else {
                break;
            }
        }
        if name.is_empty() {
            return Err(self.err("empty variable name"));
        }
        Ok(name)
    }

    fn parse_var_or_term(&mut self) -> Result<VarOrTerm, SparqlParseError> {
        self.skip_ws();
        match self.peek() {
            Some('?') | Some('$') => Ok(VarOrTerm::Var(self.parse_var()?)),
            _ => Ok(VarOrTerm::Term(self.parse_term()?)),
        }
    }

    fn parse_term(&mut self) -> Result<Term, SparqlParseError> {
        self.skip_ws();
        match self.peek() {
            Some('<') => Ok(Term::Iri(Iri::new(self.parse_iri_ref()?))),
            Some('"') | Some('\'') => Ok(Term::Literal(self.parse_literal()?)),
            Some('_') if self.peek_at(1) == Some(':') => {
                self.pos += 2;
                let mut label = String::new();
                while let Some(c) = self.peek() {
                    if c.is_alphanumeric() || c == '_' || c == '-' {
                        label.push(c);
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                Ok(Term::blank(label))
            }
            Some(c) if c.is_ascii_digit() || c == '+' || c == '-' => {
                Ok(Term::Literal(self.parse_numeric()?))
            }
            Some('t') | Some('f') if self.peek_keyword("true") || self.peek_keyword("false") => {
                if self.eat_keyword("true") {
                    Ok(Term::Literal(Literal::boolean(true)))
                } else {
                    self.expect_keyword("false")?;
                    Ok(Term::Literal(Literal::boolean(false)))
                }
            }
            _ => Ok(Term::Iri(self.parse_prefixed_name()?)),
        }
    }

    fn parse_iri_ref(&mut self) -> Result<String, SparqlParseError> {
        self.skip_ws();
        if self.bump() != Some('<') {
            return Err(self.err("expected '<'"));
        }
        let mut iri = String::new();
        loop {
            match self.bump() {
                Some('>') => return Ok(iri),
                Some(c) if c.is_whitespace() => {
                    return Err(self.err_code(ErrorCode::UnterminatedIri, "whitespace in IRI"))
                }
                Some(c) => iri.push(c),
                None => return Err(self.err_code(ErrorCode::UnterminatedIri, "unterminated IRI")),
            }
        }
    }

    fn parse_prefixed_name(&mut self) -> Result<Iri, SparqlParseError> {
        let mut prefix = String::new();
        while let Some(c) = self.peek() {
            if c == ':' {
                break;
            }
            if c.is_alphanumeric() || c == '_' || c == '-' {
                prefix.push(c);
                self.pos += 1;
            } else {
                return Err(self.err(format!("unexpected character '{c}'")));
            }
        }
        if self.bump() != Some(':') {
            return Err(self.err("expected ':' in prefixed name"));
        }
        let mut local = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' {
                if c == '.'
                    && !matches!(self.peek_at(1), Some(n) if n.is_alphanumeric() || n == '_')
                {
                    break;
                }
                local.push(c);
                self.pos += 1;
            } else {
                break;
            }
        }
        let ns = self.prefixes.get(&prefix).ok_or_else(|| {
            self.err_code(
                ErrorCode::UndeclaredPrefix,
                format!("undeclared prefix '{prefix}:'"),
            )
        })?;
        Ok(Iri::new(format!("{ns}{local}")))
    }

    fn parse_literal(&mut self) -> Result<Literal, SparqlParseError> {
        let quote = self.bump().ok_or_else(|| self.err("expected literal"))?;
        let mut lex = String::new();
        loop {
            match self.bump() {
                Some(c) if c == quote => break,
                Some('\\') => {
                    let esc = self
                        .bump()
                        .ok_or_else(|| self.err_code(ErrorCode::InvalidEscape, "bad escape"))?;
                    lex.push(match esc {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        '"' => '"',
                        '\'' => '\'',
                        '\\' => '\\',
                        other => other,
                    });
                }
                Some(c) => lex.push(c),
                None => {
                    return Err(self.err_code(ErrorCode::UnterminatedString, "unterminated literal"))
                }
            }
        }
        match self.peek() {
            Some('@') => {
                self.pos += 1;
                let mut lang = String::new();
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == '-' {
                        lang.push(c);
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                Ok(Literal::lang_string(lex, &lang))
            }
            Some('^') if self.peek_at(1) == Some('^') => {
                self.pos += 2;
                let dt = match self.peek() {
                    Some('<') => Iri::new(self.parse_iri_ref()?),
                    _ => self.parse_prefixed_name()?,
                };
                Ok(Literal::typed(lex, dt))
            }
            _ => Ok(Literal::string(lex)),
        }
    }

    fn parse_numeric(&mut self) -> Result<Literal, SparqlParseError> {
        let mut s = String::new();
        if let Some(sign @ ('+' | '-')) = self.peek() {
            s.push(sign);
            self.pos += 1;
        }
        let mut has_dot = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                s.push(c);
                self.pos += 1;
            } else if c == '.'
                && !has_dot
                && matches!(self.peek_at(1), Some(d) if d.is_ascii_digit())
            {
                has_dot = true;
                s.push(c);
                self.pos += 1;
            } else {
                break;
            }
        }
        if s.is_empty() || s == "+" || s == "-" {
            return Err(self.err_code(ErrorCode::InvalidNumber, "malformed number"));
        }
        Ok(if has_dot {
            Literal::typed(s, shapefrag_rdf::vocab::xsd::decimal())
        } else {
            Literal::typed(s, shapefrag_rdf::vocab::xsd::integer())
        })
    }

    // --- property paths -------------------------------------------------

    fn parse_path(&mut self) -> Result<PathExpr, SparqlParseError> {
        self.parse_path_alt()
    }

    fn parse_path_alt(&mut self) -> Result<PathExpr, SparqlParseError> {
        let mut left = self.parse_path_seq()?;
        loop {
            self.skip_ws();
            if self.peek() == Some('|') && self.peek_at(1) != Some('|') {
                self.pos += 1;
                let right = self.parse_path_seq()?;
                left = left.or(right);
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_path_seq(&mut self) -> Result<PathExpr, SparqlParseError> {
        let mut left = self.parse_path_elt()?;
        loop {
            self.skip_ws();
            if self.peek() == Some('/') {
                self.pos += 1;
                let right = self.parse_path_elt()?;
                left = left.then(right);
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_path_elt(&mut self) -> Result<PathExpr, SparqlParseError> {
        self.skip_ws();
        let inverse = if self.peek() == Some('^') {
            self.pos += 1;
            true
        } else {
            false
        };
        let mut base = self.parse_path_primary()?;
        // Postfix modifiers.
        loop {
            match self.peek() {
                Some('*') => {
                    self.pos += 1;
                    base = base.star();
                }
                Some('+') => {
                    self.pos += 1;
                    base = base.plus();
                }
                Some('?') => {
                    // Could be a following variable `?x`; only a modifier if
                    // not followed by a name character.
                    if matches!(self.peek_at(1), Some(c) if c.is_alphanumeric() || c == '_') {
                        break;
                    }
                    self.pos += 1;
                    base = base.opt();
                }
                _ => break,
            }
        }
        Ok(if inverse { base.inverse() } else { base })
    }

    fn parse_path_primary(&mut self) -> Result<PathExpr, SparqlParseError> {
        self.descend()?;
        let out = self.parse_path_primary_inner();
        self.depth -= 1;
        out
    }

    fn parse_path_primary_inner(&mut self) -> Result<PathExpr, SparqlParseError> {
        self.skip_ws();
        match self.peek() {
            // Negated property set: !<p> or !(p1|p2|…) (possibly empty).
            Some('!') => {
                self.pos += 1;
                self.skip_ws();
                let mut props = Vec::new();
                if self.peek() == Some('(') {
                    self.pos += 1;
                    loop {
                        self.skip_ws();
                        if self.try_eat(')') {
                            break;
                        }
                        match self.parse_path_primary()? {
                            PathExpr::Prop(p) => props.push(p),
                            other => {
                                return Err(self.err(format!(
                                    "only plain properties allowed in a negated set, got {other}"
                                )))
                            }
                        }
                        self.skip_ws();
                        if self.peek() == Some('|') {
                            self.pos += 1;
                        }
                    }
                } else {
                    match self.parse_path_primary()? {
                        PathExpr::Prop(p) => props.push(p),
                        other => {
                            return Err(self
                                .err(format!("only a plain property may follow '!', got {other}")))
                        }
                    }
                }
                Ok(PathExpr::neg_props(props))
            }
            Some('(') => {
                self.pos += 1;
                let inner = self.parse_path_alt()?;
                self.expect(')')?;
                Ok(inner)
            }
            Some('<') => Ok(PathExpr::Prop(Iri::new(self.parse_iri_ref()?))),
            Some('a') if !matches!(self.peek_at(1), Some(c) if c.is_alphanumeric() || c == '_' || c == ':') =>
            {
                self.pos += 1;
                Ok(PathExpr::Prop(rdf::type_()))
            }
            _ => Ok(PathExpr::Prop(self.parse_prefixed_name()?)),
        }
    }

    // --- expressions ----------------------------------------------------

    /// `FILTER` constraint: parenthesized expression or builtin call.
    fn parse_constraint(&mut self) -> Result<Expr, SparqlParseError> {
        self.skip_ws();
        if self.peek() == Some('(') {
            self.pos += 1;
            let e = self.parse_expr()?;
            self.expect(')')?;
            Ok(e)
        } else {
            self.parse_expr_unary()
        }
    }

    fn parse_expr(&mut self) -> Result<Expr, SparqlParseError> {
        self.parse_expr_or()
    }

    fn parse_expr_or(&mut self) -> Result<Expr, SparqlParseError> {
        let mut left = self.parse_expr_and()?;
        loop {
            self.skip_ws();
            if self.peek() == Some('|') && self.peek_at(1) == Some('|') {
                self.pos += 2;
                let right = self.parse_expr_and()?;
                left = left.or(right);
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_expr_and(&mut self) -> Result<Expr, SparqlParseError> {
        let mut left = self.parse_expr_rel()?;
        loop {
            self.skip_ws();
            if self.peek() == Some('&') && self.peek_at(1) == Some('&') {
                self.pos += 2;
                let right = self.parse_expr_rel()?;
                left = left.and(right);
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_expr_rel(&mut self) -> Result<Expr, SparqlParseError> {
        let left = self.parse_expr_additive()?;
        self.skip_ws();
        if self.peek_keyword("NOT") {
            self.expect_keyword("NOT")?;
            self.expect_keyword("IN")?;
            let terms = self.parse_term_list()?;
            return Ok(Expr::In(Box::new(left), terms, true));
        }
        if self.peek_keyword("IN") {
            self.expect_keyword("IN")?;
            let terms = self.parse_term_list()?;
            return Ok(Expr::In(Box::new(left), terms, false));
        }
        match (self.peek(), self.peek_at(1)) {
            (Some('!'), Some('=')) => {
                self.pos += 2;
                Ok(left.neq(self.parse_expr_additive()?))
            }
            (Some('<'), Some('=')) => {
                self.pos += 2;
                Ok(Expr::Le(
                    Box::new(left),
                    Box::new(self.parse_expr_additive()?),
                ))
            }
            (Some('>'), Some('=')) => {
                self.pos += 2;
                Ok(Expr::Ge(
                    Box::new(left),
                    Box::new(self.parse_expr_additive()?),
                ))
            }
            (Some('='), _) => {
                self.pos += 1;
                Ok(left.eq(self.parse_expr_additive()?))
            }
            (Some('<'), _) => {
                self.pos += 1;
                Ok(Expr::Lt(
                    Box::new(left),
                    Box::new(self.parse_expr_additive()?),
                ))
            }
            (Some('>'), _) => {
                self.pos += 1;
                Ok(Expr::Gt(
                    Box::new(left),
                    Box::new(self.parse_expr_additive()?),
                ))
            }
            _ => Ok(left),
        }
    }

    fn parse_expr_additive(&mut self) -> Result<Expr, SparqlParseError> {
        let mut left = self.parse_expr_multiplicative()?;
        loop {
            self.skip_ws();
            match self.peek() {
                Some('+') => {
                    self.pos += 1;
                    let right = self.parse_expr_multiplicative()?;
                    left = Expr::Add(Box::new(left), Box::new(right));
                }
                // A '-' immediately followed by a digit could be a negative
                // numeric literal; treat infix '-' only when whitespace
                // separated or followed by a non-digit.
                Some('-') => {
                    self.pos += 1;
                    let right = self.parse_expr_multiplicative()?;
                    left = Expr::Sub(Box::new(left), Box::new(right));
                }
                _ => return Ok(left),
            }
        }
    }

    fn parse_expr_multiplicative(&mut self) -> Result<Expr, SparqlParseError> {
        let mut left = self.parse_expr_unary()?;
        loop {
            self.skip_ws();
            match self.peek() {
                Some('*') => {
                    self.pos += 1;
                    let right = self.parse_expr_unary()?;
                    left = Expr::Mul(Box::new(left), Box::new(right));
                }
                Some('/') => {
                    self.pos += 1;
                    let right = self.parse_expr_unary()?;
                    left = Expr::Div(Box::new(left), Box::new(right));
                }
                _ => return Ok(left),
            }
        }
    }

    fn parse_expr_unary(&mut self) -> Result<Expr, SparqlParseError> {
        self.descend()?;
        let out = self.parse_expr_unary_inner();
        self.depth -= 1;
        out
    }

    fn parse_expr_unary_inner(&mut self) -> Result<Expr, SparqlParseError> {
        self.skip_ws();
        if self.peek() == Some('!') && self.peek_at(1) != Some('=') {
            self.pos += 1;
            return Ok(self.parse_expr_unary()?.not());
        }
        self.parse_expr_primary()
    }

    fn parse_builtin1(
        &mut self,
        make: impl Fn(Box<Expr>) -> Expr,
    ) -> Result<Expr, SparqlParseError> {
        self.expect('(')?;
        let e = self.parse_expr()?;
        self.expect(')')?;
        Ok(make(Box::new(e)))
    }

    fn parse_builtin2(
        &mut self,
        make: impl Fn(Box<Expr>, Box<Expr>) -> Expr,
    ) -> Result<Expr, SparqlParseError> {
        self.expect('(')?;
        let a = self.parse_expr()?;
        self.expect(',')?;
        let b = self.parse_expr()?;
        self.expect(')')?;
        Ok(make(Box::new(a), Box::new(b)))
    }

    fn parse_expr_primary(&mut self) -> Result<Expr, SparqlParseError> {
        self.skip_ws();
        if self.peek() == Some('(') {
            self.pos += 1;
            let e = self.parse_expr()?;
            self.expect(')')?;
            return Ok(e);
        }
        if self.eat_keyword("bound") {
            self.expect('(')?;
            let v = self.parse_var()?;
            self.expect(')')?;
            return Ok(Expr::Bound(v));
        }
        if self.eat_keyword("langMatches") {
            return self.parse_builtin2(Expr::LangMatches);
        }
        if self.eat_keyword("sameTerm") {
            return self.parse_builtin2(Expr::SameTerm);
        }
        if self.eat_keyword("lang") {
            return self.parse_builtin1(Expr::Lang);
        }
        if self.eat_keyword("str") {
            return self.parse_builtin1(Expr::Str);
        }
        if self.eat_keyword("isIRI") || self.eat_keyword("isURI") {
            return self.parse_builtin1(Expr::IsIri);
        }
        if self.eat_keyword("isLiteral") {
            return self.parse_builtin1(Expr::IsLiteral);
        }
        if self.eat_keyword("isBlank") {
            return self.parse_builtin1(Expr::IsBlank);
        }
        if self.eat_keyword("strlen") {
            return self.parse_builtin1(Expr::StrLen);
        }
        if self.eat_keyword("datatype") {
            return self.parse_builtin1(Expr::Datatype);
        }
        if self.eat_keyword("COALESCE") {
            self.expect('(')?;
            let mut items = vec![self.parse_expr()?];
            while self.try_eat(',') {
                items.push(self.parse_expr()?);
            }
            self.expect(')')?;
            return Ok(Expr::Coalesce(items));
        }
        if self.eat_keyword("regex") {
            self.expect('(')?;
            let e = self.parse_expr()?;
            self.expect(',')?;
            self.skip_ws();
            let pattern = self.parse_literal()?;
            let flags = if self.try_eat(',') {
                self.skip_ws();
                self.parse_literal()?.lexical().to_owned()
            } else {
                String::new()
            };
            self.expect(')')?;
            return Ok(Expr::Regex(
                Box::new(e),
                pattern.lexical().to_owned(),
                flags,
            ));
        }
        match self.peek() {
            Some('?') | Some('$') => Ok(Expr::Var(self.parse_var()?)),
            _ => Ok(Expr::Const(self.parse_term()?)),
        }
    }

    fn parse_term_list(&mut self) -> Result<Vec<Term>, SparqlParseError> {
        self.expect('(')?;
        let mut terms = Vec::new();
        loop {
            self.skip_ws();
            if self.try_eat(')') {
                break;
            }
            terms.push(self.parse_term()?);
            self.skip_ws();
            if !self.try_eat(',') && self.peek() != Some(')') {
                return Err(self.err("expected ',' or ')' in IN list"));
            }
        }
        Ok(terms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval, eval_select, EvalConfig};
    use shapefrag_rdf::{Graph, Triple};

    fn iri(n: &str) -> Iri {
        Iri::new(format!("http://e/{n}"))
    }

    fn term(n: &str) -> Term {
        Term::iri(format!("http://e/{n}"))
    }

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(term(s), iri(p), term(o))
    }

    fn g() -> Graph {
        Graph::from_triples([
            t("a", "p", "b"),
            t("b", "q", "c"),
            t("a", "p", "d"),
            t("d", "q", "c"),
            t("x", "r", "y"),
        ])
    }

    #[test]
    fn basic_select() {
        let q = parse_select("SELECT ?s ?o WHERE { ?s <http://e/p> ?o . }").unwrap();
        assert_eq!(eval(&g(), &q).len(), 2);
    }

    #[test]
    fn prefixes_and_a() {
        let mut graph = g();
        graph.insert(Triple::new(term("a"), rdf::type_(), term("C")));
        let q = parse_select("PREFIX ex: <http://e/>\nSELECT ?s WHERE { ?s a ex:C . }").unwrap();
        assert_eq!(eval(&graph, &q).len(), 1);
    }

    #[test]
    fn select_star_and_distinct() {
        let q =
            parse_select("SELECT DISTINCT ?c WHERE { ?s <http://e/p> ?m . ?m <http://e/q> ?c }")
                .unwrap();
        assert!(q.distinct);
        assert_eq!(eval(&g(), &q).len(), 1);
    }

    #[test]
    fn projection_expressions() {
        let q =
            parse_select("SELECT (?s AS ?t) (<http://e/p> AS ?pred) WHERE { ?s <http://e/p> ?o }")
                .unwrap();
        let res = eval(&g(), &q);
        assert!(res
            .iter()
            .all(|b| b.contains_key("t") && b.contains_key("pred")));
    }

    #[test]
    fn union_and_minus() {
        let q =
            parse_select("SELECT ?s WHERE { { ?s <http://e/p> ?o } UNION { ?s <http://e/r> ?o } }")
                .unwrap();
        assert_eq!(eval(&g(), &q).len(), 3);
        let q =
            parse_select("SELECT ?s WHERE { { ?s <http://e/p> ?o } MINUS { ?o <http://e/q> ?c } }")
                .unwrap();
        assert_eq!(eval(&g(), &q).len(), 0);
    }

    #[test]
    fn optional_and_bound_filter() {
        let q = parse_select(
            "SELECT ?s WHERE { ?s <http://e/p> ?m . OPTIONAL { ?m <http://e/q> ?w } FILTER (!bound(?w)) }",
        )
        .unwrap();
        assert!(eval(&g(), &q).is_empty());
    }

    #[test]
    fn filters_with_comparisons() {
        let mut graph = Graph::new();
        for (s, n) in [("a", 1), ("b", 7)] {
            graph.insert(Triple::new(
                term(s),
                iri("v"),
                Term::Literal(Literal::integer(n)),
            ));
        }
        let q = parse_select("SELECT ?s WHERE { ?s <http://e/v> ?n . FILTER (?n >= 5) }").unwrap();
        let res = eval(&graph, &q);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0]["s"], term("b"));
    }

    #[test]
    fn in_and_not_in() {
        let q = parse_select(
            "SELECT ?s WHERE { ?s ?p ?o . FILTER (?p NOT IN (<http://e/p>, <http://e/q>)) }",
        )
        .unwrap();
        let res = eval(&g(), &q);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0]["s"], term("x"));
    }

    #[test]
    fn property_paths() {
        let q =
            parse_select("SELECT ?o WHERE { <http://e/a> <http://e/p>/<http://e/q> ?o }").unwrap();
        let res = eval(&g(), &q);
        // ⟦p/q⟧(a) is a *set* of endpoints: {c} (the two ways of reaching c
        // collapse; property paths have set semantics here, per Table 1).
        assert_eq!(res.len(), 1);
        assert_eq!(res[0]["o"], term("c"));
        let q = parse_select("SELECT ?s WHERE { ?s ^<http://e/q> ?o }").unwrap();
        assert_eq!(eval(&g(), &q).len(), 2);
        let q = parse_select("SELECT ?o WHERE { <http://e/a> <http://e/p>* ?o }").unwrap();
        assert_eq!(eval(&g(), &q).len(), 3); // a, b, d
        let q = parse_select("SELECT ?o WHERE { <http://e/a> (<http://e/p>|<http://e/r>)+ ?o }")
            .unwrap();
        assert_eq!(eval(&g(), &q).len(), 2);
    }

    #[test]
    fn negated_property_sets() {
        let q = parse_select("SELECT ?o WHERE { <http://e/a> !<http://e/p> ?o }").unwrap();
        assert!(eval(&g(), &q).is_empty()); // a has only p-edges
        let q = parse_select("SELECT ?o WHERE { <http://e/a> !<http://e/zz> ?o }").unwrap();
        assert_eq!(eval(&g(), &q).len(), 2); // both p-objects
        let q = parse_select("SELECT ?o WHERE { <http://e/a> !(<http://e/p>|<http://e/q>) ?o }")
            .unwrap();
        assert!(eval(&g(), &q).is_empty());
        let q = parse_select("SELECT ?o WHERE { <http://e/a> !() ?o }").unwrap();
        assert_eq!(eval(&g(), &q).len(), 2); // any property
    }

    #[test]
    fn path_opt_modifier_vs_variable() {
        // `<p>? ?x` must parse `?` as a modifier and `?x` as the object.
        let q = parse_select("SELECT ?o WHERE { <http://e/a> <http://e/p>? ?o }").unwrap();
        assert_eq!(eval(&g(), &q).len(), 3); // a, b, d
    }

    #[test]
    fn subselect_renames() {
        let q = parse_select(
            "SELECT ?t ?o WHERE { { SELECT (?s AS ?t) ?o WHERE { ?s <http://e/p> ?o } } }",
        )
        .unwrap();
        assert_eq!(eval(&g(), &q).len(), 2);
    }

    #[test]
    fn lang_functions() {
        let mut graph = Graph::new();
        graph.insert(Triple::new(
            term("a"),
            iri("l"),
            Term::Literal(Literal::lang_string("hi", "en")),
        ));
        let q = parse_select(
            "SELECT ?s WHERE { ?s <http://e/l> ?t . FILTER langMatches(lang(?t), \"en\") }",
        )
        .unwrap();
        assert_eq!(eval(&graph, &q).len(), 1);
    }

    #[test]
    fn round_trip_display_parse() {
        let queries = [
            "SELECT ?s ?o WHERE { ?s <http://e/p> ?o . }",
            "SELECT DISTINCT ?s WHERE { { ?s <http://e/p> ?o } UNION { ?s <http://e/r> ?o } }",
            "SELECT ?o WHERE { <http://e/a> <http://e/p>/<http://e/q>* ?o }",
            "SELECT (?s AS ?t) WHERE { ?s <http://e/p> ?o . FILTER (?o != <http://e/b>) }",
        ];
        let graph = g();
        for text in queries {
            let q1 = parse_select(text).unwrap();
            let printed = q1.to_string();
            let q2 = parse_select(&printed)
                .unwrap_or_else(|e| panic!("reparse failed for:\n{printed}\n{e}"));
            let mut r1 = eval_select(&graph, &q1, &EvalConfig::indexed()).unwrap();
            let mut r2 = eval_select(&graph, &q2, &EvalConfig::indexed()).unwrap();
            r1.sort();
            r2.sort();
            assert_eq!(r1, r2, "solutions differ after round trip of {text}");
        }
    }

    #[test]
    fn parse_errors() {
        assert!(parse_select("SELECT WHERE { ?s ?p ?o }").is_err());
        assert!(parse_select("SELECT ?s WHERE { ?s ex:p ?o }").is_err()); // undeclared prefix
        assert!(parse_select("SELECT ?s WHERE { ?s <http://e/p> ?o ").is_err());
    }

    #[test]
    fn errors_carry_position_and_code() {
        let err = parse_select("SELECT ?s WHERE { ?s ex:p ?o }").unwrap_err();
        assert_eq!(err.code, ErrorCode::UndeclaredPrefix);
        assert_eq!(err.line, 1);
        assert!(err.column > 1);

        let err = parse_select("SELECT ?s\nWHERE {\n  ?s <http://e/p ?o }").unwrap_err();
        assert_eq!(err.code, ErrorCode::UnterminatedIri);
        assert_eq!(err.line, 3);

        let err = parse_select("SELECT ?s WHERE { ?s <http://e/p> \"oops }").unwrap_err();
        assert_eq!(err.code, ErrorCode::UnterminatedString);

        let err = parse_select("SELECT ?s WHERE { ?s <http://e/p> ?o ").unwrap_err();
        assert_eq!(err.code, ErrorCode::UnexpectedEof);
    }

    #[test]
    fn deep_nesting_is_a_structured_error_not_a_stack_overflow() {
        // Groups: {{{…}}}.
        let deep_groups = format!(
            "SELECT ?s WHERE {}{}{}",
            "{ ".repeat(MAX_DEPTH + 10),
            "?s ?p ?o",
            " }".repeat(MAX_DEPTH + 10)
        );
        let err = parse_select(&deep_groups).unwrap_err();
        assert_eq!(err.code, ErrorCode::DepthLimit);

        // Parenthesized paths: ((((p)))).
        let deep_path = format!(
            "SELECT ?s WHERE {{ ?s {}<http://e/p>{} ?o }}",
            "(".repeat(MAX_DEPTH + 10),
            ")".repeat(MAX_DEPTH + 10)
        );
        let err = parse_select(&deep_path).unwrap_err();
        assert_eq!(err.code, ErrorCode::DepthLimit);

        // Unary chains: FILTER (!!!!…bound(?s)).
        let deep_not = format!(
            "SELECT ?s WHERE {{ ?s ?p ?o . FILTER ({}bound(?s)) }}",
            "!".repeat(MAX_DEPTH + 10)
        );
        let err = parse_select(&deep_not).unwrap_err();
        assert_eq!(err.code, ErrorCode::DepthLimit);
    }

    #[test]
    fn depth_guard_admits_reasonable_nesting() {
        let nested = format!(
            "SELECT ?s WHERE {}{}{}",
            "{ ".repeat(20),
            "?s ?p ?o",
            " }".repeat(20)
        );
        assert!(parse_select(&nested).is_ok());
    }
}
