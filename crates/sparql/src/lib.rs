//! # shapefrag-sparql
//!
//! A self-contained SPARQL subset: algebra, evaluator, and a concrete-syntax
//! parser. The subset is exactly what the paper's shape-to-SPARQL
//! translation (§5.1) emits — BGPs, property paths, `UNION`, `MINUS`,
//! `OPTIONAL`, `FILTER`, sub-selects with expression projection,
//! `DISTINCT` — plus enough expressions for the benchmark query workloads
//! (§4.1).
//!
//! ```
//! use shapefrag_sparql::{parser::parse_select, eval};
//! use shapefrag_rdf::turtle;
//!
//! let graph = turtle::parse(r#"
//!     @prefix ex: <http://example.org/> .
//!     ex:a ex:knows ex:b . ex:b ex:knows ex:c .
//! "#).unwrap();
//!
//! let query = parse_select(
//!     "PREFIX ex: <http://example.org/>
//!      SELECT ?x WHERE { ex:a ex:knows+ ?x }",
//! ).unwrap();
//! assert_eq!(eval(&graph, &query).len(), 2); // b and c
//! ```
#![forbid(unsafe_code)]

pub mod algebra;
pub mod eval;
pub mod parser;

pub use algebra::{Expr, Pattern, Projection, Select, TriplePattern, VarOrTerm};
pub use eval::{
    bindings_to_graph, eval, eval_select, eval_select_governed, Binding, EvalConfig,
    ResourceExhausted,
};
pub use parser::{parse_select, SparqlParseError};
pub use shapefrag_govern::{Budget, CancelToken, EngineError, ErrorCode, ExecCtx};
