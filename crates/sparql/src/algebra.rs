//! SPARQL algebra: the query fragment needed to run the paper's generated
//! provenance queries (§5.1) and the benchmark workloads (§4.1).
//!
//! Covered: basic graph patterns, property-path patterns, `UNION`, `MINUS`,
//! `OPTIONAL` (left join), `FILTER`, sub-`SELECT` with expression
//! projections (`(?x AS ?y)`, constants), and `DISTINCT`.

use std::fmt;

use shapefrag_rdf::{Iri, Term};
use shapefrag_shacl::PathExpr;

/// A variable name (without the leading `?`).
pub type Var = String;

/// A variable or a constant RDF term.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VarOrTerm {
    Var(Var),
    Term(Term),
}

impl VarOrTerm {
    /// Convenience constructor for a variable.
    pub fn var(name: impl Into<String>) -> Self {
        VarOrTerm::Var(name.into())
    }

    /// Convenience constructor for an IRI term.
    pub fn iri(iri: impl Into<Iri>) -> Self {
        VarOrTerm::Term(Term::Iri(iri.into()))
    }

    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            VarOrTerm::Var(v) => Some(v),
            VarOrTerm::Term(_) => None,
        }
    }
}

impl fmt::Display for VarOrTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VarOrTerm::Var(v) => write!(f, "?{v}"),
            VarOrTerm::Term(t) => write!(f, "{t}"),
        }
    }
}

/// A triple pattern (predicate is a variable or IRI).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriplePattern {
    pub subject: VarOrTerm,
    pub predicate: VarOrTerm,
    pub object: VarOrTerm,
}

impl TriplePattern {
    pub fn new(subject: VarOrTerm, predicate: VarOrTerm, object: VarOrTerm) -> Self {
        TriplePattern {
            subject,
            predicate,
            object,
        }
    }

    /// Variables mentioned by this pattern.
    pub fn vars(&self) -> Vec<&str> {
        [&self.subject, &self.predicate, &self.object]
            .into_iter()
            .filter_map(VarOrTerm::as_var)
            .collect()
    }
}

impl fmt::Display for TriplePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

/// A filter / projection expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Var(Var),
    Const(Term),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    /// Value equality (with numeric promotion).
    Eq(Box<Expr>, Box<Expr>),
    Neq(Box<Expr>, Box<Expr>),
    Lt(Box<Expr>, Box<Expr>),
    Le(Box<Expr>, Box<Expr>),
    Gt(Box<Expr>, Box<Expr>),
    Ge(Box<Expr>, Box<Expr>),
    /// `?v IN (t₁, …)` / `NOT IN`.
    In(Box<Expr>, Vec<Term>, bool),
    /// `bound(?v)`.
    Bound(Var),
    /// `lang(e)` — the language tag as a plain literal (empty if none).
    Lang(Box<Expr>),
    /// `langMatches(e, range)`.
    LangMatches(Box<Expr>, Box<Expr>),
    /// `str(e)`.
    Str(Box<Expr>),
    /// `isIRI(e)` / `isLiteral(e)` / `isBlank(e)`.
    IsIri(Box<Expr>),
    IsLiteral(Box<Expr>),
    IsBlank(Box<Expr>),
    /// `sameTerm(a, b)`.
    SameTerm(Box<Expr>, Box<Expr>),
    /// `COALESCE(e₁, …, eₙ)` — first non-error value.
    Coalesce(Vec<Expr>),
    /// `regex(e, pattern, flags)` with a constant pattern.
    Regex(Box<Expr>, String, String),
    /// `strlen(e)`.
    StrLen(Box<Expr>),
    /// `datatype(e)`.
    Datatype(Box<Expr>),
    /// Numeric arithmetic `a + b`, `a - b`, `a * b`, `a / b`.
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Div(Box<Expr>, Box<Expr>),
}

impl Expr {
    pub fn var(name: impl Into<String>) -> Self {
        Expr::Var(name.into())
    }

    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Expr::Not(Box::new(self))
    }

    pub fn and(self, other: Expr) -> Self {
        Expr::And(Box::new(self), Box::new(other))
    }

    pub fn or(self, other: Expr) -> Self {
        Expr::Or(Box::new(self), Box::new(other))
    }

    pub fn eq(self, other: Expr) -> Self {
        Expr::Eq(Box::new(self), Box::new(other))
    }

    pub fn neq(self, other: Expr) -> Self {
        Expr::Neq(Box::new(self), Box::new(other))
    }

    pub fn lt(self, other: Expr) -> Self {
        Expr::Lt(Box::new(self), Box::new(other))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Var(v) => write!(f, "?{v}"),
            Expr::Const(t) => write!(f, "{t}"),
            Expr::Not(e) => write!(f, "(! {e})"),
            Expr::And(a, b) => write!(f, "({a} && {b})"),
            Expr::Or(a, b) => write!(f, "({a} || {b})"),
            Expr::Eq(a, b) => write!(f, "({a} = {b})"),
            Expr::Neq(a, b) => write!(f, "({a} != {b})"),
            Expr::Lt(a, b) => write!(f, "({a} < {b})"),
            Expr::Le(a, b) => write!(f, "({a} <= {b})"),
            Expr::Gt(a, b) => write!(f, "({a} > {b})"),
            Expr::Ge(a, b) => write!(f, "({a} >= {b})"),
            Expr::In(e, terms, negated) => {
                write!(f, "({e} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, t) in terms.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, "))")
            }
            Expr::Bound(v) => write!(f, "bound(?{v})"),
            Expr::Lang(e) => write!(f, "lang({e})"),
            Expr::LangMatches(a, b) => write!(f, "langMatches({a}, {b})"),
            Expr::Str(e) => write!(f, "str({e})"),
            Expr::IsIri(e) => write!(f, "isIRI({e})"),
            Expr::IsLiteral(e) => write!(f, "isLiteral({e})"),
            Expr::IsBlank(e) => write!(f, "isBlank({e})"),
            Expr::SameTerm(a, b) => write!(f, "sameTerm({a}, {b})"),
            Expr::Coalesce(items) => {
                write!(f, "COALESCE(")?;
                for (i, e) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::Regex(e, pattern, flags) => {
                write!(
                    f,
                    "regex({e}, \"{}\"",
                    pattern.replace('\\', "\\\\").replace('"', "\\\"")
                )?;
                if flags.is_empty() {
                    write!(f, ")")
                } else {
                    write!(f, ", \"{flags}\")")
                }
            }
            Expr::StrLen(e) => write!(f, "strlen({e})"),
            Expr::Datatype(e) => write!(f, "datatype({e})"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Div(a, b) => write!(f, "({a} / {b})"),
        }
    }
}

/// One projection item in a `SELECT` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// A plain variable `?v`.
    Var(Var),
    /// `(?x AS ?y)` — rebind a variable.
    Rename(Var, Var),
    /// `(<iri> AS ?v)` / `("lit" AS ?v)` — bind a constant.
    Const(Term, Var),
}

impl Projection {
    /// The output variable this item binds.
    pub fn out_var(&self) -> &str {
        match self {
            Projection::Var(v) => v,
            Projection::Rename(_, v) => v,
            Projection::Const(_, v) => v,
        }
    }
}

impl fmt::Display for Projection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Projection::Var(v) => write!(f, "?{v}"),
            Projection::Rename(x, y) => write!(f, "(?{x} AS ?{y})"),
            Projection::Const(t, v) => write!(f, "({t} AS ?{v})"),
        }
    }
}

/// A graph pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum Pattern {
    /// A basic graph pattern: a conjunction of triple patterns.
    Bgp(Vec<TriplePattern>),
    /// A property-path pattern `s E o`.
    Path {
        subject: VarOrTerm,
        path: PathExpr,
        object: VarOrTerm,
    },
    /// Join of two patterns (`{A} . {B}` / adjacency).
    Join(Box<Pattern>, Box<Pattern>),
    /// `{A} UNION {B}`.
    Union(Box<Pattern>, Box<Pattern>),
    /// `{A} MINUS {B}`.
    Minus(Box<Pattern>, Box<Pattern>),
    /// `{A} OPTIONAL {B}` with an optional join condition.
    LeftJoin(Box<Pattern>, Box<Pattern>, Option<Expr>),
    /// `FILTER(expr)` over a pattern.
    Filter(Box<Pattern>, Expr),
    /// A sub-`SELECT`.
    SubSelect(Box<Select>),
    /// The unit pattern (empty group), yielding one empty binding.
    Unit,
}

impl Pattern {
    /// Joins two patterns.
    pub fn join(self, other: Pattern) -> Pattern {
        match (self, other) {
            (Pattern::Unit, p) | (p, Pattern::Unit) => p,
            (a, b) => Pattern::Join(Box::new(a), Box::new(b)),
        }
    }

    /// Unions two patterns.
    pub fn union(self, other: Pattern) -> Pattern {
        Pattern::Union(Box::new(self), Box::new(other))
    }

    /// Filters this pattern.
    pub fn filter(self, expr: Expr) -> Pattern {
        Pattern::Filter(Box::new(self), expr)
    }

    /// The variables this pattern can bind (in-scope variables).
    pub fn in_scope_vars(&self) -> Vec<Var> {
        let mut vars = Vec::new();
        self.collect_vars(&mut vars);
        vars.sort();
        vars.dedup();
        vars
    }

    fn collect_vars(&self, out: &mut Vec<Var>) {
        match self {
            Pattern::Bgp(tps) => {
                for tp in tps {
                    out.extend(tp.vars().iter().map(|s| s.to_string()));
                }
            }
            Pattern::Path {
                subject, object, ..
            } => {
                if let Some(v) = subject.as_var() {
                    out.push(v.to_string());
                }
                if let Some(v) = object.as_var() {
                    out.push(v.to_string());
                }
            }
            Pattern::Join(a, b) | Pattern::Union(a, b) | Pattern::LeftJoin(a, b, _) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            // MINUS's right side does not bind.
            Pattern::Minus(a, _) => a.collect_vars(out),
            Pattern::Filter(p, _) => p.collect_vars(out),
            Pattern::SubSelect(sel) => out.extend(sel.out_vars()),
            Pattern::Unit => {}
        }
    }
}

/// A `SELECT` query.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub distinct: bool,
    /// `None` means `SELECT *`.
    pub projection: Option<Vec<Projection>>,
    pub pattern: Pattern,
}

impl Select {
    /// `SELECT *` over a pattern.
    pub fn star(pattern: Pattern) -> Select {
        Select {
            distinct: false,
            projection: None,
            pattern,
        }
    }

    /// `SELECT ?v₁ … ?vₙ` over a pattern.
    pub fn vars(vars: impl IntoIterator<Item = impl Into<String>>, pattern: Pattern) -> Select {
        Select {
            distinct: false,
            projection: Some(
                vars.into_iter()
                    .map(|v| Projection::Var(v.into()))
                    .collect(),
            ),
            pattern,
        }
    }

    /// With `DISTINCT`.
    pub fn distinct(mut self) -> Select {
        self.distinct = true;
        self
    }

    /// The output variables of this query.
    pub fn out_vars(&self) -> Vec<Var> {
        match &self.projection {
            Some(items) => items.iter().map(|i| i.out_var().to_string()).collect(),
            None => self.pattern.in_scope_vars(),
        }
    }
}

/// Pretty-prints patterns in standard SPARQL concrete syntax.
fn fmt_pattern(p: &Pattern, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
    let pad = "  ".repeat(indent);
    match p {
        Pattern::Bgp(tps) => {
            for tp in tps {
                writeln!(f, "{pad}{tp}")?;
            }
            Ok(())
        }
        Pattern::Path {
            subject,
            path,
            object,
        } => writeln!(f, "{pad}{subject} {path} {object} ."),
        Pattern::Join(a, b) => {
            fmt_group(a, f, indent)?;
            writeln!(f, "{pad}.")?;
            fmt_group(b, f, indent)
        }
        Pattern::Union(a, b) => {
            fmt_group(a, f, indent)?;
            writeln!(f, "{pad}UNION")?;
            fmt_group(b, f, indent)
        }
        Pattern::Minus(a, b) => {
            fmt_group(a, f, indent)?;
            writeln!(f, "{pad}MINUS")?;
            fmt_group(b, f, indent)
        }
        Pattern::LeftJoin(a, b, expr) => {
            fmt_group(a, f, indent)?;
            writeln!(f, "{pad}OPTIONAL")?;
            match expr {
                None => fmt_group(b, f, indent),
                Some(e) => {
                    writeln!(f, "{pad}{{")?;
                    fmt_pattern(b, f, indent + 1)?;
                    writeln!(f, "{pad}  FILTER ({e})")?;
                    writeln!(f, "{pad}}}")
                }
            }
        }
        Pattern::Filter(inner, expr) => {
            fmt_pattern(inner, f, indent)?;
            writeln!(f, "{pad}FILTER ({expr})")
        }
        Pattern::SubSelect(sel) => {
            writeln!(f, "{pad}{{")?;
            fmt_select(sel, f, indent + 1)?;
            writeln!(f, "{pad}}}")
        }
        Pattern::Unit => Ok(()),
    }
}

fn fmt_group(p: &Pattern, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
    let pad = "  ".repeat(indent);
    writeln!(f, "{pad}{{")?;
    fmt_pattern(p, f, indent + 1)?;
    writeln!(f, "{pad}}}")
}

fn fmt_select(sel: &Select, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
    let pad = "  ".repeat(indent);
    write!(f, "{pad}SELECT ")?;
    if sel.distinct {
        write!(f, "DISTINCT ")?;
    }
    match &sel.projection {
        None => writeln!(f, "*")?,
        Some(items) => {
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{item}")?;
            }
            writeln!(f)?;
        }
    }
    writeln!(f, "{pad}WHERE {{")?;
    fmt_pattern(&sel.pattern, f, indent + 1)?;
    write!(f, "{pad}}}")
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_select(self, f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iri(n: &str) -> Iri {
        Iri::new(format!("http://e/{n}"))
    }

    #[test]
    fn display_round_readable() {
        let q = Select::vars(
            ["s", "o"],
            Pattern::Bgp(vec![TriplePattern::new(
                VarOrTerm::var("s"),
                VarOrTerm::iri(iri("p")),
                VarOrTerm::var("o"),
            )]),
        );
        let text = q.to_string();
        assert!(text.contains("SELECT ?s ?o"));
        assert!(text.contains("?s <http://e/p> ?o ."));
    }

    #[test]
    fn in_scope_vars() {
        let p = Pattern::Bgp(vec![TriplePattern::new(
            VarOrTerm::var("s"),
            VarOrTerm::var("p"),
            VarOrTerm::var("o"),
        )])
        .join(Pattern::Path {
            subject: VarOrTerm::var("o"),
            path: PathExpr::prop(iri("q")),
            object: VarOrTerm::var("x"),
        });
        assert_eq!(p.in_scope_vars(), vec!["o", "p", "s", "x"]);
    }

    #[test]
    fn minus_right_does_not_bind() {
        let left = Pattern::Bgp(vec![TriplePattern::new(
            VarOrTerm::var("s"),
            VarOrTerm::iri(iri("p")),
            VarOrTerm::var("o"),
        )]);
        let right = Pattern::Bgp(vec![TriplePattern::new(
            VarOrTerm::var("s"),
            VarOrTerm::iri(iri("q")),
            VarOrTerm::var("z"),
        )]);
        let p = Pattern::Minus(Box::new(left), Box::new(right));
        assert_eq!(p.in_scope_vars(), vec!["o", "s"]);
    }

    #[test]
    fn unit_join_identity() {
        let bgp = Pattern::Bgp(vec![]);
        assert_eq!(Pattern::Unit.join(bgp.clone()), bgp);
    }

    #[test]
    fn projection_out_vars() {
        let sel = Select {
            distinct: true,
            projection: Some(vec![
                Projection::Var("a".into()),
                Projection::Rename("b".into(), "c".into()),
                Projection::Const(Term::iri("http://e/x"), "d".into()),
            ]),
            pattern: Pattern::Unit,
        };
        assert_eq!(sel.out_vars(), vec!["a", "c", "d"]);
    }
}
