//! SPARQL evaluation: solution mappings over a [`Graph`].
//!
//! Two evaluator configurations stand in for the paper's two engines in the
//! Figure 3 experiment: [`EvalConfig::indexed`] (greedy BGP reordering +
//! hash joins) and [`EvalConfig::naive`] (textual order + nested-loop
//! joins). Both produce identical solution sets.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::time::{Duration, Instant};

use shapefrag_govern::{BudgetKind, EngineError, ExecCtx};
use shapefrag_rdf::{Graph, GraphAccess, Iri, Literal, Term, TermId};
use shapefrag_shacl::rpq::CompiledPath;
use shapefrag_shacl::PathExpr;

use crate::algebra::{Expr, Pattern, Projection, Select, TriplePattern, VarOrTerm};

/// A solution mapping μ: a partial map from variables to terms.
pub type Binding = BTreeMap<String, Term>;

/// Evaluator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalConfig {
    /// Use hash joins and greedy BGP reordering.
    pub indexed_joins: bool,
    /// Abort evaluation once this many intermediate bindings exist
    /// (`None` = unlimited). Models the out-of-memory behavior observed in
    /// §5.3.2 ("did not terminate or went out of memory").
    pub max_intermediate: Option<usize>,
    /// Abort evaluation after this wall-clock budget (`None` = unlimited).
    /// Models the "did not terminate" outcomes of §5.3.2.
    pub max_duration: Option<Duration>,
}

impl EvalConfig {
    /// The index-accelerated configuration.
    pub fn indexed() -> Self {
        EvalConfig {
            indexed_joins: true,
            max_intermediate: None,
            max_duration: None,
        }
    }

    /// The naive configuration (textual order, nested-loop joins).
    pub fn naive() -> Self {
        EvalConfig {
            indexed_joins: false,
            max_intermediate: None,
            max_duration: None,
        }
    }

    /// Adds an intermediate-result cap.
    pub fn with_cap(mut self, cap: usize) -> Self {
        self.max_intermediate = Some(cap);
        self
    }

    /// Adds a wall-clock budget.
    pub fn with_timeout(mut self, budget: Duration) -> Self {
        self.max_duration = Some(budget);
        self
    }
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig::indexed()
    }
}

/// Evaluation failure: a resource budget (bindings or wall clock) was
/// exceeded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceExhausted {
    /// Intermediate binding count at abort (0 for pure timeouts).
    pub intermediate: usize,
    /// True when the wall-clock budget was the trigger.
    pub timed_out: bool,
}

impl std::fmt::Display for ResourceExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.timed_out {
            write!(f, "query aborted: wall-clock budget exceeded")
        } else {
            write!(
                f,
                "query aborted: intermediate result cap exceeded ({} bindings)",
                self.intermediate
            )
        }
    }
}

impl std::error::Error for ResourceExhausted {}

/// Evaluates a `SELECT` query, returning its solution mappings.
pub fn eval_select<G: GraphAccess>(
    graph: &G,
    query: &Select,
    config: &EvalConfig,
) -> Result<Vec<Binding>, ResourceExhausted> {
    let mut ev = Evaluator {
        graph,
        config: *config,
        paths: HashMap::new(),
        started: Instant::now(),
        exec: None,
        fault: None,
    };
    ev.select(query)
}

/// Evaluates a `SELECT` query under an execution-governance context: the
/// step budget, memory estimate, wall-clock deadline, and cancellation
/// token of `exec` are all honored, on top of whatever `config` caps are
/// set. Governance faults surface as structured [`EngineError`]s; a
/// `config`-level cap that trips first is reported as the matching
/// `EngineError` variant (intermediate cap → memory budget, wall-clock cap
/// → deadline).
pub fn eval_select_governed<G: GraphAccess>(
    graph: &G,
    query: &Select,
    config: &EvalConfig,
    exec: &ExecCtx,
) -> Result<Vec<Binding>, EngineError> {
    let mut ev = Evaluator {
        graph,
        config: *config,
        paths: HashMap::new(),
        started: Instant::now(),
        exec: Some(exec),
        fault: None,
    };
    match ev.select(query) {
        Ok(rows) => match ev.fault.take() {
            Some(e) => Err(e),
            None => Ok(rows),
        },
        Err(r) => Err(ev.fault.take().unwrap_or_else(|| {
            if r.timed_out {
                EngineError::DeadlineExceeded {
                    budget_ms: config
                        .max_duration
                        .map(|d| d.as_millis() as u64)
                        .unwrap_or(0),
                }
            } else {
                EngineError::BudgetExceeded {
                    kind: BudgetKind::Memory,
                    limit: config.max_intermediate.unwrap_or(0) as u64,
                }
            }
        })),
    }
}

/// Convenience: evaluates with the default (indexed) configuration,
/// panicking is impossible since no cap is set.
pub fn eval<G: GraphAccess>(graph: &G, query: &Select) -> Vec<Binding> {
    eval_select(graph, query, &EvalConfig::indexed()).expect("no cap set")
}

/// Builds a graph from the `?s ?p ?o` (or custom-named) projections of a
/// solution set — the "CONSTRUCT WHERE" reading used for subgraph queries.
/// Bindings missing any of the three variables, or with a non-IRI
/// predicate/literal subject, are skipped.
pub fn bindings_to_graph(bindings: &[Binding], s: &str, p: &str, o: &str) -> Graph {
    let mut g = Graph::new();
    for b in bindings {
        let (Some(sv), Some(pv), Some(ov)) = (b.get(s), b.get(p), b.get(o)) else {
            continue;
        };
        let Term::Iri(pred) = pv else { continue };
        if sv.is_literal() {
            continue;
        }
        g.insert(shapefrag_rdf::Triple::new(
            sv.clone(),
            pred.clone(),
            ov.clone(),
        ));
    }
    g
}

struct Evaluator<'g, G: GraphAccess> {
    graph: &'g G,
    config: EvalConfig,
    paths: HashMap<PathExpr, CompiledPath>,
    started: Instant,
    /// Governance context (`None` for the classic, ungoverned entry points).
    exec: Option<&'g ExecCtx>,
    /// First governance fault. The internal operators unwind through
    /// [`ResourceExhausted`]; the governed entry point re-raises this.
    fault: Option<EngineError>,
}

impl<'g, G: GraphAccess> Evaluator<'g, G> {
    /// Records the first governance fault and produces the
    /// [`ResourceExhausted`] used to unwind the operator recursion.
    fn engine_fault(&mut self, e: EngineError, n: usize) -> ResourceExhausted {
        let timed_out = matches!(e, EngineError::DeadlineExceeded { .. });
        if self.fault.is_none() {
            self.fault = Some(e);
        }
        ResourceExhausted {
            intermediate: n,
            timed_out,
        }
    }

    /// Charges `rows` materialized bindings against the step budget.
    fn charge_rows(&mut self, rows: usize) -> Result<(), ResourceExhausted> {
        if let Some(exec) = self.exec {
            if let Err(e) = exec.tick(rows as u64) {
                return Err(self.engine_fault(e, rows));
            }
        }
        Ok(())
    }

    fn check_cap(&mut self, n: usize) -> Result<(), ResourceExhausted> {
        if let Some(exec) = self.exec {
            if let Err(e) = exec.tick(1).and_then(|()| exec.check_now()) {
                return Err(self.engine_fault(e, n));
            }
        }
        if let Some(cap) = self.config.max_intermediate {
            if n > cap {
                return Err(ResourceExhausted {
                    intermediate: n,
                    timed_out: false,
                });
            }
        }
        if let Some(budget) = self.config.max_duration {
            if self.started.elapsed() > budget {
                return Err(ResourceExhausted {
                    intermediate: n,
                    timed_out: true,
                });
            }
        }
        Ok(())
    }

    fn select(&mut self, query: &Select) -> Result<Vec<Binding>, ResourceExhausted> {
        let solutions = self.pattern(&query.pattern)?;
        let mut projected: Vec<Binding> = match &query.projection {
            None => solutions,
            Some(items) => solutions
                .into_iter()
                .map(|b| {
                    let mut out = Binding::new();
                    for item in items {
                        match item {
                            Projection::Var(v) => {
                                if let Some(t) = b.get(v) {
                                    out.insert(v.clone(), t.clone());
                                }
                            }
                            Projection::Rename(x, y) => {
                                if let Some(t) = b.get(x) {
                                    out.insert(y.clone(), t.clone());
                                }
                            }
                            Projection::Const(t, v) => {
                                out.insert(v.clone(), t.clone());
                            }
                        }
                    }
                    out
                })
                .collect(),
        };
        if query.distinct {
            let set: BTreeSet<Binding> = projected.into_iter().collect();
            projected = set.into_iter().collect();
        }
        Ok(projected)
    }

    fn pattern(&mut self, pattern: &Pattern) -> Result<Vec<Binding>, ResourceExhausted> {
        match pattern {
            Pattern::Unit => Ok(vec![Binding::new()]),
            Pattern::Bgp(tps) => self.bgp(tps),
            Pattern::Path {
                subject,
                path,
                object,
            } => self.path_pattern(subject, path, object, &Binding::new()),
            Pattern::Join(a, b) => {
                let left = self.pattern(a)?;
                let right = self.pattern(b)?;
                self.join(left, right)
            }
            Pattern::Union(a, b) => {
                let mut left = self.pattern(a)?;
                let right = self.pattern(b)?;
                left.extend(right);
                self.check_cap(left.len())?;
                self.charge_rows(left.len())?;
                Ok(left)
            }
            Pattern::Minus(a, b) => {
                let left = self.pattern(a)?;
                let right = self.pattern(b)?;
                Ok(left
                    .into_iter()
                    .filter(|mu1| {
                        !right.iter().any(|mu2| {
                            compatible(mu1, mu2) && mu1.keys().any(|k| mu2.contains_key(k))
                        })
                    })
                    .collect())
            }
            Pattern::LeftJoin(a, b, expr) => {
                let left = self.pattern(a)?;
                let right = self.pattern(b)?;
                let mut out = Vec::new();
                for mu1 in left {
                    let mut extended = false;
                    for mu2 in &right {
                        if compatible(&mu1, mu2) {
                            let merged = merge(&mu1, mu2);
                            let keep = match expr {
                                None => true,
                                Some(e) => {
                                    matches!(eval_expr(e, &merged).and_then(|t| ebv(&t)), Ok(true))
                                }
                            };
                            if keep {
                                out.push(merged);
                                extended = true;
                            }
                        }
                    }
                    if !extended {
                        out.push(mu1);
                    }
                }
                self.check_cap(out.len())?;
                self.charge_rows(out.len())?;
                Ok(out)
            }
            Pattern::Filter(inner, expr) => {
                let solutions = self.pattern(inner)?;
                Ok(solutions
                    .into_iter()
                    .filter(|b| matches!(eval_expr(expr, b).and_then(|t| ebv(&t)), Ok(true)))
                    .collect())
            }
            Pattern::SubSelect(sel) => self.select(sel),
        }
    }

    fn bgp(&mut self, tps: &[TriplePattern]) -> Result<Vec<Binding>, ResourceExhausted> {
        let mut remaining: Vec<&TriplePattern> = tps.iter().collect();
        let mut solutions = vec![Binding::new()];
        let mut bound: BTreeSet<String> = BTreeSet::new();
        while !remaining.is_empty() {
            let idx = if self.config.indexed_joins {
                // Greedy: pick the pattern with the most bound positions.
                let score = |tp: &TriplePattern| -> usize {
                    [&tp.subject, &tp.predicate, &tp.object]
                        .into_iter()
                        .filter(|x| match x {
                            VarOrTerm::Term(_) => true,
                            VarOrTerm::Var(v) => bound.contains(v),
                        })
                        .count()
                };
                (0..remaining.len())
                    .max_by_key(|&i| score(remaining[i]))
                    .unwrap()
            } else {
                0
            };
            let tp = remaining.remove(idx);
            let mut next = Vec::new();
            for b in &solutions {
                self.match_triple_pattern(tp, b, &mut next);
            }
            self.check_cap(next.len())?;
            self.charge_rows(next.len())?;
            bound.extend(tp.vars().iter().map(|s| s.to_string()));
            solutions = next;
        }
        Ok(solutions)
    }

    fn match_triple_pattern(&self, tp: &TriplePattern, binding: &Binding, out: &mut Vec<Binding>) {
        let resolve = |x: &VarOrTerm| -> VarOrTerm {
            match x {
                VarOrTerm::Var(v) => match binding.get(v) {
                    Some(t) => VarOrTerm::Term(t.clone()),
                    None => x.clone(),
                },
                t => t.clone(),
            }
        };
        let s = resolve(&tp.subject);
        let p = resolve(&tp.predicate);
        let o = resolve(&tp.object);
        let s_term = match &s {
            VarOrTerm::Term(t) => Some(t.clone()),
            _ => None,
        };
        let p_iri = match &p {
            VarOrTerm::Term(Term::Iri(iri)) => Some(iri.clone()),
            VarOrTerm::Term(_) => return, // non-IRI predicate never matches
            _ => None,
        };
        let o_term = match &o {
            VarOrTerm::Term(t) => Some(t.clone()),
            _ => None,
        };
        for triple in self
            .graph
            .triples_matching(s_term.as_ref(), p_iri.as_ref(), o_term.as_ref())
        {
            let mut b = binding.clone();
            let mut ok = true;
            let mut bind = |x: &VarOrTerm, value: Term| {
                if let VarOrTerm::Var(v) = x {
                    match b.get(v) {
                        Some(existing) if existing != &value => ok = false,
                        _ => {
                            b.insert(v.clone(), value);
                        }
                    }
                }
            };
            bind(&s, triple.subject.clone());
            bind(&p, Term::Iri(triple.predicate.clone()));
            bind(&o, triple.object.clone());
            if ok {
                out.push(b);
            }
        }
    }

    fn compiled(&mut self, path: &PathExpr) -> &CompiledPath {
        if !self.paths.contains_key(path) {
            self.paths
                .insert(path.clone(), CompiledPath::new(path, self.graph));
        }
        &self.paths[path]
    }

    /// Governed `connects`: routes through the budget-aware RPQ kernel when
    /// an execution context is attached.
    fn path_connects(
        &mut self,
        path: &PathExpr,
        sid: TermId,
        oid: TermId,
    ) -> Result<bool, ResourceExhausted> {
        let graph = self.graph;
        match self.exec {
            Some(exec) => {
                let r = self.compiled(path).try_connects(graph, sid, oid, exec);
                r.map_err(|e| self.engine_fault(e, 0))
            }
            None => Ok(self.compiled(path).connects(graph, sid, oid)),
        }
    }

    /// Governed `eval_from`: routes through the budget-aware RPQ kernel when
    /// an execution context is attached.
    fn path_eval_from(
        &mut self,
        path: &PathExpr,
        sid: TermId,
    ) -> Result<BTreeSet<TermId>, ResourceExhausted> {
        let graph = self.graph;
        match self.exec {
            Some(exec) => {
                let r = self.compiled(path).try_eval_from(graph, sid, exec);
                r.map_err(|e| self.engine_fault(e, 0))
            }
            None => Ok(self.compiled(path).eval_from(graph, sid)),
        }
    }

    fn path_pattern(
        &mut self,
        subject: &VarOrTerm,
        path: &PathExpr,
        object: &VarOrTerm,
        seed: &Binding,
    ) -> Result<Vec<Binding>, ResourceExhausted> {
        let graph = self.graph;
        let resolve = |x: &VarOrTerm| -> VarOrTerm {
            match x {
                VarOrTerm::Var(v) => match seed.get(v) {
                    Some(t) => VarOrTerm::Term(t.clone()),
                    None => x.clone(),
                },
                t => t.clone(),
            }
        };
        let s = resolve(subject);
        let o = resolve(object);
        let mut out = Vec::new();
        match (&s, &o) {
            (VarOrTerm::Term(st), VarOrTerm::Term(ot)) => {
                let (Some(sid), Some(oid)) = (graph.id_of(st), graph.id_of(ot)) else {
                    return Ok(out);
                };
                if self.path_connects(path, sid, oid)? {
                    out.push(seed.clone());
                }
            }
            (VarOrTerm::Term(st), VarOrTerm::Var(ov)) => {
                let Some(sid) = graph.id_of(st) else {
                    return Ok(out);
                };
                for oid in self.path_eval_from(path, sid)? {
                    let mut b = seed.clone();
                    b.insert(ov.clone(), graph.term(oid).clone());
                    out.push(b);
                }
            }
            (VarOrTerm::Var(sv), VarOrTerm::Term(ot)) => {
                let Some(oid) = graph.id_of(ot) else {
                    return Ok(out);
                };
                let inverse = path.clone().inverse();
                for sid in self.path_eval_from(&inverse, oid)? {
                    let mut b = seed.clone();
                    b.insert(sv.clone(), graph.term(sid).clone());
                    out.push(b);
                }
            }
            (VarOrTerm::Var(sv), VarOrTerm::Var(ov)) => {
                // Restricted to N(G) per Lemma 5.1.
                let nodes = graph.node_ids();
                for sid in nodes {
                    for oid in self.path_eval_from(path, sid)? {
                        if sv == ov && sid != oid {
                            continue;
                        }
                        let mut b = seed.clone();
                        b.insert(sv.clone(), graph.term(sid).clone());
                        b.insert(ov.clone(), graph.term(oid).clone());
                        out.push(b);
                    }
                    self.check_cap(out.len())?;
                }
            }
        }
        self.check_cap(out.len())?;
        self.charge_rows(out.len())?;
        Ok(out)
    }

    fn join(
        &mut self,
        left: Vec<Binding>,
        right: Vec<Binding>,
    ) -> Result<Vec<Binding>, ResourceExhausted> {
        let mut out = Vec::new();
        if self.config.indexed_joins {
            // Hash join on the shared variables of the two sides.
            let left_vars: BTreeSet<&String> = left.iter().flat_map(|b| b.keys()).collect();
            let right_vars: BTreeSet<&String> = right.iter().flat_map(|b| b.keys()).collect();
            let shared: Vec<String> = left_vars
                .intersection(&right_vars)
                .map(|s| s.to_string())
                .collect();
            let key = |b: &Binding| -> Vec<Option<Term>> {
                shared.iter().map(|v| b.get(v).cloned()).collect()
            };
            let mut table: HashMap<Vec<Option<Term>>, Vec<&Binding>> = HashMap::new();
            let mut any_partial_right = false;
            for b in &right {
                let k = key(b);
                any_partial_right |= k.iter().any(Option::is_none);
                table.entry(k).or_default().push(b);
            }
            for mu1 in &left {
                // A shared var may be unbound on either side (from UNION
                // branches); those keys must be probed compatibly. Fast
                // path: fully bound keys probe directly.
                let k = key(mu1);
                if k.iter().all(Option::is_some) {
                    if let Some(matches) = table.get(&k) {
                        for mu2 in matches {
                            out.push(merge(mu1, mu2));
                        }
                    }
                    // Partially-bound right-side keys need a compatibility
                    // scan — but only when such keys exist at all.
                    if any_partial_right {
                        for (rk, matches) in &table {
                            if rk != &k && rk.iter().zip(&k).all(|(r, l)| r.is_none() || r == l) {
                                for mu2 in matches {
                                    out.push(merge(mu1, mu2));
                                }
                            }
                        }
                    }
                } else {
                    for mu2 in &right {
                        if compatible(mu1, mu2) {
                            out.push(merge(mu1, mu2));
                        }
                    }
                }
                self.check_cap(out.len())?;
            }
        } else {
            for mu1 in &left {
                for mu2 in &right {
                    if compatible(mu1, mu2) {
                        out.push(merge(mu1, mu2));
                    }
                }
                self.check_cap(out.len())?;
            }
        }
        self.charge_rows(out.len())?;
        Ok(out)
    }
}

/// Two mappings are compatible if they agree on shared variables.
pub fn compatible(a: &Binding, b: &Binding) -> bool {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    small
        .iter()
        .all(|(k, v)| large.get(k).is_none_or(|w| w == v))
}

/// Merges two compatible mappings.
pub fn merge(a: &Binding, b: &Binding) -> Binding {
    let mut out = a.clone();
    for (k, v) in b {
        out.entry(k.clone()).or_insert_with(|| v.clone());
    }
    out
}

/// Evaluates an expression to a term; `Err(())` is the SPARQL error value.
#[allow(clippy::result_unit_err)] // `Err(())` models the SPARQL "error" value
pub fn eval_expr(expr: &Expr, binding: &Binding) -> Result<Term, ()> {
    match expr {
        Expr::Var(v) => binding.get(v).cloned().ok_or(()),
        Expr::Const(t) => Ok(t.clone()),
        Expr::Not(e) => {
            let v = eval_expr(e, binding).and_then(|t| ebv(&t))?;
            Ok(bool_term(!v))
        }
        Expr::And(a, b) => {
            // SPARQL logical-and with error handling: false && error = false.
            let left = eval_expr(a, binding).and_then(|t| ebv(&t));
            let right = eval_expr(b, binding).and_then(|t| ebv(&t));
            match (left, right) {
                (Ok(false), _) | (_, Ok(false)) => Ok(bool_term(false)),
                (Ok(true), Ok(true)) => Ok(bool_term(true)),
                _ => Err(()),
            }
        }
        Expr::Or(a, b) => {
            let left = eval_expr(a, binding).and_then(|t| ebv(&t));
            let right = eval_expr(b, binding).and_then(|t| ebv(&t));
            match (left, right) {
                (Ok(true), _) | (_, Ok(true)) => Ok(bool_term(true)),
                (Ok(false), Ok(false)) => Ok(bool_term(false)),
                _ => Err(()),
            }
        }
        Expr::Eq(a, b) => {
            let x = eval_expr(a, binding)?;
            let y = eval_expr(b, binding)?;
            term_eq(&x, &y).map(bool_term)
        }
        Expr::Neq(a, b) => {
            let x = eval_expr(a, binding)?;
            let y = eval_expr(b, binding)?;
            term_eq(&x, &y).map(|r| bool_term(!r))
        }
        Expr::Lt(a, b) => compare(a, b, binding, |o| o == std::cmp::Ordering::Less),
        Expr::Le(a, b) => compare(a, b, binding, |o| o != std::cmp::Ordering::Greater),
        Expr::Gt(a, b) => compare(a, b, binding, |o| o == std::cmp::Ordering::Greater),
        Expr::Ge(a, b) => compare(a, b, binding, |o| o != std::cmp::Ordering::Less),
        Expr::In(e, terms, negated) => {
            let x = eval_expr(e, binding)?;
            let mut found = false;
            for t in terms {
                if term_eq(&x, t) == Ok(true) {
                    found = true;
                    break;
                }
            }
            Ok(bool_term(found != *negated))
        }
        Expr::Bound(v) => Ok(bool_term(binding.contains_key(v))),
        Expr::Lang(e) => match eval_expr(e, binding)? {
            Term::Literal(l) => Ok(Term::Literal(Literal::string(
                l.language().unwrap_or("").to_owned(),
            ))),
            _ => Err(()),
        },
        Expr::LangMatches(a, b) => {
            let (Term::Literal(tag), Term::Literal(range)) =
                (eval_expr(a, binding)?, eval_expr(b, binding)?)
            else {
                return Err(());
            };
            let tag = tag.lexical().to_ascii_lowercase();
            let range = range.lexical().to_ascii_lowercase();
            let matched = if range == "*" {
                !tag.is_empty()
            } else {
                tag == range
                    || (tag.len() > range.len()
                        && tag.starts_with(&range)
                        && tag.as_bytes()[range.len()] == b'-')
            };
            Ok(bool_term(matched))
        }
        Expr::Str(e) => {
            let t = eval_expr(e, binding)?;
            let s = match &t {
                Term::Iri(iri) => iri.as_str().to_owned(),
                Term::Literal(l) => l.lexical().to_owned(),
                Term::Blank(_) => return Err(()),
            };
            Ok(Term::Literal(Literal::string(s)))
        }
        Expr::IsIri(e) => Ok(bool_term(eval_expr(e, binding)?.is_iri())),
        Expr::IsLiteral(e) => Ok(bool_term(eval_expr(e, binding)?.is_literal())),
        Expr::IsBlank(e) => Ok(bool_term(eval_expr(e, binding)?.is_blank())),
        Expr::SameTerm(a, b) => Ok(bool_term(eval_expr(a, binding)? == eval_expr(b, binding)?)),
        Expr::Coalesce(items) => {
            for e in items {
                if let Ok(t) = eval_expr(e, binding) {
                    return Ok(t);
                }
            }
            Err(())
        }
        Expr::Regex(e, pattern, flags) => {
            let Term::Literal(l) = eval_expr(e, binding)? else {
                return Err(());
            };
            let compiled =
                shapefrag_shacl::regex::Pattern::compile(pattern, flags).map_err(|_| ())?;
            Ok(bool_term(compiled.is_match(l.lexical())))
        }
        Expr::StrLen(e) => {
            let Term::Literal(l) = eval_expr(e, binding)? else {
                return Err(());
            };
            Ok(Term::Literal(Literal::integer(
                l.lexical().chars().count() as i64
            )))
        }
        Expr::Datatype(e) => match eval_expr(e, binding)? {
            Term::Literal(l) => Ok(Term::Iri(l.datatype().clone())),
            _ => Err(()),
        },
        Expr::Add(a, b) => arith(a, b, binding, |x, y| x + y),
        Expr::Sub(a, b) => arith(a, b, binding, |x, y| x - y),
        Expr::Mul(a, b) => arith(a, b, binding, |x, y| x * y),
        Expr::Div(a, b) => {
            let (x, y) = arith_operands(a, b, binding)?;
            if y == 0.0 {
                return Err(());
            }
            Ok(num_term(x / y))
        }
    }
}

fn arith_operands(a: &Expr, b: &Expr, binding: &Binding) -> Result<(f64, f64), ()> {
    let (Term::Literal(x), Term::Literal(y)) = (eval_expr(a, binding)?, eval_expr(b, binding)?)
    else {
        return Err(());
    };
    match (x.value().as_f64(), y.value().as_f64()) {
        (Some(x), Some(y)) => Ok((x, y)),
        _ => Err(()),
    }
}

fn arith(a: &Expr, b: &Expr, binding: &Binding, op: impl Fn(f64, f64) -> f64) -> Result<Term, ()> {
    let (x, y) = arith_operands(a, b, binding)?;
    Ok(num_term(op(x, y)))
}

fn num_term(v: f64) -> Term {
    if v.fract() == 0.0 && v.abs() < i64::MAX as f64 {
        Term::Literal(Literal::integer(v as i64))
    } else {
        Term::Literal(Literal::double(v))
    }
}

fn compare(
    a: &Expr,
    b: &Expr,
    binding: &Binding,
    check: impl Fn(std::cmp::Ordering) -> bool,
) -> Result<Term, ()> {
    let (Term::Literal(x), Term::Literal(y)) = (eval_expr(a, binding)?, eval_expr(b, binding)?)
    else {
        return Err(());
    };
    match x.value().partial_cmp_value(&y.value()) {
        Some(ord) => Ok(bool_term(check(ord))),
        None => Err(()),
    }
}

/// SPARQL `=`: term equality for IRIs/blanks, value equality for literals;
/// errors on incomparable literal types.
#[allow(clippy::result_unit_err)] // `Err(())` models the SPARQL "error" value
pub fn term_eq(x: &Term, y: &Term) -> Result<bool, ()> {
    if x == y {
        return Ok(true);
    }
    match (x, y) {
        (Term::Literal(a), Term::Literal(b)) => {
            let (va, vb) = (a.value(), b.value());
            use shapefrag_rdf::LiteralValue::Other;
            if matches!(va, Other) || matches!(vb, Other) {
                Err(()) // unknown datatypes: only sameTerm-equal is decidable
            } else {
                Ok(va.value_eq(&vb))
            }
        }
        _ => Ok(false),
    }
}

/// Effective boolean value.
#[allow(clippy::result_unit_err)] // `Err(())` models the SPARQL "error" value
pub fn ebv(t: &Term) -> Result<bool, ()> {
    match t {
        Term::Literal(l) => match l.value() {
            shapefrag_rdf::LiteralValue::Boolean(b) => Ok(b),
            shapefrag_rdf::LiteralValue::Integer(i) => Ok(i != 0),
            shapefrag_rdf::LiteralValue::Double(d) => Ok(d != 0.0 && !d.is_nan()),
            shapefrag_rdf::LiteralValue::String(s) => Ok(!s.is_empty()),
            _ => Err(()),
        },
        _ => Err(()),
    }
}

fn bool_term(b: bool) -> Term {
    Term::Literal(Literal::boolean(b))
}

/// Shorthand for an IRI constant in query construction.
pub fn iri_term(iri: impl Into<Iri>) -> VarOrTerm {
    VarOrTerm::Term(Term::Iri(iri.into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{Pattern, Select, TriplePattern};
    use shapefrag_rdf::Triple;

    fn iri(n: &str) -> Iri {
        Iri::new(format!("http://e/{n}"))
    }

    fn term(n: &str) -> Term {
        Term::iri(format!("http://e/{n}"))
    }

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(term(s), iri(p), term(o))
    }

    fn tp(s: VarOrTerm, p: VarOrTerm, o: VarOrTerm) -> TriplePattern {
        TriplePattern::new(s, p, o)
    }

    fn v(n: &str) -> VarOrTerm {
        VarOrTerm::var(n)
    }

    fn test_graph() -> Graph {
        Graph::from_triples([
            t("a", "p", "b"),
            t("a", "p", "c"),
            t("b", "q", "d"),
            t("c", "q", "d"),
            t("x", "r", "y"),
        ])
    }

    #[test]
    fn single_triple_pattern() {
        let g = test_graph();
        let q = Select::star(Pattern::Bgp(vec![tp(v("s"), iri_term(iri("p")), v("o"))]));
        let res = eval(&g, &q);
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn bgp_join_across_patterns() {
        let g = test_graph();
        let q = Select::star(Pattern::Bgp(vec![
            tp(v("s"), iri_term(iri("p")), v("m")),
            tp(v("m"), iri_term(iri("q")), v("o")),
        ]));
        let res = eval(&g, &q);
        assert_eq!(res.len(), 2); // a-b-d, a-c-d
        for b in &res {
            assert_eq!(b["o"], term("d"));
        }
    }

    #[test]
    fn variable_predicate() {
        let g = test_graph();
        let q = Select::star(Pattern::Bgp(vec![tp(v("s"), v("p"), v("o"))]));
        assert_eq!(eval(&g, &q).len(), 5);
    }

    #[test]
    fn shared_variable_in_one_pattern() {
        let mut g = test_graph();
        g.insert(t("z", "p", "z"));
        let q = Select::star(Pattern::Bgp(vec![tp(v("x"), iri_term(iri("p")), v("x"))]));
        let res = eval(&g, &q);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0]["x"], term("z"));
    }

    #[test]
    fn union_concatenates() {
        let g = test_graph();
        let q = Select::star(
            Pattern::Bgp(vec![tp(v("s"), iri_term(iri("p")), v("o"))])
                .union(Pattern::Bgp(vec![tp(v("s"), iri_term(iri("r")), v("o"))])),
        );
        assert_eq!(eval(&g, &q).len(), 3);
    }

    #[test]
    fn minus_removes_overlapping() {
        let g = test_graph();
        // Subjects with p-edges, minus those whose p-value has a q-edge to d.
        let q = Select::star(Pattern::Minus(
            Box::new(Pattern::Bgp(vec![tp(v("s"), iri_term(iri("p")), v("m"))])),
            Box::new(Pattern::Bgp(vec![tp(
                v("m"),
                iri_term(iri("q")),
                VarOrTerm::Term(term("d")),
            )])),
        ));
        assert!(eval(&g, &q).is_empty());
        // MINUS with disjoint domains removes nothing.
        let q2 = Select::star(Pattern::Minus(
            Box::new(Pattern::Bgp(vec![tp(v("s"), iri_term(iri("p")), v("m"))])),
            Box::new(Pattern::Bgp(vec![tp(v("zz"), iri_term(iri("q")), v("ww"))])),
        ));
        assert_eq!(eval(&g, &q2).len(), 2);
    }

    #[test]
    fn optional_keeps_unmatched() {
        let g = test_graph();
        let q = Select::star(Pattern::LeftJoin(
            Box::new(Pattern::Bgp(vec![tp(v("s"), iri_term(iri("p")), v("m"))])),
            Box::new(Pattern::Bgp(vec![tp(v("m"), iri_term(iri("r")), v("o"))])),
            None,
        ));
        let res = eval(&g, &q);
        assert_eq!(res.len(), 2);
        assert!(res.iter().all(|b| !b.contains_key("o")));
    }

    #[test]
    fn optional_with_negated_bound_trick() {
        // The BSBM trick: OPTIONAL { ... } FILTER(!bound(?var)).
        let g = test_graph();
        let q = Select::star(
            Pattern::LeftJoin(
                Box::new(Pattern::Bgp(vec![tp(v("s"), iri_term(iri("p")), v("m"))])),
                Box::new(Pattern::Bgp(vec![tp(v("m"), iri_term(iri("q")), v("w"))])),
                None,
            )
            .filter(Expr::Bound("w".into()).not()),
        );
        // Both p-values (b, c) have q-edges, so nothing survives.
        assert!(eval(&g, &q).is_empty());
    }

    #[test]
    fn filter_comparisons() {
        let mut g = Graph::new();
        for (s, n) in [("a", 1), ("b", 5), ("c", 9)] {
            g.insert(Triple::new(
                term(s),
                iri("v"),
                Term::Literal(Literal::integer(n)),
            ));
        }
        let q = Select::star(
            Pattern::Bgp(vec![tp(v("s"), iri_term(iri("v")), v("n"))])
                .filter(Expr::var("n").lt(Expr::Const(Term::Literal(Literal::integer(6))))),
        );
        assert_eq!(eval(&g, &q).len(), 2);
    }

    #[test]
    fn filter_errors_drop_solutions() {
        let mut g = Graph::new();
        g.insert(t("a", "v", "notanumber"));
        let q = Select::star(
            Pattern::Bgp(vec![tp(v("s"), iri_term(iri("v")), v("n"))])
                .filter(Expr::var("n").lt(Expr::Const(Term::Literal(Literal::integer(6))))),
        );
        assert!(eval(&g, &q).is_empty());
    }

    #[test]
    fn lang_and_langmatches() {
        let mut g = Graph::new();
        g.insert(Triple::new(
            term("a"),
            iri("l"),
            Term::Literal(Literal::lang_string("colour", "en-GB")),
        ));
        g.insert(Triple::new(
            term("b"),
            iri("l"),
            Term::Literal(Literal::lang_string("couleur", "fr")),
        ));
        let q = Select::star(
            Pattern::Bgp(vec![tp(v("s"), iri_term(iri("l")), v("t"))]).filter(Expr::LangMatches(
                Box::new(Expr::Lang(Box::new(Expr::var("t")))),
                Box::new(Expr::Const(Term::Literal(Literal::string("en")))),
            )),
        );
        let res = eval(&g, &q);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0]["s"], term("a"));
    }

    #[test]
    fn path_patterns_all_binding_modes() {
        let g = test_graph();
        let path = PathExpr::prop(iri("p")).then(PathExpr::prop(iri("q")));
        // var-var
        let q = Select::star(Pattern::Path {
            subject: v("s"),
            path: path.clone(),
            object: v("o"),
        });
        // Path endpoints are a set: ⟦p/q⟧ = {(a, d)} (both routes via b
        // and c collapse to the single endpoint pair).
        assert_eq!(eval(&g, &q).len(), 1);
        // term-var
        let q = Select::star(Pattern::Path {
            subject: VarOrTerm::Term(term("a")),
            path: path.clone(),
            object: v("o"),
        });
        let res = eval(&g, &q);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0]["o"], term("d"));
        // var-term
        let q = Select::star(Pattern::Path {
            subject: v("s"),
            path: path.clone(),
            object: VarOrTerm::Term(term("d")),
        });
        assert_eq!(eval(&g, &q).len(), 1);
        // term-term
        let q = Select::star(Pattern::Path {
            subject: VarOrTerm::Term(term("a")),
            path,
            object: VarOrTerm::Term(term("d")),
        });
        assert_eq!(eval(&g, &q).len(), 1);
    }

    #[test]
    fn star_path_includes_identity_on_graph_nodes() {
        let g = Graph::from_triples([t("a", "p", "b")]);
        let q = Select::star(Pattern::Path {
            subject: v("s"),
            path: PathExpr::prop(iri("p")).star(),
            object: v("o"),
        });
        let res = eval(&g, &q);
        // (a,a), (a,b), (b,b)
        assert_eq!(res.len(), 3);
    }

    #[test]
    fn subselect_with_projection_and_rename() {
        let g = test_graph();
        let inner = Select {
            distinct: false,
            projection: Some(vec![
                Projection::Rename("s".into(), "subject".into()),
                Projection::Const(Term::Iri(iri("p")), "pred".into()),
            ]),
            pattern: Pattern::Bgp(vec![tp(v("s"), iri_term(iri("p")), v("o"))]),
        };
        let q = Select::star(Pattern::SubSelect(Box::new(inner)));
        let res = eval(&g, &q);
        assert_eq!(res.len(), 2);
        assert!(res.iter().all(|b| b["pred"] == Term::Iri(iri("p"))));
        assert!(res.iter().all(|b| b.contains_key("subject")));
        assert!(res.iter().all(|b| !b.contains_key("o")));
    }

    #[test]
    fn distinct_dedupes() {
        let g = test_graph();
        let q = Select::vars(
            ["o2"],
            Pattern::Bgp(vec![
                tp(v("s"), iri_term(iri("p")), v("m")),
                tp(v("m"), iri_term(iri("q")), v("o2")),
            ]),
        )
        .distinct();
        assert_eq!(eval(&g, &q).len(), 1);
    }

    #[test]
    fn naive_and_indexed_agree() {
        let g = test_graph();
        let patterns = vec![
            Select::star(Pattern::Bgp(vec![
                tp(v("s"), iri_term(iri("p")), v("m")),
                tp(v("m"), iri_term(iri("q")), v("o")),
            ])),
            Select::star(Pattern::Join(
                Box::new(Pattern::Bgp(vec![tp(v("s"), iri_term(iri("p")), v("m"))])),
                Box::new(Pattern::Bgp(vec![tp(v("m"), iri_term(iri("q")), v("o"))])),
            )),
        ];
        for q in patterns {
            let mut a = eval_select(&g, &q, &EvalConfig::indexed()).unwrap();
            let mut b = eval_select(&g, &q, &EvalConfig::naive()).unwrap();
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn resource_cap_aborts() {
        let mut g = Graph::new();
        for i in 0..50 {
            g.insert(t(&format!("s{i}"), "p", &format!("o{i}")));
        }
        let q = Select::star(Pattern::Join(
            Box::new(Pattern::Bgp(vec![tp(v("a"), iri_term(iri("p")), v("b"))])),
            Box::new(Pattern::Bgp(vec![tp(v("c"), iri_term(iri("p")), v("d"))])),
        ));
        let res = eval_select(&g, &q, &EvalConfig::indexed().with_cap(100));
        assert!(res.is_err());
    }

    #[test]
    fn arithmetic_expressions() {
        let mut g = Graph::new();
        for (s, a, b) in [("x", 10, 2), ("y", 9, 3), ("z", 5, 0)] {
            g.insert(Triple::new(
                term(s),
                iri("a"),
                Term::Literal(Literal::integer(a)),
            ));
            g.insert(Triple::new(
                term(s),
                iri("b"),
                Term::Literal(Literal::integer(b)),
            ));
        }
        let base = Pattern::Bgp(vec![
            tp(v("s"), iri_term(iri("a")), v("a")),
            tp(v("s"), iri_term(iri("b")), v("b")),
        ]);
        // a / b > 3 — x: 5, y: 3, z: division by zero (error → dropped).
        let q = Select::star(base.clone().filter(Expr::Gt(
            Box::new(Expr::Div(
                Box::new(Expr::var("a")),
                Box::new(Expr::var("b")),
            )),
            Box::new(Expr::Const(Term::Literal(Literal::integer(3)))),
        )));
        let res = eval(&g, &q);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0]["s"], term("x"));
        // a + b = 12 and a - b = 8 and a * b = 20 all hold only for x.
        let q = Select::star(
            base.filter(
                Expr::Add(Box::new(Expr::var("a")), Box::new(Expr::var("b")))
                    .eq(Expr::Const(Term::Literal(Literal::integer(12))))
                    .and(
                        Expr::Sub(Box::new(Expr::var("a")), Box::new(Expr::var("b")))
                            .eq(Expr::Const(Term::Literal(Literal::integer(8)))),
                    )
                    .and(
                        Expr::Mul(Box::new(Expr::var("a")), Box::new(Expr::var("b")))
                            .eq(Expr::Const(Term::Literal(Literal::integer(20)))),
                    ),
            ),
        );
        let res = eval(&g, &q);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0]["s"], term("x"));
    }

    #[test]
    fn coalesce_strlen_datatype_builtins() {
        let mut g = Graph::new();
        g.insert(Triple::new(
            term("a"),
            iri("v"),
            Term::Literal(Literal::string("hello")),
        ));
        g.insert(Triple::new(
            term("b"),
            iri("v"),
            Term::iri("http://e/thing"),
        ));
        // strlen errors on IRIs; COALESCE falls back.
        let q = Select::star(
            Pattern::Bgp(vec![tp(v("s"), iri_term(iri("v")), v("x"))]).filter(Expr::Eq(
                Box::new(Expr::Coalesce(vec![
                    Expr::StrLen(Box::new(Expr::var("x"))),
                    Expr::Const(Term::Literal(Literal::integer(-1))),
                ])),
                Box::new(Expr::Const(Term::Literal(Literal::integer(5)))),
            )),
        );
        let res = eval(&g, &q);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0]["s"], term("a"));
        // datatype() of the string literal.
        let q = Select::star(
            Pattern::Bgp(vec![tp(v("s"), iri_term(iri("v")), v("x"))]).filter(Expr::Eq(
                Box::new(Expr::Datatype(Box::new(Expr::var("x")))),
                Box::new(Expr::Const(Term::Iri(shapefrag_rdf::vocab::xsd::string()))),
            )),
        );
        assert_eq!(eval(&g, &q).len(), 1);
        // regex builtin.
        let q = Select::star(
            Pattern::Bgp(vec![tp(v("s"), iri_term(iri("v")), v("x"))]).filter(Expr::Regex(
                Box::new(Expr::var("x")),
                "^hel".to_string(),
                String::new(),
            )),
        );
        assert_eq!(eval(&g, &q).len(), 1);
    }

    #[test]
    fn governed_eval_matches_ungoverned_when_unbounded() {
        let g = test_graph();
        let queries = vec![
            Select::star(Pattern::Bgp(vec![
                tp(v("s"), iri_term(iri("p")), v("m")),
                tp(v("m"), iri_term(iri("q")), v("o")),
            ])),
            Select::star(Pattern::Path {
                subject: v("s"),
                path: PathExpr::prop(iri("p")).then(PathExpr::prop(iri("q"))),
                object: v("o"),
            }),
        ];
        let exec = ExecCtx::unbounded();
        for q in queries {
            let mut governed = eval_select_governed(&g, &q, &EvalConfig::indexed(), &exec)
                .expect("unbounded governed eval cannot fail");
            let mut plain = eval_select(&g, &q, &EvalConfig::indexed()).unwrap();
            governed.sort();
            plain.sort();
            assert_eq!(governed, plain);
        }
    }

    #[test]
    fn governed_eval_step_budget_aborts_cross_join() {
        use shapefrag_govern::Budget;
        let mut g = Graph::new();
        for i in 0..50 {
            g.insert(t(&format!("s{i}"), "p", &format!("o{i}")));
        }
        let q = Select::star(Pattern::Join(
            Box::new(Pattern::Bgp(vec![tp(v("a"), iri_term(iri("p")), v("b"))])),
            Box::new(Pattern::Bgp(vec![tp(v("c"), iri_term(iri("p")), v("d"))])),
        ));
        let exec = ExecCtx::with_budget(Budget::unlimited().steps(100));
        let res = eval_select_governed(&g, &q, &EvalConfig::indexed(), &exec);
        assert!(matches!(
            res,
            Err(EngineError::BudgetExceeded {
                kind: BudgetKind::Steps,
                ..
            })
        ));
    }

    #[test]
    fn governed_eval_observes_cancellation() {
        use shapefrag_govern::{Budget, CancelToken};
        let g = test_graph();
        let q = Select::star(Pattern::Bgp(vec![tp(v("s"), v("p"), v("o"))]));
        let token = CancelToken::new();
        token.cancel();
        let exec = ExecCtx::with_budget(Budget::unlimited()).with_cancel(&token);
        let res = eval_select_governed(&g, &q, &EvalConfig::indexed(), &exec);
        assert!(matches!(res, Err(EngineError::Cancelled)));
    }

    #[test]
    fn config_caps_map_to_engine_errors_in_governed_mode() {
        let mut g = Graph::new();
        for i in 0..50 {
            g.insert(t(&format!("s{i}"), "p", &format!("o{i}")));
        }
        let q = Select::star(Pattern::Join(
            Box::new(Pattern::Bgp(vec![tp(v("a"), iri_term(iri("p")), v("b"))])),
            Box::new(Pattern::Bgp(vec![tp(v("c"), iri_term(iri("p")), v("d"))])),
        ));
        let exec = ExecCtx::unbounded();
        let res = eval_select_governed(&g, &q, &EvalConfig::indexed().with_cap(100), &exec);
        assert!(matches!(
            res,
            Err(EngineError::BudgetExceeded {
                kind: BudgetKind::Memory,
                limit: 100,
            })
        ));
    }

    #[test]
    fn bindings_to_graph_extracts_triples() {
        let g = test_graph();
        let q = Select {
            distinct: true,
            projection: Some(vec![
                Projection::Var("s".into()),
                Projection::Const(Term::Iri(iri("p")), "pp".into()),
                Projection::Var("o".into()),
            ]),
            pattern: Pattern::Bgp(vec![tp(v("s"), iri_term(iri("p")), v("o"))]),
        };
        let res = eval(&g, &q);
        let sub = bindings_to_graph(&res, "s", "pp", "o");
        assert_eq!(sub.len(), 2);
        assert!(sub.is_subgraph_of(&g));
    }
}
