//! Neighborhoods: the provenance semantics for SHACL (§3, Table 2).
//!
//! The φ-neighborhood `B(v, G, φ)` of a node `v` in a graph `G` is the
//! subgraph of `G` consisting of the triples that *show* that `v` conforms
//! to φ; it is empty when `v` does not conform. The definition assumes φ in
//! negation normal form ([`Nnf`]), with negation only on atomic shapes.
//!
//! The implementation follows Table 2 case by case. For the quantifier
//! cases, all qualifying endpoints `x` are traced in one batched
//! [`Context::trace_path`] call (one backward product-BFS over the whole
//! endpoint set instead of one per endpoint).
//!
//! The headline correctness property is **Sufficiency** (Theorem 3.4):
//! if `G, v ⊨ φ` then `G', v ⊨ φ` for every `G'` with
//! `B(v, G, φ) ⊆ G' ⊆ G`. It is exercised extensively by the property
//! tests in `tests/`.

use std::collections::{BTreeSet, HashMap};
use std::hash::BuildHasherDefault;

use shapefrag_govern::EngineError;
use shapefrag_rdf::graph::IntHasher;
use shapefrag_rdf::{Graph, GraphAccess, Term, TermId};
use shapefrag_shacl::path::PathExpr;
use shapefrag_shacl::shape::PathOrId;
use shapefrag_shacl::validator::{CmpOp, Context};
use shapefrag_shacl::{Nnf, Shape};

/// A set of id triples relative to one graph — the working representation
/// of a neighborhood during computation (hash-based: the accumulation is
/// hot in instrumented validation; materialized [`Graph`]s re-establish
/// canonical order).
pub type IdTriples =
    std::collections::HashSet<(TermId, TermId, TermId), BuildHasherDefault<IntHasher>>;

/// Computes the φ-neighborhood `B(v, G, φ)` of a node.
///
/// The shape is converted to negation normal form first; `v` not conforming
/// to φ yields the empty graph (Definition 3.2).
pub fn neighborhood<G: GraphAccess>(ctx: &mut Context<'_, G>, v: TermId, shape: &Shape) -> Graph {
    let nnf = Nnf::from_shape(shape);
    materialize(ctx.graph, &neighborhood_nnf_ids(ctx, v, &nnf))
}

/// Resource-governed [`neighborhood`]: the context's governor (attached via
/// `Context::with_exec`) is consulted throughout; a tripped budget,
/// deadline, depth limit, or cancellation surfaces as an `Err` instead of a
/// silently truncated neighborhood.
pub fn neighborhood_governed<G: GraphAccess>(
    ctx: &mut Context<'_, G>,
    v: TermId,
    shape: &Shape,
) -> Result<Graph, EngineError> {
    let out = neighborhood(ctx, v, shape);
    match ctx.take_fault() {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// Computes `B(v, G, φ)` for a term-level focus node. Nodes absent from the
/// graph have empty (or graph-independent) neighborhoods.
pub fn neighborhood_term<G: GraphAccess>(
    ctx: &mut Context<'_, G>,
    v: &Term,
    shape: &Shape,
) -> Graph {
    match ctx.graph.id_of(v) {
        Some(id) => neighborhood(ctx, id, shape),
        None => Graph::new(),
    }
}

/// Computes the neighborhood as id triples for an NNF shape.
pub fn neighborhood_nnf_ids<G: GraphAccess>(
    ctx: &mut Context<'_, G>,
    v: TermId,
    shape: &Nnf,
) -> IdTriples {
    let mut out = IdTriples::default();
    if ctx.conforms_nnf(v, shape) {
        collect(ctx, v, shape, &mut out);
    }
    out
}

/// Appends `B(v, G, φ)` to an existing accumulator without intermediate
/// allocation, assuming the caller has already established `G, v ⊨ φ`
/// (the conformance guard of [`neighborhood_nnf_ids`] is skipped). Prefer
/// [`conforms_and_collect`] when the verdict is not yet known — it decides
/// and collects in a single traversal.
pub fn collect_neighborhood_into<G: GraphAccess>(
    ctx: &mut Context<'_, G>,
    v: TermId,
    shape: &Nnf,
    out: &mut IdTriples,
) {
    collect(ctx, v, shape, out);
}

/// Set-at-a-time Table 2 collection: appends `⋃_i B(nodes[i], G, φ)` for
/// focus nodes the caller has already established to conform to φ.
///
/// Equals running [`collect_neighborhood_into`] per node, but path endpoints
/// come from one multi-source RPQ pass over all foci, traces are batched
/// through [`Context::trace_path_many`], and sub-neighborhoods of quantifier
/// endpoints are collected once per *distinct* endpoint instead of once per
/// referencing focus (the collection is focus-independent, so the unions
/// coincide).
pub fn collect_neighborhood_many<G: GraphAccess>(
    ctx: &mut Context<'_, G>,
    nodes: &[TermId],
    shape: &Nnf,
    out: &mut IdTriples,
) {
    collect_many(ctx, nodes, shape, out);
}

/// Below this many focus nodes the multi-source kernel's fixed costs
/// (bitset rows, request batching) outweigh the sharing it buys; per-node
/// Table 2 collection is faster and produces the identical union.
const BATCH_MIN_FOCI: usize = 4;

/// The recursive batch worker behind [`collect_neighborhood_many`].
/// Recursion on shape structure is depth-guarded and fault-sticky via the
/// context's governor.
fn collect_many<G: GraphAccess>(
    ctx: &mut Context<'_, G>,
    nodes: &[TermId],
    shape: &Nnf,
    out: &mut IdTriples,
) {
    if nodes.is_empty() {
        return;
    }
    if nodes.len() < BATCH_MIN_FOCI {
        for &v in nodes {
            collect(ctx, v, shape, out);
        }
        return;
    }
    if !ctx.guard_enter() {
        return;
    }
    collect_many_inner(ctx, nodes, shape, out);
    ctx.guard_leave();
}

fn collect_many_inner<G: GraphAccess>(
    ctx: &mut Context<'_, G>,
    nodes: &[TermId],
    shape: &Nnf,
    out: &mut IdTriples,
) {
    match shape {
        // Node-local shapes have empty neighborhoods (as in `collect`).
        Nnf::True
        | Nnf::False
        | Nnf::Test(_)
        | Nnf::NotTest(_)
        | Nnf::HasValue(_)
        | Nnf::NotHasValue(_)
        | Nnf::Closed(_)
        | Nnf::Disj(_, _)
        | Nnf::LessThan(_, _)
        | Nnf::LessThanEq(_, _)
        | Nnf::MoreThan(_, _)
        | Nnf::MoreThanEq(_, _)
        | Nnf::UniqueLang(_) => {}

        Nnf::Eq(PathOrId::Path(e), p) => {
            let union = e.clone().or(PathExpr::Prop(p.clone()));
            let endpoint_sets = ctx.eval_path_many(&union, nodes);
            let requests: Vec<(TermId, BTreeSet<TermId>)> =
                nodes.iter().copied().zip(endpoint_sets).collect();
            append_trace_many(ctx, &union, &requests, out);
        }
        Nnf::Eq(PathOrId::Id, p) => {
            if let Some(pid) = ctx.graph.id_of_iri(p) {
                out.extend(nodes.iter().map(|&v| (v, pid, v)));
            }
        }

        Nnf::HasShape(name) => {
            let def = Nnf::from_shape(&ctx.schema.def(name));
            collect_many(ctx, nodes, &def, out);
        }
        Nnf::NotHasShape(name) => {
            let def = Nnf::from_negated_shape(&ctx.schema.def(name));
            collect_many(ctx, nodes, &def, out);
        }

        // Rule 3: every focus conforms to the whole conjunction, hence to
        // each conjunct — no re-validation pass is needed.
        Nnf::And(items) => {
            for item in items {
                collect_many(ctx, nodes, item, out);
            }
        }
        // Rule 4: non-conforming disjuncts contribute the empty set, so
        // each disjunct collects only over its conforming foci.
        Nnf::Or(items) => {
            for item in items {
                let oks = ctx.conforms_all_nnf(nodes, item);
                let conforming: Vec<TermId> = nodes
                    .iter()
                    .zip(&oks)
                    .filter(|(_, ok)| **ok)
                    .map(|(&v, _)| v)
                    .collect();
                collect_many(ctx, &conforming, item, out);
            }
        }

        Nnf::Geq(_, e, inner) => {
            batch_quantifier(ctx, nodes, e, inner, out);
        }
        Nnf::Leq(_, e, inner) => {
            let negated = inner.negated();
            batch_quantifier(ctx, nodes, e, &negated, out);
        }
        Nnf::ForAll(e, inner) => {
            let endpoint_sets = ctx.eval_path_many(e, nodes);
            let mut distinct: BTreeSet<TermId> = BTreeSet::new();
            for set in &endpoint_sets {
                distinct.extend(set.iter().copied());
            }
            let requests: Vec<(TermId, BTreeSet<TermId>)> =
                nodes.iter().copied().zip(endpoint_sets).collect();
            append_trace_many(ctx, e, &requests, out);
            if !matches!(inner.as_ref(), Nnf::True) {
                let distinct: Vec<TermId> = distinct.into_iter().collect();
                collect_many(ctx, &distinct, inner, out);
            }
        }

        // The remaining negated atoms have bounded, focus-local evidence;
        // collect per node.
        _ => {
            for &v in nodes {
                collect(ctx, v, shape, out);
            }
        }
    }
}

/// Shared machinery for batch `≥n E.ψ` / `≤n E.ψ` collection: for each
/// focus, the qualifying endpoints are its `E`-candidates conforming to
/// `inner` (already the negated shape for `≤`); all per-focus traces run in
/// one batch and each distinct qualifying endpoint's `inner`-neighborhood
/// is collected once.
fn batch_quantifier<G: GraphAccess>(
    ctx: &mut Context<'_, G>,
    nodes: &[TermId],
    e: &PathExpr,
    inner: &Nnf,
    out: &mut IdTriples,
) {
    let cand_sets = ctx.eval_path_many(e, nodes);
    if matches!(inner, Nnf::True) {
        let requests: Vec<(TermId, BTreeSet<TermId>)> =
            nodes.iter().copied().zip(cand_sets).collect();
        append_trace_many(ctx, e, &requests, out);
        return;
    }
    let mut union: BTreeSet<TermId> = BTreeSet::new();
    for set in &cand_sets {
        union.extend(set.iter().copied());
    }
    let union_vec: Vec<TermId> = union.into_iter().collect();
    let decided = ctx.conforms_all_nnf(&union_vec, inner);
    let ok: HashMap<TermId, bool> = union_vec
        .iter()
        .copied()
        .zip(decided.iter().copied())
        .collect();
    let requests: Vec<(TermId, BTreeSet<TermId>)> = nodes
        .iter()
        .zip(cand_sets)
        .map(|(&v, cands)| (v, cands.into_iter().filter(|x| ok[x]).collect()))
        .collect();
    append_trace_many(ctx, e, &requests, out);
    let qualifying: Vec<TermId> = union_vec.into_iter().filter(|x| ok[x]).collect();
    collect_many(ctx, &qualifying, inner, out);
}

/// Materializes id triples into a [`Graph`].
pub fn materialize<G: GraphAccess>(graph: &G, triples: &IdTriples) -> Graph {
    let mut g = Graph::new();
    for &(s, p, o) in triples {
        g.insert(graph.triple_of(s, p, o));
    }
    g
}

/// Single-pass instrumented conformance: decides `G, v ⊨ φ` **and**
/// journals the neighborhood `B(v, G, φ)` in the same traversal — the
/// "lightweight adaptation of a validation engine" of §5.2. Evidence is
/// appended to `journal`; sub-results that turn out not to conform are
/// rolled back by truncation, so on a `true` return the journal holds
/// exactly the triples of `B(v, G, φ)` (possibly with duplicates).
///
/// The journal is only valid when the function returns `true`; callers
/// should `clear()` it between focus nodes (reusing the allocation).
pub fn conforms_and_collect<G: GraphAccess>(
    ctx: &mut Context<'_, G>,
    v: TermId,
    shape: &Nnf,
    journal: &mut Vec<(TermId, TermId, TermId)>,
) -> bool {
    let mark = journal.len();
    let ok = validate_collect(ctx, v, shape, journal);
    if !ok {
        journal.truncate(mark);
    }
    ok
}

/// The recursive worker: appends evidence optimistically and lets callers
/// truncate on failure. Fault-sticky: once the governor trips, every call
/// answers `false` so the instrumented traversal unwinds quickly.
fn validate_collect<G: GraphAccess>(
    ctx: &mut Context<'_, G>,
    v: TermId,
    shape: &Nnf,
    journal: &mut Vec<(TermId, TermId, TermId)>,
) -> bool {
    if !ctx.guard_enter() {
        return false;
    }
    let out = validate_collect_inner(ctx, v, shape, journal);
    ctx.guard_leave();
    out
}

fn validate_collect_inner<G: GraphAccess>(
    ctx: &mut Context<'_, G>,
    v: TermId,
    shape: &Nnf,
    journal: &mut Vec<(TermId, TermId, TermId)>,
) -> bool {
    match shape {
        // Node-local atoms: no evidence, plain checks.
        Nnf::True
        | Nnf::False
        | Nnf::Test(_)
        | Nnf::NotTest(_)
        | Nnf::HasValue(_)
        | Nnf::NotHasValue(_)
        | Nnf::Closed(_)
        | Nnf::Disj(_, _)
        | Nnf::LessThan(_, _)
        | Nnf::LessThanEq(_, _)
        | Nnf::MoreThan(_, _)
        | Nnf::MoreThanEq(_, _)
        | Nnf::UniqueLang(_) => ctx.conforms_nnf(v, shape),

        Nnf::HasShape(name) => {
            let def = Nnf::from_shape(&ctx.schema.def(name));
            validate_collect(ctx, v, &def, journal)
        }
        Nnf::NotHasShape(name) => {
            let def = Nnf::from_negated_shape(&ctx.schema.def(name));
            validate_collect(ctx, v, &def, journal)
        }

        Nnf::And(items) => {
            let mark = journal.len();
            for item in items {
                if !conforms_and_collect(ctx, v, item, journal) {
                    journal.truncate(mark);
                    return false;
                }
            }
            true
        }
        Nnf::Or(items) => {
            let mut any = false;
            for item in items {
                // Conforming disjuncts each contribute their evidence.
                any |= conforms_and_collect(ctx, v, item, journal);
            }
            any
        }

        Nnf::Geq(n, e, inner) => {
            let candidates = ctx.eval_path(e, v);
            let qualifying: BTreeSet<TermId> = if matches!(inner.as_ref(), Nnf::True) {
                candidates
            } else {
                candidates
                    .into_iter()
                    .filter(|&x| conforms_and_collect(ctx, x, inner, journal))
                    .collect()
            };
            if (qualifying.len() as u64) < *n as u64 {
                return false;
            }
            append_trace(ctx, e, v, &qualifying, journal);
            true
        }
        Nnf::Leq(n, e, inner) => {
            let negated = inner.negated();
            let candidates = ctx.eval_path(e, v);
            let mut conforming: u64 = 0;
            let mut witnesses: BTreeSet<TermId> = BTreeSet::new();
            for x in candidates {
                if conforms_and_collect(ctx, x, &negated, journal) {
                    witnesses.insert(x);
                } else {
                    conforming += 1;
                    if conforming > *n as u64 {
                        // Already too many ψ-conformers: fail fast; the
                        // caller rolls the journal back.
                        return false;
                    }
                }
            }
            append_trace(ctx, e, v, &witnesses, journal);
            true
        }
        Nnf::ForAll(e, inner) => {
            let endpoints = ctx.eval_path(e, v);
            if !matches!(inner.as_ref(), Nnf::True) {
                for &x in &endpoints {
                    if !conforms_and_collect(ctx, x, inner, journal) {
                        return false;
                    }
                }
            }
            append_trace(ctx, e, v, &endpoints, journal);
            true
        }

        // The remaining (pair / negated-atom) cases have bounded evidence;
        // decide via the validator and reuse the Table 2 collector.
        _ => {
            if !ctx.conforms_nnf(v, shape) {
                return false;
            }
            let mut out = IdTriples::default();
            collect(ctx, v, shape, &mut out);
            journal.extend(out);
            true
        }
    }
}

/// Appends `graph(paths(E, G, v, targets))`, with a direct fast path for
/// plain properties (the overwhelmingly common case).
fn append_trace<G: GraphAccess>(
    ctx: &mut Context<'_, G>,
    e: &PathExpr,
    v: TermId,
    targets: &BTreeSet<TermId>,
    journal: &mut Vec<(TermId, TermId, TermId)>,
) {
    if targets.is_empty() {
        return;
    }
    match e {
        PathExpr::Prop(p) => {
            if let Some(pid) = ctx.graph.id_of_iri(p) {
                // Every target is a p-object of v (targets ⊆ ⟦p⟧(v)).
                journal.extend(targets.iter().map(|&x| (v, pid, x)));
            }
        }
        PathExpr::Inverse(inner) if matches!(inner.as_ref(), PathExpr::Prop(_)) => {
            let PathExpr::Prop(p) = inner.as_ref() else {
                unreachable!()
            };
            if let Some(pid) = ctx.graph.id_of_iri(p) {
                journal.extend(targets.iter().map(|&x| (x, pid, v)));
            }
        }
        _ => {
            journal.extend(ctx.trace_path(e, v, targets));
        }
    }
}

/// Batched [`append_trace`]: appends `graph(paths(E, G, from, targets))`
/// for every request. Requests must satisfy `targets ⊆ ⟦E⟧(from)` (they are
/// always built from a preceding [`Context::eval_path_many`] here), so for
/// single-property paths every target is a direct neighbor of its focus and
/// the triples can be emitted without consulting the trace kernel.
fn append_trace_many<G: GraphAccess>(
    ctx: &mut Context<'_, G>,
    e: &PathExpr,
    requests: &[(TermId, BTreeSet<TermId>)],
    out: &mut IdTriples,
) {
    match e {
        PathExpr::Prop(p) => {
            if let Some(pid) = ctx.graph.id_of_iri(p) {
                for (v, targets) in requests {
                    out.extend(targets.iter().map(|&x| (*v, pid, x)));
                }
            }
        }
        PathExpr::Inverse(inner) if matches!(inner.as_ref(), PathExpr::Prop(_)) => {
            let PathExpr::Prop(p) = inner.as_ref() else {
                unreachable!()
            };
            if let Some(pid) = ctx.graph.id_of_iri(p) {
                for (v, targets) in requests {
                    out.extend(targets.iter().map(|&x| (x, pid, *v)));
                }
            }
        }
        _ => {
            for traced in ctx.trace_path_many(e, requests) {
                out.extend(traced);
            }
        }
    }
}

/// Table 2, assuming `ctx.graph, v ⊨ shape` (checked by the caller).
/// Depth-guarded and fault-sticky via the context's governor.
fn collect<G: GraphAccess>(ctx: &mut Context<'_, G>, v: TermId, shape: &Nnf, out: &mut IdTriples) {
    if !ctx.guard_enter() {
        return;
    }
    collect_inner(ctx, v, shape, out);
    ctx.guard_leave();
}

fn collect_inner<G: GraphAccess>(
    ctx: &mut Context<'_, G>,
    v: TermId,
    shape: &Nnf,
    out: &mut IdTriples,
) {
    match shape {
        // Node-local shapes have empty neighborhoods: they involve no
        // triples (§3.1 "Node tests", "Closedness", "Disjointness").
        Nnf::True
        | Nnf::False
        | Nnf::Test(_)
        | Nnf::NotTest(_)
        | Nnf::HasValue(_)
        | Nnf::NotHasValue(_)
        | Nnf::Closed(_)
        | Nnf::Disj(_, _)
        | Nnf::LessThan(_, _)
        | Nnf::LessThanEq(_, _)
        | Nnf::MoreThan(_, _)
        | Nnf::MoreThanEq(_, _)
        | Nnf::UniqueLang(_) => {}

        // eq(E, p) has a *non-empty* neighborhood even though conformance
        // could hold trivially: the traced paths evidence that the two sets
        // of end-nodes are equal, which keeps the definition relaxable
        // (§3.1 "Equality").
        Nnf::Eq(PathOrId::Path(e), p) => {
            let union = e.clone().or(PathExpr::Prop(p.clone()));
            let endpoints = ctx.eval_path(&union, v);
            out.extend(ctx.trace_path(&union, v, &endpoints));
        }
        Nnf::Eq(PathOrId::Id, p) => {
            // {(v, p, v)}; conformance guarantees the triple is in G.
            if let Some(pid) = ctx.graph.id_of_iri(p) {
                out.insert((v, pid, v));
            }
        }

        // Rules 1–2: dereference shape names; negation is pushed through
        // the definition.
        Nnf::HasShape(name) => {
            let def = Nnf::from_shape(&ctx.schema.def(name));
            collect(ctx, v, &def, out);
        }
        Nnf::NotHasShape(name) => {
            let def = Nnf::from_negated_shape(&ctx.schema.def(name));
            collect(ctx, v, &def, out);
        }

        // Rules 3–4: conjunction and disjunction both take the union of the
        // member neighborhoods (non-conforming disjuncts contribute the
        // empty set by Definition 3.2).
        Nnf::And(items) | Nnf::Or(items) => {
            for item in items {
                if ctx.conforms_nnf(v, item) {
                    collect(ctx, v, item, out);
                }
            }
        }

        // ≥n E.ψ: all E-paths to conforming endpoints, plus the endpoints'
        // own ψ-neighborhoods. All qualifying x are kept (deterministic
        // definition, §3.1 "Quantifiers").
        Nnf::Geq(_, e, inner) => {
            let candidates = ctx.eval_path(e, v);
            // ⊤ endpoints: every candidate qualifies and contributes no
            // sub-neighborhood — skip the per-endpoint recursion.
            if matches!(inner.as_ref(), Nnf::True) {
                out.extend(ctx.trace_path(e, v, &candidates));
                return;
            }
            let qualifying: BTreeSet<TermId> = candidates
                .into_iter()
                .filter(|x| ctx.conforms_nnf(*x, inner))
                .collect();
            out.extend(ctx.trace_path(e, v, &qualifying));
            for x in qualifying {
                collect(ctx, x, inner, out);
            }
        }

        // ≤n E.ψ: dually, the E-paths to endpoints *not* conforming to ψ,
        // plus their ¬ψ-neighborhoods.
        Nnf::Leq(_, e, inner) => {
            let negated = inner.negated();
            let candidates = ctx.eval_path(e, v);
            let qualifying: BTreeSet<TermId> = candidates
                .into_iter()
                .filter(|x| ctx.conforms_nnf(*x, &negated))
                .collect();
            out.extend(ctx.trace_path(e, v, &qualifying));
            for x in qualifying {
                collect(ctx, x, &negated, out);
            }
        }

        // ∀E.ψ: all E-paths and all endpoint ψ-neighborhoods.
        Nnf::ForAll(e, inner) => {
            let endpoints = ctx.eval_path(e, v);
            out.extend(ctx.trace_path(e, v, &endpoints));
            if matches!(inner.as_ref(), Nnf::True) {
                return;
            }
            for x in endpoints {
                collect(ctx, x, inner, out);
            }
        }

        // ¬eq(E, p): E-paths to nodes that are not p-values, plus p-triples
        // to nodes not E-reachable.
        Nnf::NotEq(PathOrId::Path(e), p) => {
            let reachable = ctx.eval_path(e, v);
            let p_values = prop_objects(ctx.graph, v, p);
            let only_e: BTreeSet<TermId> = reachable.difference(&p_values).copied().collect();
            out.extend(ctx.trace_path(e, v, &only_e));
            if let Some(pid) = ctx.graph.id_of_iri(p) {
                for x in p_values.difference(&reachable) {
                    out.insert((v, pid, *x));
                }
            }
        }
        // ¬eq(id, p): the p-triples to nodes other than v.
        Nnf::NotEq(PathOrId::Id, p) => {
            if let Some(pid) = ctx.graph.id_of_iri(p) {
                let objs: Vec<TermId> = ctx.graph.objects_ids(v, pid).collect();
                for x in objs {
                    if x != v {
                        out.insert((v, pid, x));
                    }
                }
            }
        }

        // ¬disj(E, p): common witnesses — the E-paths to each x that is
        // also a p-value, plus the p-triple itself.
        Nnf::NotDisj(PathOrId::Path(e), p) => {
            let reachable = ctx.eval_path(e, v);
            let p_values = prop_objects(ctx.graph, v, p);
            let common: BTreeSet<TermId> = reachable.intersection(&p_values).copied().collect();
            out.extend(ctx.trace_path(e, v, &common));
            if let Some(pid) = ctx.graph.id_of_iri(p) {
                for x in &common {
                    out.insert((v, pid, *x));
                }
            }
        }
        // ¬disj(id, p): the self-loop.
        Nnf::NotDisj(PathOrId::Id, p) => {
            if let Some(pid) = ctx.graph.id_of_iri(p) {
                out.insert((v, pid, v));
            }
        }

        // ¬lessThan(E, p) / ¬lessThanEq(E, p): the witnessing pairs (x, y)
        // with x ≮ y (resp. x ≰ y): E-paths to x plus the p-triple to y.
        Nnf::NotLessThan(e, p) => {
            collect_not_cmp(ctx, v, e, p, CmpOp::Lt, out);
        }
        Nnf::NotLessThanEq(e, p) => {
            collect_not_cmp(ctx, v, e, p, CmpOp::Le, out);
        }
        Nnf::NotMoreThan(e, p) => {
            collect_not_cmp(ctx, v, e, p, CmpOp::Gt, out);
        }
        Nnf::NotMoreThanEq(e, p) => {
            collect_not_cmp(ctx, v, e, p, CmpOp::Ge, out);
        }

        // ¬uniqueLang(E): E-paths to every x that shares a language tag
        // with some other E-value.
        Nnf::NotUniqueLang(e) => {
            let values: Vec<TermId> = ctx.eval_path(e, v).into_iter().collect();
            let mut clashing: BTreeSet<TermId> = BTreeSet::new();
            for (i, &x) in values.iter().enumerate() {
                let Term::Literal(lx) = ctx.graph.term(x) else {
                    continue;
                };
                for (j, &y) in values.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    if let Term::Literal(ly) = ctx.graph.term(y) {
                        if lx.same_language(ly) {
                            clashing.insert(x);
                            break;
                        }
                    }
                }
            }
            out.extend(ctx.trace_path(e, v, &clashing));
        }

        // ¬closed(P): the offending triples with properties outside P.
        Nnf::NotClosed(allowed) => {
            let edges: Vec<(TermId, TermId)> = ctx.graph.out_edges_ids(v).collect();
            for (pid, x) in edges {
                let keep = match ctx.graph.term(pid) {
                    Term::Iri(iri) => !allowed.contains(iri),
                    _ => true,
                };
                if keep {
                    out.insert((v, pid, x));
                }
            }
        }
    }
}

fn collect_not_cmp<G: GraphAccess>(
    ctx: &mut Context<'_, G>,
    v: TermId,
    e: &PathExpr,
    p: &shapefrag_rdf::Iri,
    op: CmpOp,
    out: &mut IdTriples,
) {
    let reachable = ctx.eval_path(e, v);
    let p_values = prop_objects(ctx.graph, v, p);
    let Some(pid) = ctx.graph.id_of_iri(p) else {
        return;
    };
    let mut witnesses_x: BTreeSet<TermId> = BTreeSet::new();
    for &x in &reachable {
        for &y in &p_values {
            if !literal_cmp(ctx.graph, x, y, op) {
                witnesses_x.insert(x);
                out.insert((v, pid, y));
            }
        }
    }
    out.extend(ctx.trace_path(e, v, &witnesses_x));
}

/// `x OP y` as literals; `false` when either is not a literal or the
/// values are incomparable.
fn literal_cmp<G: GraphAccess>(graph: &G, x: TermId, y: TermId, op: CmpOp) -> bool {
    let (Term::Literal(lx), Term::Literal(ly)) = (graph.term(x), graph.term(y)) else {
        return false;
    };
    op.holds(lx.value().partial_cmp_value(&ly.value()))
}

fn prop_objects<G: GraphAccess>(graph: &G, v: TermId, p: &shapefrag_rdf::Iri) -> BTreeSet<TermId> {
    match graph.id_of_iri(p) {
        Some(pid) => graph.objects_ids(v, pid).collect(),
        None => BTreeSet::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapefrag_rdf::{Iri, Literal, Triple};
    use shapefrag_shacl::Schema;

    fn iri(n: &str) -> Iri {
        Iri::new(format!("http://e/{n}"))
    }

    fn term(n: &str) -> Term {
        Term::iri(format!("http://e/{n}"))
    }

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(term(s), iri(p), term(o))
    }

    fn p(n: &str) -> PathExpr {
        PathExpr::Prop(iri(n))
    }

    fn nbh(g: &Graph, node: &str, shape: &Shape) -> Graph {
        let schema = Schema::empty();
        let mut ctx = Context::new(&schema, g);
        neighborhood_term(&mut ctx, &term(node), shape)
    }

    #[test]
    fn example_1_2_workshop_neighborhood() {
        // The neighborhood of a conforming paper consists of its author
        // triples to students plus the student-type triples.
        let g = Graph::from_triples([
            t("p1", "author", "alice"),
            t("alice", "type", "Student"),
            t("p1", "author", "bob"),
            t("bob", "type", "Professor"),
            t("other", "author", "zoe"),
        ]);
        let shape = Shape::geq(
            1,
            p("author"),
            Shape::geq(1, p("type"), Shape::has_value(term("Student"))),
        );
        let b = nbh(&g, "p1", &shape);
        let expected =
            Graph::from_triples([t("p1", "author", "alice"), t("alice", "type", "Student")]);
        assert_eq!(b, expected);
    }

    #[test]
    fn non_conforming_node_has_empty_neighborhood() {
        let g = Graph::from_triples([t("a", "q", "b")]);
        let shape = Shape::geq(1, p("p"), Shape::True);
        assert!(nbh(&g, "a", &shape).is_empty());
    }

    #[test]
    fn node_local_shapes_have_empty_neighborhoods() {
        let g = Graph::from_triples([t("a", "p", "b")]);
        assert!(nbh(&g, "a", &Shape::True).is_empty());
        assert!(nbh(&g, "a", &Shape::has_value(term("a"))).is_empty());
        assert!(nbh(&g, "a", &Shape::Closed([iri("p")].into())).is_empty());
        assert!(nbh(&g, "a", &Shape::Disj(PathOrId::Path(p("zz")), iri("p"))).is_empty());
        assert!(nbh(&g, "a", &Shape::UniqueLang(p("p"))).is_empty());
        assert!(nbh(&g, "a", &Shape::LessThan(p("zz"), iri("ww"))).is_empty());
    }

    #[test]
    fn example_3_3_not_disjoint() {
        let g = Graph::from_triples([
            t("v", "friend", "x"),
            t("v", "colleague", "x"),
            t("v", "friend", "y"),
            t("v", "colleague", "z"),
        ]);
        let shape = Shape::Disj(PathOrId::Path(p("friend")), iri("colleague")).not();
        let b = nbh(&g, "v", &shape);
        let expected = Graph::from_triples([t("v", "friend", "x"), t("v", "colleague", "x")]);
        assert_eq!(b, expected);
    }

    #[test]
    fn example_3_5_two_constraints() {
        // G: paper p1, authors Anne (prof) and Bob (student).
        let g = Graph::from_triples([
            t("p1", "type", "paper"),
            t("p1", "auth", "Anne"),
            t("p1", "auth", "Bob"),
            t("Anne", "type", "prof"),
            t("Bob", "type", "student"),
        ]);
        let tau = Shape::geq(1, p("type"), Shape::has_value(term("paper")));
        let phi1 = Shape::geq(1, p("auth"), Shape::True);
        // φ2 = ≤1 auth.≤0 type.hasValue(student)  (already in NNF)
        let phi2 = Shape::leq(
            1,
            p("auth"),
            Shape::leq(0, p("type"), Shape::has_value(term("student"))),
        );

        let b1 = nbh(&g, "p1", &phi1.clone().and(tau.clone()));
        let expected1 = Graph::from_triples([
            t("p1", "type", "paper"),
            t("p1", "auth", "Anne"),
            t("p1", "auth", "Bob"),
        ]);
        assert_eq!(b1, expected1);

        let b2 = nbh(&g, "p1", &phi2.clone().and(tau.clone()));
        let expected2 = Graph::from_triples([
            t("p1", "type", "paper"),
            t("p1", "auth", "Bob"),
            t("Bob", "type", "student"),
        ]);
        assert_eq!(b2, expected2);
    }

    #[test]
    fn geq_includes_all_witnesses_not_just_n() {
        // Remark 3.6: ≥1 a.⊤ with two a-triples keeps both (determinism).
        let g = Graph::from_triples([t("v", "a", "x"), t("v", "a", "y")]);
        let b = nbh(&g, "v", &Shape::geq(1, p("a"), Shape::True));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn eq_traces_both_sides() {
        let g = Graph::from_triples([t("v", "e", "x"), t("v", "p", "x"), t("q", "p", "r")]);
        let b = nbh(&g, "v", &Shape::Eq(PathOrId::Path(p("e")), iri("p")));
        let expected = Graph::from_triples([t("v", "e", "x"), t("v", "p", "x")]);
        assert_eq!(b, expected);
    }

    #[test]
    fn eq_trivially_true_still_empty_sides() {
        // v has neither e nor p edges: conforms, neighborhood empty.
        let g = Graph::from_triples([t("other", "e", "x")]);
        let b = nbh(&g, "v", &Shape::Eq(PathOrId::Path(p("e")), iri("p")));
        assert!(b.is_empty());
    }

    #[test]
    fn eq_id_self_loop() {
        let g = Graph::from_triples([t("v", "p", "v")]);
        let b = nbh(&g, "v", &Shape::Eq(PathOrId::Id, iri("p")));
        assert_eq!(b, Graph::from_triples([t("v", "p", "v")]));
    }

    #[test]
    fn not_eq_keeps_one_sided_witnesses() {
        // e reaches x (not a p-value); p reaches y (not e-reachable).
        let g = Graph::from_triples([
            t("v", "e", "x"),
            t("v", "p", "y"),
            t("v", "e", "z"),
            t("v", "p", "z"),
        ]);
        let b = nbh(&g, "v", &Shape::Eq(PathOrId::Path(p("e")), iri("p")).not());
        // z is in both sets: its triples are *not* in the neighborhood.
        let expected = Graph::from_triples([t("v", "e", "x"), t("v", "p", "y")]);
        assert_eq!(b, expected);
    }

    #[test]
    fn not_eq_id_keeps_non_loops() {
        let g = Graph::from_triples([t("v", "p", "v"), t("v", "p", "w")]);
        let b = nbh(&g, "v", &Shape::Eq(PathOrId::Id, iri("p")).not());
        assert_eq!(b, Graph::from_triples([t("v", "p", "w")]));
    }

    #[test]
    fn not_disj_id_self_loop() {
        let g = Graph::from_triples([t("v", "p", "v"), t("v", "p", "w")]);
        let b = nbh(&g, "v", &Shape::Disj(PathOrId::Id, iri("p")).not());
        assert_eq!(b, Graph::from_triples([t("v", "p", "v")]));
    }

    #[test]
    fn not_less_than_witnesses() {
        let five = Term::Literal(Literal::integer(5));
        let three = Term::Literal(Literal::integer(3));
        let nine = Term::Literal(Literal::integer(9));
        let g = Graph::from_triples([
            Triple::new(term("v"), iri("e"), five.clone()),
            Triple::new(term("v"), iri("p"), three.clone()),
            Triple::new(term("v"), iri("p"), nine.clone()),
        ]);
        let b = nbh(&g, "v", &Shape::LessThan(p("e"), iri("p")).not());
        // Witness pair: (5, 3) since 5 ≮ 3. The pair (5, 9) is fine.
        let expected = Graph::from_triples([
            Triple::new(term("v"), iri("e"), five),
            Triple::new(term("v"), iri("p"), three),
        ]);
        assert_eq!(b, expected);
    }

    #[test]
    fn not_unique_lang_traces_clashing_values() {
        let en1 = Term::Literal(Literal::lang_string("hello", "en"));
        let en2 = Term::Literal(Literal::lang_string("hi", "en"));
        let de = Term::Literal(Literal::lang_string("hallo", "de"));
        let g = Graph::from_triples([
            Triple::new(term("v"), iri("l"), en1.clone()),
            Triple::new(term("v"), iri("l"), en2.clone()),
            Triple::new(term("v"), iri("l"), de),
        ]);
        let b = nbh(&g, "v", &Shape::UniqueLang(p("l")).not());
        let expected = Graph::from_triples([
            Triple::new(term("v"), iri("l"), en1),
            Triple::new(term("v"), iri("l"), en2),
        ]);
        assert_eq!(b, expected);
    }

    #[test]
    fn not_closed_keeps_outside_properties() {
        let g = Graph::from_triples([t("v", "p", "x"), t("v", "q", "y"), t("v", "r", "z")]);
        let b = nbh(&g, "v", &Shape::Closed([iri("p")].into()).not());
        let expected = Graph::from_triples([t("v", "q", "y"), t("v", "r", "z")]);
        assert_eq!(b, expected);
    }

    #[test]
    fn forall_traces_paths_and_endpoint_neighborhoods() {
        let g = Graph::from_triples([
            t("v", "p", "x"),
            t("x", "type", "C"),
            t("v", "p", "y"),
            t("y", "type", "C"),
            t("w", "p", "z"),
        ]);
        let shape = Shape::for_all(
            p("p"),
            Shape::geq(1, p("type"), Shape::has_value(term("C"))),
        );
        let b = nbh(&g, "v", &shape);
        let expected = Graph::from_triples([
            t("v", "p", "x"),
            t("x", "type", "C"),
            t("v", "p", "y"),
            t("y", "type", "C"),
        ]);
        assert_eq!(b, expected);
    }

    #[test]
    fn leq_traces_negated_witnesses() {
        // ≤1 auth.student-check from Example 3.5, in isolation: witnesses
        // are the authors that are NOT student-free, i.e. Bob.
        let g = Graph::from_triples([
            t("v", "auth", "anne"),
            t("v", "auth", "bob"),
            t("bob", "type", "student"),
        ]);
        let shape = Shape::leq(
            1,
            p("auth"),
            Shape::leq(0, p("type"), Shape::has_value(term("student"))),
        );
        let b = nbh(&g, "v", &shape);
        let expected = Graph::from_triples([t("v", "auth", "bob"), t("bob", "type", "student")]);
        assert_eq!(b, expected);
    }

    #[test]
    fn has_shape_dereferences_definition() {
        let schema = Schema::new([shapefrag_shacl::ShapeDef::new(
            term("S"),
            Shape::geq(1, p("a"), Shape::True),
            Shape::False,
        )])
        .unwrap();
        let g = Graph::from_triples([t("v", "a", "x")]);
        let mut ctx = Context::new(&schema, &g);
        let v = g.id_of(&term("v")).unwrap();
        let b = neighborhood(&mut ctx, v, &Shape::HasShape(term("S")));
        assert_eq!(b, Graph::from_triples([t("v", "a", "x")]));
        // ¬hasShape on a non-conforming node: neighborhood of the negated
        // definition.
        let g2 = Graph::from_triples([t("v", "b", "x")]);
        let mut ctx2 = Context::new(&schema, &g2);
        let v2 = g2.id_of(&term("v")).unwrap();
        let b2 = neighborhood(&mut ctx2, v2, &Shape::HasShape(term("S")).not());
        assert!(b2.is_empty()); // ≤0 a.⊤ has no witnesses
    }

    #[test]
    fn why_not_provenance_via_negation() {
        // Remark 3.7: v does not conform to ∀p.hasValue(c); the neighborhood
        // of the negation explains why (the offending p-edge).
        let g = Graph::from_triples([t("v", "p", "c"), t("v", "p", "d")]);
        let shape = Shape::for_all(p("p"), Shape::has_value(term("c")));
        assert!(nbh(&g, "v", &shape).is_empty());
        let why_not = nbh(&g, "v", &shape.not());
        assert_eq!(why_not, Graph::from_triples([t("v", "p", "d")]));
    }

    #[test]
    fn neighborhood_is_always_subgraph() {
        let g = Graph::from_triples([t("a", "p", "b"), t("b", "q", "c"), t("a", "r", "c")]);
        let shapes = [
            Shape::geq(1, p("p").then(p("q")), Shape::True),
            Shape::for_all(p("p").or(p("r")), Shape::True),
            Shape::Eq(PathOrId::Path(p("p")), iri("r")).not(),
        ];
        for shape in &shapes {
            let b = nbh(&g, "a", shape);
            assert!(b.is_subgraph_of(&g), "not a subgraph for {shape}");
        }
    }

    #[test]
    fn single_pass_agrees_with_two_pass() {
        // conforms_and_collect must agree with (conforms_nnf, Table 2
        // collection) on every node and a spread of shape forms.
        let g = Graph::from_triples([
            t("p1", "author", "alice"),
            t("alice", "type", "Student"),
            t("p1", "author", "bob"),
            t("bob", "type", "Professor"),
            t("p1", "type", "Paper"),
            t("v", "friend", "x"),
            t("v", "colleague", "x"),
            t("loop", "p", "loop"),
        ]);
        let shapes = [
            Shape::geq(
                1,
                p("author"),
                Shape::geq(1, p("type"), Shape::has_value(term("Student"))),
            ),
            Shape::leq(
                1,
                p("author"),
                Shape::leq(0, p("type"), Shape::has_value(term("Student"))),
            ),
            Shape::for_all(p("author"), Shape::geq(1, p("type"), Shape::True)),
            Shape::geq(2, p("author"), Shape::True),
            Shape::geq(5, p("author"), Shape::True), // fails: journal must roll back
            Shape::Eq(PathOrId::Path(p("friend")), iri("colleague")),
            Shape::Disj(PathOrId::Path(p("friend")), iri("colleague")).not(),
            Shape::Closed([iri("p")].into()).not(),
            Shape::geq(1, p("author"), Shape::True).or(Shape::geq(1, p("friend"), Shape::True)),
            Shape::geq(1, p("author"), Shape::True).and(Shape::geq(
                1,
                p("type"),
                Shape::has_value(term("Paper")),
            )),
            Shape::geq(1, p("author"), Shape::True).and(Shape::geq(1, p("zzz"), Shape::True)), // And failure rollback
        ];
        let schema = Schema::empty();
        let mut ctx = Context::new(&schema, &g);
        let mut journal = Vec::new();
        for shape in &shapes {
            let nnf = Nnf::from_shape(shape);
            for v in g.node_ids() {
                journal.clear();
                let single = conforms_and_collect(&mut ctx, v, &nnf, &mut journal);
                let two_pass = ctx.conforms_nnf(v, &nnf);
                assert_eq!(
                    single,
                    two_pass,
                    "verdicts differ for {shape} at {}",
                    g.term(v)
                );
                let expected = neighborhood_nnf_ids(&mut ctx, v, &nnf);
                let got: IdTriples = journal.iter().copied().collect();
                assert_eq!(
                    got,
                    expected,
                    "evidence differs for {shape} at {}",
                    g.term(v)
                );
            }
        }
    }

    #[test]
    fn or_collects_only_conforming_disjuncts() {
        let g = Graph::from_triples([t("v", "p", "x")]);
        let shape = Shape::geq(1, p("p"), Shape::True).or(Shape::geq(1, p("q"), Shape::True));
        let b = nbh(&g, "v", &shape);
        assert_eq!(b, Graph::from_triples([t("v", "p", "x")]));
    }
}
