//! Incremental validation over delta overlays with change-impact routing
//! (DESIGN.md §14).
//!
//! [`IncrementalValidator`] owns a [`DeltaGraph`] overlay, the per-shape
//! conformance bits of the last full report, and a shared
//! [`ConformanceMemo`]. Applying an [`EditScript`] routes the batch of
//! touched `(s, p, o)` ids through the analyze crate's
//! [`ImpactProfile`]s — the transitive predicate alphabet, wildcard flag,
//! and read depth of every shape definition — to the *affected focus-node
//! set* per shape, then re-runs only those `(shape, focus)` pairs while
//! selectively dropping the matching memo stripes. Everything outside the
//! impact region is reused verbatim.
//!
//! ## Soundness (sketch; the full argument is in DESIGN.md §14)
//!
//! Evaluating a focus node `n` only reads triples it can *traverse to*:
//! a plain path step moves subject → object, an `Inverse` step moves
//! object → subject, and every predicate a definition may step over (in
//! either direction) is in its profile's alphabet. So a touched triple
//! `(s, p, o)` can flip `n`'s bit only if `n` reaches `s` through the
//! directed traversal graph and `p` is forward-readable, or `n` reaches
//! `o` and `p` is inverse-readable (`inv_preds`/`inv_wildcard`).
//! Equivalently, `n` lies in the *ancestor* BFS of `depth` hops from the
//! readable endpoints — walking in-edges for forward-alphabet predicates
//! and out-edges for inverse-alphabet ones — over the *old ∪ new* graph
//! (the post-edit overlay plus this batch's removed edges as extra
//! adjacency). Direction is what keeps the sets small: an undirected ball
//! would flood through hub objects (every `rdf:type` class node links all
//! its instances two hops apart), while ancestor sets only grow through
//! shared *subjects*. Profiles that read any predicate in both directions
//! at unbounded depth fall back to rechecking every target. Target sets
//! are recomputed for every
//! definition on every batch: target membership may hinge on bare node
//! existence (the full-scan fallback), which any edit can change, and a
//! recompute is cheap next to conformance work. Bits are reused only for
//! nodes that were already in the previous row and are outside the impact
//! set.
//!
//! ## Memo discipline
//!
//! Before any re-evaluation the engine drops the impacted
//! `(shape, focus)` memo entries for *every* definition
//! ([`ConformanceMemo::invalidate`], or
//! [`ConformanceMemo::invalidate_shape`] for the recheck-all fallback),
//! then re-binds the memo to the post-edit fingerprint
//! ([`ConformanceMemo::rebind`]). Because the memo carries a
//! [`ContainmentIndex`] (subsumption-derived bits flow between related
//! definitions), each stripe drop is widened to the *directed closure*
//! over the containment edges: every shape the impacted one is related
//! to — in either derivation direction — loses the same stripe, so a
//! stale bit can never survive by having been copied into a neighbour's
//! row. Governed runs snapshot the overlay before mutating; a mid-batch
//! fault restores it and fully clears the memo (then re-attaches the
//! index) — the memo is always either correctly maintained or empty,
//! never half-invalidated.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use shapefrag_analyze::{impact_profiles, ContainmentMatrix, ImpactProfile};
use shapefrag_govern::{Budget, CancelToken, EngineError, ExecCtx};
use shapefrag_rdf::{ntriples, DeltaGraph, FrozenGraph, ParseError, TermId, Triple};
use shapefrag_sched::{run, WorkUnit};
use shapefrag_shacl::validator::{
    ConformanceMemo, ContainmentIndex, Context, ValidationReport, Violation,
};
use shapefrag_shacl::{Nnf, Schema, Shape};

use crate::parallel::{chunk_len, spans_for, unit_cost, Span};

/// One edit: add or remove a single triple. Adding a triple that is
/// already present (or removing one that is absent) is a no-op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditOp {
    /// Assert the triple.
    Add(Triple),
    /// Retract the triple.
    Remove(Triple),
}

/// An ordered batch of edits, applied atomically by
/// [`IncrementalValidator::apply`] — the report always reflects either
/// none or all of the script.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EditScript {
    /// The edits, in application order (later ops see earlier ones).
    pub ops: Vec<EditOp>,
}

impl EditScript {
    /// Creates a script from ops.
    pub fn new(ops: impl IntoIterator<Item = EditOp>) -> Self {
        EditScript {
            ops: ops.into_iter().collect(),
        }
    }

    /// Number of edits.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True iff the script holds no edits.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Parses the textual edit format: one op per line, `+` (or no
    /// prefix) for add and `-` for remove, followed by an N-Triples
    /// triple. Blank lines and `#` comments are skipped.
    ///
    /// ```text
    /// + <http://e/alice> <http://e/knows> <http://e/bob> .
    /// - <http://e/alice> <http://e/age> "29" .
    /// ```
    pub fn parse(text: &str) -> Result<EditScript, ParseError> {
        let mut ops = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (add, rest) = match line.strip_prefix('+') {
                Some(rest) => (true, rest),
                None => match line.strip_prefix('-') {
                    Some(rest) => (false, rest),
                    None => (true, line),
                },
            };
            let triple = ntriples::parse_line(rest.trim_start(), idx + 1)?;
            ops.push(if add {
                EditOp::Add(triple)
            } else {
                EditOp::Remove(triple)
            });
        }
        Ok(EditScript { ops })
    }
}

impl FromIterator<EditOp> for EditScript {
    fn from_iter<T: IntoIterator<Item = EditOp>>(iter: T) -> Self {
        EditScript::new(iter)
    }
}

/// Per-definition change-impact verdict for one edit batch.
enum Impact {
    /// No touched triple is readable by this shape: reuse every bit.
    Untouched,
    /// Wildcard alphabet with unbounded depth: recheck every target.
    All,
    /// Exactly these focus nodes may have changed their bit.
    Set(BTreeSet<TermId>),
}

/// Incrementally-maintained validation state: a delta overlay over a
/// frozen base snapshot, the `(focus, conforms)` rows of the current
/// report per definition, and the shared conformance memo.
///
/// The maintained report is **bit-identical** to
/// [`shapefrag_shacl::validate_batch`] run from scratch on the overlay:
/// same `checked` count, same violations in the same
/// (definition-major, target-minor) order.
pub struct IncrementalValidator {
    schema: Arc<Schema>,
    /// Impact profile per definition, in `schema.iter()` order.
    profiles: Vec<ImpactProfile>,
    delta: DeltaGraph,
    memo: Arc<ConformanceMemo>,
    /// Containment adjacency for the schema, attached to the memo so
    /// re-checks can derive answers across subsumption edges; kept here
    /// so it can be re-attached after a fault-path `memo.clear()`.
    containment: Arc<ContainmentIndex>,
    /// Per definition (in `schema.iter()` order): the current target row,
    /// sorted ascending by focus id, with each node's conformance bit.
    state: Vec<Vec<(TermId, bool)>>,
}

impl IncrementalValidator {
    /// Seeds the state with a full sequential validation of `base`.
    pub fn new(schema: Arc<Schema>, base: Arc<FrozenGraph>) -> Self {
        Self::with_threads(schema, base, 1)
    }

    /// Seeds the state with a full validation of `base` on `threads`
    /// workers.
    pub fn with_threads(schema: Arc<Schema>, base: Arc<FrozenGraph>, threads: usize) -> Self {
        let delta = DeltaGraph::new(base);
        let profiles = impact_profiles(schema.iter());
        let memo = Arc::new(ConformanceMemo::new());
        let containment = Arc::new(ContainmentMatrix::of_schema(&schema).to_index(&schema));
        memo.attach_containment(Arc::clone(&containment));
        let empty = vec![Vec::new(); schema.len()];
        let impacts: Vec<Impact> = (0..schema.len()).map(|_| Impact::All).collect();
        let state = revalidate(&schema, &delta, &empty, &memo, &impacts, threads, None)
            .expect("ungoverned revalidation cannot fault");
        IncrementalValidator {
            schema,
            profiles,
            delta,
            memo,
            containment,
            state,
        }
    }

    /// The schema this state is maintained for.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The current graph: base snapshot plus this overlay's edits.
    pub fn graph(&self) -> &DeltaGraph {
        &self.delta
    }

    /// The shared conformance memo (for introspection/stats).
    pub fn memo(&self) -> &Arc<ConformanceMemo> {
        &self.memo
    }

    /// Rebuilds the maintained report from the per-definition rows.
    pub fn report(&self) -> ValidationReport {
        let mut report = ValidationReport::default();
        for (def, row) in self.schema.iter().zip(&self.state) {
            report.checked += row.len();
            for &(node, ok) in row {
                if !ok {
                    report.violations.push(Violation {
                        shape: def.name.clone(),
                        focus: self.delta.term(node).clone(),
                    });
                }
            }
        }
        report
    }

    /// Re-freezes base + overlay into a fresh snapshot and resets the
    /// overlay to empty on top of it. Ids are stable across compaction
    /// (the overlay's interner is carried over), so the rows and the memo
    /// survive; the memo is re-bound to the compacted fingerprint.
    pub fn compact(&mut self) {
        let frozen = Arc::new(self.delta.compact());
        self.delta = DeltaGraph::new(frozen);
        self.memo.rebind(&self.schema, &self.delta);
    }

    /// Applies the script's effective edits to the overlay; returns the
    /// touched ids and, separately, the removed edges (for old-graph
    /// adjacency in impact routing), or `None` when nothing changed.
    #[allow(clippy::type_complexity)]
    fn stage(
        &mut self,
        script: &EditScript,
    ) -> Option<(Vec<(TermId, TermId, TermId)>, Vec<(TermId, TermId, TermId)>)> {
        let mut touched = Vec::new();
        let mut removed = Vec::new();
        for op in &script.ops {
            match op {
                EditOp::Add(t) => {
                    if let Some(ids) = self.delta.insert(t) {
                        touched.push(ids);
                    }
                }
                EditOp::Remove(t) => {
                    if let Some(ids) = self.delta.remove(t) {
                        touched.push(ids);
                        removed.push(ids);
                    }
                }
            }
        }
        (!touched.is_empty()).then_some((touched, removed))
    }

    fn route_and_invalidate(
        &self,
        touched: &[(TermId, TermId, TermId)],
        removed: &[(TermId, TermId, TermId)],
    ) -> Vec<Impact> {
        let impacts = plan_impacts(&self.profiles, &self.delta, touched, removed);
        for (def, impact) in self.schema.iter().zip(&impacts) {
            let sid = self
                .schema
                .name_id(&def.name)
                .expect("definition name is in its own schema");
            // Widen every stripe drop to the directed containment closure:
            // derived bits may have flowed from this definition into any
            // related one (true bits up the ⊑ edges, false bits down), so
            // those copies must fall with the original.
            match impact {
                Impact::Untouched => {}
                Impact::All => {
                    for rel in self.containment.related_closure(sid) {
                        self.memo.invalidate_shape(rel);
                    }
                }
                Impact::Set(nodes) => {
                    for rel in self.containment.related_closure(sid) {
                        self.memo.invalidate(rel, nodes.iter().copied());
                    }
                }
            }
        }
        impacts
    }

    /// Applies an edit batch and returns the incrementally-maintained
    /// report (identical to a from-scratch `validate_batch` on the
    /// post-edit overlay).
    pub fn apply(&mut self, script: &EditScript) -> ValidationReport {
        self.apply_par(script, 1)
    }

    /// [`IncrementalValidator::apply`] on `threads` workers: impact
    /// routing and target recomputation run sequentially, the re-checks
    /// run as cost-ordered work-stealing units.
    pub fn apply_par(&mut self, script: &EditScript, threads: usize) -> ValidationReport {
        let Some((touched, removed)) = self.stage(script) else {
            return self.report();
        };
        let impacts = self.route_and_invalidate(&touched, &removed);
        self.state = revalidate(
            &self.schema,
            &self.delta,
            &self.state,
            &self.memo,
            &impacts,
            threads,
            None,
        )
        .expect("ungoverned revalidation cannot fault");
        self.report()
    }

    /// Resource-governed [`IncrementalValidator::apply`]: on a fault the
    /// overlay is rolled back to its pre-batch contents, the rows are left
    /// untouched, and the memo is fully cleared — the state is never
    /// half-updated.
    pub fn apply_governed(
        &mut self,
        script: &EditScript,
        budget: Budget,
        cancel: Option<&CancelToken>,
    ) -> Result<ValidationReport, EngineError> {
        self.apply_par_governed(script, 1, budget, cancel)
    }

    /// Governed [`IncrementalValidator::apply_par`]: every worker runs
    /// under `budget.split(threads)` plus the shared cancellation token;
    /// the first fault in planning order wins and triggers the rollback
    /// described on [`IncrementalValidator::apply_governed`].
    pub fn apply_par_governed(
        &mut self,
        script: &EditScript,
        threads: usize,
        budget: Budget,
        cancel: Option<&CancelToken>,
    ) -> Result<ValidationReport, EngineError> {
        let saved = self.delta.clone();
        let Some((touched, removed)) = self.stage(script) else {
            return Ok(self.report());
        };
        let impacts = self.route_and_invalidate(&touched, &removed);
        match revalidate(
            &self.schema,
            &self.delta,
            &self.state,
            &self.memo,
            &impacts,
            threads,
            Some((budget, cancel)),
        ) {
            Ok(state) => {
                self.state = state;
                Ok(self.report())
            }
            Err(e) => {
                self.delta = saved;
                self.memo.clear();
                // clear() drops the attached index with everything else;
                // the schema is unchanged, so put it back for the retry.
                self.memo.attach_containment(Arc::clone(&self.containment));
                Err(e)
            }
        }
    }
}

/// Adjacency the post-edit overlay no longer has: the edges removed by
/// this batch, split by traversal direction (`out` keyed by subject,
/// `in` keyed by object) so the ancestor BFS can walk them like live
/// edges.
#[derive(Default)]
struct RemovedAdj {
    out: HashMap<TermId, Vec<(TermId, TermId)>>,
    r#in: HashMap<TermId, Vec<(TermId, TermId)>>,
}

/// Computes the per-definition impact of one edit batch.
fn plan_impacts(
    profiles: &[ImpactProfile],
    delta: &DeltaGraph,
    touched: &[(TermId, TermId, TermId)],
    removed: &[(TermId, TermId, TermId)],
) -> Vec<Impact> {
    let mut removed_adj = RemovedAdj::default();
    for &(s, p, o) in removed {
        removed_adj.out.entry(s).or_default().push((p, o));
        removed_adj.r#in.entry(o).or_default().push((p, s));
    }
    profiles
        .iter()
        .map(|prof| {
            let alphabet: BTreeSet<TermId> = prof
                .preds
                .iter()
                .filter_map(|p| delta.id_of_iri(p))
                .collect();
            let inv_alphabet: BTreeSet<TermId> = prof
                .inv_preds
                .iter()
                .filter_map(|p| delta.id_of_iri(p))
                .collect();
            // A touched triple is readable at its subject when its
            // predicate is in the (forward-or-any) alphabet, and at its
            // object only when the predicate may be traversed inversely.
            let mut seeds: BTreeSet<TermId> = BTreeSet::new();
            for &(s, p, o) in touched {
                if prof.wildcard || alphabet.contains(&p) {
                    seeds.insert(s);
                }
                if prof.inv_wildcard || inv_alphabet.contains(&p) {
                    seeds.insert(o);
                }
            }
            if seeds.is_empty() {
                Impact::Untouched
            } else if prof.wildcard && prof.inv_wildcard && prof.depth.is_none() {
                // Unbounded any-predicate reads in both directions: the
                // ancestor BFS would flood the whole weakly-connected
                // component anyway; skip it and recheck every focus.
                Impact::All
            } else {
                Impact::Set(affected_nodes(
                    delta,
                    &removed_adj,
                    seeds,
                    prof,
                    &alphabet,
                    &inv_alphabet,
                ))
            }
        })
        .collect()
}

/// Ancestor BFS in the directed traversal graph: the nodes that can
/// *reach* a touched endpoint, and whose evaluation may therefore read a
/// touched triple. A forward step (`p` in the alphabet) moves
/// subject → object during evaluation, so its reverse walks in-edges; an
/// inverse step (`p` in `inv_preds`) moves object → subject, so its
/// reverse walks out-edges. Runs over old ∪ new (the overlay plus this
/// batch's removed edges), bounded by the profile depth (`None` runs to
/// fixpoint — safe because ancestor sets don't explode through hub
/// *objects* the way undirected balls do).
fn affected_nodes(
    delta: &DeltaGraph,
    removed_adj: &RemovedAdj,
    seeds: BTreeSet<TermId>,
    prof: &ImpactProfile,
    alphabet: &BTreeSet<TermId>,
    inv_alphabet: &BTreeSet<TermId>,
) -> BTreeSet<TermId> {
    let fwd = |p: TermId| prof.wildcard || alphabet.contains(&p);
    let inv = |p: TermId| prof.inv_wildcard || inv_alphabet.contains(&p);
    let mut seen = seeds.clone();
    let mut frontier: Vec<TermId> = seeds.into_iter().collect();
    let mut hops = 0u32;
    while !frontier.is_empty() {
        if let Some(depth) = prof.depth {
            if hops >= depth {
                break;
            }
        }
        let mut next = Vec::new();
        for n in frontier {
            // Reverse of a forward step ending at `n`: the subjects of
            // alphabet-labeled in-edges.
            for (p, s) in delta.in_edges_ids(n) {
                if fwd(p) && seen.insert(s) {
                    next.push(s);
                }
            }
            if let Some(extra) = removed_adj.r#in.get(&n) {
                for &(p, s) in extra {
                    if fwd(p) && seen.insert(s) {
                        next.push(s);
                    }
                }
            }
            // Reverse of an inverse step ending at `n`: the objects of
            // inverse-alphabet-labeled out-edges.
            for (p, o) in delta.out_edges_ids(n) {
                if inv(p) && seen.insert(o) {
                    next.push(o);
                }
            }
            if let Some(extra) = removed_adj.out.get(&n) {
                for &(p, o) in extra {
                    if inv(p) && seen.insert(o) {
                        next.push(o);
                    }
                }
            }
        }
        frontier = next;
        hops += 1;
    }
    seen
}

/// Per-definition revalidation plan: the recomputed target row with
/// reused bits pre-filled, and the nodes that still need a conformance
/// check (in row order).
struct RowPlan<'a> {
    shape: &'a Shape,
    /// `(focus, Some(bit))` for reused entries, `(focus, None)` for
    /// entries to be filled from `to_check` decisions, ascending by focus.
    entries: Vec<(TermId, Option<bool>)>,
    to_check: Vec<TermId>,
}

/// Recomputes every definition's target row over `delta`, re-checking
/// exactly the impact-routed `(shape, focus)` pairs and reusing every
/// other bit from `state`. Must be called after memo invalidation; it
/// re-binds the memo to the post-edit fingerprint itself.
fn revalidate(
    schema: &Schema,
    delta: &DeltaGraph,
    state: &[Vec<(TermId, bool)>],
    memo: &Arc<ConformanceMemo>,
    impacts: &[Impact],
    threads: usize,
    governor: Option<(Budget, Option<&CancelToken>)>,
) -> Result<Vec<Vec<(TermId, bool)>>, EngineError> {
    memo.rebind(schema, delta);
    let threads = threads.max(1);
    if threads == 1 {
        return revalidate_seq(schema, delta, state, memo, impacts, governor);
    }
    let attach = |budget: Budget, cancel: Option<&CancelToken>| {
        let mut exec = ExecCtx::with_budget(budget);
        if let Some(token) = cancel {
            exec = exec.with_cancel(token);
        }
        exec
    };
    // Planning (impact filtering + target recomputation) runs
    // sequentially under the full budget, like the parallel batch driver.
    let mut plan_ctx = Context::with_memo(schema, delta, Arc::clone(memo));
    if let Some((budget, cancel)) = governor {
        plan_ctx = plan_ctx.with_exec(attach(budget, cancel));
    }
    // Route each re-check through `HasShape(name)` so the def-level bit
    // lands in the memo under the definition's own id, where containment
    // derivation can reach it.
    let wrapped: Vec<Shape> = schema
        .iter()
        .map(|def| Shape::HasShape(def.name.clone()))
        .collect();
    let mut plans: Vec<RowPlan> = Vec::with_capacity(schema.len());
    let mut units: Vec<WorkUnit<Span>> = Vec::new();
    let mut seq = 0;
    for (d, def) in schema.iter().enumerate() {
        if governor.is_some() {
            plan_ctx.exec().check_now()?;
        }
        let targets = plan_ctx.target_nodes(&def.target);
        if let Some(e) = plan_ctx.take_fault() {
            return Err(e);
        }
        let plan = plan_row(&wrapped[d], targets, &state[d], &impacts[d]);
        let nnf = Nnf::from_shape(&def.shape);
        let chunk = chunk_len(plan.to_check.len(), threads);
        let mut spans = Vec::new();
        spans_for(plan.to_check.len(), chunk, d, &mut seq, &mut spans);
        for s in spans {
            units.push(WorkUnit {
                cost: unit_cost(schema, &nnf, s.hi - s.lo),
                item: s,
            });
        }
        plans.push(plan);
    }
    drop(plan_ctx);

    /// Per-unit output: `(seq, def, lo, decisions)`.
    type UnitBits = (usize, usize, usize, Vec<bool>);
    let per_worker: Vec<Vec<UnitBits>>;
    match governor {
        None => {
            (per_worker, _) = run(
                units,
                threads,
                |_| {
                    (
                        Context::with_memo(schema, delta, Arc::clone(memo)),
                        Vec::<UnitBits>::new(),
                    )
                },
                |(ctx, out), span: Span| {
                    let plan = &plans[span.def];
                    let nodes = &plan.to_check[span.lo..span.hi];
                    let decisions = ctx.conforms_all(nodes, plan.shape);
                    out.push((span.seq, span.def, span.lo, decisions));
                },
                |_, (_, out)| out,
            );
        }
        Some((budget, cancel)) => {
            let worker_budget = budget.split(threads);
            let fault: Mutex<Option<(usize, EngineError)>> = Mutex::new(None);
            let abort = AtomicBool::new(false);
            let record_fault = |seq: usize, e: EngineError| {
                let mut slot = fault.lock().expect("fault slot poisoned");
                match &*slot {
                    Some((s, _)) if *s <= seq => {}
                    _ => *slot = Some((seq, e)),
                }
                abort.store(true, Ordering::Release);
            };
            (per_worker, _) = run(
                units,
                threads,
                |_| {
                    (
                        Context::with_memo(schema, delta, Arc::clone(memo))
                            .with_exec(attach(worker_budget, cancel)),
                        Vec::<UnitBits>::new(),
                    )
                },
                |(ctx, out), span: Span| {
                    if abort.load(Ordering::Acquire) {
                        return;
                    }
                    let plan = &plans[span.def];
                    let nodes = &plan.to_check[span.lo..span.hi];
                    let decisions = ctx.conforms_all(nodes, plan.shape);
                    if let Some(e) = ctx.take_fault() {
                        record_fault(span.seq, e);
                        return;
                    }
                    out.push((span.seq, span.def, span.lo, decisions));
                },
                |_, (_, out)| out,
            );
            if let Some((_, e)) = fault.into_inner().expect("fault slot poisoned") {
                return Err(e);
            }
        }
    }
    // Stitch decisions back into the rows: per definition, order the unit
    // outputs by their offset and splice them into the unfilled entries.
    let mut per_def: Vec<Vec<(usize, Vec<bool>)>> = (0..plans.len()).map(|_| Vec::new()).collect();
    for (_, def, lo, decisions) in per_worker.into_iter().flatten() {
        per_def[def].push((lo, decisions));
    }
    let mut rows = Vec::with_capacity(plans.len());
    for (plan, mut parts) in plans.into_iter().zip(per_def) {
        parts.sort_by_key(|(lo, _)| *lo);
        let mut bits = parts.into_iter().flat_map(|(_, d)| d);
        let row = plan
            .entries
            .into_iter()
            .map(|(node, reused)| {
                let bit =
                    reused.unwrap_or_else(|| bits.next().expect("one decision per unfilled entry"));
                (node, bit)
            })
            .collect();
        rows.push(row);
    }
    Ok(rows)
}

fn revalidate_seq(
    schema: &Schema,
    delta: &DeltaGraph,
    state: &[Vec<(TermId, bool)>],
    memo: &Arc<ConformanceMemo>,
    impacts: &[Impact],
    governor: Option<(Budget, Option<&CancelToken>)>,
) -> Result<Vec<Vec<(TermId, bool)>>, EngineError> {
    let mut ctx = Context::with_memo(schema, delta, Arc::clone(memo));
    if let Some((budget, cancel)) = governor {
        let mut exec = ExecCtx::with_budget(budget);
        if let Some(token) = cancel {
            exec = exec.with_cancel(token);
        }
        ctx = ctx.with_exec(exec);
    }
    // Same `HasShape(name)` routing as the parallel path: def-level bits
    // must land under the definition's id for containment derivation.
    let wrapped: Vec<Shape> = schema
        .iter()
        .map(|def| Shape::HasShape(def.name.clone()))
        .collect();
    let mut rows = Vec::with_capacity(schema.len());
    for (d, def) in schema.iter().enumerate() {
        if governor.is_some() {
            ctx.exec().check_now()?;
        }
        let targets = ctx.target_nodes(&def.target);
        if let Some(e) = ctx.take_fault() {
            return Err(e);
        }
        let plan = plan_row(&wrapped[d], targets, &state[d], &impacts[d]);
        let decisions = ctx.conforms_all(&plan.to_check, plan.shape);
        if let Some(e) = ctx.take_fault() {
            return Err(e);
        }
        let mut bits = decisions.into_iter();
        let row = plan
            .entries
            .into_iter()
            .map(|(node, reused)| {
                let bit =
                    reused.unwrap_or_else(|| bits.next().expect("one decision per unfilled entry"));
                (node, bit)
            })
            .collect();
        rows.push(row);
    }
    Ok(rows)
}

/// Splits a recomputed target set into reused bits and pending checks: a
/// node must be re-checked when its definition is impact-routed to it, or
/// when it was not in the previous row at all.
fn plan_row<'a>(
    shape: &'a Shape,
    targets: BTreeSet<TermId>,
    old: &[(TermId, bool)],
    impact: &Impact,
) -> RowPlan<'a> {
    let mut entries = Vec::with_capacity(targets.len());
    let mut to_check = Vec::new();
    for node in targets {
        let reused = match impact {
            Impact::All => None,
            Impact::Set(set) if set.contains(&node) => None,
            _ => old
                .binary_search_by_key(&node, |&(m, _)| m)
                .ok()
                .map(|i| old[i].1),
        };
        if reused.is_none() {
            to_check.push(node);
        }
        entries.push((node, reused));
    }
    RowPlan {
        shape,
        entries,
        to_check,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapefrag_rdf::{Graph, Iri, Term};
    use shapefrag_shacl::{validate_batch, PathExpr, ShapeDef};

    fn iri(n: &str) -> Iri {
        Iri::new(format!("http://e/{n}"))
    }

    fn term(n: &str) -> Term {
        Term::iri(format!("http://e/{n}"))
    }

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(term(s), iri(p), term(o))
    }

    /// Persons (by class) must have ≥1 name.
    fn person_schema() -> Arc<Schema> {
        let target = Shape::geq(
            1,
            PathExpr::prop(iri("type")),
            Shape::has_value(term("Person")),
        );
        let shape = Shape::geq(1, PathExpr::prop(iri("name")), Shape::True);
        Arc::new(Schema::new([ShapeDef::new(term("PersonShape"), shape, target)]).unwrap())
    }

    fn seed_graph() -> Graph {
        let mut g = Graph::new();
        g.insert(t("alice", "type", "Person"));
        g.insert(t("alice", "name", "a"));
        g.insert(t("bob", "type", "Person"));
        g
    }

    fn validator(schema: &Arc<Schema>, g: &Graph) -> IncrementalValidator {
        IncrementalValidator::new(Arc::clone(schema), Arc::new(g.freeze()))
    }

    #[test]
    fn seed_report_matches_validate_batch() {
        let schema = person_schema();
        let g = seed_graph();
        let inc = validator(&schema, &g);
        let scratch = validate_batch(&schema, inc.graph());
        assert_eq!(inc.report(), scratch);
        assert_eq!(inc.report().checked, 2);
        assert_eq!(inc.report().violations.len(), 1); // bob has no name
    }

    #[test]
    fn apply_maintains_report_exactly() {
        let schema = person_schema();
        let g = seed_graph();
        let mut inc = validator(&schema, &g);
        // Fix bob, break alice, add a fresh violating person.
        let script = EditScript::new([
            EditOp::Add(t("bob", "name", "b")),
            EditOp::Remove(t("alice", "name", "a")),
            EditOp::Add(t("carol", "type", "Person")),
        ]);
        let report = inc.apply(&script);
        let scratch = validate_batch(&schema, inc.graph());
        assert_eq!(report, scratch);
        assert_eq!(report.checked, 3);
        let focs: Vec<_> = report.violations.iter().map(|v| v.focus.clone()).collect();
        assert_eq!(focs, vec![term("alice"), term("carol")]);
    }

    #[test]
    fn noop_script_changes_nothing() {
        let schema = person_schema();
        let g = seed_graph();
        let mut inc = validator(&schema, &g);
        let before = inc.report();
        let script = EditScript::new([
            EditOp::Add(t("alice", "type", "Person")), // already present
            EditOp::Remove(t("zed", "type", "Person")), // absent
        ]);
        assert_eq!(inc.apply(&script), before);
        assert_eq!(inc.graph().delta_len(), 0);
    }

    #[test]
    fn irrelevant_predicates_do_not_invalidate_memo() {
        let schema = person_schema();
        let g = seed_graph();
        let mut inc = validator(&schema, &g);
        let memo_before = inc.memo().len();
        // `hobby` is outside the shape's alphabet; only the new node's
        // target membership is recomputed, no conformance bit is dropped.
        let report = inc.apply(&EditScript::new([EditOp::Add(t(
            "alice", "hobby", "chess",
        ))]));
        assert_eq!(report, validate_batch(&schema, inc.graph()));
        assert_eq!(inc.memo().len(), memo_before);
    }

    #[test]
    fn impact_routing_is_directional_not_undirected() {
        // Unbounded-depth, forward-only profile: Persons must reach a
        // named node via `knows*`. An undirected ball from any touched
        // node would flood through the shared `Person` class object to
        // every sibling instance; the ancestor BFS must not.
        let target = Shape::geq(
            1,
            PathExpr::prop(iri("type")),
            Shape::has_value(term("Person")),
        );
        let shape = Shape::geq(
            1,
            PathExpr::prop(iri("knows")).star(),
            Shape::geq(1, PathExpr::prop(iri("name")), Shape::True),
        );
        let schema = Schema::new([ShapeDef::new(term("S"), shape, target)]).unwrap();
        let mut g = Graph::new();
        for n in ["alice", "bob"] {
            g.insert(t(n, "type", "Person"));
            g.insert(t(n, "name", n));
        }
        let profiles = impact_profiles(schema.iter());
        assert!(profiles[0].depth.is_none());
        assert!(!profiles[0].wildcard);
        assert!(profiles[0].inv_preds.is_empty());

        let mut delta = DeltaGraph::new(Arc::new(g.freeze()));
        let touched = delta.insert(&t("alice", "name", "extra")).unwrap();
        let impacts = plan_impacts(&profiles, &delta, &[touched], &[]);
        let alice = delta.id_of(&term("alice")).unwrap();
        let bob = delta.id_of(&term("bob")).unwrap();
        let Impact::Set(set) = &impacts[0] else {
            panic!("expected a routed focus set");
        };
        assert!(set.contains(&alice));
        assert!(
            !set.contains(&bob),
            "directional routing must not flood through the class node"
        );
    }

    #[test]
    fn inverse_paths_route_through_objects() {
        // `Parent ≡ child⁻ names them`: conformance of a parent reads the
        // `child` triple at its *object*, so touching it must impact the
        // triple's object ancestry, not just its subject.
        let target = Shape::True;
        let shape = Shape::geq(1, PathExpr::prop(iri("child")).inverse(), Shape::True);
        let schema = Schema::new([ShapeDef::new(term("S"), shape, target)]).unwrap();
        let mut g = Graph::new();
        g.insert(t("root", "child", "kid"));
        let profiles = impact_profiles(schema.iter());
        assert_eq!(profiles[0].inv_preds.len(), 1);

        let mut delta = DeltaGraph::new(Arc::new(g.freeze()));
        let touched = delta.insert(&t("root", "child", "kid2")).unwrap();
        let impacts = plan_impacts(&profiles, &delta, &[touched], &[]);
        let kid2 = delta.id_of(&term("kid2")).unwrap();
        let Impact::Set(set) = &impacts[0] else {
            panic!("expected a routed focus set");
        };
        assert!(
            set.contains(&kid2),
            "the object of an inversely-read triple must be impacted"
        );
    }

    #[test]
    fn compact_preserves_rows_and_report() {
        let schema = person_schema();
        let g = seed_graph();
        let mut inc = validator(&schema, &g);
        inc.apply(&EditScript::new([EditOp::Add(t("bob", "name", "b"))]));
        let before = inc.report();
        inc.compact();
        assert_eq!(inc.graph().delta_len(), 0);
        assert_eq!(inc.report(), before);
        // And edits keep flowing after compaction.
        let report = inc.apply(&EditScript::new([EditOp::Remove(t("bob", "name", "b"))]));
        assert_eq!(report, validate_batch(&schema, inc.graph()));
    }

    #[test]
    fn parallel_apply_matches_sequential() {
        let schema = person_schema();
        let g = seed_graph();
        let mut seq = validator(&schema, &g);
        let mut par = validator(&schema, &g);
        let script = EditScript::new([
            EditOp::Add(t("bob", "name", "b")),
            EditOp::Add(t("carol", "type", "Person")),
            EditOp::Add(t("carol", "name", "c")),
        ]);
        assert_eq!(seq.apply(&script), par.apply_par(&script, 4));
    }

    #[test]
    fn governed_fault_rolls_back_atomically() {
        let schema = person_schema();
        let g = seed_graph();
        let mut inc = validator(&schema, &g);
        let before = inc.report();
        let len_before = inc.graph().len();
        let script = EditScript::new([EditOp::Add(t("carol", "type", "Person"))]);
        let err = inc
            .apply_governed(&script, Budget::unlimited().steps(0), None)
            .unwrap_err();
        assert!(matches!(err, EngineError::BudgetExceeded { .. }));
        // Overlay rolled back, rows untouched, memo fully cleared.
        assert_eq!(inc.graph().len(), len_before);
        assert_eq!(inc.graph().delta_len(), 0);
        assert_eq!(inc.report(), before);
        assert_eq!(inc.memo().len(), 0);
        // And the validator still works after the fault.
        let report = inc.apply(&script);
        assert_eq!(report, validate_batch(&schema, inc.graph()));
    }

    #[test]
    fn edit_script_parses_signed_ntriples() {
        let text = "\
# comment
+ <http://e/a> <http://e/p> <http://e/b> .
- <http://e/a> <http://e/q> \"1\" .
<http://e/c> <http://e/p> <http://e/d> .
";
        let script = EditScript::parse(text).unwrap();
        assert_eq!(script.len(), 3);
        assert!(matches!(script.ops[0], EditOp::Add(_)));
        assert!(matches!(script.ops[1], EditOp::Remove(_)));
        assert!(matches!(script.ops[2], EditOp::Add(_)));
        assert!(EditScript::parse("+ not ntriples").is_err());
    }
}
